#include "dbscore/trace/histogram.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"

namespace dbscore::trace {

Histogram::Histogram(double min_value, double ratio)
    : min_value_(min_value), ratio_(ratio), log_ratio_(std::log(ratio))
{
    DBS_ASSERT(min_value > 0.0);
    DBS_ASSERT(ratio > 1.0);
}

std::size_t
Histogram::BucketIndex(double value) const
{
    if (value <= min_value_) return 0;
    return static_cast<std::size_t>(std::log(value / min_value_) / log_ratio_) + 1;
}

double
Histogram::BucketLowerBound(std::size_t index) const
{
    if (index == 0) return 0.0;
    return min_value_ * std::pow(ratio_, static_cast<double>(index - 1));
}

void
Histogram::Add(double value)
{
    if (!std::isfinite(value) || value < 0.0) value = 0.0;
    std::size_t idx = BucketIndex(value);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    ++count_;
    total_ += value;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
Histogram::Merge(const Histogram& other)
{
    if (other.count_ == 0) return;
    if (other.buckets_.size() > buckets_.size()) {
        buckets_.resize(other.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    total_ += other.total_;
}

double
Histogram::Quantile(double q) const
{
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target) {
            /* Geometric midpoint of the bucket, clamped to what was seen. */
            double lo = BucketLowerBound(i);
            double hi = BucketLowerBound(i + 1);
            double mid = (lo > 0.0) ? std::sqrt(lo * hi) : hi * 0.5;
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

}  // namespace dbscore::trace
