#include "dbscore/trace/exporters.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "dbscore/common/string_util.h"
#include "dbscore/common/table_printer.h"

namespace dbscore::trace {

namespace {

/** Wall spans live in pid 1, simulated spans in pid 2. */
constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

std::string
JsonEscape(const char* s)
{
    std::string out;
    for (; *s; ++s) {
        char c = *s;
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += StrFormat("\\u%04x", c);
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonNumber(double v)
{
    if (!std::isfinite(v)) return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
WriteEvent(std::ostream& os, const SpanRecord& r, bool wall_clock, bool& first)
{
    if (!first) os << ",\n";
    first = false;
    double ts = wall_clock ? r.wall_start_us : r.sim_start_s * 1e6;
    double dur = wall_clock ? r.wall_dur_us : r.sim_dur_s * 1e6;
    int pid = wall_clock ? kWallPid : kSimPid;
    /* Simulated spans have no real thread; track them per trace so
     * each query/request gets its own swimlane on the modeled
     * timeline. */
    std::uint64_t tid = wall_clock ? r.thread_id : r.trace_id;
    os << "  {\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << JsonNumber(ts) << ",\"dur\":" << JsonNumber(dur)
       << ",\"name\":\"" << JsonEscape(r.name) << "\",\"cat\":\""
       << StageName(r.stage) << "\",\"args\":{\"trace_id\":" << r.trace_id
       << ",\"span_id\":" << r.span_id << ",\"parent_id\":" << r.parent_id
       << ",\"domain\":" << r.domain << ",\"thread_id\":" << r.thread_id;
    if (r.has_sim()) {
        os << ",\"sim_start_us\":" << JsonNumber(r.sim_start_s * 1e6)
           << ",\"sim_dur_us\":" << JsonNumber(r.sim_dur_s * 1e6);
    }
    for (std::uint32_t i = 0; i < r.num_attrs; ++i) {
        os << ",\"" << JsonEscape(r.attrs[i].key)
           << "\":" << JsonNumber(r.attrs[i].value);
    }
    os << "}}";
}

void
WriteProcessName(std::ostream& os, int pid, const char* label, bool& first)
{
    if (!first) os << ",\n";
    first = false;
    os << "  {\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" << label
       << "\"}}";
}

}  // namespace

void
WriteChromeTrace(std::ostream& os, const std::vector<SpanRecord>& spans,
                 std::uint64_t dropped)
{
    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    WriteProcessName(os, kWallPid, "wall clock", first);
    WriteProcessName(os, kSimPid, "simulated time", first);
    for (const SpanRecord& r : spans) {
        /* A dual-clock span renders once per clock; the shared
         * span_id in args ties the two events together. */
        if (r.has_wall()) WriteEvent(os, r, /*wall_clock=*/true, first);
        if (r.has_sim()) WriteEvent(os, r, /*wall_clock=*/false, first);
    }
    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {"
       << "\"spans\": " << spans.size() << ", \"dropped\": " << dropped
       << "}\n}\n";
}

void
PrintStageTable(std::ostream& os, const TraceSummary& summary)
{
    TablePrinter table({"stage", "paper component", "count", "sim total",
                        "sim p50", "sim p95", "sim p99", "wall total"});
    for (const StageSummary& s : summary.stages) {
        table.AddRow({
            StageName(s.stage),
            StagePaperComponent(s.stage),
            std::to_string(s.count),
            s.sim_total.ToString(),
            SimTime::Micros(s.sim_p50_us).ToString(),
            SimTime::Micros(s.sim_p95_us).ToString(),
            SimTime::Micros(s.sim_p99_us).ToString(),
            SimTime::Micros(s.wall_total_us).ToString(),
        });
    }
    table.Print(os);
    os << StrFormat("spans recorded: %llu, dropped: %llu\n",
                    static_cast<unsigned long long>(summary.spans_recorded),
                    static_cast<unsigned long long>(summary.spans_dropped));
}

}  // namespace dbscore::trace
