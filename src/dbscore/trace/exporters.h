/**
 * @file
 * Trace exporters: Chrome trace_event JSON and a Fig-11-style table.
 *
 * The JSON export loads directly in chrome://tracing or Perfetto.
 * Wall-clock spans render as process 1 (one track per real thread);
 * simulated spans render as process 2 on the modeled timeline (one
 * track per trace), so both clocks are visible side by side. Every
 * event's args carry the raw ids, both clocks, and the span's
 * attributes so parent links survive the export.
 */
#ifndef DBSCORE_TRACE_EXPORTERS_H
#define DBSCORE_TRACE_EXPORTERS_H

#include <cstdint>
#include <ostream>
#include <vector>

#include "dbscore/trace/trace.h"

namespace dbscore::trace {

/**
 * Writes @p spans as a Chrome trace_event JSON object document.
 * @p dropped is reported in otherData so consumers can detect an
 * incomplete trace.
 */
void WriteChromeTrace(std::ostream& os, const std::vector<SpanRecord>& spans,
                      std::uint64_t dropped = 0);

/**
 * Renders @p summary as a per-stage breakdown table (stage, paper
 * component, count, simulated total + percentiles, wall total) via
 * common/table_printer — the textual sibling of the paper's Fig 11.
 */
void PrintStageTable(std::ostream& os, const TraceSummary& summary);

}  // namespace dbscore::trace

#endif  // DBSCORE_TRACE_EXPORTERS_H
