/**
 * @file
 * Log-bucketed latency histogram for trace aggregation.
 *
 * The collector folds every drained span into one Histogram per
 * (domain, stage). Buckets grow geometrically, so the structure is a
 * few hundred bytes regardless of how many spans it has absorbed and
 * quantile queries carry a bounded ~4% relative error — good enough
 * for p50/p95/p99 stage attribution while staying mergeable across
 * domains, unlike the exact-but-retaining QuantileSketch in
 * common/stats.
 */
#ifndef DBSCORE_TRACE_HISTOGRAM_H
#define DBSCORE_TRACE_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbscore::trace {

/**
 * Geometric-bucket histogram over non-negative values (microseconds by
 * convention in the trace subsystem). Bucket i covers
 * [min_value * ratio^i, min_value * ratio^(i+1)); values below
 * min_value land in bucket 0. Quantiles interpolate inside the
 * selected bucket and are clamped to the observed [min, max].
 */
class Histogram {
 public:
    /** ratio 1.04 bounds quantile error to ~4% relative. */
    explicit Histogram(double min_value = 1e-3, double ratio = 1.04);

    void Add(double value);

    /** Fold @p other into this histogram (same min_value/ratio). */
    void Merge(const Histogram& other);

    /** @p q in [0, 1]. Returns 0 when empty. */
    double Quantile(double q) const;

    std::size_t count() const { return count_; }
    double total() const { return total_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? total_ / static_cast<double>(count_) : 0.0; }

 private:
    std::size_t BucketIndex(double value) const;
    double BucketLowerBound(std::size_t index) const;

    double min_value_;
    double ratio_;
    double log_ratio_;
    std::size_t count_ = 0;
    double total_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<std::uint64_t> buckets_;
};

}  // namespace dbscore::trace

#endif  // DBSCORE_TRACE_HISTOGRAM_H
