/**
 * @file
 * dbscore::trace — always-on, stage-attributed tracing.
 *
 * The paper's thesis is that accelerator "speedups" evaporate once the
 * full offload pipeline is charged (Figures 6/7/11); this subsystem
 * makes that accounting a first-class, queryable artifact instead of
 * scattered counters. Every span carries the paper's stage taxonomy
 * (StageKind) and *two* clocks: real wall-clock microseconds for
 * functional code (ForestKernel, the serve path) and simulated SimTime
 * for the calibrated cost models, so a single trace can show both what
 * the machine did and what the model charged.
 *
 * Hot-path design: producers write fixed-size SpanRecords into a
 * lock-free single-producer/single-consumer ring per thread — never a
 * lock, never an allocation, never a block; on overflow the record is
 * dropped and counted. The process-wide TraceCollector drains rings on
 * demand, retains a bounded window of raw spans for export, and folds
 * everything into per-(domain, stage) histograms for summaries.
 *
 * Ids and parenting: span/trace ids come from atomic counters. Within
 * a thread, ScopedSpan maintains an implicit parent stack; across
 * thread hops (pipeline -> coalescer -> device worker) the producer
 * captures a SpanContext and passes it to the child explicitly.
 * Domains partition spans between independent producers (e.g. two
 * ScoringService instances) so per-service summaries don't bleed into
 * each other; domain 0 is the default used by the DBMS pipeline.
 *
 * Define DBSCORE_TRACE_DISABLED to compile emission out entirely (the
 * wallclock_kernels bench guards the enabled-vs-disabled delta < 3%).
 */
#ifndef DBSCORE_TRACE_TRACE_H
#define DBSCORE_TRACE_TRACE_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "dbscore/common/sim_time.h"
#include "dbscore/trace/histogram.h"

namespace dbscore::trace {

/**
 * Stage taxonomy. The middle block mirrors the paper's figure
 * components exactly: kInvocation/kMarshal/kModelPreproc/kDataPreproc
 * are Figure 11's pipeline stages, kAccelPreproc..kSoftwareOverhead
 * are Figure 6/7's offload breakdown. The serve block (kAdmission..
 * kReply) and kKernel attribute the real-time serving path.
 */
enum class StageKind : std::uint8_t {
    kNone = 0,
    kQuery,             ///< root span: one end-to-end scoring query/request
    kAdmission,         ///< serve: admission-control handoff
    kCoalesce,          ///< serve: waiting for batchmates (and placement)
    kQueueWait,         ///< serve: waiting for the chosen device
    kBatch,             ///< serve: one coalesced dispatch on a device worker
    kInvocation,        ///< Fig 11: external process invocation
    kModelPreproc,      ///< Fig 11: model deserialization/compilation
    kDataPreproc,       ///< Fig 11: feature-matrix preparation
    kMarshal,           ///< Fig 11: DBMS<->process data transfer
    kOffload,           ///< grouping span around one engine Score call
    kAccelPreproc,      ///< Fig 6/7: engine-side preprocessing
    kTransferIn,        ///< Fig 6/7: input transfer to the device
    kAccelSetup,        ///< Fig 6/7: accelerator setup
    kScoring,           ///< Fig 6/7: compute
    kCompletionSignal,  ///< Fig 6/7: completion signal
    kTransferOut,       ///< Fig 6/7: result transfer from the device
    kSoftwareOverhead,  ///< Fig 6/7: driver/runtime software overhead
    kKernel,            ///< wall-clock: one ForestKernel batch (or chunk)
    kReply,             ///< serve: reply fulfillment
    kFault,             ///< resilience: one injected fault (wasted time)
    kRetryBackoff,      ///< resilience: backoff delay before a retry
    kFallback,          ///< resilience: batch re-routed to the CPU engine
    kBreaker,           ///< resilience: circuit-breaker state transition
    kPageRead,          ///< storage: one page read from the page file
    kPageWrite,         ///< storage: one page write to the page file
    kBufferPool,        ///< storage: buffer-pool miss (fill + eviction)
    kKernelBuild,       ///< wall-clock: ForestKernel compile (+ autotune)
    kPlan,              ///< dbms: parse + plan + rewrite one statement
    kPlanCacheHit,      ///< dbms: plan served from the LRU plan cache
    kRegistryHit,       ///< fleet: model served from the warm registry
    kRegistryEvict,     ///< fleet: model evicted under memory pressure
    kAutoscale,         ///< fleet: worker-pool lane count changed
    kRecovery,          ///< storage: crash recovery on open (rollback/scan)
    kScrub,             ///< storage: online checksum scrub pass
};

inline constexpr int kNumStageKinds = 35;

/** Stable lowercase-dash name, e.g. "queue-wait"; also the Chrome cat. */
const char* StageName(StageKind stage);

/** Which paper figure component the stage maps to ("-" when none). */
const char* StagePaperComponent(StageKind stage);

/**
 * Lightweight handle to a live (or completed) span: enough to parent a
 * child from any thread. Copyable, trivially destructible.
 */
struct SpanContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint32_t domain = 0;

    bool valid() const { return span_id != 0; }
};

/** Numeric key/value attribute. Keys must be static strings. */
struct Attr {
    const char* key;
    double value;
};

inline constexpr std::size_t kMaxSpanAttrs = 3;

/**
 * One completed span as written into the ring. Fixed-size and
 * trivially copyable; name/attr keys must point at static storage
 * (string literals) because records outlive the emitting scope.
 * Either clock may be absent: a negative start means "not recorded".
 */
struct SpanRecord {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    const char* name = "";
    StageKind stage = StageKind::kNone;
    std::uint32_t domain = 0;
    std::uint32_t thread_id = 0;
    double wall_start_us = -1.0;
    double wall_dur_us = 0.0;
    double sim_start_s = -1.0;
    double sim_dur_s = 0.0;
    std::uint32_t num_attrs = 0;
    Attr attrs[kMaxSpanAttrs] = {};

    bool has_wall() const { return wall_start_us >= 0.0; }
    bool has_sim() const { return sim_start_s >= 0.0; }

    /** Silently ignored once kMaxSpanAttrs are set. */
    void
    AddAttr(const char* key, double value)
    {
        if (num_attrs < kMaxSpanAttrs) attrs[num_attrs++] = Attr{key, value};
    }
};

/**
 * Fixed-capacity single-producer/single-consumer ring of SpanRecords.
 * The owning thread pushes; the collector (under its own mutex, so one
 * consumer at a time) drains. TryPush never blocks: a full ring counts
 * the record as dropped and returns false.
 */
class SpanRing {
 public:
    /** @p capacity is rounded up to a power of two. */
    explicit SpanRing(std::size_t capacity);

    bool TryPush(const SpanRecord& record);

    /** Appends all pending records to @p out; returns how many. */
    std::size_t DrainInto(std::vector<SpanRecord>& out);

    std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
    void ResetDropped() { dropped_.store(0, std::memory_order_relaxed); }
    std::size_t capacity() const { return slots_.size(); }

 private:
    std::vector<SpanRecord> slots_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0};  ///< next write (producer-owned)
    std::atomic<std::uint64_t> tail_{0};  ///< next read (consumer-owned)
    std::atomic<std::uint64_t> dropped_{0};
};

/** Aggregated view of one stage within a TraceSummary. */
struct StageSummary {
    StageKind stage = StageKind::kNone;
    std::size_t count = 0;
    SimTime sim_total;
    double wall_total_us = 0.0;
    /** Percentiles over per-span sim durations, microseconds. */
    double sim_p50_us = 0.0;
    double sim_p95_us = 0.0;
    double sim_p99_us = 0.0;
    /** Percentiles over per-span wall durations, microseconds. */
    double wall_p50_us = 0.0;
    double wall_p95_us = 0.0;
    double wall_p99_us = 0.0;
};

/** Answer to "where did the microseconds go?" for one domain (or all). */
struct TraceSummary {
    std::vector<StageSummary> stages;  ///< enum order, zero-count omitted
    std::uint64_t spans_recorded = 0;  ///< drained into the collector
    std::uint64_t spans_dropped = 0;   ///< lost to ring overflow
};

/**
 * Per-thread simulated-time cursor used by code that emits a *chain*
 * of modeled stages (the pipeline, the serve batch executor): Set() at
 * the chain's origin, then each EmitStage() advances it by the stage's
 * duration so successive spans abut on the simulated timeline.
 */
class SimClock {
 public:
    static SimTime Now();
    static void Set(SimTime t);
    static void Advance(SimTime dt);
};

/**
 * Process-wide collector: owns the ring registry, id generators, the
 * bounded retained-span window, and per-(domain, stage) aggregation.
 * Emission is lock-free; Drain()/Summary()/Spans() serialize on an
 * internal mutex and are safe from any thread.
 */
class TraceCollector {
 public:
    static TraceCollector& Get();

    /**
     * Runtime kill switch (the compile-time one is
     * DBSCORE_TRACE_DISABLED). Disabling makes ScopedSpan inert and
     * Emit a no-op; used by the overhead guard bench.
     */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void SetEnabled(bool enabled);

    /** A fresh domain id for an independent producer (never 0). */
    std::uint32_t NewDomain();

    /** A root context (new trace id, new span id) in @p domain. */
    SpanContext NewRootContext(std::uint32_t domain = 0);

    std::uint64_t NewSpanId();

    /** Monotonic wall clock, microseconds since collector start. */
    double NowWallMicros() const;

    /** Queues @p record on the calling thread's ring (never blocks). */
    void Emit(const SpanRecord& record);

    /**
     * Emits a simulated-duration span at an explicit position on the
     * simulated timeline, parented to @p parent (which also supplies
     * the domain). Returns the new span's context.
     */
    SpanContext EmitSim(StageKind stage, const char* name, SpanContext parent,
                        SimTime sim_start, SimTime sim_dur,
                        std::initializer_list<Attr> attrs = {});

    /**
     * Chain form: position = the thread's SimClock, parent = the
     * thread's current ScopedSpan; advances the SimClock by @p dur.
     */
    SpanContext EmitStage(StageKind stage, const char* name, SimTime dur,
                          std::initializer_list<Attr> attrs = {});

    /** Emits a wall-clock-only span (start/duration in microseconds). */
    SpanContext EmitWall(StageKind stage, const char* name, SpanContext parent,
                         double wall_start_us, double wall_dur_us,
                         std::initializer_list<Attr> attrs = {});

    /** Pulls every ring into the retained window + aggregates. */
    void Drain();

    /** Drains, then snapshots the retained spans (all domains). */
    std::vector<SpanRecord> Spans();
    std::vector<SpanRecord> SpansForDomain(std::uint32_t domain);

    /** Drains, then aggregates; all domains merged. */
    TraceSummary Summary();
    TraceSummary SummaryForDomain(std::uint32_t domain);

    /**
     * Drains, then returns the summed simulated duration per stage for
     * @p domain — the single source of truth behind
     * serve::StageTotals and the fig11 consistency check.
     */
    std::array<SimTime, kNumStageKinds> StageSimTotals(std::uint32_t domain);

    /** Ring-overflow drops across all threads since the last Clear. */
    std::uint64_t TotalDropped();

    /** Drops retained spans, aggregates, and drop/evict counters. */
    void Clear();

    /** Capacity for rings created after this call (tests only). */
    void SetRingCapacity(std::size_t capacity);
    /** Bound on the retained raw-span window (oldest evicted first). */
    void SetRetainedCapacity(std::size_t capacity);
    std::uint64_t RetainedEvicted();

    /** The calling thread's innermost live ScopedSpan (if any). */
    static SpanContext Current();

 private:
    friend class ScopedSpan;

    struct StageAgg {
        std::size_t count = 0;
        double sim_total_s = 0.0;
        double wall_total_us = 0.0;
        Histogram sim_us;
        Histogram wall_us;
    };

    TraceCollector();

    SpanRing* LocalRing();
    void DrainLocked();
    TraceSummary BuildSummaryLocked(bool all_domains, std::uint32_t domain);
    static std::uint64_t AggKey(std::uint32_t domain, StageKind stage);
    SpanContext FillAndEmit(SpanRecord& record, StageKind stage,
                            const char* name, SpanContext parent,
                            std::initializer_list<Attr> attrs);

    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> next_trace_{1};
    std::atomic<std::uint64_t> next_span_{1};
    std::atomic<std::uint32_t> next_domain_{1};
    std::chrono::steady_clock::time_point epoch_;

    std::mutex mutex_;
    std::vector<std::shared_ptr<SpanRing>> rings_;
    std::size_t ring_capacity_ = 2048;
    std::vector<SpanRecord> drain_scratch_;
    std::deque<SpanRecord> retained_;
    std::size_t retained_capacity_ = 1 << 16;
    std::uint64_t retained_evicted_ = 0;
    std::uint64_t recorded_ = 0;
    std::map<std::uint64_t, StageAgg> agg_;
};

/**
 * RAII span: opens on construction, emits on destruction with the
 * measured wall duration. While live it is the thread's Current()
 * span, so nested ScopedSpans and EmitStage calls parent to it
 * implicitly. Use the explicit-parent constructor when the span's
 * logical parent lives on another thread. SetSim attaches a simulated
 * position/duration alongside the measured wall clock.
 */
class ScopedSpan {
 public:
    ScopedSpan(StageKind stage, const char* name);
    ScopedSpan(StageKind stage, const char* name, SpanContext parent);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Invalid when the collector is disabled. */
    SpanContext context() const;

    void
    AddAttr(const char* key, double value)
    {
        if (active_) record_.AddAttr(key, value);
    }

    void
    SetSim(SimTime sim_start, SimTime sim_dur)
    {
        record_.sim_start_s = sim_start.seconds();
        record_.sim_dur_s = sim_dur.seconds();
    }

 private:
    void Open(StageKind stage, const char* name, SpanContext parent);

    SpanRecord record_;
    bool active_ = false;
};

}  // namespace dbscore::trace

#endif  // DBSCORE_TRACE_TRACE_H
