#include "dbscore/trace/trace.h"

#include <algorithm>
#include <bit>

namespace dbscore::trace {

namespace {

/** Small dense thread ids (1, 2, ...) — stable for a thread's life. */
std::uint32_t
ThisThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    static thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

thread_local double g_sim_now_s = 0.0;

thread_local std::vector<SpanContext> g_span_stack;

}  // namespace

const char*
StageName(StageKind stage)
{
    switch (stage) {
    case StageKind::kNone: return "none";
    case StageKind::kQuery: return "query";
    case StageKind::kAdmission: return "admission";
    case StageKind::kCoalesce: return "coalesce";
    case StageKind::kQueueWait: return "queue-wait";
    case StageKind::kBatch: return "batch";
    case StageKind::kInvocation: return "invocation";
    case StageKind::kModelPreproc: return "model-preproc";
    case StageKind::kDataPreproc: return "data-preproc";
    case StageKind::kMarshal: return "marshal";
    case StageKind::kOffload: return "offload";
    case StageKind::kAccelPreproc: return "accel-preproc";
    case StageKind::kTransferIn: return "transfer-in";
    case StageKind::kAccelSetup: return "accel-setup";
    case StageKind::kScoring: return "scoring";
    case StageKind::kCompletionSignal: return "completion-signal";
    case StageKind::kTransferOut: return "transfer-out";
    case StageKind::kSoftwareOverhead: return "software-overhead";
    case StageKind::kKernel: return "kernel";
    case StageKind::kReply: return "reply";
    case StageKind::kFault: return "fault";
    case StageKind::kRetryBackoff: return "retry-backoff";
    case StageKind::kFallback: return "fallback";
    case StageKind::kBreaker: return "breaker";
    case StageKind::kPageRead: return "page-read";
    case StageKind::kPageWrite: return "page-write";
    case StageKind::kBufferPool: return "buffer-pool";
    case StageKind::kKernelBuild: return "kernel-build";
    case StageKind::kPlan: return "plan";
    case StageKind::kPlanCacheHit: return "plan-cache-hit";
    case StageKind::kRegistryHit: return "registry-hit";
    case StageKind::kRegistryEvict: return "registry-evict";
    case StageKind::kAutoscale: return "autoscale";
    case StageKind::kRecovery: return "recovery";
    case StageKind::kScrub: return "scrub";
    }
    return "unknown";
}

const char*
StagePaperComponent(StageKind stage)
{
    switch (stage) {
    case StageKind::kQuery: return "end-to-end query";
    case StageKind::kAdmission: return "serving overhead";
    case StageKind::kCoalesce: return "serving: batch wait";
    case StageKind::kQueueWait: return "serving: device queue";
    case StageKind::kBatch: return "serving: dispatch";
    case StageKind::kInvocation: return "Fig 11 invocation";
    case StageKind::kModelPreproc: return "Fig 11 model preprocessing";
    case StageKind::kDataPreproc: return "Fig 11 data preprocessing";
    case StageKind::kMarshal: return "Fig 11 data transfer";
    case StageKind::kOffload: return "Fig 11 scoring (total)";
    case StageKind::kAccelPreproc: return "Fig 6/7 preprocessing";
    case StageKind::kTransferIn: return "Fig 6/7 input transfer";
    case StageKind::kAccelSetup: return "Fig 6/7 setup";
    case StageKind::kScoring: return "Fig 6/7 compute";
    case StageKind::kCompletionSignal: return "Fig 6/7 completion signal";
    case StageKind::kTransferOut: return "Fig 6/7 result transfer";
    case StageKind::kSoftwareOverhead: return "Fig 6/7 software overhead";
    case StageKind::kKernel: return "functional kernel";
    case StageKind::kReply: return "serving overhead";
    case StageKind::kFault: return "resilience: wasted work";
    case StageKind::kRetryBackoff: return "resilience: retry backoff";
    case StageKind::kFallback: return "resilience: CPU fallback";
    case StageKind::kBreaker: return "resilience: breaker transition";
    case StageKind::kPageRead: return "storage: page read";
    case StageKind::kPageWrite: return "storage: page write";
    case StageKind::kBufferPool: return "storage: pool miss";
    case StageKind::kKernelBuild: return "functional kernel build";
    case StageKind::kPlan: return "dbms: query planning";
    case StageKind::kPlanCacheHit: return "dbms: plan cache hit";
    case StageKind::kRegistryHit: return "fleet: registry hit";
    case StageKind::kRegistryEvict: return "fleet: registry eviction";
    case StageKind::kAutoscale: return "fleet: autoscale";
    case StageKind::kRecovery: return "storage: crash recovery";
    case StageKind::kScrub: return "storage: scrub pass";
    default: return "-";
    }
}

/* ---------------------------------------------------------------- */
/* SpanRing                                                         */
/* ---------------------------------------------------------------- */

SpanRing::SpanRing(std::size_t capacity)
{
    capacity = std::max<std::size_t>(capacity, 2);
    capacity = std::bit_ceil(capacity);
    slots_.resize(capacity);
    mask_ = capacity - 1;
}

bool
SpanRing::TryPush(const SpanRecord& record)
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    slots_[head & mask_] = record;
    head_.store(head + 1, std::memory_order_release);
    return true;
}

std::size_t
SpanRing::DrainInto(std::vector<SpanRecord>& out)
{
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t head = head_.load(std::memory_order_acquire);
    std::size_t n = static_cast<std::size_t>(head - tail);
    for (std::uint64_t i = tail; i != head; ++i) {
        out.push_back(slots_[i & mask_]);
    }
    tail_.store(head, std::memory_order_release);
    return n;
}

/* ---------------------------------------------------------------- */
/* SimClock                                                         */
/* ---------------------------------------------------------------- */

SimTime
SimClock::Now()
{
    return SimTime::Seconds(g_sim_now_s);
}

void
SimClock::Set(SimTime t)
{
    g_sim_now_s = t.seconds();
}

void
SimClock::Advance(SimTime dt)
{
    g_sim_now_s += dt.seconds();
}

/* ---------------------------------------------------------------- */
/* TraceCollector                                                   */
/* ---------------------------------------------------------------- */

TraceCollector&
TraceCollector::Get()
{
    /* Leaked on purpose: emitting threads may outlive main()'s static
     * destruction, and the registry must stay valid for them. */
    static TraceCollector* instance = new TraceCollector();
    return *instance;
}

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

void
TraceCollector::SetEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint32_t
TraceCollector::NewDomain()
{
    return next_domain_.fetch_add(1, std::memory_order_relaxed);
}

SpanContext
TraceCollector::NewRootContext(std::uint32_t domain)
{
    SpanContext ctx;
    ctx.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
    ctx.span_id = NewSpanId();
    ctx.domain = domain;
    return ctx;
}

std::uint64_t
TraceCollector::NewSpanId()
{
    return next_span_.fetch_add(1, std::memory_order_relaxed);
}

double
TraceCollector::NowWallMicros() const
{
    auto dt = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(dt).count();
}

SpanRing*
TraceCollector::LocalRing()
{
    thread_local std::shared_ptr<SpanRing> ring = [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        auto r = std::make_shared<SpanRing>(ring_capacity_);
        rings_.push_back(r);
        return r;
    }();
    return ring.get();
}

void
TraceCollector::Emit(const SpanRecord& record)
{
#ifdef DBSCORE_TRACE_DISABLED
    (void)record;
#else
    if (!enabled()) return;
    SpanRecord rec = record;
    if (rec.thread_id == 0) rec.thread_id = ThisThreadId();
    LocalRing()->TryPush(rec);
#endif
}

SpanContext
TraceCollector::FillAndEmit(SpanRecord& record, StageKind stage,
                            const char* name, SpanContext parent,
                            std::initializer_list<Attr> attrs)
{
    record.stage = stage;
    record.name = name;
    if (parent.valid()) {
        record.trace_id = parent.trace_id;
        record.parent_id = parent.span_id;
        record.domain = parent.domain;
    } else {
        record.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
    }
    record.span_id = NewSpanId();
    for (const Attr& a : attrs) record.AddAttr(a.key, a.value);
    Emit(record);
    return SpanContext{record.trace_id, record.span_id, record.domain};
}

SpanContext
TraceCollector::EmitSim(StageKind stage, const char* name, SpanContext parent,
                        SimTime sim_start, SimTime sim_dur,
                        std::initializer_list<Attr> attrs)
{
    if (!enabled()) return SpanContext{};
    SpanRecord record;
    record.sim_start_s = sim_start.seconds();
    record.sim_dur_s = sim_dur.seconds();
    return FillAndEmit(record, stage, name, parent, attrs);
}

SpanContext
TraceCollector::EmitStage(StageKind stage, const char* name, SimTime dur,
                          std::initializer_list<Attr> attrs)
{
    if (!enabled()) return SpanContext{};
    SimTime start = SimClock::Now();
    SimClock::Advance(dur);
    return EmitSim(stage, name, Current(), start, dur, attrs);
}

SpanContext
TraceCollector::EmitWall(StageKind stage, const char* name, SpanContext parent,
                         double wall_start_us, double wall_dur_us,
                         std::initializer_list<Attr> attrs)
{
    if (!enabled()) return SpanContext{};
    SpanRecord record;
    record.wall_start_us = wall_start_us;
    record.wall_dur_us = wall_dur_us;
    return FillAndEmit(record, stage, name, parent, attrs);
}

std::uint64_t
TraceCollector::AggKey(std::uint32_t domain, StageKind stage)
{
    return static_cast<std::uint64_t>(domain) * kNumStageKinds +
           static_cast<std::uint64_t>(stage);
}

void
TraceCollector::DrainLocked()
{
    drain_scratch_.clear();
    for (auto& ring : rings_) ring->DrainInto(drain_scratch_);
    for (const SpanRecord& r : drain_scratch_) {
        ++recorded_;
        retained_.push_back(r);
        if (retained_.size() > retained_capacity_) {
            retained_.pop_front();
            ++retained_evicted_;
        }
        StageAgg& agg = agg_[AggKey(r.domain, r.stage)];
        ++agg.count;
        if (r.has_sim()) {
            agg.sim_total_s += r.sim_dur_s;
            agg.sim_us.Add(r.sim_dur_s * 1e6);
        }
        if (r.has_wall()) {
            agg.wall_total_us += r.wall_dur_us;
            agg.wall_us.Add(r.wall_dur_us);
        }
    }
}

void
TraceCollector::Drain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
}

std::vector<SpanRecord>
TraceCollector::Spans()
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    return std::vector<SpanRecord>(retained_.begin(), retained_.end());
}

std::vector<SpanRecord>
TraceCollector::SpansForDomain(std::uint32_t domain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    std::vector<SpanRecord> out;
    for (const SpanRecord& r : retained_) {
        if (r.domain == domain) out.push_back(r);
    }
    return out;
}

TraceSummary
TraceCollector::BuildSummaryLocked(bool all_domains, std::uint32_t domain)
{
    /* Merge the per-(domain, stage) aggregates down to per-stage. */
    std::array<StageAgg, kNumStageKinds> merged;
    for (const auto& [key, agg] : agg_) {
        std::uint32_t agg_domain = static_cast<std::uint32_t>(key / kNumStageKinds);
        if (!all_domains && agg_domain != domain) continue;
        StageAgg& m = merged[key % kNumStageKinds];
        m.count += agg.count;
        m.sim_total_s += agg.sim_total_s;
        m.wall_total_us += agg.wall_total_us;
        m.sim_us.Merge(agg.sim_us);
        m.wall_us.Merge(agg.wall_us);
    }

    TraceSummary summary;
    for (int i = 0; i < kNumStageKinds; ++i) {
        const StageAgg& m = merged[i];
        if (m.count == 0) continue;
        StageSummary s;
        s.stage = static_cast<StageKind>(i);
        s.count = m.count;
        s.sim_total = SimTime::Seconds(m.sim_total_s);
        s.wall_total_us = m.wall_total_us;
        s.sim_p50_us = m.sim_us.Quantile(0.50);
        s.sim_p95_us = m.sim_us.Quantile(0.95);
        s.sim_p99_us = m.sim_us.Quantile(0.99);
        s.wall_p50_us = m.wall_us.Quantile(0.50);
        s.wall_p95_us = m.wall_us.Quantile(0.95);
        s.wall_p99_us = m.wall_us.Quantile(0.99);
        summary.stages.push_back(s);
    }
    summary.spans_recorded = recorded_;
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) dropped += ring->dropped();
    summary.spans_dropped = dropped;
    return summary;
}

TraceSummary
TraceCollector::Summary()
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    return BuildSummaryLocked(/*all_domains=*/true, 0);
}

TraceSummary
TraceCollector::SummaryForDomain(std::uint32_t domain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    return BuildSummaryLocked(/*all_domains=*/false, domain);
}

std::array<SimTime, kNumStageKinds>
TraceCollector::StageSimTotals(std::uint32_t domain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    std::array<SimTime, kNumStageKinds> totals{};
    for (const auto& [key, agg] : agg_) {
        if (static_cast<std::uint32_t>(key / kNumStageKinds) != domain) continue;
        totals[key % kNumStageKinds] += SimTime::Seconds(agg.sim_total_s);
    }
    return totals;
}

std::uint64_t
TraceCollector::TotalDropped()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) dropped += ring->dropped();
    return dropped;
}

void
TraceCollector::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    DrainLocked();
    retained_.clear();
    agg_.clear();
    recorded_ = 0;
    retained_evicted_ = 0;
    for (auto& ring : rings_) ring->ResetDropped();
}

void
TraceCollector::SetRingCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = capacity;
}

void
TraceCollector::SetRetainedCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    retained_capacity_ = std::max<std::size_t>(capacity, 1);
}

std::uint64_t
TraceCollector::RetainedEvicted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retained_evicted_;
}

SpanContext
TraceCollector::Current()
{
    if (g_span_stack.empty()) return SpanContext{};
    return g_span_stack.back();
}

/* ---------------------------------------------------------------- */
/* ScopedSpan                                                       */
/* ---------------------------------------------------------------- */

ScopedSpan::ScopedSpan(StageKind stage, const char* name)
{
    Open(stage, name, TraceCollector::Current());
}

ScopedSpan::ScopedSpan(StageKind stage, const char* name, SpanContext parent)
{
    Open(stage, name, parent);
}

void
ScopedSpan::Open(StageKind stage, const char* name, SpanContext parent)
{
#ifdef DBSCORE_TRACE_DISABLED
    (void)stage;
    (void)name;
    (void)parent;
#else
    TraceCollector& collector = TraceCollector::Get();
    if (!collector.enabled()) return;
    record_.stage = stage;
    record_.name = name;
    if (parent.valid()) {
        record_.trace_id = parent.trace_id;
        record_.parent_id = parent.span_id;
        record_.domain = parent.domain;
    } else {
        SpanContext root = collector.NewRootContext();
        record_.trace_id = root.trace_id;
        record_.span_id = root.span_id;
    }
    if (record_.span_id == 0) record_.span_id = collector.NewSpanId();
    record_.wall_start_us = collector.NowWallMicros();
    g_span_stack.push_back(context());
    active_ = true;
#endif
}

ScopedSpan::~ScopedSpan()
{
    if (!active_) return;
    TraceCollector& collector = TraceCollector::Get();
    record_.wall_dur_us = collector.NowWallMicros() - record_.wall_start_us;
    g_span_stack.pop_back();
    collector.Emit(record_);
}

SpanContext
ScopedSpan::context() const
{
    if (record_.span_id == 0) return SpanContext{};
    return SpanContext{record_.trace_id, record_.span_id, record_.domain};
}

}  // namespace dbscore::trace
