/**
 * @file
 * Load-driven worker-pool autoscaling for the fleet's devices.
 *
 * Each simulated device serves through a pool of modeled *lanes*
 * (parallel service horizons). The autoscaler grows a pool when its
 * backlog-per-lane or recent deadline-miss rate says queueing delay —
 * not device speed — dominates latency, and shrinks it when lanes sit
 * idle. The policy itself is a pure function of observed signals so it
 * can be unit-tested without threads; FleetService samples signals and
 * applies the returned delta under its scheduler lock.
 */
#ifndef DBSCORE_FLEET_AUTOSCALER_H
#define DBSCORE_FLEET_AUTOSCALER_H

#include <cstddef>

#include "dbscore/common/sim_time.h"

namespace dbscore::fleet {

/** Autoscaling policy knobs (per device). */
struct AutoscalerConfig {
    bool enabled = true;
    std::size_t min_lanes = 1;
    std::size_t max_lanes = 8;
    /** Scale up when queued batches per lane exceed this. */
    double scale_up_queue_per_lane = 4.0;
    /**
     * Scale up when the deadline-miss fraction over the sampling
     * window exceeds this (even with a shallow queue — slow lanes
     * miss deadlines without ever looking backlogged).
     */
    double scale_up_miss_rate = 0.10;
    /** Scale down when queued batches per lane fall below this. */
    double scale_down_queue_per_lane = 0.25;
    /** Minimum modeled time between changes on one device. */
    SimTime cooldown = SimTime::Millis(100.0);
};

/** What the scheduler observed about one device since the last check. */
struct DeviceLoadSignals {
    std::size_t lanes = 1;
    /** Batches waiting in the device queue right now. */
    std::size_t queue_depth = 0;
    /** Completions in the sampling window. */
    std::size_t window_completions = 0;
    /** Deadline misses among those completions. */
    std::size_t window_deadline_misses = 0;
    /** Modeled now, and when this device last changed lane count. */
    SimTime now;
    SimTime last_change;
};

/** +n lanes, -n lanes, or 0 (hold). */
struct AutoscaleDecision {
    int delta = 0;
    /** Static string naming the trigger ("backlog", "miss-rate", ...). */
    const char* reason = "hold";
};

/** The pure scaling policy; see file comment. */
AutoscaleDecision Autoscale(const AutoscalerConfig& config,
                            const DeviceLoadSignals& signals);

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_AUTOSCALER_H
