/**
 * @file
 * Per-tenant SLO classes and admission quotas.
 *
 * At fleet scale the question the paper asks per query — is the
 * offload worth its overheads? — becomes a resource-allocation
 * question: which tenant's request deserves the device first, and how
 * much load may one tenant impose on everyone else. dbscore::fleet
 * answers with three service classes (gold/silver/bronze), each
 * carrying a deadline, a weighted-fair-queueing weight, and a
 * token-bucket admission quota. The classes are deliberately coarse —
 * the point is differentiated tails under overload, not a general
 * QoS language.
 */
#ifndef DBSCORE_FLEET_SLO_H
#define DBSCORE_FLEET_SLO_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "dbscore/common/sim_time.h"

namespace dbscore::fleet {

/** Service class of a tenant. Order is priority order (gold first). */
enum class SloClass : std::uint8_t {
    kGold = 0,
    kSilver,
    kBronze,
};

inline constexpr int kNumSloClasses = 3;

/** Stable lowercase name, e.g. "gold". */
const char* SloClassName(SloClass cls);

/** Inverse of SloClassName (case-insensitive); nullopt if unknown. */
std::optional<SloClass> ParseSloClass(const std::string& name);

/** What one service class promises (and is allowed to consume). */
struct SloPolicy {
    /**
     * Deadline relative to arrival. A request whose modeled dispatch
     * would start past it expires; one that completes past it counts
     * as a deadline miss even though it was answered.
     */
    SimTime deadline = SimTime::Millis(500.0);
    /**
     * Weighted-fair-queueing weight: under backlog, a class receives
     * device capacity proportional to its weight.
     */
    double weight = 1.0;
    /**
     * Token-bucket admission quota per tenant of this class: requests
     * per modeled second, with at most @ref quota_burst banked. Zero
     * disables the quota (admission is bounded only by capacity).
     */
    double quota_rps = 0.0;
    /** Bucket capacity (burst allowance), in requests. */
    double quota_burst = 8.0;
};

/** Default gold/silver/bronze ladder used by FleetConfig. */
SloPolicy DefaultSloPolicy(SloClass cls);

/**
 * Deterministic token bucket over modeled time. Not thread-safe on its
 * own — FleetService serializes access per tenant under its admission
 * lock.
 */
class TokenBucket {
 public:
    TokenBucket() = default;
    TokenBucket(double rate_per_sec, double burst);

    /**
     * Refills for the modeled interval since the last call, then takes
     * @p tokens if available. Monotone in @p now: a stale (earlier)
     * stamp refills nothing.
     */
    bool TryTake(SimTime now, double tokens = 1.0);

    double level() const { return level_; }

 private:
    double rate_ = 0.0;
    double burst_ = 0.0;
    double level_ = 0.0;
    SimTime last_refill_;
};

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_SLO_H
