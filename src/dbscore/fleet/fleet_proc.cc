#include "dbscore/fleet/fleet_proc.h"

#include <cstdint>
#include <string>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/serve/request.h"

namespace dbscore::fleet {

namespace {

QueryResult
SpFleetTenant(FleetService& service, const ExecStatement& stmt)
{
    auto tenant = GetIntParam(stmt, "tenant");
    if (!tenant.has_value() || *tenant < 0) {
        throw InvalidArgument(
            "sp_fleet_tenant: @tenant must be a non-negative integer");
    }
    const std::string model = GetStringParam(stmt, "model");
    const std::string cls_name = GetStringParam(stmt, "class");
    auto cls = ParseSloClass(cls_name);
    if (!cls.has_value()) {
        throw InvalidArgument(
            "sp_fleet_tenant: @class must be gold, silver, or bronze");
    }
    service.RegisterTenant(static_cast<std::uint64_t>(*tenant), model, *cls);

    QueryResult result;
    result.columns = {"tenant", "model", "class"};
    result.rows.push_back({*tenant, model,
                           std::string(SloClassName(*cls))});
    result.message = StrFormat("tenant %lld -> %s (%s), %zu tenant(s)",
                               static_cast<long long>(*tenant),
                               model.c_str(), SloClassName(*cls),
                               service.NumTenants());
    return result;
}

QueryResult
SpFleetSlo(FleetService& service, const ExecStatement& stmt)
{
    const std::string cls_name = GetStringParam(stmt, "class");
    auto cls = ParseSloClass(cls_name);
    if (!cls.has_value()) {
        throw InvalidArgument(
            "sp_fleet_slo: @class must be gold, silver, or bronze");
    }
    SloPolicy policy = service.config().slo[static_cast<int>(*cls)];
    if (auto deadline = GetIntParam(stmt, "deadline_ms");
        deadline.has_value()) {
        if (*deadline <= 0) {
            throw InvalidArgument(
                "sp_fleet_slo: @deadline_ms must be positive");
        }
        policy.deadline = SimTime::Millis(static_cast<double>(*deadline));
    }
    if (auto weight = GetDoubleParam(stmt, "weight"); weight.has_value()) {
        policy.weight = *weight;
    }
    if (auto quota = GetDoubleParam(stmt, "quota_rps"); quota.has_value()) {
        policy.quota_rps = *quota;
    }
    if (auto burst = GetDoubleParam(stmt, "quota_burst");
        burst.has_value()) {
        policy.quota_burst = *burst;
    }
    service.SetSloPolicy(*cls, policy);

    QueryResult result;
    result.columns = {"class", "deadline_ms", "weight", "quota_rps",
                      "quota_burst"};
    result.rows.push_back({std::string(SloClassName(*cls)),
                           policy.deadline.millis(), policy.weight,
                           policy.quota_rps, policy.quota_burst});
    result.message = StrFormat("%s SLO updated", SloClassName(*cls));
    return result;
}

QueryResult
SpFleetScore(FleetService& service, const ExecStatement& stmt)
{
    auto tenant = GetIntParam(stmt, "tenant");
    if (!tenant.has_value() || *tenant < 0) {
        throw InvalidArgument(
            "sp_fleet_score: @tenant must be a non-negative integer");
    }
    FleetRequest request;
    request.tenant_id = static_cast<std::uint64_t>(*tenant);
    if (auto rows = GetIntParam(stmt, "rows"); rows.has_value()) {
        if (*rows <= 0) {
            throw InvalidArgument(
                "sp_fleet_score: @rows must be a positive integer");
        }
        request.num_rows = static_cast<std::size_t>(*rows);
    }

    FleetReply reply = service.ScoreSync(std::move(request));
    if (reply.status == serve::RequestStatus::kRejected) {
        throw InvalidArgument("sp_fleet_score: rejected: " + reply.error);
    }

    QueryResult result;
    result.columns = {"status",   "class",         "device",
                      "backend",  "latency_ms",    "attempts",
                      "degraded", "deadline_miss", "registry_miss"};
    static const char* kDeviceNames[3] = {"cpu", "gpu", "fpga"};
    result.rows.push_back(
        {std::string(serve::RequestStatusName(reply.status)),
         std::string(SloClassName(reply.slo)),
         std::string(
             kDeviceNames[static_cast<int>(reply.device)]),
         std::string(reply.status == serve::RequestStatus::kCompleted
                         ? BackendName(reply.backend)
                         : "-"),
         reply.Latency().millis(),
         static_cast<std::int64_t>(reply.attempts),
         static_cast<std::int64_t>(reply.degraded ? 1 : 0),
         static_cast<std::int64_t>(reply.deadline_miss ? 1 : 0),
         static_cast<std::int64_t>(reply.registry_miss ? 1 : 0)});
    result.modeled_time = reply.Latency();
    result.message = StrFormat(
        "%s (%s) in %s (modeled), %zu attempt(s)%s%s",
        serve::RequestStatusName(reply.status), SloClassName(reply.slo),
        reply.Latency().ToString().c_str(), reply.attempts,
        reply.degraded ? ", degraded to CPU" : "",
        reply.registry_miss ? ", registry miss" : "");
    return result;
}

QueryResult
SpFleetStats(FleetService& service, const ExecStatement& stmt)
{
    const bool reset = GetIntParam(stmt, "reset").value_or(0) != 0;
    FleetSnapshot snap = service.Stats();
    QueryResult result;
    result.columns = {"metric", "value"};
    auto add = [&result](const std::string& metric, double value) {
        result.rows.push_back({metric, value});
    };
    add("tenants", static_cast<double>(snap.tenants));
    add("models", static_cast<double>(snap.models));
    add("submitted", static_cast<double>(snap.Submitted()));
    add("completed", static_cast<double>(snap.Completed()));
    add("goodput_rps", snap.GoodputRps());
    add("registry_hit_rate", snap.registry.HitRate());
    add("registry_resident", static_cast<double>(
                                 snap.registry.resident_models));
    add("registry_resident_bytes",
        static_cast<double>(snap.registry.resident_bytes));
    add("registry_evictions", static_cast<double>(
                                  snap.registry.evictions));
    add("registry_rebuilds", static_cast<double>(snap.registry.rebuilds));
    add("registry_build_ms", snap.registry.build_cost_total.millis());
    for (int c = 0; c < kNumSloClasses; ++c) {
        const ClassSnapshot& cls = snap.classes[c];
        const char* name = SloClassName(static_cast<SloClass>(c));
        add(StrFormat("%s_submitted", name),
            static_cast<double>(cls.submitted));
        add(StrFormat("%s_completed", name),
            static_cast<double>(cls.completed));
        add(StrFormat("%s_rejected_quota", name),
            static_cast<double>(cls.rejected_quota));
        add(StrFormat("%s_rejected_capacity", name),
            static_cast<double>(cls.rejected_capacity));
        add(StrFormat("%s_expired", name),
            static_cast<double>(cls.expired));
        add(StrFormat("%s_failed", name), static_cast<double>(cls.failed));
        add(StrFormat("%s_degraded", name),
            static_cast<double>(cls.degraded));
        add(StrFormat("%s_deadline_miss_rate", name), cls.MissRate());
        add(StrFormat("%s_latency_p50_ms", name), cls.latency.p50 * 1e3);
        add(StrFormat("%s_latency_p99_ms", name), cls.latency.p99 * 1e3);
    }
    static const char* kDeviceNames[3] = {"cpu", "gpu", "fpga"};
    for (int d = 0; d < 3; ++d) {
        const FleetDeviceSnapshot& dev = snap.devices[d];
        add(StrFormat("%s_dispatches", kDeviceNames[d]),
            static_cast<double>(dev.dispatches));
        add(StrFormat("%s_lanes", kDeviceNames[d]),
            static_cast<double>(dev.lanes));
        add(StrFormat("%s_scale_ups", kDeviceNames[d]),
            static_cast<double>(dev.scale_ups));
        add(StrFormat("%s_scale_downs", kDeviceNames[d]),
            static_cast<double>(dev.scale_downs));
        add(StrFormat("%s_faults", kDeviceNames[d]),
            static_cast<double>(dev.faults));
        add(StrFormat("%s_fallbacks", kDeviceNames[d]),
            static_cast<double>(dev.fallbacks));
        add(StrFormat("%s_breaker_opens", kDeviceNames[d]),
            static_cast<double>(dev.breaker_opens));
        result.rows.push_back(
            {StrFormat("%s_breaker", kDeviceNames[d]),
             std::string(serve::BreakerStateName(dev.breaker))});
    }
    if (reset) {
        service.ResetStats();
    }
    result.message = StrFormat("%zu metrics%s", result.rows.size(),
                               reset ? ", counters reset" : "");
    return result;
}

}  // namespace

void
RegisterFleetProcedures(QueryEngine& engine, FleetService& service)
{
    engine.RegisterProcedure(
        "sp_fleet_tenant",
        [&service](QueryEngine&, const ExecStatement& stmt) {
            return SpFleetTenant(service, stmt);
        });
    engine.RegisterProcedure(
        "sp_fleet_slo",
        [&service](QueryEngine&, const ExecStatement& stmt) {
            return SpFleetSlo(service, stmt);
        });
    engine.RegisterProcedure(
        "sp_fleet_score",
        [&service](QueryEngine&, const ExecStatement& stmt) {
            return SpFleetScore(service, stmt);
        });
    engine.RegisterProcedure(
        "sp_fleet_stats",
        [&service](QueryEngine&, const ExecStatement& stmt) {
            return SpFleetStats(service, stmt);
        });
}

}  // namespace dbscore::fleet
