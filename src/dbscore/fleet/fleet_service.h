/**
 * @file
 * Multi-tenant fleet serving: registry + SLO scheduling + autoscaling.
 *
 * FleetService is the layer above ScoringService's single-tenant
 * front door: thousands of tenants, each bound to a model and an SLO
 * class, share three simulated devices. The pieces:
 *
 *  - **ModelRegistry** keeps hot models' kernels warm under a byte
 *    budget; a request for an evicted model pays the modeled rebuild
 *    (the paper's model-deserialization overhead, amortized only as
 *    well as the cache lets it be).
 *  - **Admission** charges each tenant's token bucket (per-class
 *    quota) and bounds the central queue; rejects are immediate
 *    backpressure, split by cause (quota vs capacity).
 *  - **Weighted fair queueing** orders the central backlog so gold
 *    outruns bronze under overload without starving it.
 *  - **Placement** picks the earliest-finishing device lane from each
 *    model's per-backend estimates, skipping open breakers; faulted
 *    dispatches retry with backoff and degrade to CPU, exactly the
 *    serve-layer discipline.
 *  - **Autoscaling** grows and shrinks each device's modeled lane
 *    pool from queue-depth and deadline-miss signals.
 *
 * Concurrency vs. time follows the house rule: machinery real (one
 * scheduler thread, one worker thread per device class, real CVs),
 * latencies modeled (SimTime lane horizons), results machine-
 * independent. Predictions are always computed through the registry's
 * cached kernel, so a reply is bit-identical whether it was served
 * warm, re-warmed after eviction, or degraded to the CPU path.
 */
#ifndef DBSCORE_FLEET_FLEET_SERVICE_H
#define DBSCORE_FLEET_FLEET_SERVICE_H

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbscore/common/thread_pool.h"
#include "dbscore/core/scheduler.h"
#include "dbscore/dbms/external_runtime.h"
#include "dbscore/fleet/autoscaler.h"
#include "dbscore/fleet/fleet_stats.h"
#include "dbscore/fleet/model_registry.h"
#include "dbscore/fleet/slo.h"
#include "dbscore/fleet/wfq.h"
#include "dbscore/serve/request.h"
#include "dbscore/serve/scoring_service.h"

namespace dbscore::fleet {

/** Fleet configuration. */
struct FleetConfig {
    RegistryConfig registry;
    /** Per-class SLO ladder; defaults to DefaultSloPolicy. */
    std::array<SloPolicy, kNumSloClasses> slo = {
        DefaultSloPolicy(SloClass::kGold),
        DefaultSloPolicy(SloClass::kSilver),
        DefaultSloPolicy(SloClass::kBronze),
    };
    AutoscalerConfig autoscaler;
    serve::RetryPolicy retry;
    serve::BreakerPolicy breaker;
    /** Stage costs of each device worker's external runtime. */
    ExternalRuntimeParams runtime_params;
    /** Central WFQ capacity; past it admissions reject (capacity). */
    std::size_t queue_capacity = 4096;
    /** Modeled lanes each device starts with. */
    std::size_t initial_lanes = 2;
    /**
     * Dispatch window: a device accepts up to lanes × this many
     * undispatched requests. The bound is what lets a WFQ backlog
     * form centrally (where class weights matter) instead of FIFO
     * piling up on devices (where they no longer do).
     */
    double window_per_lane = 2.0;
    /** Degrade to CPU after exhausted accelerator retries. */
    bool cpu_fallback = true;
    /**
     * Start with dispatch gated: requests admit and queue but nothing
     * dispatches until ReleaseDispatch(). Lets benches and tests load
     * the weighted fair queue to a known backlog first, making the
     * gold/bronze differentiation deterministic.
     */
    bool hold_dispatch = false;
};

/** One tenant-scoped scoring request. */
struct FleetRequest {
    std::uint64_t tenant_id = 0;
    /** Modeled batch size (used for costing even when rows is empty). */
    std::size_t num_rows = 1;
    /**
     * Optional row-major payload (num_rows × the model's columns).
     * When present, the reply carries functional predictions.
     */
    std::vector<float> rows;
    /** Modeled arrival; unset = stamped with the fleet clock. */
    std::optional<SimTime> arrival;
};

/** Terminal reply for one fleet request. */
struct FleetReply {
    serve::RequestStatus status = serve::RequestStatus::kRejected;
    SloClass slo = SloClass::kBronze;
    /** Device that produced the answer (valid when completed). */
    DeviceClass device = DeviceClass::kCpu;
    BackendKind backend = BackendKind::kCpuSklearn;
    /** Served by the CPU degradation path after accelerator faults. */
    bool degraded = false;
    /** Completed, but after the class deadline. */
    bool deadline_miss = false;
    /** The dispatch that answered re-built an evicted/cold model. */
    bool registry_miss = false;
    std::size_t attempts = 0;
    SimTime arrival;
    SimTime finish;
    std::vector<float> predictions;
    std::string error;

    SimTime Latency() const { return finish - arrival; }
};

/** The multi-tenant fleet front door; see file comment. */
class FleetService {
 public:
    FleetService(const HardwareProfile& profile, FleetConfig config);
    ~FleetService();

    FleetService(const FleetService&) = delete;
    FleetService& operator=(const FleetService&) = delete;

    /**
     * Registers a model spec with the registry (cheap; nothing is
     * compiled until a request needs it). Callable any time.
     */
    void RegisterModel(const std::string& id, const TreeEnsemble& model,
                       const ModelStats& stats);

    /**
     * Binds @p tenant_id to @p model_id with service class @p cls.
     * Callable any time. @throws NotFound on an unknown model,
     * InvalidArgument on a duplicate tenant.
     */
    void RegisterTenant(std::uint64_t tenant_id, const std::string& model_id,
                        SloClass cls);

    std::size_t NumTenants() const;

    /**
     * Replaces one class's SLO policy. Must precede Start(). Tenants
     * already registered keep the token bucket built from the policy
     * that was current at their RegisterTenant call; register tenants
     * after their class policy is final (or set it via FleetConfig).
     */
    void SetSloPolicy(SloClass cls, const SloPolicy& policy);

    /** Launches the scheduler and device worker threads. */
    void Start();

    /** Drains in-flight work, then stops every thread. Idempotent. */
    void Stop();

    /** Blocks until every submitted request reached a terminal state. */
    void Drain();

    bool running() const;

    /**
     * Opens the dispatch gate (no-op unless config.hold_dispatch).
     * Admission is never gated — only dispatch.
     */
    void ReleaseDispatch();

    /**
     * Submits one request; the future resolves at its terminal state.
     * Unknown tenants, quota breaches, and a full central queue
     * reject immediately. Thread-safe.
     */
    std::future<FleetReply> Submit(FleetRequest request);

    /** Submit + wait convenience. */
    FleetReply ScoreSync(FleetRequest request);

    /** Metrics snapshot (counters + registry), callable while running. */
    FleetSnapshot Stats() const;

    /** Zeroes counters for a fresh measurement phase. */
    void ResetStats();

    /** Evicts every resident model (tests: force the re-warm tax). */
    void EvictAllModels();

    const ModelRegistry& registry() const { return registry_; }
    const FleetConfig& config() const { return config_; }
    std::uint32_t trace_domain() const { return trace_domain_; }

 private:
    struct Pending {
        FleetRequest request;
        SloClass cls = SloClass::kBronze;
        std::uint32_t model_idx = 0;
        SimTime arrival;
        trace::SpanContext trace;
        std::promise<FleetReply> promise;
    };
    using PendingPtr = std::unique_ptr<Pending>;

    /** A placed request waiting on one device's queue. */
    struct DeviceWork {
        PendingPtr pending;
        WarmModelPtr model;
        BackendKind kind = BackendKind::kCpuSklearn;
        /** Earliest modeled dispatch (arrival + any registry build). */
        SimTime ready;
        bool registry_miss = false;
        /**
         * Lane reserved and modeled start/first-attempt costs computed
         * by the scheduler at dispatch time. Charging the lane horizon
         * up front keeps modeled placement (and thus latencies)
         * independent of how fast real worker threads drain queues;
         * workers only top the lane up when faults stretch the actual
         * finish past the reservation.
         */
        std::size_t lane = 0;
        SimTime start;
        InvocationCost invocation;
        SimTime model_pre;
        SimTime transfer_to;
        SimTime transfer_from;
        SimTime data_pre;
        OffloadBreakdown scoring;
    };

    /** One simulated device: queue, modeled lanes, breaker. */
    struct Device {
        std::deque<DeviceWork> queue;
        std::mutex mutex;
        std::condition_variable cv;
        /** Modeled service horizons, one per lane. */
        std::vector<SimTime> lanes;
        std::unique_ptr<ExternalScriptRuntime> runtime;
        bool stop = false;
        /** In-flight dispatches (popped, not yet settled). */
        std::size_t inflight = 0;
        serve::BreakerState breaker = serve::BreakerState::kClosed;
        std::size_t consecutive_failures = 0;
        SimTime breaker_open_until;
        std::uint64_t attempt_seq = 0;
        /** Autoscaler sampling window. */
        std::size_t window_completions = 0;
        std::size_t window_deadline_misses = 0;
        SimTime last_scale_change;
    };

    void SchedulerLoop();
    void WorkerLoop(int device_index);
    void ExecuteOne(Device& device, DeviceClass device_class,
                    DeviceWork work);
    void MaybeAutoscale(SimTime now, std::size_t central_backlog);
    SimTime NextBackoff(Device& device, int device_index, std::size_t retry);
    void BreakerOnFault(Device& device, DeviceClass device_class, SimTime now,
                        const trace::SpanContext& parent);
    void BreakerOnSuccess(Device& device, DeviceClass device_class,
                          SimTime now, const trace::SpanContext& parent);
    /** Earliest-free lane's horizon. Caller holds device.mutex. */
    static SimTime MinLaneLocked(const Device& device);
    void SettleOne();

    HardwareProfile profile_;
    FleetConfig config_;
    std::uint32_t trace_domain_;
    ModelRegistry registry_;
    FleetStats stats_;

    /** Compact per-tenant record; sized for 10^6-tenant fleets. */
    struct TenantState {
        std::uint32_t model_idx = 0;
        SloClass cls = SloClass::kBronze;
        TokenBucket bucket;
    };

    mutable std::mutex admission_mutex_;
    std::condition_variable scheduler_cv_;
    /** Built at Start() so SetSloPolicy weights take effect. */
    std::unique_ptr<WeightedFairQueue<PendingPtr>> wfq_;
    std::unordered_map<std::uint64_t, TenantState> tenants_;
    std::vector<std::string> model_ids_;
    std::unordered_map<std::string, std::uint32_t> model_index_;
    bool running_ = false;
    bool stop_requested_ = false;
    bool dispatch_held_ = false;
    /** Fleet modeled clock: max arrival stamped so far. */
    SimTime modeled_clock_;
    std::size_t submitted_ = 0;

    mutable std::mutex settle_mutex_;
    std::condition_variable settle_cv_;
    std::size_t settled_ = 0;

    std::array<Device, 3> devices_;
    std::unique_ptr<ThreadPool> threads_;
};

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_FLEET_SERVICE_H
