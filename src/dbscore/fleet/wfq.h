/**
 * @file
 * Start-time/self-clocked weighted fair queueing over SLO classes.
 *
 * The fleet scheduler must hand device capacity to gold tenants first
 * without starving bronze. Strict priority starves; FIFO ignores class.
 * SCFQ (self-clocked fair queueing, Golestani '94) gets proportional
 * sharing with O(1) virtual-time bookkeeping: each enqueued request is
 * stamped with a virtual *finish tag* `max(V, last_finish[class]) +
 * cost / weight`, the dequeue always serves the smallest tag, and the
 * virtual clock V advances to the tag just served. Under sustained
 * backlog each class receives service proportional to its weight; an
 * idle class's backlog never builds "credit" (the max() with V
 * forgets idle periods), so a burst after idleness cannot lock out
 * everyone else.
 *
 * Single-consumer, externally locked: FleetService calls this under
 * its scheduler mutex, matching the serve layer's locking idiom.
 */
#ifndef DBSCORE_FLEET_WFQ_H
#define DBSCORE_FLEET_WFQ_H

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/fleet/slo.h"

namespace dbscore::fleet {

/** Weighted fair queue of T over the three SLO classes. */
template <typename T>
class WeightedFairQueue {
 public:
    /** @param weights per-class service weights (must be positive). */
    explicit WeightedFairQueue(
        const std::array<double, kNumSloClasses>& weights)
        : weights_(weights)
    {
        for (double w : weights_) {
            DBS_ASSERT_MSG(w > 0.0, "wfq: weights must be positive");
        }
    }

    /**
     * Enqueues @p item in @p cls's FIFO with @p cost units of demanded
     * service (1.0 = one request-sized quantum).
     */
    void
    Push(SloClass cls, T item, double cost = 1.0)
    {
        auto& q = queues_[Index(cls)];
        double& last = last_finish_[Index(cls)];
        const double start = last > virtual_time_ ? last : virtual_time_;
        const double finish = start + cost / weights_[Index(cls)];
        last = finish;
        q.push_back(Entry{finish, std::move(item)});
        ++size_;
    }

    /**
     * Removes and returns the item with the smallest finish tag
     * (FIFO within a class), advancing the virtual clock to that tag.
     * nullopt when empty.
     */
    std::optional<T>
    Pop()
    {
        int best = -1;
        for (int c = 0; c < kNumSloClasses; ++c) {
            if (queues_[c].empty()) {
                continue;
            }
            if (best < 0 ||
                queues_[c].front().finish < queues_[best].front().finish) {
                best = c;
            }
        }
        if (best < 0) {
            return std::nullopt;
        }
        Entry entry = std::move(queues_[best].front());
        queues_[best].pop_front();
        --size_;
        virtual_time_ = entry.finish;
        return std::move(entry.item);
    }

    /** Which class Pop() would serve next; nullopt when empty. */
    std::optional<SloClass>
    PeekClass() const
    {
        int best = -1;
        for (int c = 0; c < kNumSloClasses; ++c) {
            if (queues_[c].empty()) {
                continue;
            }
            if (best < 0 ||
                queues_[c].front().finish < queues_[best].front().finish) {
                best = c;
            }
        }
        if (best < 0) {
            return std::nullopt;
        }
        return static_cast<SloClass>(best);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    std::size_t
    ClassDepth(SloClass cls) const
    {
        return queues_[Index(cls)].size();
    }

 private:
    struct Entry {
        double finish = 0.0;
        T item;
    };

    static int Index(SloClass cls) { return static_cast<int>(cls); }

    std::array<double, kNumSloClasses> weights_;
    std::array<std::deque<Entry>, kNumSloClasses> queues_;
    std::array<double, kNumSloClasses> last_finish_{};
    double virtual_time_ = 0.0;
    std::size_t size_ = 0;
};

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_WFQ_H
