/**
 * @file
 * Fleet-wide serving metrics, sliced per SLO class and per device.
 *
 * Mirrors serve::ServiceStats but answers the fleet questions: did
 * gold's tail stay ahead of bronze's under overload (per-class latency
 * and deadline-miss counters), how often did the registry re-pay model
 * builds, and what did the autoscaler do. Thread-safe accumulator;
 * Snapshot() is a consistent copy under one lock; Reset() rebaselines
 * for per-phase measurements.
 */
#ifndef DBSCORE_FLEET_FLEET_STATS_H
#define DBSCORE_FLEET_FLEET_STATS_H

#include <array>
#include <cstddef>
#include <mutex>
#include <string>

#include "dbscore/common/stats.h"
#include "dbscore/engines/scoring_engine.h"
#include "dbscore/fleet/model_registry.h"
#include "dbscore/fleet/slo.h"
#include "dbscore/serve/service_stats.h"

namespace dbscore::fleet {

/** One SLO class's terminal-state and latency accounting. */
struct ClassSnapshot {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    /** Rejections split by cause. */
    std::size_t rejected_quota = 0;
    std::size_t rejected_capacity = 0;
    std::size_t completed = 0;
    std::size_t expired = 0;
    std::size_t failed = 0;
    /** Completed answers produced by the CPU degradation path. */
    std::size_t degraded = 0;
    /** Completed answers that finished past the class deadline. */
    std::size_t deadline_misses = 0;
    /** End-to-end modeled latency of completed requests, seconds. */
    serve::DistSummary latency;

    /** Deadline misses over completed answers (0 when none). */
    double MissRate() const;
    /** Completed strictly within deadline (the bench's goodput). */
    std::size_t Goodput() const;
};

/** One device's fleet-side dispatch accounting. */
struct FleetDeviceSnapshot {
    std::size_t dispatches = 0;
    std::size_t requests = 0;
    std::size_t rows = 0;
    /** Modeled busy time summed across lanes. */
    SimTime busy;
    std::size_t faults = 0;
    std::size_t retries = 0;
    /** Dispatches re-routed to CPU (breaker or final-retry fallback). */
    std::size_t fallbacks = 0;
    std::size_t breaker_opens = 0;
    serve::BreakerState breaker = serve::BreakerState::kClosed;
    /** Current modeled lane count and autoscale activity. */
    std::size_t lanes = 0;
    std::size_t scale_ups = 0;
    std::size_t scale_downs = 0;
};

/** A consistent copy of every fleet counter at one instant. */
struct FleetSnapshot {
    std::array<ClassSnapshot, kNumSloClasses> classes;
    /** Indexed by DeviceClass (kCpu, kGpu, kFpga). */
    std::array<FleetDeviceSnapshot, 3> devices;
    RegistrySnapshot registry;

    std::size_t tenants = 0;
    std::size_t models = 0;

    /** Earliest arrival and latest completion seen (modeled). */
    SimTime first_arrival;
    SimTime last_finish;

    std::size_t Submitted() const;
    std::size_t Completed() const;
    std::size_t Settled() const;
    /** Completed-within-deadline per modeled second over the makespan. */
    double GoodputRps() const;
    SimTime Makespan() const;

    /** Multi-line human-readable rendering. */
    std::string ToString() const;
};

/** Thread-safe accumulator behind FleetSnapshot. */
class FleetStats {
 public:
    void RecordSubmitted(SloClass cls);
    void RecordAdmitted(SloClass cls);
    void RecordRejectedQuota(SloClass cls);
    void RecordRejectedCapacity(SloClass cls);
    void RecordExpired(SloClass cls, SimTime arrival, SimTime finish);
    void RecordFailed(SloClass cls, SimTime arrival, SimTime finish);
    void RecordCompleted(SloClass cls, SimTime arrival, SimTime finish,
                         bool degraded, bool deadline_miss);

    void RecordDispatch(DeviceClass device, std::size_t num_requests,
                        std::size_t num_rows, SimTime busy);
    void RecordFault(DeviceClass device);
    void RecordRetry(DeviceClass device);
    void RecordFallback(DeviceClass device);
    void RecordBreakerOpen(DeviceClass device);
    void SetBreakerState(DeviceClass device, serve::BreakerState state);
    void SetLanes(DeviceClass device, std::size_t lanes, int delta);

    /** Requests in a terminal state (completed+rejected+expired+failed). */
    std::size_t Settled() const;

    FleetSnapshot Snapshot() const;

    /**
     * Zeroes every counter and distribution; breaker states and lane
     * counts (current device facts, not history) survive.
     */
    void Reset();

 private:
    struct ClassAccum {
        ClassSnapshot totals;
        RunningStats latency_stats;
        QuantileSketch latency_sketch;
    };

    mutable std::mutex mutex_;
    FleetSnapshot totals_;
    std::array<ClassAccum, kNumSloClasses> classes_;
    bool any_arrival_ = false;

    void TouchSpanLocked(SimTime arrival, SimTime finish);
};

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_FLEET_STATS_H
