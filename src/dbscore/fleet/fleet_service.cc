#include "dbscore/fleet/fleet_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"
#include "dbscore/engines/scoring_engine.h"
#include "dbscore/fault/fault.h"

namespace dbscore::fleet {

using serve::BreakerState;
using serve::RequestStatus;
using trace::ScopedSpan;
using trace::SpanContext;
using trace::StageKind;
using trace::TraceCollector;

namespace {

/**
 * Modeled engine time a faulted offload attempt consumed — identical
 * to the serve layer's accounting (see scoring_service.cc): every
 * breakdown component completed before the site that failed.
 */
SimTime
FaultedOffloadCost(const OffloadBreakdown& b, DeviceClass device_class,
                   std::size_t site_index)
{
    SimTime t = b.preprocessing + b.input_transfer;
    if (site_index == 0) {
        return t;
    }
    t += b.setup;
    if (site_index == 1) {
        return t;
    }
    if (device_class == DeviceClass::kFpga) {
        t += b.compute + b.completion_signal;
        if (site_index == 2) {
            return t;
        }
    } else {
        t += b.compute + b.completion_signal;
    }
    return t + b.result_transfer;
}

}  // namespace

FleetService::FleetService(const HardwareProfile& profile, FleetConfig config)
    : profile_(profile),
      config_(std::move(config)),
      trace_domain_(TraceCollector::Get().NewDomain()),
      registry_(profile, config_.registry)
{
    if (config_.queue_capacity == 0) {
        throw InvalidArgument("fleet: zero queue capacity");
    }
    if (config_.initial_lanes == 0) {
        throw InvalidArgument("fleet: zero initial lanes");
    }
    if (config_.window_per_lane < 1.0) {
        throw InvalidArgument("fleet: window_per_lane must be >= 1");
    }
    dispatch_held_ = config_.hold_dispatch;
    const std::size_t lanes = std::max(
        config_.autoscaler.enabled ? config_.autoscaler.min_lanes
                                   : config_.initial_lanes,
        config_.initial_lanes);
    for (Device& d : devices_) {
        d.runtime =
            std::make_unique<ExternalScriptRuntime>(config_.runtime_params);
        d.lanes.assign(lanes, SimTime());
    }
    for (int d = 0; d < 3; ++d) {
        stats_.SetLanes(static_cast<DeviceClass>(d), lanes, 0);
    }
}

FleetService::~FleetService()
{
    Stop();
}

void
FleetService::RegisterModel(const std::string& id, const TreeEnsemble& model,
                            const ModelStats& stats)
{
    registry_.RegisterModel(id, model, stats);
    std::lock_guard<std::mutex> lock(admission_mutex_);
    model_index_.emplace(id, static_cast<std::uint32_t>(model_ids_.size()));
    model_ids_.push_back(id);
}

void
FleetService::RegisterTenant(std::uint64_t tenant_id,
                             const std::string& model_id, SloClass cls)
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    auto model_it = model_index_.find(model_id);
    if (model_it == model_index_.end()) {
        throw NotFound("fleet: unknown model: " + model_id);
    }
    if (tenants_.count(tenant_id) != 0) {
        throw InvalidArgument("fleet: duplicate tenant id");
    }
    const SloPolicy& policy = config_.slo[static_cast<int>(cls)];
    TenantState state;
    state.model_idx = model_it->second;
    state.cls = cls;
    state.bucket = TokenBucket(policy.quota_rps, policy.quota_burst);
    tenants_.emplace(tenant_id, std::move(state));
}

std::size_t
FleetService::NumTenants() const
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    return tenants_.size();
}

void
FleetService::SetSloPolicy(SloClass cls, const SloPolicy& policy)
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (running_) {
        throw InvalidArgument("fleet: SetSloPolicy while running");
    }
    if (policy.weight <= 0.0) {
        throw InvalidArgument("fleet: SLO weight must be positive");
    }
    config_.slo[static_cast<int>(cls)] = policy;
}

void
FleetService::Start()
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (running_) {
        return;
    }
    if (stop_requested_ || threads_ != nullptr) {
        throw InvalidArgument("fleet: cannot restart a stopped service");
    }
    wfq_ = std::make_unique<WeightedFairQueue<PendingPtr>>(
        std::array<double, kNumSloClasses>{
            config_.slo[0].weight, config_.slo[1].weight,
            config_.slo[2].weight});
    running_ = true;
    threads_ = std::make_unique<ThreadPool>(4);
    threads_->Submit([this] { SchedulerLoop(); });
    for (int d = 0; d < 3; ++d) {
        threads_->Submit([this, d] { WorkerLoop(d); });
    }
}

void
FleetService::Stop()
{
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        if (!running_ && threads_ == nullptr) {
            return;
        }
        stop_requested_ = true;
        // A held gate must not outlive Stop: the scheduler drains the
        // central queue on its way out.
        dispatch_held_ = false;
    }
    scheduler_cv_.notify_all();
    threads_.reset();  // joins scheduler + workers
    std::lock_guard<std::mutex> lock(admission_mutex_);
    running_ = false;
}

void
FleetService::Drain()
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        target = submitted_;
    }
    std::unique_lock<std::mutex> lock(settle_mutex_);
    settle_cv_.wait(lock, [&] { return settled_ >= target; });
}

bool
FleetService::running() const
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    return running_;
}

void
FleetService::ReleaseDispatch()
{
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        dispatch_held_ = false;
    }
    scheduler_cv_.notify_all();
}

std::future<FleetReply>
FleetService::Submit(FleetRequest request)
{
    TraceCollector& tracer = TraceCollector::Get();
    std::promise<FleetReply> promise;
    std::future<FleetReply> future = promise.get_future();

    std::unique_lock<std::mutex> lock(admission_mutex_);
    const SimTime arrival = request.arrival.value_or(modeled_clock_);
    modeled_clock_ = Max(modeled_clock_, arrival);

    auto reject = [&](SloClass cls, std::string why) {
        FleetReply reply;
        reply.status = RequestStatus::kRejected;
        reply.slo = cls;
        reply.arrival = arrival;
        reply.finish = arrival;
        reply.error = std::move(why);
        lock.unlock();
        promise.set_value(std::move(reply));
    };

    auto tenant_it = tenants_.find(request.tenant_id);
    if (tenant_it == tenants_.end()) {
        reject(SloClass::kBronze, "fleet: unknown tenant");
        return future;
    }
    TenantState& tenant = tenant_it->second;
    const SloClass cls = tenant.cls;
    stats_.RecordSubmitted(cls);

    if (!running_ || stop_requested_) {
        stats_.RecordRejectedCapacity(cls);
        reject(cls, "fleet: service not running");
        return future;
    }
    if (!tenant.bucket.TryTake(arrival)) {
        stats_.RecordRejectedQuota(cls);
        reject(cls, "fleet: tenant quota exceeded");
        return future;
    }
    if (wfq_->size() >= config_.queue_capacity) {
        stats_.RecordRejectedCapacity(cls);
        reject(cls, "fleet: central queue full");
        return future;
    }

    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->cls = cls;
    pending->model_idx = tenant.model_idx;
    pending->arrival = arrival;
    pending->trace = tracer.NewRootContext(trace_domain_);
    pending->promise = std::move(promise);
    tracer.EmitSim(StageKind::kAdmission, "fleet-admit", pending->trace,
                   arrival, SimTime(),
                   {{"class", static_cast<double>(cls)}});

    stats_.RecordAdmitted(cls);
    ++submitted_;
    wfq_->Push(cls, std::move(pending));
    lock.unlock();
    scheduler_cv_.notify_one();
    return future;
}

FleetReply
FleetService::ScoreSync(FleetRequest request)
{
    return Submit(std::move(request)).get();
}

FleetSnapshot
FleetService::Stats() const
{
    FleetSnapshot snap = stats_.Snapshot();
    snap.registry = registry_.Snapshot();
    std::lock_guard<std::mutex> lock(admission_mutex_);
    snap.tenants = tenants_.size();
    snap.models = model_ids_.size();
    return snap;
}

void
FleetService::ResetStats()
{
    stats_.Reset();
}

void
FleetService::EvictAllModels()
{
    registry_.EvictAll();
}

SimTime
FleetService::MinLaneLocked(const Device& device)
{
    SimTime best = device.lanes.front();
    for (const SimTime& t : device.lanes) {
        if (t < best) {
            best = t;
        }
    }
    return best;
}

void
FleetService::SchedulerLoop()
{
    std::unique_lock<std::mutex> lock(admission_mutex_);
    for (;;) {
        scheduler_cv_.wait(lock, [&] {
            return (stop_requested_ && !dispatch_held_) ||
                   (!wfq_->empty() && !dispatch_held_);
        });
        if (wfq_->empty()) {
            if (stop_requested_) {
                break;
            }
            continue;
        }

        // Find devices with dispatch-window room. Lock order is
        // admission -> device everywhere, so these brief device peeks
        // are safe under the admission lock.
        std::array<bool, 3> has_room{};
        bool any_room = false;
        for (int d = 0; d < 3; ++d) {
            std::lock_guard<std::mutex> dlock(devices_[d].mutex);
            const std::size_t window = static_cast<std::size_t>(
                static_cast<double>(devices_[d].lanes.size()) *
                config_.window_per_lane);
            has_room[d] =
                devices_[d].queue.size() + devices_[d].inflight < window;
            any_room = any_room || has_room[d];
        }
        if (!any_room) {
            // Workers notify scheduler_cv_ as they free window slots;
            // the timeout is a lost-wakeup backstop (wall-clock
            // liveness only — modeled time never sees it).
            scheduler_cv_.wait_for(lock, std::chrono::milliseconds(1));
            continue;
        }

        PendingPtr pending = *wfq_->Pop();
        const std::string model_id = model_ids_[pending->model_idx];
        // Captured under the lock for the autoscaler: the dispatch
        // window keeps device queues shallow by design, so the central
        // backlog is where overload is actually visible.
        const std::size_t central_backlog = wfq_->size();
        lock.unlock();

        // Warm (or build) the model outside the admission lock so
        // submissions keep flowing during a rebuild.
        AcquireResult acquired =
            registry_.Acquire(model_id, pending->trace, pending->arrival);
        const SimTime ready = pending->arrival + acquired.build_cost;
        const std::size_t rows = pending->request.num_rows;

        // Earliest-finish placement across devices with room, skipping
        // accelerators whose breaker is open (cooldown pending). CPU
        // is the fallback of last resort even when its window is full.
        int chosen = -1;
        BackendKind chosen_kind = BackendKind::kCpuSklearn;
        SimTime chosen_finish;
        for (int d = 0; d < 3; ++d) {
            const auto device_class = static_cast<DeviceClass>(d);
            auto est = BestOfClass(acquired.model->scheduler, device_class,
                                   rows);
            if (!est.has_value()) {
                continue;
            }
            SimTime lane_free;
            bool room;
            {
                std::lock_guard<std::mutex> dlock(devices_[d].mutex);
                if (d != 0 &&
                    devices_[d].breaker == BreakerState::kOpen &&
                    ready < devices_[d].breaker_open_until) {
                    continue;
                }
                lane_free = MinLaneLocked(devices_[d]);
                const std::size_t window = static_cast<std::size_t>(
                    static_cast<double>(devices_[d].lanes.size()) *
                    config_.window_per_lane);
                room = devices_[d].queue.size() + devices_[d].inflight <
                       window;
            }
            if (!room) {
                continue;
            }
            const SimTime finish = Max(ready, lane_free) + est->Total();
            if (chosen < 0 || finish < chosen_finish) {
                chosen = d;
                chosen_kind = est->kind;
                chosen_finish = finish;
            }
        }
        if (chosen < 0) {
            // Breakers closed every roomy accelerator and CPU is full:
            // queue on CPU anyway (bounded by the WFQ capacity).
            auto cpu = BestOfClass(acquired.model->scheduler,
                                   DeviceClass::kCpu, rows);
            DBS_ASSERT(cpu.has_value());
            chosen = 0;
            chosen_kind = cpu->kind;
        }

        DeviceWork work;
        work.pending = std::move(pending);
        work.model = acquired.model;
        work.kind = chosen_kind;
        work.ready = ready;
        work.registry_miss = !acquired.hit;

        // Model the first attempt's full cost here, at dispatch, and
        // reserve the lane up to its projected finish. Charging the
        // horizon before the worker runs keeps modeled placement (and
        // thus latencies) a function of the dispatch sequence alone —
        // not of how fast real worker threads happen to drain queues.
        // The scheduler is the only thread invoking a device's runtime
        // for first attempts, so pool warm/cold state also evolves in
        // dispatch order.
        Device& dev = devices_[chosen];
        ExternalScriptRuntime& runtime = *dev.runtime;
        const std::uint64_t in_bytes = static_cast<std::uint64_t>(rows) *
                                       acquired.model->num_cols *
                                       sizeof(float);
        work.invocation = runtime.Invoke();
        work.model_pre =
            work.invocation.cold
                ? runtime.ModelPreprocessing(acquired.model->model_bytes)
                : SimTime();
        work.transfer_to = runtime.TransferToProcess(in_bytes);
        work.transfer_from = runtime.TransferFromProcess(
            static_cast<std::uint64_t>(rows) * sizeof(float));
        work.data_pre =
            runtime.DataPreprocessing(rows, acquired.model->num_cols);
        work.scoring =
            acquired.model->scheduler.EstimateFor(chosen_kind, rows);
        const SimTime service = work.invocation.cost + work.model_pre +
                                work.transfer_to + work.transfer_from +
                                work.data_pre + work.scoring.Total();

        const SloPolicy& policy =
            config_.slo[static_cast<int>(work.pending->cls)];
        const SimTime deadline_at = work.pending->arrival + policy.deadline;
        bool expired = false;
        {
            std::lock_guard<std::mutex> dlock(dev.mutex);
            work.lane = 0;
            for (std::size_t i = 1; i < dev.lanes.size(); ++i) {
                if (dev.lanes[i] < dev.lanes[work.lane]) {
                    work.lane = i;
                }
            }
            work.start = Max(ready, dev.lanes[work.lane]);
            if (work.start > deadline_at) {
                // Deadline admission at dispatch: the modeled start
                // already overruns the class deadline, so the request
                // expires instead of scoring (and never occupies the
                // lane). An expiry is the strongest overload signal
                // there is: it counts as a missed-deadline sample in
                // the autoscaler's window alongside late completions.
                expired = true;
                ++dev.window_completions;
                ++dev.window_deadline_misses;
            } else {
                dev.lanes[work.lane] = work.start + service;
            }
        }
        if (expired) {
            Pending& p = *work.pending;
            FleetReply reply;
            reply.status = RequestStatus::kExpired;
            reply.slo = p.cls;
            reply.arrival = p.arrival;
            reply.finish = work.start;
            reply.registry_miss = work.registry_miss;
            reply.error = "fleet: deadline expired before dispatch";
            stats_.RecordExpired(p.cls, p.arrival, work.start);
            TraceCollector::Get().EmitSim(
                StageKind::kQuery, "fleet-request", p.trace, p.arrival,
                work.start - p.arrival,
                {{"class", static_cast<double>(p.cls)}, {"expired", 1.0}});
            {
                ScopedSpan fulfill(StageKind::kReply, "fulfill", p.trace);
                p.promise.set_value(std::move(reply));
            }
            SettleOne();
        } else {
            {
                std::lock_guard<std::mutex> dlock(dev.mutex);
                dev.queue.push_back(std::move(work));
            }
            dev.cv.notify_one();
        }

        MaybeAutoscale(ready, central_backlog);
        lock.lock();
    }

    // Dispatch is over: release the workers (they drain their queues
    // before exiting).
    lock.unlock();
    for (Device& d : devices_) {
        {
            std::lock_guard<std::mutex> dlock(d.mutex);
            d.stop = true;
        }
        d.cv.notify_all();
    }
}

void
FleetService::MaybeAutoscale(SimTime now, std::size_t central_backlog)
{
    TraceCollector& tracer = TraceCollector::Get();
    for (int d = 0; d < 3; ++d) {
        Device& device = devices_[d];
        const auto device_class = static_cast<DeviceClass>(d);
        int delta = 0;
        std::size_t lanes_after = 0;
        const char* reason = "hold";
        {
            std::lock_guard<std::mutex> dlock(device.mutex);
            DeviceLoadSignals signals;
            signals.lanes = device.lanes.size();
            // Device queues are bounded by the dispatch window, so the
            // per-device depth alone can never cross the scale-up
            // threshold; each device also carries its share of the
            // central WFQ backlog, where overload actually piles up.
            signals.queue_depth = device.queue.size() + device.inflight +
                                  central_backlog / 3;
            signals.window_completions = device.window_completions;
            signals.window_deadline_misses = device.window_deadline_misses;
            signals.now = now;
            signals.last_change = device.last_scale_change;
            const AutoscaleDecision decision =
                Autoscale(config_.autoscaler, signals);
            delta = decision.delta;
            reason = decision.reason;
            if (delta > 0) {
                // New lanes start at the pool's current horizon — extra
                // capacity from "now" on, no retroactive service.
                device.lanes.insert(device.lanes.end(), delta,
                                    MinLaneLocked(device));
                device.last_scale_change = now;
                device.window_completions = 0;
                device.window_deadline_misses = 0;
            } else if (delta < 0) {
                // Retire the most-idle lanes.
                std::sort(device.lanes.begin(), device.lanes.end());
                device.lanes.resize(device.lanes.size() -
                                    static_cast<std::size_t>(-delta));
                device.last_scale_change = now;
                device.window_completions = 0;
                device.window_deadline_misses = 0;
            }
            lanes_after = device.lanes.size();
        }
        if (delta != 0) {
            stats_.SetLanes(device_class, lanes_after, delta);
            tracer.EmitSim(StageKind::kAutoscale, reason,
                           tracer.NewRootContext(trace_domain_), now,
                           SimTime(),
                           {{"device", static_cast<double>(d)},
                            {"lanes", static_cast<double>(lanes_after)},
                            {"delta", static_cast<double>(delta)}});
        }
    }
}

void
FleetService::WorkerLoop(int device_index)
{
    Device& device = devices_[device_index];
    const auto device_class = static_cast<DeviceClass>(device_index);
    for (;;) {
        DeviceWork work;
        {
            std::unique_lock<std::mutex> dlock(device.mutex);
            device.cv.wait(dlock, [&] {
                return device.stop || !device.queue.empty();
            });
            if (device.queue.empty()) {
                break;  // stop requested and fully drained
            }
            work = std::move(device.queue.front());
            device.queue.pop_front();
            ++device.inflight;
        }
        // A window slot just freed; the scheduler may dispatch again.
        scheduler_cv_.notify_one();
        ExecuteOne(device, device_class, std::move(work));
        {
            std::lock_guard<std::mutex> dlock(device.mutex);
            --device.inflight;
        }
        scheduler_cv_.notify_one();
    }
}

SimTime
FleetService::NextBackoff(Device& device, int device_index,
                          std::size_t retry_index)
{
    const serve::RetryPolicy& policy = config_.retry;
    DBS_ASSERT(retry_index >= 1);
    double backoff_s =
        policy.initial_backoff.seconds() *
        std::pow(policy.backoff_multiplier,
                 static_cast<double>(retry_index - 1));
    backoff_s = std::min(backoff_s, policy.max_backoff.seconds());
    std::uint64_t seq;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        seq = device.attempt_seq++;
    }
    if (policy.jitter_frac > 0.0 && backoff_s > 0.0) {
        Rng jitter(policy.jitter_seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(device_index) + 1)) ^
                   (0xbf58476d1ce4e5b9ULL * (seq + 1)));
        backoff_s += backoff_s * policy.jitter_frac * jitter.NextDouble();
    }
    return SimTime::Seconds(backoff_s);
}

void
FleetService::BreakerOnFault(Device& device, DeviceClass device_class,
                             SimTime now, const SpanContext& parent)
{
    BreakerState before;
    BreakerState after;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        before = device.breaker;
        ++device.consecutive_failures;
        if (device.breaker == BreakerState::kHalfOpen) {
            device.breaker = BreakerState::kOpen;
            device.breaker_open_until = now + config_.breaker.open_cooldown;
        } else if (device.breaker == BreakerState::kClosed &&
                   device.consecutive_failures >=
                       config_.breaker.failure_threshold) {
            device.breaker = BreakerState::kOpen;
            device.breaker_open_until = now + config_.breaker.open_cooldown;
        }
        after = device.breaker;
    }
    if (after == before) {
        return;
    }
    stats_.SetBreakerState(device_class, after);
    stats_.RecordBreakerOpen(device_class);
    TraceCollector::Get().EmitSim(
        StageKind::kBreaker, "breaker-open", parent, now, SimTime(),
        {{"device", static_cast<double>(device_class)},
         {"state", static_cast<double>(after)}});
}

void
FleetService::BreakerOnSuccess(Device& device, DeviceClass device_class,
                               SimTime now, const SpanContext& parent)
{
    BreakerState before;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        before = device.breaker;
        device.consecutive_failures = 0;
        device.breaker = BreakerState::kClosed;
    }
    if (before == BreakerState::kClosed) {
        return;
    }
    stats_.SetBreakerState(device_class, BreakerState::kClosed);
    TraceCollector::Get().EmitSim(
        StageKind::kBreaker, "breaker-close", parent, now, SimTime(),
        {{"device", static_cast<double>(device_class)},
         {"state", static_cast<double>(BreakerState::kClosed)}});
}

void
FleetService::SettleOne()
{
    {
        std::lock_guard<std::mutex> lock(settle_mutex_);
        ++settled_;
    }
    settle_cv_.notify_all();
}

void
FleetService::ExecuteOne(Device& device, DeviceClass device_class,
                         DeviceWork work)
{
    TraceCollector& tracer = TraceCollector::Get();
    Pending& pending = *work.pending;
    const WarmModel& model = *work.model;
    const SloPolicy& policy = config_.slo[static_cast<int>(pending.cls)];
    const SimTime arrival = pending.arrival;
    const SimTime deadline_at = arrival + policy.deadline;
    const std::size_t rows = pending.request.num_rows;

    // Lane, modeled start, and first-attempt costs were fixed by the
    // scheduler at dispatch (the lane horizon is already charged up to
    // the projected finish).
    const std::size_t lane_idx = work.lane;
    const SimTime start = work.start;

    auto finish_reply = [&](FleetReply reply) {
        {
            ScopedSpan fulfill(StageKind::kReply, "fulfill", pending.trace);
            pending.promise.set_value(std::move(reply));
        }
        SettleOne();
    };

    FleetReply reply;
    reply.slo = pending.cls;
    reply.arrival = arrival;
    reply.registry_miss = work.registry_miss;

    fault::FaultInjector& injector = fault::FaultInjector::Get();
    const std::uint64_t bytes_in =
        static_cast<std::uint64_t>(rows) * model.num_cols * sizeof(float);
    const std::uint64_t bytes_out =
        static_cast<std::uint64_t>(rows) * sizeof(float);

    Device* exec_device = &device;
    DeviceClass exec_class = device_class;
    BackendKind exec_kind = work.kind;
    std::size_t exec_lane = lane_idx;
    bool degraded = false;
    SimTime now = start;
    std::size_t total_attempts = 0;
    std::size_t device_attempts = 0;
    bool success = false;

    // First attempt: costs modeled by the scheduler at dispatch.
    // Retries and CPU fallback re-model against the then-current
    // device runtime (pool state is racy under faults, which is fine —
    // fault campaigns are stochastic by nature).
    InvocationCost invocation = work.invocation;
    SimTime model_pre = work.model_pre;
    SimTime transfer_to = work.transfer_to;
    SimTime transfer_from = work.transfer_from;
    SimTime data_pre = work.data_pre;
    OffloadBreakdown scoring = work.scoring;

    for (;;) {
        ++total_attempts;
        ++device_attempts;
        if (total_attempts > 1) {
            ExternalScriptRuntime& runtime = *exec_device->runtime;
            invocation = runtime.Invoke();
            model_pre = invocation.cold
                            ? runtime.ModelPreprocessing(model.model_bytes)
                            : SimTime();
            transfer_to = runtime.TransferToProcess(bytes_in);
            transfer_from = runtime.TransferFromProcess(bytes_out);
            data_pre = runtime.DataPreprocessing(rows, model.num_cols);
            scoring = model.scheduler.EstimateFor(exec_kind, rows);
        }

        bool faulted = invocation.crashed;
        fault::FaultSite fault_site = fault::FaultSite::kExternalInvoke;
        SimTime wasted = invocation.cost;
        if (!faulted) {
            const auto sites = OffloadFaultSites(exec_kind);
            for (std::size_t i = 0; i < sites.size(); ++i) {
                if (injector.ShouldFail(sites[i])) {
                    faulted = true;
                    fault_site = sites[i];
                    wasted = invocation.cost + model_pre + transfer_to +
                             data_pre +
                             FaultedOffloadCost(scoring, exec_class, i);
                    break;
                }
            }
        }
        if (!faulted) {
            success = true;
            break;
        }

        tracer.EmitSim(StageKind::kFault, fault::FaultSiteName(fault_site),
                       pending.trace, now, wasted,
                       {{"device", static_cast<double>(exec_class)},
                        {"attempt", static_cast<double>(total_attempts)}});
        stats_.RecordFault(exec_class);
        now += wasted;
        BreakerOnFault(*exec_device, exec_class, now, pending.trace);

        if (device_attempts < config_.retry.max_attempts) {
            const SimTime backoff =
                NextBackoff(*exec_device, static_cast<int>(exec_class),
                            device_attempts);
            const SimTime redispatch = now + backoff;
            if (redispatch > deadline_at) {
                break;  // no retry the deadline permits
            }
            tracer.EmitSim(StageKind::kRetryBackoff, "retry-backoff",
                           pending.trace, now, backoff,
                           {{"attempt",
                             static_cast<double>(total_attempts)}});
            stats_.RecordRetry(exec_class);
            now = redispatch;
            continue;
        }

        if (config_.cpu_fallback && exec_class != DeviceClass::kCpu) {
            // Degrade: release the accelerator lane at `now`, hand the
            // request to the CPU pool with a fresh attempt budget.
            {
                std::lock_guard<std::mutex> lock(exec_device->mutex);
                exec_device->lanes[exec_lane] =
                    Max(exec_device->lanes[exec_lane], now);
            }
            auto cpu_best =
                BestOfClass(model.scheduler, DeviceClass::kCpu, rows);
            DBS_ASSERT(cpu_best.has_value());
            const auto from_class = exec_class;
            exec_device = &devices_[0];
            exec_class = DeviceClass::kCpu;
            exec_kind = cpu_best->kind;
            degraded = true;
            device_attempts = 0;
            {
                std::lock_guard<std::mutex> lock(exec_device->mutex);
                exec_lane = 0;
                for (std::size_t i = 1; i < exec_device->lanes.size();
                     ++i) {
                    if (exec_device->lanes[i] <
                        exec_device->lanes[exec_lane]) {
                        exec_lane = i;
                    }
                }
                now = Max(now, exec_device->lanes[exec_lane]);
            }
            stats_.RecordFallback(from_class);
            tracer.EmitSim(StageKind::kFallback, "cpu-fallback",
                           pending.trace, now, SimTime(),
                           {{"from", static_cast<double>(from_class)}});
            continue;
        }
        break;
    }

    if (!success) {
        {
            std::lock_guard<std::mutex> lock(exec_device->mutex);
            exec_device->lanes[exec_lane] =
                Max(exec_device->lanes[exec_lane], now);
        }
        reply.status = RequestStatus::kFailed;
        reply.finish = now;
        reply.attempts = total_attempts;
        reply.degraded = degraded;
        reply.error = "fleet: injected faults exhausted every retry";
        stats_.RecordFailed(pending.cls, arrival, now);
        tracer.EmitSim(StageKind::kQuery, "fleet-request", pending.trace,
                       arrival, now - arrival,
                       {{"class", static_cast<double>(pending.cls)},
                        {"failed", 1.0}});
        finish_reply(std::move(reply));
        tracer.Drain();
        return;
    }

    const SimTime transfer = transfer_to + transfer_from;
    const SimTime service = invocation.cost + model_pre + transfer +
                            data_pre + scoring.Total();
    const SimTime finish = now + service;
    {
        std::lock_guard<std::mutex> lock(exec_device->mutex);
        exec_device->lanes[exec_lane] =
            Max(exec_device->lanes[exec_lane], finish);
    }
    BreakerOnSuccess(*exec_device, exec_class, finish, pending.trace);
    stats_.RecordDispatch(exec_class, 1, rows, service);

    const bool deadline_miss = finish > deadline_at;
    {
        // Autoscaler window sample on the *placement* device (the one
        // whose pool the scheduler sized this work for).
        std::lock_guard<std::mutex> dlock(device.mutex);
        ++device.window_completions;
        if (deadline_miss) {
            ++device.window_deadline_misses;
        }
    }

    // Simulated stage chain: queue wait at its true timeline position,
    // then the dispatch costs laid end to end from the successful
    // attempt (faults and backoffs already own start..now).
    tracer.EmitSim(StageKind::kQueueWait, "queue-wait", pending.trace,
                   work.ready, start - work.ready);
    SimTime cursor = now;
    const struct {
        StageKind stage;
        const char* name;
        SimTime dur;
    } stages[] = {
        {StageKind::kInvocation, "invocation", invocation.cost},
        {StageKind::kModelPreproc, "model-preproc", model_pre},
        {StageKind::kMarshal, "transfer", transfer},
        {StageKind::kDataPreproc, "data-preproc", data_pre},
        {StageKind::kScoring, "scoring", scoring.Total()},
    };
    for (const auto& s : stages) {
        tracer.EmitSim(s.stage, s.name, pending.trace, cursor, s.dur);
        cursor += s.dur;
    }

    reply.status = RequestStatus::kCompleted;
    reply.device = exec_class;
    reply.backend = exec_kind;
    reply.degraded = degraded;
    reply.deadline_miss = deadline_miss;
    reply.attempts = total_attempts;
    reply.finish = finish;
    if (!pending.request.rows.empty()) {
        // Functional scoring through the registry's cached kernel: the
        // same compiled plan serves warm, re-warmed, and degraded
        // dispatches, so predictions are bit-identical in every case.
        reply.predictions = model.forest.PredictBatch(
            pending.request.rows.data(), rows, model.num_cols);
    }
    stats_.RecordCompleted(pending.cls, arrival, finish, degraded,
                           deadline_miss);
    tracer.EmitSim(StageKind::kQuery, "fleet-request", pending.trace,
                   arrival, finish - arrival,
                   {{"class", static_cast<double>(pending.cls)},
                    {"miss", deadline_miss ? 1.0 : 0.0}});
    finish_reply(std::move(reply));
    tracer.Drain();
}

}  // namespace dbscore::fleet
