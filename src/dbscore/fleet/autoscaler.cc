#include "dbscore/fleet/autoscaler.h"

namespace dbscore::fleet {

AutoscaleDecision
Autoscale(const AutoscalerConfig& config, const DeviceLoadSignals& signals)
{
    AutoscaleDecision hold;
    if (!config.enabled || signals.lanes == 0) {
        return hold;
    }
    if (signals.now - signals.last_change < config.cooldown &&
        signals.last_change > SimTime()) {
        return hold;
    }

    const double per_lane = static_cast<double>(signals.queue_depth) /
                            static_cast<double>(signals.lanes);
    const double miss_rate =
        signals.window_completions == 0
            ? 0.0
            : static_cast<double>(signals.window_deadline_misses) /
                  static_cast<double>(signals.window_completions);

    if (signals.lanes < config.max_lanes) {
        if (per_lane > config.scale_up_queue_per_lane) {
            return {+1, "backlog"};
        }
        if (miss_rate > config.scale_up_miss_rate &&
            signals.window_completions > 0) {
            return {+1, "miss-rate"};
        }
    }
    if (signals.lanes > config.min_lanes &&
        per_lane < config.scale_down_queue_per_lane && miss_rate == 0.0) {
        return {-1, "idle"};
    }
    return hold;
}

}  // namespace dbscore::fleet
