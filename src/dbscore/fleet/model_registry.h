/**
 * @file
 * The fleet's warm-model registry.
 *
 * The paper's Figure 11 charges model deserialization/compilation as a
 * first-class pipeline overhead; a one-model service pays it once and
 * forgets it. A fleet serving thousands of models under a finite
 * memory budget cannot: cold models must be built on first use, hot
 * models kept warm, and everything else evicted — which means the
 * build cost comes *back* every time a cold tenant wakes an evicted
 * model. ModelRegistry makes that economy explicit: an LRU cache of
 * prewarmed ForestKernels (plus each model's backend schedulers) under
 * a configurable byte budget, with the re-warm tax measurable through
 * the kKernelBuild / kRegistryHit / kRegistryEvict trace stages and
 * the hit/miss/eviction counters.
 *
 * Bit-identity invariant: a WarmModel's predictions depend only on the
 * registered ensemble — warm, re-warmed after eviction, or served
 * during degradation, the same rows produce the same bits.
 */
#ifndef DBSCORE_FLEET_MODEL_REGISTRY_H
#define DBSCORE_FLEET_MODEL_REGISTRY_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dbscore/common/sim_time.h"
#include "dbscore/core/scheduler.h"
#include "dbscore/dbms/external_runtime.h"
#include "dbscore/forest/forest.h"
#include "dbscore/forest/model_stats.h"
#include "dbscore/trace/trace.h"

namespace dbscore::fleet {

/** Registry configuration. */
struct RegistryConfig {
    /**
     * Byte budget for resident warm models (accounted at each model's
     * serialized size). Inserting past it evicts least-recently-used
     * models first. Models handed out to in-flight dispatches survive
     * eviction (shared ownership) but stop counting as resident.
     */
    std::uint64_t memory_budget_bytes = 64ull << 20;
    /**
     * Stage-cost parameters of the modeled (re)build: an Acquire miss
     * charges the external runtime's model-preprocessing cost for the
     * model's serialized bytes, exactly like a cold Fig-11 dispatch.
     */
    ExternalRuntimeParams runtime_params;
};

/** A built, scoring-ready model: the registry's unit of residency. */
struct WarmModel {
    std::string id;
    /** Functional model; its ForestKernel is compiled at build time. */
    RandomForest forest;
    /** One loaded engine per viable backend, for placement estimates. */
    OffloadScheduler scheduler;
    std::size_t num_cols = 0;
    std::uint64_t model_bytes = 0;
    /** Modeled cost this build charged (the re-warm tax). */
    SimTime build_cost;
    /** Wall-clock kernel-compile cost of this build, milliseconds. */
    double build_wall_ms = 0.0;

    WarmModel(const HardwareProfile& profile, std::string model_id,
              const TreeEnsemble& ensemble, const ModelStats& stats,
              SimTime modeled_build_cost);
};

using WarmModelPtr = std::shared_ptr<const WarmModel>;

/** Result of one Acquire: the model plus what obtaining it cost. */
struct AcquireResult {
    WarmModelPtr model;
    /** False when the model had to be (re)built. */
    bool hit = true;
    /** Modeled build cost the caller must charge (zero on a hit). */
    SimTime build_cost;
};

/** Registry counters (snapshot under one lock). */
struct RegistrySnapshot {
    std::size_t registered_specs = 0;
    std::size_t resident_models = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t memory_budget_bytes = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Misses that re-built a previously evicted model. */
    std::size_t rebuilds = 0;
    std::size_t evictions = 0;
    /** Total modeled build cost charged across misses. */
    SimTime build_cost_total;
    /** Total wall-clock milliseconds spent compiling kernels. */
    double build_wall_ms_total = 0.0;

    double
    HitRate() const
    {
        const std::size_t n = hits + misses;
        return n == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(n);
    }
};

/**
 * LRU cache of WarmModels under a byte budget. Thread-safe; concurrent
 * Acquires of the same cold model build it once (later callers wait on
 * the builder and count as hits — they paid no build).
 */
class ModelRegistry {
 public:
    ModelRegistry(const HardwareProfile& profile, RegistryConfig config);

    /**
     * Registers the buildable spec for @p id (cheap: the ensemble is
     * shared, nothing is compiled). @throws InvalidArgument on a
     * duplicate id.
     */
    void RegisterModel(const std::string& id, const TreeEnsemble& model,
                       const ModelStats& stats);

    bool HasModel(const std::string& id) const;

    /** Registered model ids, registration order. */
    std::vector<std::string> ModelIds() const;

    /**
     * Returns the warm model for @p id, building it on a miss (and
     * evicting LRU residents past the budget). Emits kRegistryHit /
     * kKernelBuild / kRegistryEvict spans parented to @p parent at
     * modeled time @p now. @throws NotFound for an unknown id.
     */
    AcquireResult Acquire(const std::string& id,
                          const trace::SpanContext& parent, SimTime now);

    /**
     * Drops every resident model (spec registrations stay). Next
     * Acquire of each id re-pays the build. Counted as evictions.
     */
    void EvictAll();

    RegistrySnapshot Snapshot() const;

    const RegistryConfig& config() const { return config_; }

 private:
    struct Spec {
        std::shared_ptr<const TreeEnsemble> ensemble;
        ModelStats stats;
        /** True once this model has been built (and evicted) before. */
        bool built_before = false;
    };

    /** Caller holds mutex_. Evicts LRU models until within budget. */
    void EvictToBudgetLocked(const trace::SpanContext& parent, SimTime now);

    HardwareProfile profile_;
    RegistryConfig config_;
    /** Pure cost model for the modeled (re)build charge. */
    ExternalScriptRuntime cost_model_;

    mutable std::mutex mutex_;
    std::condition_variable build_cv_;
    std::map<std::string, Spec> specs_;
    std::vector<std::string> spec_order_;
    /** MRU front, LRU back; every entry is resident. */
    std::list<std::string> lru_;
    struct Resident {
        WarmModelPtr model;
        std::list<std::string>::iterator lru_pos;
    };
    std::map<std::string, Resident> resident_;
    std::uint64_t resident_bytes_ = 0;
    /** Ids currently being built (outside the lock). */
    std::set<std::string> building_;
    RegistrySnapshot counters_;
};

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_MODEL_REGISTRY_H
