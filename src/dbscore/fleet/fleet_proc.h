/**
 * @file
 * DBMS entry points for the multi-tenant fleet.
 *
 * The fleet's control plane speaks the same EXEC dialect as the rest
 * of the DBMS surface: tenants register, SLO ladders adjust, requests
 * score, and operators read the fleet's counters — all through stored
 * procedures, so a SQL session can drive a fleet experiment end to
 * end.
 */
#ifndef DBSCORE_FLEET_FLEET_PROC_H
#define DBSCORE_FLEET_FLEET_PROC_H

#include "dbscore/dbms/query_engine.h"
#include "dbscore/fleet/fleet_service.h"

namespace dbscore::fleet {

/**
 * Registers the fleet procedures on @p engine against @p service
 * (which must outlive the engine):
 *
 *   EXEC sp_fleet_tenant @tenant = N, @model = '<id>',
 *        @class = 'gold'|'silver'|'bronze'
 *     Binds a tenant to a registered model with a service class.
 *
 *   EXEC sp_fleet_slo @class = '<name>' [, @deadline_ms = D]
 *        [, @weight = W] [, @quota_rps = R] [, @quota_burst = B]
 *     Adjusts one class's SLO policy (before the service starts).
 *
 *   EXEC sp_fleet_score @tenant = N, @rows = R
 *     Submits one request for the tenant and blocks for its reply.
 *
 *   EXEC sp_fleet_stats [@reset = 1]
 *     Returns fleet counters as (metric, value) rows — per-class
 *     tails and deadline misses, registry hit/eviction economy,
 *     device lanes and breaker states. With @reset = 1, zeroes the
 *     counters after reading them (clean per-phase snapshots).
 */
void RegisterFleetProcedures(QueryEngine& engine, FleetService& service);

}  // namespace dbscore::fleet

#endif  // DBSCORE_FLEET_FLEET_PROC_H
