#include "dbscore/fleet/model_registry.h"

#include <utility>

#include "dbscore/common/error.h"

namespace dbscore::fleet {

using trace::ScopedSpan;
using trace::SpanContext;
using trace::StageKind;
using trace::TraceCollector;

WarmModel::WarmModel(const HardwareProfile& profile, std::string model_id,
                     const TreeEnsemble& ensemble, const ModelStats& stats,
                     SimTime modeled_build_cost)
    : id(std::move(model_id)),
      forest(ensemble.ToForest()),
      scheduler(profile, ensemble, stats),
      num_cols(stats.num_features),
      model_bytes(stats.serialized_bytes),
      build_cost(modeled_build_cost)
{
    // Prewarm the kernel cache so every dispatch through this resident
    // model scores via the same compiled plan (the serve-layer idiom).
    if (ForestKernel::Supports(forest)) {
        build_wall_ms = forest.Kernel()->build_wall_ms();
    }
}

ModelRegistry::ModelRegistry(const HardwareProfile& profile,
                             RegistryConfig config)
    : profile_(profile),
      config_(config),
      cost_model_(config.runtime_params)
{
    counters_.memory_budget_bytes = config_.memory_budget_bytes;
}

void
ModelRegistry::RegisterModel(const std::string& id, const TreeEnsemble& model,
                             const ModelStats& stats)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (specs_.count(id) != 0) {
        throw InvalidArgument("registry: duplicate model id: " + id);
    }
    Spec spec;
    spec.ensemble = std::make_shared<const TreeEnsemble>(model);
    spec.stats = stats;
    specs_.emplace(id, std::move(spec));
    spec_order_.push_back(id);
    counters_.registered_specs = specs_.size();
}

bool
ModelRegistry::HasModel(const std::string& id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return specs_.count(id) != 0;
}

std::vector<std::string>
ModelRegistry::ModelIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spec_order_;
}

AcquireResult
ModelRegistry::Acquire(const std::string& id, const SpanContext& parent,
                       SimTime now)
{
    auto& tracer = TraceCollector::Get();
    std::unique_lock<std::mutex> lock(mutex_);
    auto spec_it = specs_.find(id);
    if (spec_it == specs_.end()) {
        throw NotFound("registry: unknown model: " + id);
    }

    for (;;) {
        auto res_it = resident_.find(id);
        if (res_it != resident_.end()) {
            // Warm hit: refresh recency, charge nothing.
            lru_.splice(lru_.begin(), lru_, res_it->second.lru_pos);
            ++counters_.hits;
            AcquireResult out;
            out.model = res_it->second.model;
            out.hit = true;
            tracer.EmitSim(StageKind::kRegistryHit, "registry-hit", parent,
                           now, SimTime(),
                           {{"resident", static_cast<double>(
                                             resident_.size())}});
            return out;
        }
        if (building_.count(id) == 0) {
            break;  // this caller becomes the builder
        }
        // Another thread is building this model; wait for it and take
        // the warm copy (a hit — this caller paid no build).
        build_cv_.wait(lock);
    }

    // Miss: build outside the lock so other models stay acquirable.
    building_.insert(id);
    const bool rebuild = spec_it->second.built_before;
    auto ensemble = spec_it->second.ensemble;
    const ModelStats stats = spec_it->second.stats;
    lock.unlock();

    // The modeled build charge mirrors a cold external-runtime dispatch:
    // deserialize + prepare the model blob at its serialized size.
    const SimTime build_cost =
        cost_model_.ModelPreprocessing(stats.serialized_bytes);
    WarmModelPtr model;
    {
        // Wall clock covers the real work (forest + engines + kernel);
        // the sim duration is the modeled charge. kKernelBuild totals
        // therefore measure the fleet's aggregate re-warm tax.
        ScopedSpan span(StageKind::kKernelBuild, "registry-build", parent);
        model = std::make_shared<const WarmModel>(profile_, id, *ensemble,
                                                  stats, build_cost);
        tracer.EmitSim(StageKind::kKernelBuild, "registry-build-sim", parent,
                       now, build_cost,
                       {{"bytes", static_cast<double>(stats.serialized_bytes)},
                        {"rebuild", rebuild ? 1.0 : 0.0}});
    }

    lock.lock();
    spec_it->second.built_before = true;
    lru_.push_front(id);
    resident_.emplace(id, Resident{model, lru_.begin()});
    resident_bytes_ += model->model_bytes;
    ++counters_.misses;
    if (rebuild) {
        ++counters_.rebuilds;
    }
    counters_.build_cost_total = counters_.build_cost_total + build_cost;
    counters_.build_wall_ms_total += model->build_wall_ms;
    EvictToBudgetLocked(parent, now);
    building_.erase(id);
    build_cv_.notify_all();

    AcquireResult out;
    out.model = model;
    out.hit = false;
    out.build_cost = build_cost;
    return out;
}

void
ModelRegistry::EvictToBudgetLocked(const SpanContext& parent, SimTime now)
{
    auto& tracer = TraceCollector::Get();
    // Never evict the entry just inserted (lru_ front): a model larger
    // than the whole budget must still be servable, it just evicts
    // everything else and stays the lone (over-budget) resident.
    while (resident_bytes_ > config_.memory_budget_bytes && lru_.size() > 1) {
        const std::string victim = lru_.back();
        auto it = resident_.find(victim);
        DBS_ASSERT(it != resident_.end());
        resident_bytes_ -= it->second.model->model_bytes;
        tracer.EmitSim(StageKind::kRegistryEvict, "registry-evict", parent,
                       now, SimTime(),
                       {{"bytes",
                         static_cast<double>(it->second.model->model_bytes)},
                        {"resident_after",
                         static_cast<double>(resident_.size() - 1)}});
        resident_.erase(it);
        lru_.pop_back();
        ++counters_.evictions;
    }
}

void
ModelRegistry::EvictAll()
{
    auto& tracer = TraceCollector::Get();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, res] : resident_) {
        (void)id;
        resident_bytes_ -= res.model->model_bytes;
        ++counters_.evictions;
        tracer.EmitSim(StageKind::kRegistryEvict, "registry-evict-all",
                       trace::SpanContext{}, SimTime(), SimTime(),
                       {{"bytes",
                         static_cast<double>(res.model->model_bytes)}});
    }
    resident_.clear();
    lru_.clear();
    DBS_ASSERT(resident_bytes_ == 0);
}

RegistrySnapshot
ModelRegistry::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap = counters_;
    snap.registered_specs = specs_.size();
    snap.resident_models = resident_.size();
    snap.resident_bytes = resident_bytes_;
    snap.memory_budget_bytes = config_.memory_budget_bytes;
    return snap;
}

}  // namespace dbscore::fleet
