#include "dbscore/fleet/fleet_stats.h"

#include <sstream>

#include "dbscore/common/string_util.h"

namespace dbscore::fleet {

namespace {

serve::DistSummary
Summarize(const RunningStats& stats, const QuantileSketch& sketch)
{
    serve::DistSummary s;
    s.count = stats.count();
    if (s.count == 0) {
        return s;
    }
    s.mean = stats.mean();
    s.max = stats.max();
    s.p50 = sketch.Quantile(0.50);
    s.p95 = sketch.Quantile(0.95);
    s.p99 = sketch.Quantile(0.99);
    return s;
}

int
Idx(SloClass cls)
{
    return static_cast<int>(cls);
}

int
Idx(DeviceClass device)
{
    return static_cast<int>(device);
}

}  // namespace

double
ClassSnapshot::MissRate() const
{
    return completed == 0 ? 0.0
                          : static_cast<double>(deadline_misses) /
                                static_cast<double>(completed);
}

std::size_t
ClassSnapshot::Goodput() const
{
    return completed - deadline_misses;
}

std::size_t
FleetSnapshot::Submitted() const
{
    std::size_t n = 0;
    for (const ClassSnapshot& c : classes) {
        n += c.submitted;
    }
    return n;
}

std::size_t
FleetSnapshot::Completed() const
{
    std::size_t n = 0;
    for (const ClassSnapshot& c : classes) {
        n += c.completed;
    }
    return n;
}

std::size_t
FleetSnapshot::Settled() const
{
    std::size_t n = 0;
    for (const ClassSnapshot& c : classes) {
        n += c.completed + c.rejected_quota + c.rejected_capacity +
             c.expired + c.failed;
    }
    return n;
}

SimTime
FleetSnapshot::Makespan() const
{
    if (last_finish <= first_arrival) {
        return SimTime();
    }
    return last_finish - first_arrival;
}

double
FleetSnapshot::GoodputRps() const
{
    const SimTime span = Makespan();
    if (span.is_zero()) {
        return 0.0;
    }
    std::size_t good = 0;
    for (const ClassSnapshot& c : classes) {
        good += c.Goodput();
    }
    return static_cast<double>(good) / span.seconds();
}

std::string
FleetSnapshot::ToString() const
{
    std::ostringstream os;
    os << StrFormat("fleet:    %zu tenants, %zu models (%zu resident, ",
                    tenants, models, registry.resident_models)
       << StrFormat("%.1f MiB of %.1f MiB), registry hit rate %.3f\n",
                    static_cast<double>(registry.resident_bytes) /
                        (1024.0 * 1024.0),
                    static_cast<double>(registry.memory_budget_bytes) /
                        (1024.0 * 1024.0),
                    registry.HitRate());
    os << StrFormat(
        "registry: %zu hits, %zu misses, %zu rebuilds, %zu evictions, "
        "modeled build ",
        registry.hits, registry.misses, registry.rebuilds,
        registry.evictions)
       << registry.build_cost_total << "\n";
    for (int c = 0; c < kNumSloClasses; ++c) {
        const ClassSnapshot& cls = classes[c];
        if (cls.submitted == 0) {
            continue;
        }
        os << StrFormat(
            "%-7s:  %zu submitted, %zu admitted, %zu completed "
            "(%zu degraded), %zu+%zu rejected (quota+capacity), "
            "%zu expired, %zu failed, miss rate %.3f, ",
            SloClassName(static_cast<SloClass>(c)), cls.submitted,
            cls.admitted, cls.completed, cls.degraded, cls.rejected_quota,
            cls.rejected_capacity, cls.expired, cls.failed, cls.MissRate());
        os << "p50 " << SimTime::Seconds(cls.latency.p50) << ", p99 "
           << SimTime::Seconds(cls.latency.p99) << "\n";
    }
    static const char* kDeviceNames[3] = {"CPU", "GPU", "FPGA"};
    for (int d = 0; d < 3; ++d) {
        const FleetDeviceSnapshot& dev = devices[d];
        if (dev.dispatches == 0 && dev.faults == 0) {
            continue;
        }
        os << StrFormat(
            "%-7s:  %zu dispatches, %zu requests, %zu rows, %zu lanes "
            "(+%zu/-%zu), busy ",
            kDeviceNames[d], dev.dispatches, dev.requests, dev.rows,
            dev.lanes, dev.scale_ups, dev.scale_downs)
           << dev.busy;
        if (dev.faults + dev.fallbacks + dev.breaker_opens > 0) {
            os << StrFormat(
                ", %zu faults, %zu retries, %zu fallbacks, "
                "%zu breaker opens, breaker %s",
                dev.faults, dev.retries, dev.fallbacks, dev.breaker_opens,
                serve::BreakerStateName(dev.breaker));
        }
        os << "\n";
    }
    os << StrFormat("goodput:  %.1f within-deadline req/s over makespan ",
                    GoodputRps())
       << Makespan() << "\n";
    return os.str();
}

void
FleetStats::TouchSpanLocked(SimTime arrival, SimTime finish)
{
    if (!any_arrival_ || arrival < totals_.first_arrival) {
        totals_.first_arrival = arrival;
        any_arrival_ = true;
    }
    if (finish > totals_.last_finish) {
        totals_.last_finish = finish;
    }
}

void
FleetStats::RecordSubmitted(SloClass cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.submitted;
}

void
FleetStats::RecordAdmitted(SloClass cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.admitted;
}

void
FleetStats::RecordRejectedQuota(SloClass cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.rejected_quota;
}

void
FleetStats::RecordRejectedCapacity(SloClass cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.rejected_capacity;
}

void
FleetStats::RecordExpired(SloClass cls, SimTime arrival, SimTime finish)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.expired;
    TouchSpanLocked(arrival, finish);
}

void
FleetStats::RecordFailed(SloClass cls, SimTime arrival, SimTime finish)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[Idx(cls)].totals.failed;
    TouchSpanLocked(arrival, finish);
}

void
FleetStats::RecordCompleted(SloClass cls, SimTime arrival, SimTime finish,
                            bool degraded, bool deadline_miss)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClassAccum& accum = classes_[Idx(cls)];
    ++accum.totals.completed;
    if (degraded) {
        ++accum.totals.degraded;
    }
    if (deadline_miss) {
        ++accum.totals.deadline_misses;
    }
    const double latency = (finish - arrival).seconds();
    accum.latency_stats.Add(latency);
    accum.latency_sketch.Add(latency);
    TouchSpanLocked(arrival, finish);
}

void
FleetStats::RecordDispatch(DeviceClass device, std::size_t num_requests,
                           std::size_t num_rows, SimTime busy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetDeviceSnapshot& dev = totals_.devices[Idx(device)];
    ++dev.dispatches;
    dev.requests += num_requests;
    dev.rows += num_rows;
    dev.busy = dev.busy + busy;
}

void
FleetStats::RecordFault(DeviceClass device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.devices[Idx(device)].faults;
}

void
FleetStats::RecordRetry(DeviceClass device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.devices[Idx(device)].retries;
}

void
FleetStats::RecordFallback(DeviceClass device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.devices[Idx(device)].fallbacks;
}

void
FleetStats::RecordBreakerOpen(DeviceClass device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.devices[Idx(device)].breaker_opens;
}

void
FleetStats::SetBreakerState(DeviceClass device, serve::BreakerState state)
{
    std::lock_guard<std::mutex> lock(mutex_);
    totals_.devices[Idx(device)].breaker = state;
}

void
FleetStats::SetLanes(DeviceClass device, std::size_t lanes, int delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetDeviceSnapshot& dev = totals_.devices[Idx(device)];
    dev.lanes = lanes;
    if (delta > 0) {
        ++dev.scale_ups;
    } else if (delta < 0) {
        ++dev.scale_downs;
    }
}

std::size_t
FleetStats::Settled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const ClassAccum& accum : classes_) {
        const ClassSnapshot& c = accum.totals;
        n += c.completed + c.rejected_quota + c.rejected_capacity +
             c.expired + c.failed;
    }
    return n;
}

FleetSnapshot
FleetStats::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetSnapshot snap = totals_;
    for (int c = 0; c < kNumSloClasses; ++c) {
        snap.classes[c] = classes_[c].totals;
        snap.classes[c].latency =
            Summarize(classes_[c].latency_stats, classes_[c].latency_sketch);
    }
    return snap;
}

void
FleetStats::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    FleetSnapshot fresh;
    // Preserve current device facts (breaker, lanes) — they describe
    // the present, not accumulated history.
    for (int d = 0; d < 3; ++d) {
        fresh.devices[d].breaker = totals_.devices[d].breaker;
        fresh.devices[d].lanes = totals_.devices[d].lanes;
    }
    fresh.tenants = totals_.tenants;
    fresh.models = totals_.models;
    totals_ = fresh;
    for (ClassAccum& accum : classes_) {
        accum = ClassAccum();
    }
    any_arrival_ = false;
}

}  // namespace dbscore::fleet
