#include "dbscore/fleet/slo.h"

#include <algorithm>
#include <cctype>

namespace dbscore::fleet {

const char*
SloClassName(SloClass cls)
{
    switch (cls) {
      case SloClass::kGold: return "gold";
      case SloClass::kSilver: return "silver";
      case SloClass::kBronze: return "bronze";
    }
    return "?";
}

std::optional<SloClass>
ParseSloClass(const std::string& name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (int c = 0; c < kNumSloClasses; ++c) {
        if (lower == SloClassName(static_cast<SloClass>(c))) {
            return static_cast<SloClass>(c);
        }
    }
    return std::nullopt;
}

SloPolicy
DefaultSloPolicy(SloClass cls)
{
    SloPolicy policy;
    switch (cls) {
      case SloClass::kGold:
        policy.deadline = SimTime::Millis(500.0);
        policy.weight = 8.0;
        policy.quota_rps = 0.0;  // gold tenants are never throttled
        policy.quota_burst = 32.0;
        break;
      case SloClass::kSilver:
        policy.deadline = SimTime::Millis(500.0);
        policy.weight = 3.0;
        policy.quota_rps = 50.0;
        policy.quota_burst = 16.0;
        break;
      case SloClass::kBronze:
        policy.deadline = SimTime::Millis(500.0);
        policy.weight = 1.0;
        policy.quota_rps = 10.0;
        policy.quota_burst = 8.0;
        break;
    }
    return policy;
}

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst), level_(burst)
{
}

bool
TokenBucket::TryTake(SimTime now, double tokens)
{
    if (rate_ <= 0.0) {
        return true;  // quota disabled
    }
    if (now > last_refill_) {
        level_ = std::min(burst_,
                          level_ + rate_ * (now - last_refill_).seconds());
        last_refill_ = now;
    }
    if (level_ + 1e-9 < tokens) {
        return false;
    }
    level_ -= tokens;
    return true;
}

}  // namespace dbscore::fleet
