/**
 * @file
 * Minimal CSV reading and writing (RFC-4180-style quoting).
 *
 * Used to load user datasets and to dump bench series for plotting.
 */
#ifndef DBSCORE_COMMON_CSV_H
#define DBSCORE_COMMON_CSV_H

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace dbscore {

/** A parsed CSV document: header row plus data rows of strings. */
struct CsvDocument {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Parses CSV from a stream. Supports quoted fields with embedded commas,
 * doubled quotes, and both \n and \r\n line endings.
 *
 * @param in stream to read
 * @param has_header when true the first record becomes .header
 * @throws ParseError on unterminated quotes
 */
CsvDocument ReadCsv(std::istream& in, bool has_header = true);

/** Writes one CSV record with quoting where needed. */
void WriteCsvRow(std::ostream& out, const std::vector<std::string>& cells);

}  // namespace dbscore

#endif  // DBSCORE_COMMON_CSV_H
