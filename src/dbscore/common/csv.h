/**
 * @file
 * Minimal CSV reading and writing (RFC-4180-style quoting).
 *
 * Used to load user datasets and to dump bench series for plotting.
 */
#ifndef DBSCORE_COMMON_CSV_H
#define DBSCORE_COMMON_CSV_H

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace dbscore {

/** A parsed CSV document: header row plus data rows of strings. */
struct CsvDocument {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Receives one parsed record. The cells vector is reused between
 * callbacks — move individual cells out or copy, but do not keep a
 * reference to the vector itself.
 */
using CsvRecordCallback = std::function<void(std::vector<std::string>&)>;

/**
 * Streams CSV records from @p in, invoking @p callback once per
 * record. Reads the stream in fixed-size chunks — memory use is one
 * record plus the chunk buffer, independent of file size — which is
 * what lets bulk loaders ingest files larger than RAM straight into
 * the paged store. Supports quoted fields with embedded commas,
 * doubled quotes, and both \n and \r\n line endings; blank lines are
 * skipped.
 *
 * @throws ParseError on an unterminated quoted field
 */
void ForEachCsvRecord(std::istream& in, const CsvRecordCallback& callback);

/**
 * Parses CSV from a stream into memory (built on ForEachCsvRecord).
 *
 * @param in stream to read
 * @param has_header when true the first record becomes .header
 * @throws ParseError on unterminated quotes
 */
CsvDocument ReadCsv(std::istream& in, bool has_header = true);

/** Writes one CSV record with quoting where needed. */
void WriteCsvRow(std::ostream& out, const std::vector<std::string>& cells);

}  // namespace dbscore

#endif  // DBSCORE_COMMON_CSV_H
