/**
 * @file
 * String helpers shared by the SQL parser, CSV reader, and report writers.
 */
#ifndef DBSCORE_COMMON_STRING_UTIL_H
#define DBSCORE_COMMON_STRING_UTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace dbscore {

/** Removes leading and trailing ASCII whitespace. */
std::string_view TrimView(std::string_view s);

/** Trimmed copy. */
std::string Trim(std::string_view s);

/** Splits on @p sep; keeps empty fields. */
std::vector<std::string> Split(std::string_view s, char sep);

/** ASCII lowercase copy. */
std::string ToLower(std::string_view s);

/** ASCII uppercase copy. */
std::string ToUpper(std::string_view s);

/** Case-insensitive ASCII equality. */
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/** True if @p s starts with @p prefix (case-sensitive). */
bool StartsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Renders n as "1", "10", "100", "1K", "10K", "100K", "1M", ... */
std::string HumanCount(std::uint64_t n);

/** Renders a byte count as "512 B", "4.0 KiB", "28.6 MiB", ... */
std::string HumanBytes(std::uint64_t bytes);

}  // namespace dbscore

#endif  // DBSCORE_COMMON_STRING_UTIL_H
