/**
 * @file
 * Error handling primitives for dbscore.
 *
 * Follows the gem5 fatal/panic split:
 *  - User errors (bad configuration, invalid arguments, capacity limits the
 *    user can hit) throw typed exceptions derived from dbscore::Error.
 *  - Internal invariant violations use DBS_ASSERT, which aborts; they
 *    indicate a bug in dbscore itself, never a user mistake.
 */
#ifndef DBSCORE_COMMON_ERROR_H
#define DBSCORE_COMMON_ERROR_H

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dbscore {

/** Base class for all user-facing dbscore errors. */
class Error : public std::runtime_error {
 public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** Thrown when a caller passes an argument outside the legal domain. */
class InvalidArgument : public Error {
 public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/**
 * Thrown when a request exceeds a modeled hardware capacity limit,
 * e.g. a tree deeper than the FPGA's supported 10 levels or a model that
 * does not fit in BRAM.
 */
class CapacityError : public Error {
 public:
    explicit CapacityError(const std::string& what) : Error(what) {}
};

/** Thrown on malformed serialized input (model blobs, CSV, SQL text). */
class ParseError : public Error {
 public:
    explicit ParseError(const std::string& what) : Error(what) {}
};

/** Thrown when a named entity (table, procedure, column) does not exist. */
class NotFound : public Error {
 public:
    explicit NotFound(const std::string& what) : Error(what) {}
};

/** Thrown when a file or device operation fails (open, read, write). */
class IoError : public Error {
 public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/**
 * Thrown when persisted data fails an integrity check — a bad page
 * checksum (torn write, bit rot), wrong magic, or a self-id mismatch.
 */
class DataCorruption : public Error {
 public:
    explicit DataCorruption(const std::string& what) : Error(what) {}
};

namespace detail {

/** Prints an assertion failure message and aborts. Never returns. */
[[noreturn]] void AssertFail(const char* expr, const char* file, int line,
                             const std::string& msg);

}  // namespace detail

}  // namespace dbscore

/**
 * Internal invariant check. Active in all build types: simulator results
 * are meaningless if invariants are broken, so we never compile these out.
 */
#define DBS_ASSERT(expr)                                                     \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::dbscore::detail::AssertFail(#expr, __FILE__, __LINE__, "");    \
        }                                                                    \
    } while (0)

/** Invariant check with a context message. */
#define DBS_ASSERT_MSG(expr, msg)                                            \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::dbscore::detail::AssertFail(#expr, __FILE__, __LINE__, (msg)); \
        }                                                                    \
    } while (0)

#endif  // DBSCORE_COMMON_ERROR_H
