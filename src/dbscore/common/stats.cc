#include "dbscore/common/stats.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"

namespace dbscore {

void
RunningStats::Add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::Variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::Stddev() const
{
    return std::sqrt(Variance());
}

double
QuantileSketch::Quantile(double q) const
{
    DBS_ASSERT(q >= 0.0 && q <= 1.0);
    DBS_ASSERT_MSG(!values_.empty(), "quantile of empty sketch");
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
    if (values_.size() == 1) {
        return values_[0];
    }
    double pos = q * static_cast<double>(values_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, values_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace dbscore
