/**
 * @file
 * Small statistics accumulators used by trainers, timing models, and
 * bench harnesses.
 */
#ifndef DBSCORE_COMMON_STATS_H
#define DBSCORE_COMMON_STATS_H

#include <cstddef>
#include <limits>
#include <vector>

namespace dbscore {

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats {
 public:
    void Add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Sample variance (n-1 denominator); 0 when count < 2. */
    double Variance() const;
    double Stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

 private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Exact quantiles over a retained sample vector. Fine for the sizes we
 * care about (bench sweeps, path-length samples).
 */
class QuantileSketch {
 public:
    void Add(double x) { values_.push_back(x); }

    std::size_t count() const { return values_.size(); }

    /** q in [0, 1]; linear interpolation between order statistics. */
    double Quantile(double q) const;

    double Median() const { return Quantile(0.5); }

 private:
    mutable std::vector<double> values_;
    mutable bool sorted_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_COMMON_STATS_H
