/**
 * @file
 * Simulated time and unit helpers.
 *
 * All modeled latencies in dbscore are SimTime values: a strongly typed
 * wrapper over double seconds. A dedicated type (instead of bare double)
 * keeps units explicit at API boundaries and catches accidental mixing of
 * seconds with bytes or cycles.
 */
#ifndef DBSCORE_COMMON_SIM_TIME_H
#define DBSCORE_COMMON_SIM_TIME_H

#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "dbscore/common/error.h"

namespace dbscore {

/** A simulated duration. Always non-negative in well-formed breakdowns. */
class SimTime {
 public:
    constexpr SimTime() : seconds_(0.0) {}

    /** Named constructors keep units explicit at every call site. */
    static constexpr SimTime Seconds(double s) { return SimTime(s); }
    static constexpr SimTime Millis(double ms) { return SimTime(ms * 1e-3); }
    static constexpr SimTime Micros(double us) { return SimTime(us * 1e-6); }
    static constexpr SimTime Nanos(double ns) { return SimTime(ns * 1e-9); }

    /** Duration of @p cycles at @p hz clock frequency. */
    static constexpr SimTime
    Cycles(double cycles, double hz)
    {
        return SimTime(cycles / hz);
    }

    constexpr double seconds() const { return seconds_; }
    constexpr double millis() const { return seconds_ * 1e3; }
    constexpr double micros() const { return seconds_ * 1e6; }
    constexpr double nanos() const { return seconds_ * 1e9; }

    constexpr bool is_zero() const { return seconds_ == 0.0; }

    constexpr SimTime
    operator+(SimTime other) const
    {
        return SimTime(seconds_ + other.seconds_);
    }

    constexpr SimTime
    operator-(SimTime other) const
    {
        return SimTime(seconds_ - other.seconds_);
    }

    constexpr SimTime operator*(double k) const { return SimTime(seconds_ * k); }
    constexpr SimTime operator/(double k) const { return SimTime(seconds_ / k); }

    /** Ratio of two durations (e.g. a speedup). */
    constexpr double operator/(SimTime other) const
    {
        return seconds_ / other.seconds_;
    }

    SimTime& operator+=(SimTime other)
    {
        seconds_ += other.seconds_;
        return *this;
    }

    SimTime& operator-=(SimTime other)
    {
        seconds_ -= other.seconds_;
        return *this;
    }

    constexpr auto operator<=>(const SimTime&) const = default;

    /**
     * Human-readable rendering with an auto-selected unit,
     * e.g. "1.50 ms" or "312 ns".
     */
    std::string
    ToString() const
    {
        std::ostringstream os;
        double abs = std::fabs(seconds_);
        os.precision(3);
        if (abs >= 1.0) {
            os << seconds_ << " s";
        } else if (abs >= 1e-3) {
            os << millis() << " ms";
        } else if (abs >= 1e-6) {
            os << micros() << " us";
        } else {
            os << nanos() << " ns";
        }
        return os.str();
    }

 private:
    explicit constexpr SimTime(double s) : seconds_(s) {}

    double seconds_;
};

inline constexpr SimTime operator*(double k, SimTime t) { return t * k; }

inline std::ostream&
operator<<(std::ostream& os, SimTime t)
{
    return os << t.ToString();
}

/** Returns the larger of two durations. */
inline constexpr SimTime
Max(SimTime a, SimTime b)
{
    return a < b ? b : a;
}

/** Returns the smaller of two durations. */
inline constexpr SimTime
Min(SimTime a, SimTime b)
{
    return a < b ? a : b;
}

/** Byte-count helpers for capacity/transfer models. */
inline constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
inline constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
inline constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

/**
 * Time to move @p bytes over a channel with @p bytes_per_second sustained
 * bandwidth. The caller adds any fixed per-transfer latency floor.
 */
inline SimTime
TransferTime(std::uint64_t bytes, double bytes_per_second)
{
    DBS_ASSERT(bytes_per_second > 0.0);
    return SimTime::Seconds(static_cast<double>(bytes) / bytes_per_second);
}

}  // namespace dbscore

#endif  // DBSCORE_COMMON_SIM_TIME_H
