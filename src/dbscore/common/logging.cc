#include "dbscore/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dbscore {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char*
LevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kNone: return "none";
    }
    return "?";
}

}  // namespace

void
SetLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
GetLogLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
LogMessage(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "dbscore [%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace detail

}  // namespace dbscore
