#include "dbscore/common/error.h"

#include <cstdio>

namespace dbscore {
namespace detail {

void
AssertFail(const char* expr, const char* file, int line,
           const std::string& msg)
{
    std::fprintf(stderr, "dbscore: assertion `%s` failed at %s:%d%s%s\n",
                 expr, file, line, msg.empty() ? "" : ": ", msg.c_str());
    std::abort();
}

}  // namespace detail
}  // namespace dbscore
