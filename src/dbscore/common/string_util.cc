#include "dbscore/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include "dbscore/common/error.h"

namespace dbscore {

std::string_view
TrimView(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

std::string
Trim(std::string_view s)
{
    return std::string(TrimView(s));
}

std::vector<std::string>
Split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
ToLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

std::string
ToUpper(std::string_view s)
{
    std::string out(s);
    for (char& c : out) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return out;
}

bool
EqualsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

bool
StartsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
StrFormat(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    DBS_ASSERT(needed >= 0);
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
HumanCount(std::uint64_t n)
{
    if (n >= 1000000 && n % 1000000 == 0) {
        return StrFormat("%lluM", static_cast<unsigned long long>(n / 1000000));
    }
    if (n >= 1000 && n % 1000 == 0) {
        return StrFormat("%lluK", static_cast<unsigned long long>(n / 1000));
    }
    return StrFormat("%llu", static_cast<unsigned long long>(n));
}

std::string
HumanBytes(std::uint64_t bytes)
{
    if (bytes >= (1ULL << 30)) {
        return StrFormat("%.1f GiB",
                         static_cast<double>(bytes) / (1ULL << 30));
    }
    if (bytes >= (1ULL << 20)) {
        return StrFormat("%.1f MiB",
                         static_cast<double>(bytes) / (1ULL << 20));
    }
    if (bytes >= (1ULL << 10)) {
        return StrFormat("%.1f KiB",
                         static_cast<double>(bytes) / (1ULL << 10));
    }
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
}

}  // namespace dbscore
