#include "dbscore/common/csv.h"

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

/** Parses all records from @p text. */
std::vector<std::vector<std::string>>
ParseRecords(const std::string& text)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> record;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;

    auto end_field = [&] {
        record.push_back(std::move(field));
        field.clear();
        field_started = false;
    };
    auto end_record = [&] {
        end_field();
        // Skip completely empty records (blank lines).
        if (!(record.size() == 1 && record[0].empty())) {
            records.push_back(std::move(record));
        }
        record.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
            continue;
        }
        switch (c) {
          case '"':
            if (!field_started) {
                in_quotes = true;
                field_started = true;
            } else {
                field.push_back(c);
            }
            break;
          case ',':
            end_field();
            break;
          case '\r':
            break;  // handled with the following \n
          case '\n':
            end_record();
            break;
          default:
            field.push_back(c);
            field_started = true;
            break;
        }
    }
    if (in_quotes) {
        throw ParseError("csv: unterminated quoted field");
    }
    if (field_started || !field.empty() || !record.empty()) {
        end_record();
    }
    return records;
}

}  // namespace

CsvDocument
ReadCsv(std::istream& in, bool has_header)
{
    std::string text(std::istreambuf_iterator<char>(in), {});
    auto records = ParseRecords(text);
    CsvDocument doc;
    std::size_t start = 0;
    if (has_header && !records.empty()) {
        doc.header = std::move(records[0]);
        start = 1;
    }
    for (std::size_t i = start; i < records.size(); ++i) {
        doc.rows.push_back(std::move(records[i]));
    }
    return doc;
}

void
WriteCsvRow(std::ostream& out, const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            out << ',';
        }
        const std::string& cell = cells[i];
        bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
        if (!needs_quotes) {
            out << cell;
            continue;
        }
        out << '"';
        for (char c : cell) {
            if (c == '"') {
                out << "\"\"";
            } else {
                out << c;
            }
        }
        out << '"';
    }
    out << '\n';
}

}  // namespace dbscore
