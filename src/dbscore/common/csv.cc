#include "dbscore/common/csv.h"

#include "dbscore/common/error.h"

namespace dbscore {

void
ForEachCsvRecord(std::istream& in, const CsvRecordCallback& callback)
{
    std::vector<std::string> record;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;
    // A '"' seen inside a quoted field: either the first half of a
    // doubled quote or the closing quote — decided by the *next*
    // character, which may live in the next chunk.
    bool quote_pending = false;

    auto end_field = [&] {
        record.push_back(std::move(field));
        field.clear();
        field_started = false;
    };
    auto end_record = [&] {
        end_field();
        // Skip completely empty records (blank lines).
        if (!(record.size() == 1 && record[0].empty())) {
            callback(record);
        }
        record.clear();
    };

    char buf[64 * 1024];
    for (;;) {
        in.read(buf, sizeof(buf));
        const std::streamsize got = in.gcount();
        if (got <= 0) {
            break;
        }
        for (std::streamsize i = 0; i < got; ++i) {
            const char c = buf[i];
            if (quote_pending) {
                quote_pending = false;
                if (c == '"') {
                    field.push_back('"');
                    continue;
                }
                in_quotes = false;  // it was the closing quote
            }
            if (in_quotes) {
                if (c == '"') {
                    quote_pending = true;
                } else {
                    field.push_back(c);
                }
                continue;
            }
            switch (c) {
              case '"':
                if (!field_started) {
                    in_quotes = true;
                    field_started = true;
                } else {
                    field.push_back(c);
                }
                break;
              case ',':
                end_field();
                break;
              case '\r':
                break;  // handled with the following \n
              case '\n':
                end_record();
                break;
              default:
                field.push_back(c);
                field_started = true;
                break;
            }
        }
    }
    if (quote_pending) {
        in_quotes = false;  // closing quote was the last byte
    }
    if (in_quotes) {
        throw ParseError("csv: unterminated quoted field");
    }
    if (field_started || !field.empty() || !record.empty()) {
        end_record();
    }
}

CsvDocument
ReadCsv(std::istream& in, bool has_header)
{
    CsvDocument doc;
    bool saw_header = !has_header;
    ForEachCsvRecord(in, [&](std::vector<std::string>& record) {
        if (!saw_header) {
            doc.header = std::move(record);
            saw_header = true;
        } else {
            doc.rows.push_back(std::move(record));
        }
    });
    return doc;
}

void
WriteCsvRow(std::ostream& out, const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            out << ',';
        }
        const std::string& cell = cells[i];
        bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
        if (!needs_quotes) {
            out << cell;
            continue;
        }
        out << '"';
        for (char c : cell) {
            if (c == '"') {
                out << "\"\"";
            } else {
                out << c;
            }
        }
        out << '"';
    }
    out << '\n';
}

}  // namespace dbscore
