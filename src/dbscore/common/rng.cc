#include "dbscore/common/rng.h"

#include <cmath>

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

std::uint64_t
SplitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : state_) {
        s = SplitMix64(sm);
    }
}

std::uint64_t
Rng::Next()
{
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);

    return result;
}

double
Rng::NextDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::NextBelow(std::uint64_t bound)
{
    DBS_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = Next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::NextUniform(double lo, double hi)
{
    DBS_ASSERT(lo <= hi);
    return lo + (hi - lo) * NextDouble();
}

double
Rng::NextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = NextDouble();
    } while (u1 <= 1e-300);
    double u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::NextGaussian(double mean, double stddev)
{
    return mean + stddev * NextGaussian();
}

Rng
Rng::Fork()
{
    return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace dbscore
