/**
 * @file
 * A fixed-size worker pool with a blocking parallel-for.
 *
 * The functional scoring engines use this to actually compute predictions
 * over large batches quickly. Note that pool size never influences
 * *simulated* time: modeled latencies are computed from HardwareProfile
 * parameters, not wall clock, so results are machine-independent.
 */
#ifndef DBSCORE_COMMON_THREAD_POOL_H
#define DBSCORE_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dbscore {

/**
 * Row count below which functional batch loops run inline on the
 * calling thread: under this many rows the chunk-dispatch overhead
 * outweighs the parallel win. Shared by every batch scoring path
 * (RandomForest, GradientBoostedModel, ForestKernel, Hummingbird's
 * perfect-tree traversal) so the cutoff is tuned in one place.
 */
inline constexpr std::size_t kParallelRowCutoff = 4096;

/** A simple task-queue thread pool. */
class ThreadPool {
 public:
    /** Creates @p num_threads workers; 0 means hardware_concurrency(). */
    explicit ThreadPool(std::size_t num_threads = 0);

    /** Equivalent to Shutdown(); never throws and never hangs. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return size_; }

    /**
     * Stops accepting work, runs already-queued tasks to completion, and
     * joins every worker. Idempotent: safe to call repeatedly and again
     * from the destructor, including after a partially constructed pool —
     * only joinable workers are joined, so teardown can never hang on a
     * thread that was already reaped.
     */
    void Shutdown();

    /** True once Shutdown() has begun. */
    bool stopped() const;

    /**
     * Enqueues one standalone task. Long-running tasks (e.g. service
     * worker loops) each permanently occupy one worker, so size the pool
     * accordingly. @throws InvalidArgument after Shutdown().
     */
    void Submit(std::function<void()> task);

    /**
     * Runs fn(i) for i in [0, count), split into contiguous chunks across
     * the pool, and blocks until every index has been processed. Exceptions
     * thrown by @p fn propagate (the first one captured is rethrown).
     */
    void ParallelFor(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Chunked variant: runs fn(begin, end) on contiguous ranges. Lower
     * dispatch overhead for tight per-row loops. After Shutdown() the
     * whole range runs inline on the calling thread instead of hanging
     * on a dead queue.
     */
    void ParallelForChunked(
        std::size_t count,
        const std::function<void(std::size_t, std::size_t)>& fn);

    /**
     * Grained variant: no chunk is smaller than @p min_chunk indices
     * (except the last), bounding per-chunk dispatch overhead for
     * cheap per-index work. min_chunk 0 or 1 behaves like the
     * ungrained overload.
     */
    void ParallelForChunked(
        std::size_t count, std::size_t min_chunk,
        const std::function<void(std::size_t, std::size_t)>& fn);

    /** Process-wide shared pool (lazily constructed). */
    static ThreadPool& Shared();

 private:
    void Enqueue(std::function<void()> task);
    void WorkerLoop();

    std::vector<std::thread> workers_;
    std::size_t size_ = 0;
    std::queue<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_COMMON_THREAD_POOL_H
