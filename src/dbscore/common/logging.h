/**
 * @file
 * Minimal leveled logging, modeled on gem5's inform()/warn().
 *
 * Logging is for simulator status only; it never affects results. The
 * global level defaults to kWarn so tests and benches stay quiet unless
 * something deserves attention.
 */
#ifndef DBSCORE_COMMON_LOGGING_H
#define DBSCORE_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace dbscore {

/** Severity of a log message. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kNone = 3,
};

/** Sets the global log level; messages below it are dropped. */
void SetLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel GetLogLevel();

namespace detail {
void LogMessage(LogLevel level, const std::string& msg);
}  // namespace detail

/** Informative status message a user should see but not worry about. */
template <typename... Args>
void
Inform(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::LogMessage(LogLevel::kInfo, os.str());
}

/** Something is suspect (approximation in effect, fallback taken, ...). */
template <typename... Args>
void
Warn(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::LogMessage(LogLevel::kWarn, os.str());
}

/** Developer-facing trace message. */
template <typename... Args>
void
Debug(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::LogMessage(LogLevel::kDebug, os.str());
}

}  // namespace dbscore

#endif  // DBSCORE_COMMON_LOGGING_H
