#include "dbscore/common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "dbscore/common/error.h"

namespace dbscore {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    size_ = num_threads;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    Shutdown();
}

void
ThreadPool::Shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    // Idempotent teardown: a second Shutdown (or the destructor after an
    // explicit Shutdown) finds nothing joinable and returns immediately.
    for (auto& w : workers_) {
        if (w.joinable()) {
            w.join();
        }
    }
    workers_.clear();
}

bool
ThreadPool::stopped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stop_;
}

void
ThreadPool::Submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) {
            throw InvalidArgument("thread pool: Submit after Shutdown");
        }
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::Enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::ParallelFor(std::size_t count,
                        const std::function<void(std::size_t)>& fn)
{
    ParallelForChunked(count, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            fn(i);
        }
    });
}

void
ThreadPool::ParallelForChunked(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn)
{
    ParallelForChunked(count, 1, fn);
}

void
ThreadPool::ParallelForChunked(
    std::size_t count, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    std::size_t num_chunks =
        std::min(count, std::max<std::size_t>(1, size() * 4));
    if (min_chunk > 1) {
        num_chunks = std::min(
            num_chunks,
            std::max<std::size_t>(1, count / min_chunk));
    }
    if (num_chunks <= 1 || stopped()) {
        fn(0, count);
        return;
    }

    std::atomic<std::size_t> remaining{num_chunks};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const std::size_t chunk = (count + num_chunks - 1) / num_chunks;
    for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(count, begin + chunk);
        Enqueue([&, begin, end] {
            try {
                if (begin < end) {
                    fn(begin, end);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
            if (remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

ThreadPool&
ThreadPool::Shared()
{
    static ThreadPool pool;
    return pool;
}

}  // namespace dbscore
