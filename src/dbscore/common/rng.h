/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * dbscore never uses std::random_device or global state: every consumer of
 * randomness takes an explicit seed so datasets, trained models, and
 * simulation outcomes are bit-reproducible across runs and machines.
 *
 * The generator is xoshiro256** seeded via SplitMix64, the recommended
 * construction from the xoshiro authors.
 */
#ifndef DBSCORE_COMMON_RNG_H
#define DBSCORE_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace dbscore {

/** xoshiro256** generator with SplitMix64 seeding. */
class Rng {
 public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t Next();

    /** Satisfies UniformRandomBitGenerator so <random> adapters work. */
    std::uint64_t operator()() { return Next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Uniform integer in [0, bound) using Lemire's unbiased method. */
    std::uint64_t NextBelow(std::uint64_t bound);

    /** Uniform double in [lo, hi). */
    double NextUniform(double lo, double hi);

    /** Standard normal via Box-Muller (cached second value). */
    double NextGaussian();

    /** Normal with the given mean and standard deviation. */
    double NextGaussian(double mean, double stddev);

    /** Forks an independent stream; distinct per call, reproducible. */
    Rng Fork();

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    Shuffle(std::vector<T>& values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(NextBelow(i));
            std::swap(values[i - 1], values[j]);
        }
    }

 private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_COMMON_RNG_H
