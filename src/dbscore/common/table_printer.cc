#include "dbscore/common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "dbscore/common/error.h"

namespace dbscore {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DBS_ASSERT(!headers_.empty());
}

void
TablePrinter::AddRow(std::vector<std::string> cells)
{
    DBS_ASSERT_MSG(cells.size() == headers_.size(),
                   "row arity does not match header");
    rows_.push_back(Row{false, std::move(cells)});
}

void
TablePrinter::AddSeparator()
{
    rows_.push_back(Row{true, {}});
}

void
TablePrinter::Print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        if (row.separator) {
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    auto print_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_cells = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : "";
            os << "| " << text << std::string(widths[c] - text.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto& row : rows_) {
        if (row.separator) {
            print_rule();
        } else {
            print_cells(row.cells);
        }
    }
    print_rule();
}

std::string
TablePrinter::ToString() const
{
    std::ostringstream os;
    Print(os);
    return os.str();
}

}  // namespace dbscore
