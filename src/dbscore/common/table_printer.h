/**
 * @file
 * Fixed-width ASCII table renderer for bench output.
 *
 * Every figure/table bench prints its rows through this so the regenerated
 * paper tables have a uniform, diffable layout.
 */
#ifndef DBSCORE_COMMON_TABLE_PRINTER_H
#define DBSCORE_COMMON_TABLE_PRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace dbscore {

/** Column-aligned ASCII table builder. */
class TablePrinter {
 public:
    /** @p headers defines the column count for all subsequent rows. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Adds a data row; must match the header arity. */
    void AddRow(std::vector<std::string> cells);

    /** Inserts a horizontal separator line before the next row. */
    void AddSeparator();

    /** Renders the table including a header rule. */
    void Print(std::ostream& os) const;

    std::string ToString() const;

 private:
    struct Row {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

}  // namespace dbscore

#endif  // DBSCORE_COMMON_TABLE_PRINTER_H
