/**
 * @file
 * Analytic GPU device model.
 *
 * Kernels are costed with a roofline: execution time is the max of the
 * compute time (FLOPs over achievable FLOP/s) and the memory time (bytes
 * over achievable bandwidth), plus a per-launch overhead. An L2 working-set
 * model decides how much node traffic spills to DRAM — the mechanism behind
 * the paper's observation that growing models/data hurt the GPU through
 * cache misses and memory traffic (Section IV-C3).
 */
#ifndef DBSCORE_GPUSIM_GPU_DEVICE_H
#define DBSCORE_GPUSIM_GPU_DEVICE_H

#include <cstdint>

#include "dbscore/common/sim_time.h"
#include "dbscore/gpusim/gpu_spec.h"
#include "dbscore/pcie/pcie.h"
#include "dbscore/tensor/ops.h"

namespace dbscore {

/** One simulated GPU attached over PCIe. */
class GpuDeviceModel {
 public:
    GpuDeviceModel(const GpuSpec& spec, const PcieLinkSpec& link_spec);

    const GpuSpec& spec() const { return spec_; }
    const PcieLink& link() const { return link_; }

    /** Host-to-device DMA latency. */
    SimTime HostToDevice(std::uint64_t bytes) const;

    /** Device-to-host DMA latency. */
    SimTime DeviceToHost(std::uint64_t bytes) const;

    /**
     * Gates one DMA over this device's link on the fault injector.
     * @throws fault::FaultInjected at fault::FaultSite::kPcieDma
     */
    void CheckDmaFault() const { link_.CheckDmaFault(); }

    /**
     * Gates one kernel launch on the fault injector. The timing
     * functions below stay pure for the scheduler's planning path.
     * @throws fault::FaultInjected at fault::FaultSite::kGpuKernelLaunch
     */
    void CheckKernelLaunchFault() const;

    /** Expected L2 miss fraction for a working set of @p bytes. */
    double L2MissFraction(double bytes) const;

    /**
     * Roofline kernel time (no launch overhead):
     * max(flops / (peak * compute_eff), bytes / (bw * memory_eff)).
     */
    SimTime KernelTime(double flops, double bytes, double compute_eff,
                       double memory_eff) const;

    /**
     * Bandwidth utilization of gather-style kernels over tensors whose
     * minor dimension is @p tensor_width lanes wide. Skinny tensors
     * (e.g. a single-tree ensemble) cannot fill memory transactions and
     * run latency-bound: u = gather_eff * w / (w + 5).
     */
    double GatherUtilization(std::size_t tensor_width) const;

    /**
     * Total device time for a compiled tensor program described by a cost
     * ledger: each op kind priced by its roofline class, plus one launch
     * per recorded invocation.
     *
     * @param ledger op-level costs of the program
     * @param tensor_width minor dimension for gather utilization
     */
    SimTime LedgerTime(const CostLedger& ledger,
                       std::size_t tensor_width) const;

    /**
     * RAPIDS-FIL-style traversal kernel: @p visits node evaluations with
     * average path length @p avg_path (deeper paths diverge more within a
     * warp) against a resident model of @p model_bytes.
     */
    SimTime TraversalKernelTime(double visits, double avg_path,
                                double model_bytes) const;

 private:
    GpuSpec spec_;
    PcieLink link_;
};

}  // namespace dbscore

#endif  // DBSCORE_GPUSIM_GPU_DEVICE_H
