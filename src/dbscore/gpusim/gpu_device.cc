#include "dbscore/gpusim/gpu_device.h"

#include <algorithm>

#include "dbscore/common/error.h"
#include "dbscore/fault/fault.h"

namespace dbscore {

GpuDeviceModel::GpuDeviceModel(const GpuSpec& spec,
                               const PcieLinkSpec& link_spec)
    : spec_(spec), link_(link_spec)
{
    if (spec.num_sms <= 0 || spec.lanes_per_sm <= 0 ||
        spec.clock_hz <= 0.0) {
        throw InvalidArgument("gpu: bad device parameters");
    }
}

SimTime
GpuDeviceModel::HostToDevice(std::uint64_t bytes) const
{
    return link_.TransferLatency(bytes);
}

SimTime
GpuDeviceModel::DeviceToHost(std::uint64_t bytes) const
{
    return link_.TransferLatency(bytes);
}

void
GpuDeviceModel::CheckKernelLaunchFault() const
{
    fault::CheckSite(fault::FaultSite::kGpuKernelLaunch);
}

double
GpuDeviceModel::L2MissFraction(double bytes) const
{
    if (bytes <= 0.0) {
        return 0.0;
    }
    double w = bytes / static_cast<double>(spec_.l2_bytes);
    return spec_.l2_miss_asymptote * w / (w + 1.0);
}

SimTime
GpuDeviceModel::KernelTime(double flops, double bytes, double compute_eff,
                           double memory_eff) const
{
    DBS_ASSERT(compute_eff > 0.0 && memory_eff > 0.0);
    SimTime compute = SimTime::Seconds(
        flops / (spec_.PeakFlops() * compute_eff));
    SimTime memory = SimTime::Seconds(
        bytes / (spec_.dram_bytes_per_second * memory_eff));
    return Max(compute, memory);
}

double
GpuDeviceModel::GatherUtilization(std::size_t tensor_width) const
{
    double w = static_cast<double>(std::max<std::size_t>(tensor_width, 1));
    return spec_.gather_efficiency * w / (w + 5.0);
}

SimTime
GpuDeviceModel::LedgerTime(const CostLedger& ledger,
                           std::size_t tensor_width) const
{
    SimTime total;

    const OpCost& gemm = ledger.Cost(OpKind::kGemm);
    total += KernelTime(static_cast<double>(gemm.flops),
                        static_cast<double>(gemm.bytes_read +
                                            gemm.bytes_written),
                        spec_.gemm_efficiency, spec_.streaming_efficiency);

    const double gather_util = GatherUtilization(tensor_width);
    const OpCost& gather = ledger.Cost(OpKind::kGather);
    total += KernelTime(static_cast<double>(gather.flops),
                        static_cast<double>(gather.bytes_read +
                                            gather.bytes_written),
                        spec_.gemm_efficiency, gather_util);

    OpCost streaming;
    streaming += ledger.Cost(OpKind::kCompare);
    streaming += ledger.Cost(OpKind::kReduce);
    streaming += ledger.Cost(OpKind::kElementwise);
    total += KernelTime(static_cast<double>(streaming.flops),
                        static_cast<double>(streaming.bytes_read +
                                            streaming.bytes_written),
                        spec_.gemm_efficiency, spec_.streaming_efficiency);

    total += spec_.kernel_launch *
             static_cast<double>(ledger.TotalInvocations());
    return total;
}

SimTime
GpuDeviceModel::TraversalKernelTime(double visits, double avg_path,
                                    double model_bytes) const
{
    // Warp-divergence inflation: deeper traversals fan threads of one
    // warp across more distinct paths (paper Section IV-C1).
    const double divergence = 1.0 + 0.1 * std::max(0.0, avg_path - 1.0);
    const double cycles_per_visit = 4.0;
    SimTime compute = SimTime::Seconds(
        visits * cycles_per_visit * divergence /
        (static_cast<double>(spec_.TotalLanes()) * spec_.clock_hz));

    // Node fetches that spill L2 go to DRAM (16-byte nodes).
    const double node_bytes = 16.0;
    const double dram_bytes =
        visits * node_bytes * L2MissFraction(model_bytes);
    SimTime memory = SimTime::Seconds(
        dram_bytes /
        (spec_.dram_bytes_per_second * spec_.streaming_efficiency));

    return Max(compute, memory);
}

}  // namespace dbscore
