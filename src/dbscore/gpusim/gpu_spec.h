/**
 * @file
 * GPU device description.
 *
 * Defaults model the NVIDIA Tesla P100 the paper uses (Azure NC6s_v2):
 * 56 SMs x 64 FP32 lanes at ~1.3 GHz (~9.3 TFLOP/s), 4 MB L2, HBM2 with
 * ~550 GB/s sustained bandwidth, PCIe 3.0 x16 host link.
 */
#ifndef DBSCORE_GPUSIM_GPU_SPEC_H
#define DBSCORE_GPUSIM_GPU_SPEC_H

#include <cstdint>
#include <string>

#include "dbscore/common/sim_time.h"

namespace dbscore {

/** Static GPU hardware parameters. */
struct GpuSpec {
    std::string name = "NVIDIA Tesla P100";
    int num_sms = 56;
    int lanes_per_sm = 64;
    double clock_hz = 1.303e9;
    std::uint64_t l2_bytes = 4ull * 1024 * 1024;
    /** Sustained HBM bandwidth (bytes/s); peak is 732 GB/s. */
    double dram_bytes_per_second = 550e9;
    /** Host-side cost of launching one kernel. */
    SimTime kernel_launch = SimTime::Micros(8.0);
    /** Device->host completion synchronization. */
    SimTime sync_latency = SimTime::Micros(10.0);

    /** Fraction of peak FLOP/s dense GEMM kernels achieve. */
    double gemm_efficiency = 0.45;
    /** Bandwidth fraction achieved by coalesced streaming kernels. */
    double streaming_efficiency = 0.85;
    /**
     * Asymptotic bandwidth fraction for gather-style kernels at full
     * occupancy; scaled down further for skinny tensors (see
     * GpuDeviceModel::GatherUtilization).
     */
    double gather_efficiency = 0.8;
    /** L2 miss asymptote for working sets much larger than L2. */
    double l2_miss_asymptote = 0.9;

    /** Total FP32 lanes. */
    int TotalLanes() const { return num_sms * lanes_per_sm; }

    /** Peak FP32 throughput (2 FLOPs per lane-cycle via FMA). */
    double
    PeakFlops() const
    {
        return 2.0 * TotalLanes() * clock_hz;
    }
};

}  // namespace dbscore

#endif  // DBSCORE_GPUSIM_GPU_SPEC_H
