#include "dbscore/fpgasim/inference_engine.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/fault/fault.h"

namespace dbscore {

FpgaInferenceEngine::FpgaInferenceEngine(const FpgaSpec& spec) : spec_(spec)
{
    if (spec.num_pes <= 0 || spec.clock_hz <= 0.0 ||
        spec.stream_floats_per_cycle <= 0) {
        throw InvalidArgument("fpga: bad device parameters");
    }
}

void
FpgaInferenceEngine::LoadModel(const RandomForest& forest)
{
    const auto max_depth = static_cast<std::size_t>(spec_.max_tree_depth);
    for (const auto& tree : forest.trees()) {
        if (tree.Depth() > max_depth) {
            throw CapacityError(StrFormat(
                "fpga: tree depth %zu exceeds the supported %d levels; "
                "deeper trees must be processed by the CPU",
                tree.Depth(), spec_.max_tree_depth));
        }
    }

    std::vector<TreeMemoryImage> images;
    images.reserve(forest.NumTrees());
    for (const auto& tree : forest.trees()) {
        images.push_back(LayoutTree(tree, max_depth));
    }

    // BRAM budget: one pass holds up to num_pes tree images plus the
    // result buffer. BRAM footprint is counted at spec_.node_bytes per
    // node (16 for the paper's float words, less for quantized formats)
    // even though the functional images always hold floats.
    const std::uint64_t per_tree =
        images.front().NumSlots() *
        static_cast<std::uint64_t>(spec_.node_bytes);
    const std::uint64_t widest_pass =
        std::min<std::uint64_t>(images.size(),
                                static_cast<std::uint64_t>(spec_.num_pes));
    const std::uint64_t used =
        widest_pass * per_tree + spec_.result_buffer_bytes;
    if (used > spec_.bram_bytes) {
        throw CapacityError(StrFormat(
            "fpga: model needs %s of BRAM but only %s is available",
            HumanBytes(used).c_str(),
            HumanBytes(spec_.bram_bytes).c_str()));
    }

    task_ = forest.task();
    num_classes_ = forest.num_classes();
    num_features_ = forest.num_features();
    images_ = std::move(images);
}

std::uint64_t
FpgaInferenceEngine::NumPasses() const
{
    DBS_ASSERT(loaded());
    const auto pes = static_cast<std::uint64_t>(spec_.num_pes);
    return (images_.size() + pes - 1) / pes;
}

std::uint64_t
FpgaInferenceEngine::ModelBytes() const
{
    DBS_ASSERT(loaded());
    std::uint64_t bytes = 0;
    for (const auto& image : images_) {
        bytes += image.NumSlots() *
                 static_cast<std::uint64_t>(spec_.node_bytes);
    }
    return bytes;
}

std::uint64_t
FpgaInferenceEngine::BramBytesUsed() const
{
    DBS_ASSERT(loaded());
    const std::uint64_t widest_pass =
        std::min<std::uint64_t>(images_.size(),
                                static_cast<std::uint64_t>(spec_.num_pes));
    return widest_pass * images_.front().NumSlots() *
               static_cast<std::uint64_t>(spec_.node_bytes) +
           spec_.result_buffer_bytes;
}

std::uint64_t
FpgaInferenceEngine::StreamCyclesPerRecord(std::size_t num_features) const
{
    const auto width =
        static_cast<std::uint64_t>(spec_.stream_floats_per_cycle);
    return std::max<std::uint64_t>(
        1, (num_features + width - 1) / width);
}

std::uint64_t
FpgaInferenceEngine::CyclesFor(std::uint64_t num_records,
                               std::size_t num_features) const
{
    DBS_ASSERT(loaded());
    const std::uint64_t per_pass =
        static_cast<std::uint64_t>(spec_.pipeline_fill_cycles) +
        num_records * StreamCyclesPerRecord(num_features);
    return NumPasses() * per_pass;
}

std::vector<float>
FpgaInferenceEngine::Score(const float* rows, std::size_t num_rows,
                           std::size_t num_cols,
                           FpgaRunReport* report) const
{
    if (!loaded()) {
        throw InvalidArgument("fpga: no model loaded");
    }
    if (num_cols != num_features_) {
        throw InvalidArgument("fpga: row arity mismatch");
    }

    // Programming the engine (CSR setup) happens before any record
    // streams in; a setup fault aborts the run before scoring.
    fault::CheckSite(fault::FaultSite::kFpgaSetup);

    std::vector<float> preds(num_rows);
    const bool classify = task_ == Task::kClassification;

    auto worker = [&](std::size_t begin, std::size_t end) {
        std::vector<int> votes;
        for (std::size_t r = begin; r < end; ++r) {
            const float* row = rows + r * num_cols;
            votes.clear();
            double sum = 0.0;
            for (const auto& image : images_) {
                float value = WalkTreeImage(image, row);
                if (classify) {
                    votes.push_back(static_cast<int>(std::lround(value)));
                } else {
                    sum += value;
                }
            }
            preds[r] = classify
                ? static_cast<float>(MajorityVote(votes, num_classes_))
                : static_cast<float>(
                      sum / static_cast<double>(images_.size()));
        }
    };
    if (num_rows >= 4096) {
        ThreadPool::Shared().ParallelForChunked(num_rows, worker);
    } else {
        worker(0, num_rows);
    }

    // The completion interrupt is the last thing the device does; a
    // fault here loses the finished results, which is what makes
    // completion faults as expensive as the paper's interrupt cost
    // ordering suggests.
    fault::CheckSite(fault::FaultSite::kFpgaCompletion);

    if (report != nullptr) {
        report->passes = NumPasses();
        report->stream_cycles_per_record = StreamCyclesPerRecord(num_cols);
        report->total_cycles = CyclesFor(num_rows, num_cols);
    }
    return preds;
}

}  // namespace dbscore
