#include "dbscore/fpgasim/quantize.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

void
ValidateSpec(const QuantizationSpec& spec)
{
    if (spec.total_bits < 4 || spec.total_bits > 32 ||
        spec.fraction_bits < 0 || spec.fraction_bits >= spec.total_bits) {
        throw InvalidArgument("quantize: bad fixed-point format");
    }
}

}  // namespace

double
QuantizationStep(const QuantizationSpec& spec)
{
    ValidateSpec(spec);
    return std::pow(2.0, -spec.fraction_bits);
}

float
QuantizeValue(float value, const QuantizationSpec& spec)
{
    ValidateSpec(spec);
    const double scale = std::pow(2.0, spec.fraction_bits);
    const double max_code =
        std::pow(2.0, spec.total_bits - 1) - 1.0;  // signed
    double code = std::nearbyint(static_cast<double>(value) * scale);
    code = std::clamp(code, -max_code - 1.0, max_code);
    return static_cast<float>(code / scale);
}

RandomForest
QuantizeForest(const RandomForest& forest, const QuantizationSpec& spec)
{
    ValidateSpec(spec);
    RandomForest out(forest.task(), forest.num_features(),
                     forest.num_classes());
    const bool quantize_leaves = forest.task() == Task::kRegression;
    for (const auto& tree : forest.trees()) {
        DecisionTree q;
        for (std::size_t i = 0; i < tree.NumNodes(); ++i) {
            auto node = static_cast<std::int32_t>(i);
            if (tree.IsLeaf(node)) {
                float value = tree.LeafValue(node);
                q.AddLeafNode(quantize_leaves ? QuantizeValue(value, spec)
                                              : value);
            } else {
                std::int32_t id = q.AddDecisionNode(
                    tree.Feature(node),
                    QuantizeValue(tree.Threshold(node), spec));
                q.SetChildren(id, tree.Left(node), tree.Right(node));
            }
        }
        out.AddTree(std::move(q));
    }
    return out;
}

std::uint64_t
QuantizedNodeBytes(const QuantizationSpec& spec)
{
    ValidateSpec(spec);
    const std::uint64_t word_bytes =
        (static_cast<std::uint64_t>(spec.total_bits) + 7) / 8;
    return 4 * word_bytes;
}

double
QuantizationDisagreement(const RandomForest& original,
                         const RandomForest& quantized,
                         const Dataset& data)
{
    if (data.num_rows() == 0 ||
        data.num_features() != original.num_features()) {
        throw InvalidArgument("quantize: data does not match model");
    }
    auto a = original.PredictBatch(data);
    auto b = quantized.PredictBatch(data);
    std::size_t differ = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
            ++differ;
        }
    }
    return static_cast<double>(differ) / static_cast<double>(a.size());
}

}  // namespace dbscore
