/**
 * @file
 * FPGA device description.
 *
 * Defaults model the paper's accelerator: an Intel Stratix 10 GX 2800 with
 * ~28.6 MB of BRAM, a 250 MHz inference-engine clock, 128 processing
 * elements (one tree each, up to 10 levels), the 4-word-per-node tree
 * memory layout of Figure 4b, and a pipelined input streamer that admits
 * one new record per cycle once its features have been delivered.
 */
#ifndef DBSCORE_FPGASIM_FPGA_SPEC_H
#define DBSCORE_FPGASIM_FPGA_SPEC_H

#include <cstdint>
#include <string>

#include "dbscore/common/sim_time.h"

namespace dbscore {

/** Static FPGA parameters. */
struct FpgaSpec {
    std::string name = "Intel Stratix 10 GX 2800";
    double clock_hz = 250e6;
    /** Total on-chip BRAM available (paper: ~28.6 MB). */
    std::uint64_t bram_bytes = 28600ull * 1024;
    /** Processing elements; each scores one tree per pass. */
    int num_pes = 128;
    /** Deepest tree the engine supports (paper limit). */
    int max_tree_depth = 10;
    /** Bytes per tree node in BRAM: 4 words x 4 bytes (Fig. 4b). */
    int node_bytes = 16;
    /**
     * Feature words the input broadcast bus delivers per cycle. A record
     * with F features occupies ceil(F / width) streaming cycles, so wide
     * datasets (HIGGS) score slower than narrow ones (IRIS).
     */
    int stream_floats_per_cycle = 4;
    /** Pipeline fill/drain cycles per engine pass. */
    int pipeline_fill_cycles = 32;
    /** On-chip result memory drained back to the host in chunks. */
    std::uint64_t result_buffer_bytes = 2ull * 1024 * 1024;
};

}  // namespace dbscore

#endif  // DBSCORE_FPGASIM_FPGA_SPEC_H
