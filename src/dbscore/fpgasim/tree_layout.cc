#include "dbscore/fpgasim/tree_layout.h"

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

constexpr float kLeafMarker = -1.0f;
constexpr float kContinuationMarker = -2.0f;

/** Writes @p tree's node @p node into image slot @p slot recursively. */
void
PlaceNode(const DecisionTree& tree, std::int32_t node, std::size_t slot,
          std::size_t depth_left, bool truncate, TreeMemoryImage& image)
{
    float* w = image.words.data() + slot * 4;
    if (tree.IsLeaf(node)) {
        w[0] = kLeafMarker;
        w[1] = 0.0f;
        w[2] = 0.0f;
        w[3] = tree.LeafValue(node);
        return;
    }
    if (depth_left == 0) {
        if (truncate) {
            w[0] = kContinuationMarker;
            w[1] = 0.0f;
            w[2] = 0.0f;
            w[3] = static_cast<float>(node);
            return;
        }
        throw CapacityError(
            "fpga layout: tree deeper than the padded depth");
    }
    const std::size_t left = 2 * slot + 1;
    const std::size_t right = 2 * slot + 2;
    w[0] = static_cast<float>(left);
    w[1] = static_cast<float>(right);
    w[2] = static_cast<float>(tree.Feature(node));
    w[3] = tree.Threshold(node);
    PlaceNode(tree, tree.Left(node), left, depth_left - 1, truncate,
              image);
    PlaceNode(tree, tree.Right(node), right, depth_left - 1, truncate,
              image);
}

TreeMemoryImage
LayoutImpl(const DecisionTree& tree, std::size_t depth, bool truncate)
{
    if (tree.Empty()) {
        throw InvalidArgument("fpga layout: empty tree");
    }
    TreeMemoryImage image;
    image.depth = depth;
    image.words.assign(FullTreeSlots(depth) * 4, 0.0f);
    PlaceNode(tree, 0, 0, depth, truncate, image);
    return image;
}

}  // namespace

std::size_t
FullTreeSlots(std::size_t depth)
{
    return (std::size_t{1} << (depth + 1)) - 1;
}

TreeMemoryImage
LayoutTree(const DecisionTree& tree, std::size_t depth)
{
    return LayoutImpl(tree, depth, /*truncate=*/false);
}

TreeMemoryImage
LayoutTreeTop(const DecisionTree& tree, std::size_t depth)
{
    return LayoutImpl(tree, depth, /*truncate=*/true);
}

float
WalkTreeImage(const TreeMemoryImage& image, const float* row)
{
    PartialWalkResult result = WalkTreeImagePartial(image, row);
    DBS_ASSERT_MSG(!result.continued,
                   "full walk hit a continuation slot");
    return result.value;
}

PartialWalkResult
WalkTreeImagePartial(const TreeMemoryImage& image, const float* row)
{
    std::size_t slot = 0;
    const std::size_t num_slots = image.NumSlots();
    for (;;) {
        DBS_ASSERT(slot < num_slots);
        const float* w = image.words.data() + slot * 4;
        if (w[0] == kLeafMarker) {
            return PartialWalkResult{w[3], false, -1};
        }
        if (w[0] == kContinuationMarker) {
            return PartialWalkResult{
                0.0f, true, static_cast<std::int32_t>(w[3])};
        }
        const auto feature = static_cast<std::size_t>(w[2]);
        slot = static_cast<std::size_t>(
            row[feature] <= w[3] ? w[0] : w[1]);
    }
}

}  // namespace dbscore
