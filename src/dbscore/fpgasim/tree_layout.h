/**
 * @file
 * The Figure-4b tree memory layout.
 *
 * Each node occupies four 32-bit words in a PE's BRAM tree memory:
 *
 *   word 0: left-child slot index, or a negative value marking a leaf
 *   word 1: right-child slot index
 *   word 2: comparison attribute (feature id)
 *   word 3: comparison value (threshold), or the leaf's output value
 *
 * The layout assumes a full binary tree with no missing nodes: slot s's
 * children live at 2s+1 and 2s+2, and a depth-d tree reserves 2^(d+1)-1
 * slots whether or not the real tree fills them — exactly the BRAM
 * footprint rule the paper describes ("each tree consumes a memory
 * footprint equaling 2^10 words").
 */
#ifndef DBSCORE_FPGASIM_TREE_LAYOUT_H
#define DBSCORE_FPGASIM_TREE_LAYOUT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbscore/forest/tree.h"

namespace dbscore {

/** One tree's BRAM image. */
struct TreeMemoryImage {
    /** Padded depth the image was laid out for. */
    std::size_t depth = 0;
    /** 4 floats per slot, 2^(depth+1)-1 slots, heap order. */
    std::vector<float> words;

    std::size_t NumSlots() const { return words.size() / 4; }
    std::uint64_t ByteSize() const { return words.size() * sizeof(float); }
};

/** Number of node slots a full binary tree of @p depth reserves. */
std::size_t FullTreeSlots(std::size_t depth);

/**
 * Lays a tree out into the Fig.-4b memory image padded to @p depth.
 *
 * @throws CapacityError if the tree is deeper than @p depth
 */
TreeMemoryImage LayoutTree(const DecisionTree& tree, std::size_t depth);

/**
 * Lays out only the top @p depth levels. Internal nodes that would sit
 * below the cut become *continuation slots* (word 0 = -2, word 3 = the
 * original tree node id), implementing the paper's proposed extension:
 * "send the results of processing 10 levels of trees back to the CPU so
 * that the rest of the operation ... be done on the CPU".
 */
TreeMemoryImage LayoutTreeTop(const DecisionTree& tree, std::size_t depth);

/**
 * Functionally walks a memory image exactly as a PE would: fetch the
 * 4-word node at the current slot, stop on a negative word 0, otherwise
 * compare row[word2] against word3 and move to the word-0/word-1 slot.
 *
 * The image must be continuation-free (from LayoutTree).
 */
float WalkTreeImage(const TreeMemoryImage& image, const float* row);

/** Outcome of a partial walk over a possibly truncated image. */
struct PartialWalkResult {
    /** Leaf value when !continued; undefined otherwise. */
    float value = 0.0f;
    /** True when the walk hit a continuation slot. */
    bool continued = false;
    /** Original tree node id to resume from when continued. */
    std::int32_t resume_node = -1;
};

/** Walks a (possibly truncated) image; see PartialWalkResult. */
PartialWalkResult WalkTreeImagePartial(const TreeMemoryImage& image,
                                       const float* row);

}  // namespace dbscore

#endif  // DBSCORE_FPGASIM_TREE_LAYOUT_H
