/**
 * @file
 * Fixed-point quantization of tree models for FPGA deployment.
 *
 * The paper's engine stores 4 x 32-bit words per node and notes that
 * "as the model gets more complex ... the FPGA memory resources become
 * the limiting factor". Real FPGA inference engines shrink that
 * footprint by storing comparison values in fixed point. This module
 * quantizes a forest's thresholds (and regression leaf values) to a
 * signed Qm.n format so the BRAM-capacity trade-off can be studied:
 * narrower words -> more trees per pass -> fewer passes, at some
 * accuracy cost.
 */
#ifndef DBSCORE_FPGASIM_QUANTIZE_H
#define DBSCORE_FPGASIM_QUANTIZE_H

#include <cstdint>

#include "dbscore/forest/forest.h"

namespace dbscore {

/** Signed fixed-point format Q(total-frac-1).(frac). */
struct QuantizationSpec {
    /** Total bits per stored word, sign included (4..32). */
    int total_bits = 16;
    /** Fractional bits. */
    int fraction_bits = 8;
};

/** Smallest representable step (2^-fraction_bits). */
double QuantizationStep(const QuantizationSpec& spec);

/**
 * Rounds @p value to the nearest representable fixed-point value,
 * clamping to the format's range.
 *
 * @throws InvalidArgument for nonsensical bit widths
 */
float QuantizeValue(float value, const QuantizationSpec& spec);

/**
 * Returns a copy of @p forest with every threshold (and, for regression,
 * every leaf value) quantized. Classification leaf class ids are already
 * integers and pass through unchanged.
 */
RandomForest QuantizeForest(const RandomForest& forest,
                            const QuantizationSpec& spec);

/**
 * Bytes per node in a quantized Fig.-4b layout: four words of
 * ceil(total_bits / 8) bytes each.
 */
std::uint64_t QuantizedNodeBytes(const QuantizationSpec& spec);

/**
 * Fraction of rows whose prediction changes after quantization — the
 * accuracy cost of the narrower format.
 */
double QuantizationDisagreement(const RandomForest& original,
                                const RandomForest& quantized,
                                const Dataset& data);

}  // namespace dbscore

#endif  // DBSCORE_FPGASIM_QUANTIZE_H
