/**
 * @file
 * Cycle-approximate simulator of the paper's FPGA random-forest inference
 * engine (Figure 5): up to 128 processing elements, each holding one tree
 * image in BRAM, a shared input streamer broadcasting records to all PEs,
 * a majority-voting unit, and an on-chip result memory.
 *
 * Functional behaviour: every record is scored by walking each PE's
 * Fig.-4b memory image (via WalkTreeImage), and votes are combined with
 * the same MajorityVote used everywhere — so the simulator validates the
 * memory layout, not just the timing.
 *
 * Timing behaviour: records are fully pipelined; a new record enters every
 * ceil(features / stream_width) cycles. Models with more trees than PEs
 * run in multiple passes ("we need to call the inference engine multiple
 * times"), each re-streaming the records and reloading tree memories.
 */
#ifndef DBSCORE_FPGASIM_INFERENCE_ENGINE_H
#define DBSCORE_FPGASIM_INFERENCE_ENGINE_H

#include <cstdint>
#include <vector>

#include "dbscore/forest/forest.h"
#include "dbscore/fpgasim/fpga_spec.h"
#include "dbscore/fpgasim/tree_layout.h"

namespace dbscore {

/** Timing report for one scoring run. */
struct FpgaRunReport {
    std::uint64_t total_cycles = 0;
    std::uint64_t passes = 0;
    std::uint64_t stream_cycles_per_record = 0;

    SimTime
    ScoringTime(double clock_hz) const
    {
        return SimTime::Cycles(static_cast<double>(total_cycles), clock_hz);
    }
};

/** The simulated inference engine. */
class FpgaInferenceEngine {
 public:
    explicit FpgaInferenceEngine(const FpgaSpec& spec);

    const FpgaSpec& spec() const { return spec_; }

    /**
     * Programs tree memories with @p forest.
     *
     * @throws CapacityError if any tree exceeds max_tree_depth or the
     *         per-pass BRAM budget (tree memories + result buffer) does
     *         not fit
     */
    void LoadModel(const RandomForest& forest);

    bool loaded() const { return !images_.empty(); }

    /** Trees laid out (one BRAM image per tree). */
    std::size_t NumTrees() const { return images_.size(); }

    /** Engine passes needed: ceil(trees / PEs). */
    std::uint64_t NumPasses() const;

    /** Total model bytes transferred into tree memories (all passes). */
    std::uint64_t ModelBytes() const;

    /** BRAM bytes occupied during the widest pass. */
    std::uint64_t BramBytesUsed() const;

    /** Cycles streaming one record into the PEs. */
    std::uint64_t StreamCyclesPerRecord(std::size_t num_features) const;

    /** Cycle count for scoring @p num_records records. */
    std::uint64_t CyclesFor(std::uint64_t num_records,
                            std::size_t num_features) const;

    /**
     * Functionally scores rows by walking the BRAM images and fills
     * @p report with the cycle model's output.
     *
     * @throws InvalidArgument if no model is loaded or arity mismatches
     */
    std::vector<float> Score(const float* rows, std::size_t num_rows,
                             std::size_t num_cols,
                             FpgaRunReport* report) const;

 private:
    FpgaSpec spec_;
    Task task_ = Task::kClassification;
    int num_classes_ = 0;
    std::size_t num_features_ = 0;
    std::vector<TreeMemoryImage> images_;
};

}  // namespace dbscore

#endif  // DBSCORE_FPGASIM_INFERENCE_ENGINE_H
