#include "dbscore/forest/prune.h"

#include <cmath>
#include <map>
#include <vector>

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

/**
 * Probability-weighted outcome of the subtree rooted at @p node: the
 * class with the largest summed reach probability (classification,
 * ties toward the lowest class id) or the weighted mean (regression).
 */
float
CollapsedValue(const DecisionTree& tree, std::int32_t node, Task task,
               int num_classes)
{
    std::vector<double> class_weight(
        task == Task::kClassification
            ? static_cast<std::size_t>(num_classes)
            : 0,
        0.0);
    double weighted_sum = 0.0;
    double total_weight = 0.0;

    struct Frame {
        std::int32_t node;
        double weight;
    };
    std::vector<Frame> stack{{node, 1.0}};
    while (!stack.empty()) {
        Frame frame = stack.back();
        stack.pop_back();
        if (tree.IsLeaf(frame.node)) {
            float value = tree.LeafValue(frame.node);
            if (task == Task::kClassification) {
                auto cls = static_cast<std::size_t>(std::lround(value));
                DBS_ASSERT(cls < class_weight.size());
                class_weight[cls] += frame.weight;
            } else {
                weighted_sum += frame.weight * value;
            }
            total_weight += frame.weight;
            continue;
        }
        stack.push_back({tree.Left(frame.node), frame.weight * 0.5});
        stack.push_back({tree.Right(frame.node), frame.weight * 0.5});
    }
    DBS_ASSERT(total_weight > 0.0);

    if (task == Task::kClassification) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < class_weight.size(); ++c) {
            if (class_weight[c] > class_weight[best]) {
                best = c;
            }
        }
        return static_cast<float>(best);
    }
    return static_cast<float>(weighted_sum / total_weight);
}

/** Copies @p node into @p out, collapsing below @p depth_left levels. */
std::int32_t
CopyPruned(const DecisionTree& tree, std::int32_t node,
           std::size_t depth_left, Task task, int num_classes,
           DecisionTree& out)
{
    if (tree.IsLeaf(node)) {
        return out.AddLeafNode(tree.LeafValue(node));
    }
    if (depth_left == 0) {
        return out.AddLeafNode(
            CollapsedValue(tree, node, task, num_classes));
    }
    std::int32_t id =
        out.AddDecisionNode(tree.Feature(node), tree.Threshold(node));
    std::int32_t left = CopyPruned(tree, tree.Left(node), depth_left - 1,
                                   task, num_classes, out);
    std::int32_t right = CopyPruned(tree, tree.Right(node),
                                    depth_left - 1, task, num_classes,
                                    out);
    out.SetChildren(id, left, right);
    return id;
}

}  // namespace

DecisionTree
PruneTreeToDepth(const DecisionTree& tree, std::size_t max_depth,
                 Task task, int num_classes)
{
    if (max_depth == 0) {
        throw InvalidArgument("prune: max_depth must be positive");
    }
    if (tree.Empty()) {
        throw InvalidArgument("prune: empty tree");
    }
    DecisionTree out;
    CopyPruned(tree, 0, max_depth, task, num_classes, out);
    return out;
}

RandomForest
PruneForestToDepth(const RandomForest& forest, std::size_t max_depth)
{
    RandomForest out(forest.task(), forest.num_features(),
                     forest.num_classes());
    for (const auto& tree : forest.trees()) {
        out.AddTree(PruneTreeToDepth(tree, max_depth, forest.task(),
                                     forest.num_classes()));
    }
    return out;
}

double
PruningDisagreement(const RandomForest& forest, std::size_t max_depth,
                    const Dataset& data)
{
    if (data.num_rows() == 0 ||
        data.num_features() != forest.num_features()) {
        throw InvalidArgument("prune: data does not match model");
    }
    RandomForest pruned = PruneForestToDepth(forest, max_depth);
    auto a = forest.PredictBatch(data);
    auto b = pruned.PredictBatch(data);
    std::size_t differ = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
            ++differ;
        }
    }
    return static_cast<double>(differ) / static_cast<double>(a.size());
}

}  // namespace dbscore
