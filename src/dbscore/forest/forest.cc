#include "dbscore/forest/forest.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"

namespace dbscore {

RandomForest::RandomForest(Task task, std::size_t num_features,
                           int num_classes)
    : task_(task), num_features_(num_features), num_classes_(num_classes)
{
    if (num_features == 0) {
        throw InvalidArgument("forest: num_features must be positive");
    }
    if (task == Task::kClassification && num_classes < 2) {
        throw InvalidArgument("forest: classification needs >= 2 classes");
    }
    if (task == Task::kRegression && num_classes != 0) {
        throw InvalidArgument("forest: regression must have 0 classes");
    }
}

void
RandomForest::AddTree(DecisionTree tree)
{
    if (tree.Empty()) {
        throw InvalidArgument("forest: cannot add an empty tree");
    }
    trees_.push_back(std::move(tree));
}

const DecisionTree&
RandomForest::Tree(std::size_t i) const
{
    DBS_ASSERT(i < trees_.size());
    return trees_[i];
}

int
MajorityVote(const std::vector<int>& votes, int num_classes)
{
    DBS_ASSERT(num_classes >= 2);
    DBS_ASSERT(!votes.empty());
    std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
    for (int v : votes) {
        DBS_ASSERT(v >= 0 && v < num_classes);
        ++counts[static_cast<std::size_t>(v)];
    }
    int best = 0;
    for (int c = 1; c < num_classes; ++c) {
        // Strict > keeps the lowest class id on ties.
        if (counts[static_cast<std::size_t>(c)] >
            counts[static_cast<std::size_t>(best)]) {
            best = c;
        }
    }
    return best;
}

float
RandomForest::Predict(const float* row) const
{
    DBS_ASSERT_MSG(!trees_.empty(), "predict on an untrained forest");
    if (task_ == Task::kRegression) {
        double sum = 0.0;
        for (const auto& tree : trees_) {
            sum += tree.Predict(row);
        }
        return static_cast<float>(sum / static_cast<double>(trees_.size()));
    }
    std::vector<int> votes;
    votes.reserve(trees_.size());
    for (const auto& tree : trees_) {
        votes.push_back(static_cast<int>(std::lround(tree.Predict(row))));
    }
    return static_cast<float>(MajorityVote(votes, num_classes_));
}

std::vector<float>
RandomForest::PredictBatch(const float* rows, std::size_t num_rows,
                           std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest: row arity mismatch");
    }
    std::vector<float> out(num_rows);
    auto worker = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            out[i] = Predict(rows + i * num_cols);
        }
    };
    if (num_rows >= 4096) {
        ThreadPool::Shared().ParallelForChunked(num_rows, worker);
    } else {
        worker(0, num_rows);
    }
    return out;
}

std::vector<float>
RandomForest::PredictBatch(const Dataset& data) const
{
    return PredictBatch(data.values().data(), data.num_rows(),
                        data.num_features());
}

double
RandomForest::Accuracy(const Dataset& data) const
{
    DBS_ASSERT(data.num_rows() > 0);
    std::vector<float> preds = PredictBatch(data);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == data.Label(i)) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(preds.size());
}

std::size_t
RandomForest::MaxDepth() const
{
    std::size_t depth = 0;
    for (const auto& tree : trees_) {
        depth = std::max(depth, tree.Depth());
    }
    return depth;
}

std::size_t
RandomForest::TotalNodes() const
{
    std::size_t nodes = 0;
    for (const auto& tree : trees_) {
        nodes += tree.NumNodes();
    }
    return nodes;
}

void
RandomForest::Validate() const
{
    if (trees_.empty()) {
        throw ParseError("forest: no trees");
    }
    for (const auto& tree : trees_) {
        tree.Validate(num_features_);
    }
}

}  // namespace dbscore
