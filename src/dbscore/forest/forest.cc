#include "dbscore/forest/forest.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/forest/forest_kernel.h"

namespace dbscore {

RandomForest::RandomForest(Task task, std::size_t num_features,
                           int num_classes)
    : task_(task), num_features_(num_features), num_classes_(num_classes)
{
    if (num_features == 0) {
        throw InvalidArgument("forest: num_features must be positive");
    }
    if (task == Task::kClassification && num_classes < 2) {
        throw InvalidArgument("forest: classification needs >= 2 classes");
    }
    if (task == Task::kRegression && num_classes != 0) {
        throw InvalidArgument("forest: regression must have 0 classes");
    }
}

RandomForest::RandomForest(const RandomForest& other)
    : task_(other.task_),
      num_features_(other.num_features_),
      num_classes_(other.num_classes_),
      trees_(other.trees_)
{
    std::lock_guard<std::mutex> lock(other.kernel_mutex_);
    kernel_ = other.kernel_;
    kernel_options_ = other.kernel_options_;
}

RandomForest&
RandomForest::operator=(const RandomForest& other)
{
    if (this != &other) {
        task_ = other.task_;
        num_features_ = other.num_features_;
        num_classes_ = other.num_classes_;
        trees_ = other.trees_;
        std::shared_ptr<const ForestKernel> kernel;
        ForestKernelOptions kernel_options;
        {
            std::lock_guard<std::mutex> lock(other.kernel_mutex_);
            kernel = other.kernel_;
            kernel_options = other.kernel_options_;
        }
        std::lock_guard<std::mutex> lock(kernel_mutex_);
        kernel_ = std::move(kernel);
        kernel_options_ = kernel_options;
    }
    return *this;
}

RandomForest::RandomForest(RandomForest&& other) noexcept
    : task_(other.task_),
      num_features_(other.num_features_),
      num_classes_(other.num_classes_),
      trees_(std::move(other.trees_))
{
    std::lock_guard<std::mutex> lock(other.kernel_mutex_);
    kernel_ = std::move(other.kernel_);
    kernel_options_ = other.kernel_options_;
}

RandomForest&
RandomForest::operator=(RandomForest&& other) noexcept
{
    if (this != &other) {
        task_ = other.task_;
        num_features_ = other.num_features_;
        num_classes_ = other.num_classes_;
        trees_ = std::move(other.trees_);
        std::shared_ptr<const ForestKernel> kernel;
        ForestKernelOptions kernel_options;
        {
            std::lock_guard<std::mutex> lock(other.kernel_mutex_);
            kernel = std::move(other.kernel_);
            kernel_options = other.kernel_options_;
        }
        std::lock_guard<std::mutex> lock(kernel_mutex_);
        kernel_ = std::move(kernel);
        kernel_options_ = kernel_options;
    }
    return *this;
}

void
RandomForest::AddTree(DecisionTree tree)
{
    if (tree.Empty()) {
        throw InvalidArgument("forest: cannot add an empty tree");
    }
    trees_.push_back(std::move(tree));
    // The compiled plan no longer matches the ensemble.
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    kernel_.reset();
}

std::shared_ptr<const ForestKernel>
RandomForest::Kernel() const
{
    return Kernel(ForestKernelOptions{});
}

std::shared_ptr<const ForestKernel>
RandomForest::Kernel(const ForestKernelOptions& options) const
{
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    // Options are part of the cache key: a cached plan built with
    // different options must not be served as if it honored these.
    if (kernel_ == nullptr || !(kernel_options_ == options)) {
        kernel_ = std::make_shared<const ForestKernel>(*this, options);
        kernel_options_ = options;
    }
    return kernel_;
}

const DecisionTree&
RandomForest::Tree(std::size_t i) const
{
    DBS_ASSERT(i < trees_.size());
    return trees_[i];
}

int
MajorityVote(const std::vector<int>& votes, int num_classes)
{
    DBS_ASSERT(num_classes >= 2);
    DBS_ASSERT(!votes.empty());
    std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
    for (int v : votes) {
        DBS_ASSERT(v >= 0 && v < num_classes);
        ++counts[static_cast<std::size_t>(v)];
    }
    int best = 0;
    for (int c = 1; c < num_classes; ++c) {
        // Strict > keeps the lowest class id on ties.
        if (counts[static_cast<std::size_t>(c)] >
            counts[static_cast<std::size_t>(best)]) {
            best = c;
        }
    }
    return best;
}

namespace {

/** Classes a scalar Predict call counts on the stack, not the heap. */
constexpr int kStackVoteClasses = 32;

}  // namespace

float
RandomForest::Predict(const float* row) const
{
    DBS_ASSERT_MSG(!trees_.empty(), "predict on an untrained forest");
    if (task_ == Task::kRegression) {
        double sum = 0.0;
        for (const auto& tree : trees_) {
            sum += tree.Predict(row);
        }
        return static_cast<float>(sum / static_cast<double>(trees_.size()));
    }
    if (num_classes_ <= kStackVoteClasses) {
        // Common case: count votes in a fixed stack buffer instead of
        // heap-allocating a vote vector per row.
        int counts[kStackVoteClasses] = {0};
        for (const auto& tree : trees_) {
            const int v = static_cast<int>(std::lround(tree.Predict(row)));
            DBS_ASSERT(v >= 0 && v < num_classes_);
            ++counts[v];
        }
        int best = 0;
        for (int c = 1; c < num_classes_; ++c) {
            // Strict > keeps the lowest class id on ties.
            if (counts[c] > counts[best]) {
                best = c;
            }
        }
        return static_cast<float>(best);
    }
    std::vector<int> votes;
    votes.reserve(trees_.size());
    for (const auto& tree : trees_) {
        votes.push_back(static_cast<int>(std::lround(tree.Predict(row))));
    }
    return static_cast<float>(MajorityVote(votes, num_classes_));
}

std::vector<float>
RandomForest::PredictBatchScalar(const float* rows, std::size_t num_rows,
                                 std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest: row arity mismatch");
    }
    std::vector<float> out(num_rows);
    auto worker = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            out[i] = Predict(rows + i * num_cols);
        }
    };
    if (num_rows >= kParallelRowCutoff) {
        ThreadPool::Shared().ParallelForChunked(num_rows, worker);
    } else {
        worker(0, num_rows);
    }
    return out;
}

std::vector<float>
RandomForest::PredictBatch(const float* rows, std::size_t num_rows,
                           std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest: row arity mismatch");
    }
    if (!ForestKernel::Supports(*this)) {
        return PredictBatchScalar(rows, num_rows, num_cols);
    }
    return Kernel()->Predict(rows, num_rows, num_cols);
}

std::vector<float>
RandomForest::PredictBatch(const RowView& rows) const
{
    if (rows.empty()) {
        return {};
    }
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest: row arity mismatch");
    }
    if (!ForestKernel::Supports(*this)) {
        if (rows.contiguous()) {
            return PredictBatchScalar(rows.data(), rows.rows(),
                                      num_features_);
        }
        std::vector<float> out(rows.rows());
        for (std::size_t i = 0; i < rows.rows(); ++i) {
            out[i] = Predict(rows.Row(i));
        }
        return out;
    }
    return Kernel()->Predict(rows);
}

std::vector<float>
RandomForest::PredictBatch(const Dataset& data) const
{
    return PredictBatch(data.View());
}

double
RandomForest::Accuracy(const Dataset& data) const
{
    DBS_ASSERT(data.num_rows() > 0);
    std::vector<float> preds = PredictBatch(data);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == data.Label(i)) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(preds.size());
}

std::size_t
RandomForest::MaxDepth() const
{
    std::size_t depth = 0;
    for (const auto& tree : trees_) {
        depth = std::max(depth, tree.Depth());
    }
    return depth;
}

std::size_t
RandomForest::TotalNodes() const
{
    std::size_t nodes = 0;
    for (const auto& tree : trees_) {
        nodes += tree.NumNodes();
    }
    return nodes;
}

void
RandomForest::Validate() const
{
    if (trees_.empty()) {
        throw ParseError("forest: no trees");
    }
    for (const auto& tree : trees_) {
        tree.Validate(num_features_);
    }
}

}  // namespace dbscore
