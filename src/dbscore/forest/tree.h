/**
 * @file
 * Binary decision tree with structure-of-arrays node storage.
 *
 * Semantics follow Scikit-learn's convention: at a decision node the input
 * goes left when x[feature] <= threshold, otherwise right. Leaf nodes carry
 * a single float value: the predicted class id for classification trees or
 * the mean target for regression trees.
 */
#ifndef DBSCORE_FOREST_TREE_H
#define DBSCORE_FOREST_TREE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbscore {

/** Sentinel feature id marking a leaf node. */
inline constexpr std::int32_t kLeafFeature = -1;

/** A single decision tree. Node 0 is the root. */
class DecisionTree {
 public:
    /**
     * Appends a decision node and returns its id. Children may be added
     * later; set them with SetChildren.
     */
    std::int32_t AddDecisionNode(std::int32_t feature, float threshold);

    /** Appends a leaf node carrying @p value and returns its id. */
    std::int32_t AddLeafNode(float value);

    /** Wires children of decision node @p node. */
    void SetChildren(std::int32_t node, std::int32_t left,
                     std::int32_t right);

    std::size_t NumNodes() const { return feature_.size(); }
    bool Empty() const { return feature_.empty(); }

    bool
    IsLeaf(std::int32_t node) const
    {
        return feature_[static_cast<std::size_t>(node)] == kLeafFeature;
    }

    std::int32_t Feature(std::int32_t n) const { return feature_[Idx(n)]; }
    float Threshold(std::int32_t n) const { return threshold_[Idx(n)]; }
    std::int32_t Left(std::int32_t n) const { return left_[Idx(n)]; }
    std::int32_t Right(std::int32_t n) const { return right_[Idx(n)]; }
    float LeafValue(std::int32_t n) const { return value_[Idx(n)]; }

    /** Raw arrays, used by engines that recompile the tree. */
    const std::vector<std::int32_t>& features() const { return feature_; }
    const std::vector<float>& thresholds() const { return threshold_; }
    const std::vector<std::int32_t>& lefts() const { return left_; }
    const std::vector<std::int32_t>& rights() const { return right_; }
    const std::vector<float>& values() const { return value_; }

    /** Root-to-leaf traversal; returns the reached leaf's value. */
    float Predict(const float* row) const;

    /** Id of the leaf reached by @p row. */
    std::int32_t PredictLeaf(const float* row) const;

    /** Number of edges on the longest root-to-leaf path (leaf-only = 0). */
    std::size_t Depth() const;

    std::size_t NumLeaves() const;

    /** Number of edges traversed to classify @p row. */
    std::size_t PathLength(const float* row) const;

    /**
     * Structural validation: every node reachable exactly once from the
     * root, child ids in range, decision nodes have two children.
     *
     * @throws ParseError when the structure is corrupt (used after
     *         deserialization; internal builders assert instead).
     */
    void Validate(std::size_t num_features) const;

 private:
    std::size_t Idx(std::int32_t n) const;

    std::vector<std::int32_t> feature_;
    std::vector<float> threshold_;
    std::vector<std::int32_t> left_;
    std::vector<std::int32_t> right_;
    std::vector<float> value_;
};

}  // namespace dbscore

#endif  // DBSCORE_FOREST_TREE_H
