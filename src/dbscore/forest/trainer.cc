#include "dbscore/forest/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"
#include "dbscore/common/thread_pool.h"

namespace dbscore {

namespace {

/** Per-tree builder state; owns scratch buffers reused across nodes. */
class TreeBuilder {
 public:
    TreeBuilder(const Dataset& data, const ForestTrainerConfig& config,
                Rng rng)
        : data_(data),
          config_(config),
          rng_(rng),
          num_classes_(std::max(data.num_classes(), 0)),
          class_counts_(static_cast<std::size_t>(
              std::max(data.num_classes(), 2)))
    {
        std::size_t f = data_.num_features();
        double fraction = config.max_features_fraction;
        if (fraction <= 0.0) {
            if (data_.task() == Task::kClassification) {
                features_per_split_ = static_cast<std::size_t>(
                    std::lround(std::sqrt(static_cast<double>(f))));
            } else {
                features_per_split_ = f / 3;
            }
        } else {
            features_per_split_ = static_cast<std::size_t>(
                std::lround(fraction * static_cast<double>(f)));
        }
        features_per_split_ = std::clamp<std::size_t>(
            features_per_split_, 1, f);
        all_features_.resize(f);
        std::iota(all_features_.begin(), all_features_.end(), 0);
    }

    DecisionTree
    Build()
    {
        std::vector<std::size_t> indices = SampleRows();
        DecisionTree tree;
        BuildNode(tree, indices, 0, indices.size(), 0);
        return tree;
    }

 private:
    struct SplitChoice {
        bool found = false;
        std::size_t feature = 0;
        float threshold = 0.0f;
        double impurity_decrease = 0.0;
        std::size_t left_count = 0;
    };

    std::vector<std::size_t>
    SampleRows()
    {
        const std::size_t n = data_.num_rows();
        std::vector<std::size_t> indices(n);
        if (config_.bootstrap) {
            for (auto& idx : indices) {
                idx = static_cast<std::size_t>(rng_.NextBelow(n));
            }
        } else {
            std::iota(indices.begin(), indices.end(), 0);
        }
        return indices;
    }

    /** Recursively builds the subtree over indices [begin, end). */
    std::int32_t
    BuildNode(DecisionTree& tree, std::vector<std::size_t>& indices,
              std::size_t begin, std::size_t end, std::size_t depth)
    {
        const std::size_t count = end - begin;
        DBS_ASSERT(count > 0);
        if (depth >= config_.max_depth ||
            count < config_.min_samples_split || IsPure(indices, begin, end)) {
            return tree.AddLeafNode(LeafValue(indices, begin, end));
        }

        SplitChoice split = FindBestSplit(indices, begin, end);
        if (!split.found) {
            return tree.AddLeafNode(LeafValue(indices, begin, end));
        }

        // Partition indices in place around the chosen split.
        auto mid_it = std::partition(
            indices.begin() + static_cast<std::ptrdiff_t>(begin),
            indices.begin() + static_cast<std::ptrdiff_t>(end),
            [&](std::size_t row) {
                return data_.At(row, split.feature) <= split.threshold;
            });
        std::size_t mid = static_cast<std::size_t>(
            mid_it - indices.begin());
        DBS_ASSERT(mid > begin && mid < end);

        std::int32_t node = tree.AddDecisionNode(
            static_cast<std::int32_t>(split.feature), split.threshold);
        std::int32_t left = BuildNode(tree, indices, begin, mid, depth + 1);
        std::int32_t right = BuildNode(tree, indices, mid, end, depth + 1);
        tree.SetChildren(node, left, right);
        return node;
    }

    bool
    IsPure(const std::vector<std::size_t>& indices, std::size_t begin,
           std::size_t end) const
    {
        const float first = data_.Label(indices[begin]);
        for (std::size_t i = begin + 1; i < end; ++i) {
            if (data_.Label(indices[i]) != first) {
                return false;
            }
        }
        return true;
    }

    float
    LeafValue(const std::vector<std::size_t>& indices, std::size_t begin,
              std::size_t end)
    {
        if (data_.task() == Task::kRegression) {
            double sum = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                sum += data_.Label(indices[i]);
            }
            return static_cast<float>(
                sum / static_cast<double>(end - begin));
        }
        std::fill(class_counts_.begin(), class_counts_.end(), 0);
        for (std::size_t i = begin; i < end; ++i) {
            auto cls = static_cast<std::size_t>(data_.Label(indices[i]));
            DBS_ASSERT(cls < class_counts_.size());
            ++class_counts_[cls];
        }
        std::size_t best = 0;
        for (std::size_t c = 1; c < class_counts_.size(); ++c) {
            if (class_counts_[c] > class_counts_[best]) {
                best = c;
            }
        }
        return static_cast<float>(best);
    }

    SplitChoice
    FindBestSplit(const std::vector<std::size_t>& indices, std::size_t begin,
                  std::size_t end)
    {
        // Random feature subset: partial Fisher-Yates over all_features_.
        const std::size_t f = all_features_.size();
        for (std::size_t i = 0; i < features_per_split_; ++i) {
            std::size_t j = i + static_cast<std::size_t>(
                rng_.NextBelow(f - i));
            std::swap(all_features_[i], all_features_[j]);
        }

        SplitChoice best;
        for (std::size_t i = 0; i < features_per_split_; ++i) {
            EvaluateFeature(all_features_[i], indices, begin, end, best);
        }
        return best;
    }

    /** Sorts the node's rows by one feature and scans split boundaries. */
    void
    EvaluateFeature(std::size_t feature,
                    const std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end, SplitChoice& best)
    {
        const std::size_t count = end - begin;
        sorted_.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
            std::size_t row = indices[begin + i];
            sorted_[i] = {data_.At(row, feature), data_.Label(row)};
        }
        std::sort(sorted_.begin(), sorted_.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
        if (sorted_.front().first == sorted_.back().first) {
            return;  // constant feature at this node
        }

        if (data_.task() == Task::kClassification) {
            ScanClassification(feature, best);
        } else {
            ScanRegression(feature, best);
        }
    }

    void
    ScanClassification(std::size_t feature, SplitChoice& best)
    {
        const std::size_t count = sorted_.size();
        const std::size_t k = class_counts_.size();
        left_counts_.assign(k, 0);
        right_counts_.assign(k, 0);
        for (const auto& [value, label] : sorted_) {
            (void)value;
            ++right_counts_[static_cast<std::size_t>(label)];
        }
        const double parent = GiniImpurityCounts(right_counts_, count);

        std::size_t left_n = 0;
        for (std::size_t i = 0; i + 1 < count; ++i) {
            auto cls = static_cast<std::size_t>(sorted_[i].second);
            ++left_counts_[cls];
            --right_counts_[cls];
            ++left_n;
            if (sorted_[i].first == sorted_[i + 1].first) {
                continue;  // cannot split between equal values
            }
            std::size_t right_n = count - left_n;
            if (left_n < config_.min_samples_leaf ||
                right_n < config_.min_samples_leaf) {
                continue;
            }
            double gini_l = GiniImpurityCounts(left_counts_, left_n);
            double gini_r = GiniImpurityCounts(right_counts_, right_n);
            double weighted =
                (gini_l * static_cast<double>(left_n) +
                 gini_r * static_cast<double>(right_n)) /
                static_cast<double>(count);
            double decrease = parent - weighted;
            if (decrease > best.impurity_decrease + 1e-12 || !best.found) {
                if (decrease <= 1e-12) {
                    continue;
                }
                best.found = true;
                best.feature = feature;
                best.threshold = MidThreshold(sorted_[i].first,
                                              sorted_[i + 1].first);
                best.impurity_decrease = decrease;
                best.left_count = left_n;
            }
        }
    }

    void
    ScanRegression(std::size_t feature, SplitChoice& best)
    {
        const std::size_t count = sorted_.size();
        double total_sum = 0.0;
        double total_sq = 0.0;
        for (const auto& [value, label] : sorted_) {
            (void)value;
            total_sum += label;
            total_sq += static_cast<double>(label) * label;
        }
        const double n = static_cast<double>(count);
        const double parent_var = total_sq / n -
            (total_sum / n) * (total_sum / n);

        double left_sum = 0.0;
        double left_sq = 0.0;
        for (std::size_t i = 0; i + 1 < count; ++i) {
            double label = sorted_[i].second;
            left_sum += label;
            left_sq += label * label;
            if (sorted_[i].first == sorted_[i + 1].first) {
                continue;
            }
            std::size_t left_n = i + 1;
            std::size_t right_n = count - left_n;
            if (left_n < config_.min_samples_leaf ||
                right_n < config_.min_samples_leaf) {
                continue;
            }
            double ln = static_cast<double>(left_n);
            double rn = static_cast<double>(right_n);
            double right_sum = total_sum - left_sum;
            double right_sq = total_sq - left_sq;
            double var_l = left_sq / ln - (left_sum / ln) * (left_sum / ln);
            double var_r = right_sq / rn -
                (right_sum / rn) * (right_sum / rn);
            double weighted = (var_l * ln + var_r * rn) / n;
            double decrease = parent_var - weighted;
            if (decrease > best.impurity_decrease + 1e-12 || !best.found) {
                if (decrease <= 1e-12) {
                    continue;
                }
                best.found = true;
                best.feature = feature;
                best.threshold = MidThreshold(sorted_[i].first,
                                              sorted_[i + 1].first);
                best.impurity_decrease = decrease;
                best.left_count = left_n;
            }
        }
    }

    static double
    GiniImpurityCounts(const std::vector<std::size_t>& counts,
                       std::size_t total)
    {
        double sum_sq = 0.0;
        const double n = static_cast<double>(total);
        for (std::size_t c : counts) {
            double p = static_cast<double>(c) / n;
            sum_sq += p * p;
        }
        return 1.0 - sum_sq;
    }

    /**
     * Splitting threshold halfway between adjacent distinct values;
     * nudged down if rounding would put the left value on the right.
     */
    static float
    MidThreshold(float lo, float hi)
    {
        float mid = lo + (hi - lo) * 0.5f;
        if (mid >= hi) {
            mid = lo;
        }
        return mid;
    }

    const Dataset& data_;
    const ForestTrainerConfig& config_;
    Rng rng_;
    int num_classes_;
    std::size_t features_per_split_ = 1;
    std::vector<std::size_t> all_features_;
    std::vector<std::pair<float, float>> sorted_;  // (value, label)
    std::vector<std::size_t> class_counts_;
    std::vector<std::size_t> left_counts_;
    std::vector<std::size_t> right_counts_;
};

}  // namespace

double
GiniImpurity(const std::vector<std::size_t>& counts)
{
    std::size_t total = 0;
    for (std::size_t c : counts) {
        total += c;
    }
    if (total == 0) {
        return 0.0;
    }
    double sum_sq = 0.0;
    for (std::size_t c : counts) {
        double p = static_cast<double>(c) / static_cast<double>(total);
        sum_sq += p * p;
    }
    return 1.0 - sum_sq;
}

RandomForest
TrainForest(const Dataset& train, const ForestTrainerConfig& config)
{
    if (train.num_rows() == 0) {
        throw InvalidArgument("train: empty dataset");
    }
    if (config.num_trees == 0) {
        throw InvalidArgument("train: num_trees must be positive");
    }
    if (config.max_depth == 0) {
        throw InvalidArgument("train: max_depth must be positive");
    }
    if (train.task() == Task::kClassification) {
        for (std::size_t i = 0; i < train.num_rows(); ++i) {
            float label = train.Label(i);
            if (label < 0.0f ||
                label >= static_cast<float>(train.num_classes()) ||
                label != std::floor(label)) {
                throw InvalidArgument("train: label out of class range");
            }
        }
    }

    RandomForest forest(train.task(), train.num_features(),
                        train.num_classes());

    // Pre-fork one RNG per tree so the result is identical whether trees
    // are built serially or in parallel.
    Rng root(config.seed);
    std::vector<Rng> tree_rngs;
    tree_rngs.reserve(config.num_trees);
    for (std::size_t t = 0; t < config.num_trees; ++t) {
        tree_rngs.push_back(root.Fork());
    }

    std::vector<DecisionTree> trees(config.num_trees);
    ThreadPool::Shared().ParallelFor(config.num_trees, [&](std::size_t t) {
        TreeBuilder builder(train, config, tree_rngs[t]);
        trees[t] = builder.Build();
    });
    for (auto& tree : trees) {
        forest.AddTree(std::move(tree));
    }
    return forest;
}

}  // namespace dbscore
