/**
 * @file
 * Binary serialization of random forest models.
 *
 * This is the "serialized binary form" the paper stores in database tables:
 * the DBMS keeps models as opaque VARBINARY blobs, and model pre-processing
 * in the pipeline is exactly the deserialization implemented here.
 *
 * Format (little-endian):
 *   magic "DBSF", u32 version,
 *   u8 task, u32 num_features, u32 num_classes, u32 num_trees,
 *   then per tree: u32 num_nodes followed by the node arrays
 *   (i32 feature, f32 threshold, i32 left, i32 right, f32 value).
 */
#ifndef DBSCORE_FOREST_SERIALIZE_H
#define DBSCORE_FOREST_SERIALIZE_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dbscore/forest/forest.h"

namespace dbscore {

/** Append-only little-endian byte buffer writer. */
class ByteWriter {
 public:
    void PutU8(std::uint8_t v);
    void PutU32(std::uint32_t v);
    void PutU64(std::uint64_t v);
    void PutI32(std::int32_t v);
    void PutF32(float v);
    void PutF64(double v);
    /** Length-prefixed (u32) string. */
    void PutString(const std::string& s);
    void PutBytes(const void* data, std::size_t size);

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian reader. @throws ParseError on overrun. */
class ByteReader {
 public:
    explicit ByteReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes) {}

    std::uint8_t GetU8();
    std::uint32_t GetU32();
    std::uint64_t GetU64();
    std::int32_t GetI32();
    float GetF32();
    double GetF64();
    std::string GetString();
    void GetBytes(void* out, std::size_t size);

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
    void Require(std::size_t n) const;

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/** Serializes a forest to the DBSF binary format. */
std::vector<std::uint8_t> SerializeForest(const RandomForest& forest);

/**
 * Parses a DBSF blob back into a forest and validates the structure.
 * @throws ParseError on malformed input.
 */
RandomForest DeserializeForest(std::span<const std::uint8_t> bytes);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_SERIALIZE_H
