#include "dbscore/forest/forest_kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/forest/forest.h"
#include "dbscore/forest/forest_kernel_v2.h"
#include "dbscore/forest/gbdt.h"
#include "dbscore/forest/kernel_autotune.h"
#include "dbscore/forest/simd.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

namespace {

/**
 * Rows traversed concurrently per tree in the v1 scalar loop. Each
 * lane is an independent dependence chain of node loads, so the
 * out-of-order core keeps this many traversals in flight — the main
 * lever against the load latency that dominates pointer-chasing
 * inference. Compile-time so the lane state lives in registers.
 */
constexpr std::size_t kTraversalLanes = 16;

/**
 * Walks one tree for a group of kLanes rows, leaving each lane's final
 * (leaf) node index in @p n. Exactly @p depth branchless steps per
 * lane: leaves self-loop via {+inf, left = self}, so rows that bottom
 * out early spin in place from L1, and the level loop breaks once
 * every lane has parked. The step left + !(x <= t) matches the
 * reference "x <= t goes left, else (including NaN) right" bit for
 * bit.
 */
template <std::size_t kLanes, typename NodeT>
inline void
TraverseGroup(const NodeT* nodes, std::int32_t root, std::int32_t depth,
              const float* const* rowp, std::int32_t* n)
{
    for (std::size_t k = 0; k < kLanes; ++k) {
        n[k] = root;
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        std::int32_t moved = 0;
        for (std::size_t k = 0; k < kLanes; ++k) {
            const NodeT nd = nodes[n[k]];
            const std::int32_t next =
                nd.left + static_cast<std::int32_t>(
                              !(rowp[k][nd.feature] <= nd.threshold));
            moved |= next ^ n[k];
            n[k] = next;
        }
        // All lanes parked on their self-looping leaves: the remaining
        // fixed-trip levels would be no-ops. Pays off on shallow
        // ensembles (IRIS) where the average path is much shorter than
        // the deepest one.
        if (moved == 0) {
            break;
        }
    }
}

bool
EnsembleSupported(const std::vector<DecisionTree>& trees,
                  std::size_t num_features)
{
    // Feature ids are stored as int16 in the compiled v1 pool and as a
    // 15-bit field in the packed v2 word.
    return !trees.empty() && num_features <= kV2MaxFeature;
}

}  // namespace

bool
ForestKernel::Supports(const RandomForest& forest)
{
    return EnsembleSupported(forest.trees(), forest.num_features());
}

bool
ForestKernel::Supports(const GradientBoostedModel& gbdt)
{
    return EnsembleSupported(gbdt.trees(), gbdt.num_features());
}

ForestKernel::ForestKernel(const RandomForest& forest,
                           const ForestKernelOptions& options)
    : task_(forest.task()),
      num_classes_(forest.num_classes()),
      num_features_(forest.num_features()),
      options_(options),
      combine_(forest.task() == Task::kClassification
                   ? KernelCombine::kVoteClassify
                   : KernelCombine::kMeanRegress)
{
    if (!Supports(forest)) {
        throw InvalidArgument("forest kernel: unsupported forest "
                              "(empty, or features exceed int16)");
    }
    Compile(forest.trees());
}

ForestKernel::ForestKernel(const GradientBoostedModel& gbdt,
                           const ForestKernelOptions& options)
    : task_(gbdt.task()),
      num_features_(gbdt.num_features()),
      options_(options),
      combine_(gbdt.task() == Task::kClassification
                   ? KernelCombine::kMarginClassify
                   : KernelCombine::kMargin),
      init_(gbdt.base_score()),
      scale_(gbdt.learning_rate())
{
    if (!Supports(gbdt)) {
        throw InvalidArgument("forest kernel: unsupported gbdt "
                              "(empty, or features exceed int16)");
    }
    // Margin kernels accumulate sums; the class decision happens in
    // the combiner, so no per-leaf class table is needed.
    num_classes_ = combine_ == KernelCombine::kMarginClassify ? 2 : 0;
    Compile(gbdt.trees());
}

ForestKernel::~ForestKernel() = default;

void
ForestKernel::Compile(const std::vector<DecisionTree>& trees)
{
    if (options_.row_block == 0 || options_.tile_node_budget == 0) {
        throw InvalidArgument("forest kernel: zero row_block/tile budget");
    }
    if (options_.mode == KernelMode::kQuantized &&
        options_.version == KernelVersion::kV1) {
        throw InvalidArgument("forest kernel: quantized mode needs v2");
    }

    // Attribute compilation (the serve path's model prewarming pays
    // this on registration, and mutation pays it again) to its own
    // trace stage; the autotuner emits a child span.
    trace::ScopedSpan span(trace::StageKind::kKernelBuild, "kernel-build");
    span.AddAttr("trees", static_cast<double>(trees.size()));
    span.AddAttr("version",
                 options_.version == KernelVersion::kV2 ? 2.0 : 1.0);

    version_ = options_.version;
    mode_ = options_.mode;
    if (version_ == KernelVersion::kV2 &&
        !V2Supported(trees, num_features_)) {
        // Oversized trees cannot use tree-local left indices; the v1
        // layout handles them with absolute 32-bit children.
        version_ = KernelVersion::kV1;
        mode_ = KernelMode::kExact;
    }

    std::size_t total_nodes = 0;
    for (const auto& tree : trees) {
        total_nodes += tree.NumNodes();
    }
    span.AddAttr("nodes", static_cast<double>(total_nodes));

    const bool vote = combine_ == KernelCombine::kVoteClassify;
    roots_.reserve(trees.size());
    depths_.reserve(trees.size());
    value_.reserve(total_nodes);
    if (vote) {
        leaf_class_.reserve(total_nodes);
    }
    if (version_ == KernelVersion::kV1) {
        nodes_.reserve(total_nodes);
    } else {
        v2_ = std::make_unique<KernelV2Plan>();
        v2_->mode = mode_;
        if (mode_ == KernelMode::kQuantized) {
            v2_->InitQuantization(trees, num_features_);
        } else {
            v2_->enode.reserve(total_nodes);
        }
        v2_->tune_lo.assign(num_features_, 0.0f);
        v2_->tune_hi.assign(num_features_, 1.0f);
    }

    std::vector<std::int32_t> order;
    std::vector<std::int32_t> new_id;
    std::vector<bool> range_seen(num_features_, false);
    for (const auto& tree : trees) {
        const auto base = static_cast<std::int32_t>(num_nodes_);
        roots_.push_back(base);
        depths_.push_back(static_cast<std::int32_t>(tree.Depth()));

        // Level (BFS) order: the upper levels every row traverses end
        // up contiguous at the front of the tree's node range, and
        // siblings land adjacently, making right == left + 1.
        const std::size_t n = tree.NumNodes();
        order.clear();
        order.push_back(0);
        for (std::size_t i = 0; i < order.size(); ++i) {
            const std::int32_t node = order[i];
            if (!tree.IsLeaf(node)) {
                order.push_back(tree.Left(node));
                order.push_back(tree.Right(node));
            }
        }
        DBS_ASSERT_MSG(order.size() == n,
                       "forest kernel: tree has unreachable nodes");
        new_id.assign(n, -1);
        for (std::size_t i = 0; i < n; ++i) {
            new_id[static_cast<std::size_t>(order[i])] =
                static_cast<std::int32_t>(i);
        }

        for (std::int32_t node : order) {
            const auto local =
                static_cast<std::int32_t>(num_nodes_) - base;
            if (tree.IsLeaf(node)) {
                const float value = tree.LeafValue(node);
                // {+inf, self, 0}: the branchless step re-evaluates
                // the leaf harmlessly (anything <= +inf stays at
                // left = self) until the fixed trip count runs out.
                if (version_ == KernelVersion::kV1) {
                    nodes_.push_back(
                        {std::numeric_limits<float>::infinity(),
                         base + local, 0});
                } else if (mode_ == KernelMode::kQuantized) {
                    v2_->qmeta.push_back(local);
                    v2_->qcut.push_back(kV2LeafCut);
                } else {
                    v2_->enode.push_back(V2PackExact(
                        std::numeric_limits<float>::infinity(), local));
                }
                value_.push_back(value);
                if (vote) {
                    const auto cls =
                        static_cast<std::int32_t>(std::lround(value));
                    DBS_ASSERT(cls >= 0 && cls < num_classes_);
                    leaf_class_.push_back(cls);
                }
            } else {
                const std::int32_t f = tree.Feature(node);
                DBS_ASSERT(f >= 0 &&
                           static_cast<std::size_t>(f) <= kV2MaxFeature);
                const std::int32_t left =
                    new_id[static_cast<std::size_t>(tree.Left(node))];
                DBS_ASSERT_MSG(
                    new_id[static_cast<std::size_t>(tree.Right(node))] ==
                        left + 1,
                    "forest kernel: BFS siblings must be adjacent");
                const float t = tree.Threshold(node);
                if (version_ == KernelVersion::kV1) {
                    nodes_.push_back(
                        {t, base + left, static_cast<std::int16_t>(f)});
                } else {
                    const std::int32_t packed =
                        (f << kV2LeftBits) | left;
                    if (mode_ == KernelMode::kQuantized) {
                        v2_->qmeta.push_back(packed);
                        v2_->qcut.push_back(v2_->CutFor(
                            static_cast<std::size_t>(f), t));
                    } else {
                        v2_->enode.push_back(V2PackExact(t, packed));
                    }
                    auto& lo = v2_->tune_lo[static_cast<std::size_t>(f)];
                    auto& hi = v2_->tune_hi[static_cast<std::size_t>(f)];
                    if (!range_seen[static_cast<std::size_t>(f)]) {
                        range_seen[static_cast<std::size_t>(f)] = true;
                        lo = hi = t;
                    } else {
                        lo = std::min(lo, t);
                        hi = std::max(hi, t);
                    }
                }
                value_.push_back(0.0f);
                if (vote) {
                    leaf_class_.push_back(0);
                }
            }
            ++num_nodes_;
        }
    }

    if (v2_) {
        if (mode_ == KernelMode::kQuantized) {
            // Pad for the shim's scale-2 u16 gather over-read.
            v2_->qcut.push_back(0);
        }
        v2_->row_block = options_.row_block;
        v2_->tile_node_budget = options_.tile_node_budget;
        AutotuneV2(*this, *v2_, options_);
        v2_->Retile(*this);
        return;
    }

    // Partition consecutive trees into tiles whose pooled nodes fit
    // the cache budget, so one tile stays resident while a row block
    // traverses it. A single oversized tree still gets its own tile.
    std::size_t tile_start = 0;
    std::size_t tile_nodes = 0;
    for (std::size_t t = 0; t < trees.size(); ++t) {
        const std::size_t nodes = trees[t].NumNodes();
        if (t > tile_start && tile_nodes + nodes > options_.tile_node_budget) {
            tiles_.push_back({tile_start, t});
            tile_start = t;
            tile_nodes = 0;
        }
        tile_nodes += nodes;
    }
    tiles_.push_back({tile_start, trees.size()});
}

std::size_t
ForestKernel::NumTiles() const
{
    return v2_ ? v2_->tiles.size() : tiles_.size();
}

bool
ForestKernel::simd_active() const
{
    return v2_ != nullptr && v2_->use_simd;
}

const char*
ForestKernel::SimdBackend()
{
    return simd::BackendName();
}

std::size_t
ForestKernel::simd_groups() const
{
    return simd_active() ? v2_->groups : 0;
}

std::size_t
ForestKernel::tuned_lane_rows() const
{
    return v2_ ? v2_->GroupRows() : kTraversalLanes;
}

std::size_t
ForestKernel::tuned_row_block() const
{
    return v2_ ? v2_->row_block : options_.row_block;
}

std::size_t
ForestKernel::tuned_tile_node_budget() const
{
    return v2_ ? v2_->tile_node_budget : options_.tile_node_budget;
}

bool
ForestKernel::autotuned() const
{
    return v2_ != nullptr && v2_->autotuned;
}

bool
ForestKernel::quant_exact() const
{
    return v2_ != nullptr && mode_ == KernelMode::kQuantized &&
           v2_->quant_exact;
}

std::size_t
ForestKernel::quant_max_bins() const
{
    return v2_ ? v2_->max_bins : 0;
}

void
ForestKernel::FinishSums(const double* sums, std::size_t num_rows,
                         float* out) const
{
    switch (combine_) {
    case KernelCombine::kMeanRegress: {
        const auto trees = static_cast<double>(roots_.size());
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(sums[i] / trees);
        }
        break;
    }
    case KernelCombine::kMargin:
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(sums[i]);
        }
        break;
    case KernelCombine::kMarginClassify:
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(GradientBoostedModel::MarginToClass(
                static_cast<float>(sums[i])));
        }
        break;
    case KernelCombine::kVoteClassify:
        DBS_ASSERT_MSG(false, "vote kernels do not accumulate sums");
        break;
    }
}

void
ForestKernel::RunBlockClassify(const float* rows, std::size_t num_rows,
                               std::size_t stride, float* out,
                               Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const auto num_classes = static_cast<std::size_t>(num_classes_);
    const std::int32_t* const cls = leaf_class_.data();
    std::int32_t* const counts = scratch.counts.data();
    std::fill(counts, counts + num_rows * num_classes, 0);

    // Row-group outer, trees inner: row pointers are computed once per
    // group and the group's feature rows stay hot in L1 across every
    // tree, while a tile's nodes stay cache-resident across groups.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    ++counts[(r + k) * num_classes +
                             static_cast<std::size_t>(cls[n[k]])];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                ++counts[r * num_classes +
                         static_cast<std::size_t>(cls[n[0]])];
            }
        }
    }
    for (std::size_t i = 0; i < num_rows; ++i) {
        const std::int32_t* c = counts + i * num_classes;
        std::size_t best = 0;
        for (std::size_t k = 1; k < num_classes; ++k) {
            // Strict > keeps the lowest class id on ties, exactly like
            // MajorityVote.
            if (c[k] > c[best]) {
                best = k;
            }
        }
        out[i] = static_cast<float>(best);
    }
}

void
ForestKernel::RunBlockAccumulate(const float* rows, std::size_t num_rows,
                                 std::size_t stride, float* out,
                                 Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const float* const val = value_.data();
    const double scale = scale_;
    double* const sums = scratch.sums.data();
    std::fill(sums, sums + num_rows, init_);

    // Trees iterate in ensemble order for every row (tiles cover
    // consecutive trees), so each row's double sum accumulates in the
    // reference order and the mean/margin is bit-identical to the
    // scalar path.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    sums[r + k] += scale * val[n[k]];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                sums[r] += scale * val[n[0]];
            }
        }
    }
    FinishSums(sums, num_rows, out);
}

void
ForestKernel::RunStrided(const float* rows, std::size_t num_rows,
                         std::size_t stride, float* out,
                         Scratch& scratch) const
{
    if (num_rows == 0) {
        return;
    }
    if (v2_) {
        v2_->RunStrided(*this, rows, num_rows, stride, out, scratch);
        return;
    }
    if (combine_ == KernelCombine::kVoteClassify) {
        const std::size_t need =
            options_.row_block * static_cast<std::size_t>(num_classes_);
        if (scratch.counts.size() < need) {
            scratch.counts.resize(need);
        }
    } else if (scratch.sums.size() < options_.row_block) {
        scratch.sums.resize(options_.row_block);
    }

    for (std::size_t begin = 0; begin < num_rows;
         begin += options_.row_block) {
        const std::size_t block =
            std::min(options_.row_block, num_rows - begin);
        if (combine_ == KernelCombine::kVoteClassify) {
            RunBlockClassify(rows + begin * stride, block, stride,
                             out + begin, scratch);
        } else {
            RunBlockAccumulate(rows + begin * stride, block, stride,
                               out + begin, scratch);
        }
    }
}

void
ForestKernel::Run(const float* rows, std::size_t num_rows,
                  std::size_t num_cols, float* out,
                  Scratch& scratch) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows, num_rows, num_cols, out, scratch);
}

void
ForestKernel::Run(const RowView& rows, float* out, Scratch& scratch) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows.data(), rows.rows(), rows.stride(), out, scratch);
}

std::vector<float>
ForestKernel::Predict(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    return Predict(RowView::Borrow(rows, num_rows, num_cols));
}

std::vector<float>
ForestKernel::Predict(const RowView& rows) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    const std::size_t num_rows = rows.rows();
    std::vector<float> out(num_rows);
    if (num_rows == 0) {
        return out;
    }
    // Wall-clock batch span; pooled chunk workers parent to it via the
    // captured context (chunks run on pool threads, not this one).
    // One span per batch + one per chunk (>= 4096 rows each), so the
    // cost stays far under the bench's 3% overhead budget.
    trace::ScopedSpan span(trace::StageKind::kKernel, "forest-kernel");
    span.AddAttr("rows", static_cast<double>(num_rows));
    span.AddAttr("trees", static_cast<double>(NumTrees()));
    const trace::SpanContext parent = span.context();
    auto worker = [&, parent](std::size_t begin, std::size_t end) {
        trace::ScopedSpan chunk(trace::StageKind::kKernel, "kernel-chunk",
                                parent);
        chunk.AddAttr("rows", static_cast<double>(end - begin));
        static thread_local Scratch scratch;
        RunStrided(rows.Row(begin), end - begin, rows.stride(),
                   out.data() + begin, scratch);
    };
    if (num_rows >= options_.parallel_grain) {
        ThreadPool::Shared().ParallelForChunked(
            num_rows, options_.parallel_grain, worker);
    } else {
        worker(0, num_rows);
    }
    return out;
}

}  // namespace dbscore
