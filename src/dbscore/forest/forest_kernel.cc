#include "dbscore/forest/forest_kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/forest/forest.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

namespace {

/**
 * Rows traversed concurrently per tree. Each lane is an independent
 * dependence chain of node loads, so the out-of-order core keeps this
 * many traversals in flight — the main lever against the load latency
 * that dominates pointer-chasing inference. Compile-time so the lane
 * state lives in registers.
 */
constexpr std::size_t kTraversalLanes = 16;

/**
 * Walks one tree for a group of kLanes rows, leaving each lane's final
 * (leaf) node index in @p n. Exactly @p depth branchless steps per
 * lane: leaves self-loop via {+inf, left = self}, so rows that bottom
 * out early spin in place from L1, and the level loop breaks once
 * every lane has parked. The step left + !(x <= t) matches the
 * reference "x <= t goes left, else (including NaN) right" bit for
 * bit.
 */
template <std::size_t kLanes, typename NodeT>
inline void
TraverseGroup(const NodeT* nodes, std::int32_t root, std::int32_t depth,
              const float* const* rowp, std::int32_t* n)
{
    for (std::size_t k = 0; k < kLanes; ++k) {
        n[k] = root;
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        std::int32_t moved = 0;
        for (std::size_t k = 0; k < kLanes; ++k) {
            const NodeT nd = nodes[n[k]];
            const std::int32_t next =
                nd.left + static_cast<std::int32_t>(
                              !(rowp[k][nd.feature] <= nd.threshold));
            moved |= next ^ n[k];
            n[k] = next;
        }
        // All lanes parked on their self-looping leaves: the remaining
        // fixed-trip levels would be no-ops. Pays off on shallow
        // ensembles (IRIS) where the average path is much shorter than
        // the deepest one.
        if (moved == 0) {
            break;
        }
    }
}

}  // namespace

bool
ForestKernel::Supports(const RandomForest& forest)
{
    // Feature ids are stored as int16 in the compiled pool.
    return forest.NumTrees() > 0 && forest.num_features() <= 32767;
}

ForestKernel::ForestKernel(const RandomForest& forest,
                           const ForestKernelOptions& options)
    : task_(forest.task()),
      num_classes_(forest.num_classes()),
      num_features_(forest.num_features()),
      options_(options)
{
    if (!Supports(forest)) {
        throw InvalidArgument("forest kernel: unsupported forest "
                              "(empty, or features exceed int16)");
    }
    if (options_.row_block == 0 || options_.tile_node_budget == 0) {
        throw InvalidArgument("forest kernel: zero row_block/tile budget");
    }

    const std::size_t total_nodes = forest.TotalNodes();
    roots_.reserve(forest.NumTrees());
    depths_.reserve(forest.NumTrees());
    nodes_.reserve(total_nodes);
    value_.reserve(total_nodes);
    if (task_ == Task::kClassification) {
        leaf_class_.reserve(total_nodes);
    }

    std::vector<std::int32_t> order;
    std::vector<std::int32_t> new_id;
    for (const auto& tree : forest.trees()) {
        const auto base = static_cast<std::int32_t>(nodes_.size());
        roots_.push_back(base);
        depths_.push_back(static_cast<std::int32_t>(tree.Depth()));

        // Level (BFS) order: the upper levels every row traverses end
        // up contiguous at the front of the tree's node range, and
        // siblings land adjacently, making right == left + 1.
        const std::size_t n = tree.NumNodes();
        order.clear();
        order.push_back(0);
        for (std::size_t i = 0; i < order.size(); ++i) {
            const std::int32_t node = order[i];
            if (!tree.IsLeaf(node)) {
                order.push_back(tree.Left(node));
                order.push_back(tree.Right(node));
            }
        }
        DBS_ASSERT_MSG(order.size() == n,
                       "forest kernel: tree has unreachable nodes");
        new_id.assign(n, -1);
        for (std::size_t i = 0; i < n; ++i) {
            new_id[static_cast<std::size_t>(order[i])] =
                static_cast<std::int32_t>(i);
        }

        for (std::int32_t node : order) {
            if (tree.IsLeaf(node)) {
                const float value = tree.LeafValue(node);
                // {+inf, self, 0}: the branchless step re-evaluates the
                // leaf harmlessly (anything <= +inf stays at left =
                // self) until the fixed trip count runs out.
                const auto self = static_cast<std::int32_t>(nodes_.size());
                nodes_.push_back(
                    {std::numeric_limits<float>::infinity(), self, 0});
                value_.push_back(value);
                if (task_ == Task::kClassification) {
                    const auto cls =
                        static_cast<std::int32_t>(std::lround(value));
                    DBS_ASSERT(cls >= 0 && cls < num_classes_);
                    leaf_class_.push_back(cls);
                }
            } else {
                const std::int32_t f = tree.Feature(node);
                DBS_ASSERT(f >= 0 && f < 32768);
                const std::int32_t left =
                    base + new_id[static_cast<std::size_t>(tree.Left(node))];
                DBS_ASSERT_MSG(
                    base + new_id[static_cast<std::size_t>(
                               tree.Right(node))] == left + 1,
                    "forest kernel: BFS siblings must be adjacent");
                nodes_.push_back({tree.Threshold(node), left,
                                  static_cast<std::int16_t>(f)});
                value_.push_back(0.0f);
                if (task_ == Task::kClassification) {
                    leaf_class_.push_back(0);
                }
            }
        }
    }

    // Partition consecutive trees into tiles whose pooled nodes fit the
    // cache budget, so one tile stays resident while a row block
    // traverses it. A single oversized tree still gets its own tile.
    std::size_t tile_start = 0;
    std::size_t tile_nodes = 0;
    for (std::size_t t = 0; t < forest.NumTrees(); ++t) {
        const std::size_t nodes = forest.Tree(t).NumNodes();
        if (t > tile_start && tile_nodes + nodes > options_.tile_node_budget) {
            tiles_.push_back({tile_start, t});
            tile_start = t;
            tile_nodes = 0;
        }
        tile_nodes += nodes;
    }
    tiles_.push_back({tile_start, forest.NumTrees()});
}

void
ForestKernel::RunBlockClassify(const float* rows, std::size_t num_rows,
                               std::size_t stride, float* out,
                               Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const auto num_classes = static_cast<std::size_t>(num_classes_);
    const std::int32_t* const cls = leaf_class_.data();
    std::int32_t* const counts = scratch.counts.data();
    std::fill(counts, counts + num_rows * num_classes, 0);

    // Row-group outer, trees inner: row pointers are computed once per
    // group and the group's feature rows stay hot in L1 across every
    // tree, while a tile's nodes stay cache-resident across groups.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    ++counts[(r + k) * num_classes +
                             static_cast<std::size_t>(cls[n[k]])];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                ++counts[r * num_classes +
                         static_cast<std::size_t>(cls[n[0]])];
            }
        }
    }
    for (std::size_t i = 0; i < num_rows; ++i) {
        const std::int32_t* c = counts + i * num_classes;
        std::size_t best = 0;
        for (std::size_t k = 1; k < num_classes; ++k) {
            // Strict > keeps the lowest class id on ties, exactly like
            // MajorityVote.
            if (c[k] > c[best]) {
                best = k;
            }
        }
        out[i] = static_cast<float>(best);
    }
}

void
ForestKernel::RunBlockRegress(const float* rows, std::size_t num_rows,
                              std::size_t stride, float* out,
                              Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const float* const val = value_.data();
    double* const sums = scratch.sums.data();
    std::fill(sums, sums + num_rows, 0.0);

    // Trees iterate in ensemble order for every row (tiles cover
    // consecutive trees), so each row's double sum accumulates in the
    // reference order and the mean is bit-identical to the scalar path.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    sums[r + k] += val[n[k]];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                sums[r] += val[n[0]];
            }
        }
    }
    const auto trees = static_cast<double>(roots_.size());
    for (std::size_t i = 0; i < num_rows; ++i) {
        out[i] = static_cast<float>(sums[i] / trees);
    }
}

void
ForestKernel::RunStrided(const float* rows, std::size_t num_rows,
                         std::size_t stride, float* out,
                         Scratch& scratch) const
{
    if (num_rows == 0) {
        return;
    }
    if (task_ == Task::kClassification) {
        const std::size_t need =
            options_.row_block * static_cast<std::size_t>(num_classes_);
        if (scratch.counts.size() < need) {
            scratch.counts.resize(need);
        }
    } else if (scratch.sums.size() < options_.row_block) {
        scratch.sums.resize(options_.row_block);
    }

    for (std::size_t begin = 0; begin < num_rows;
         begin += options_.row_block) {
        const std::size_t block =
            std::min(options_.row_block, num_rows - begin);
        if (task_ == Task::kClassification) {
            RunBlockClassify(rows + begin * stride, block, stride,
                             out + begin, scratch);
        } else {
            RunBlockRegress(rows + begin * stride, block, stride,
                            out + begin, scratch);
        }
    }
}

void
ForestKernel::Run(const float* rows, std::size_t num_rows,
                  std::size_t num_cols, float* out,
                  Scratch& scratch) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows, num_rows, num_cols, out, scratch);
}

void
ForestKernel::Run(const RowView& rows, float* out, Scratch& scratch) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows.data(), rows.rows(), rows.stride(), out, scratch);
}

std::vector<float>
ForestKernel::Predict(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    return Predict(RowView::Borrow(rows, num_rows, num_cols));
}

std::vector<float>
ForestKernel::Predict(const RowView& rows) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    const std::size_t num_rows = rows.rows();
    std::vector<float> out(num_rows);
    if (num_rows == 0) {
        return out;
    }
    // Wall-clock batch span; pooled chunk workers parent to it via the
    // captured context (chunks run on pool threads, not this one).
    // One span per batch + one per chunk (>= 4096 rows each), so the
    // cost stays far under the bench's 3% overhead budget.
    trace::ScopedSpan span(trace::StageKind::kKernel, "forest-kernel");
    span.AddAttr("rows", static_cast<double>(num_rows));
    span.AddAttr("trees", static_cast<double>(NumTrees()));
    const trace::SpanContext parent = span.context();
    auto worker = [&, parent](std::size_t begin, std::size_t end) {
        trace::ScopedSpan chunk(trace::StageKind::kKernel, "kernel-chunk",
                                parent);
        chunk.AddAttr("rows", static_cast<double>(end - begin));
        static thread_local Scratch scratch;
        RunStrided(rows.Row(begin), end - begin, rows.stride(),
                   out.data() + begin, scratch);
    };
    if (num_rows >= options_.parallel_grain) {
        ThreadPool::Shared().ParallelForChunked(
            num_rows, options_.parallel_grain, worker);
    } else {
        worker(0, num_rows);
    }
    return out;
}

}  // namespace dbscore
