#include "dbscore/forest/forest_kernel.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/forest/forest.h"
#include "dbscore/forest/forest_kernel_v2.h"
#include "dbscore/forest/gbdt.h"
#include "dbscore/forest/kernel_autotune.h"
#include "dbscore/forest/simd.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

namespace {

/**
 * Rows traversed concurrently per tree in the v1 scalar loop. Each
 * lane is an independent dependence chain of node loads, so the
 * out-of-order core keeps this many traversals in flight — the main
 * lever against the load latency that dominates pointer-chasing
 * inference. Compile-time so the lane state lives in registers.
 */
constexpr std::size_t kTraversalLanes = 16;

/**
 * Walks one tree for a group of kLanes rows, leaving each lane's final
 * (leaf) node index in @p n. Exactly @p depth branchless steps per
 * lane: leaves self-loop via {+inf, left = self}, so rows that bottom
 * out early spin in place from L1, and the level loop breaks once
 * every lane has parked. The step left + !(x <= t) matches the
 * reference "x <= t goes left, else (including NaN) right" bit for
 * bit.
 */
template <std::size_t kLanes, typename NodeT>
inline void
TraverseGroup(const NodeT* nodes, std::int32_t root, std::int32_t depth,
              const float* const* rowp, std::int32_t* n)
{
    for (std::size_t k = 0; k < kLanes; ++k) {
        n[k] = root;
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        std::int32_t moved = 0;
        for (std::size_t k = 0; k < kLanes; ++k) {
            const NodeT nd = nodes[n[k]];
            const std::int32_t next =
                nd.left + static_cast<std::int32_t>(
                              !(rowp[k][nd.feature] <= nd.threshold));
            moved |= next ^ n[k];
            n[k] = next;
        }
        // All lanes parked on their self-looping leaves: the remaining
        // fixed-trip levels would be no-ops. Pays off on shallow
        // ensembles (IRIS) where the average path is much shorter than
        // the deepest one.
        if (moved == 0) {
            break;
        }
    }
}

bool
EnsembleSupported(const std::vector<DecisionTree>& trees,
                  std::size_t num_features)
{
    // Feature ids are stored as int16 in the compiled v1 pool and as a
    // 15-bit field in the packed v2 word.
    return !trees.empty() && num_features <= kV2MaxFeature;
}

}  // namespace

bool
ForestKernel::Supports(const RandomForest& forest)
{
    return EnsembleSupported(forest.trees(), forest.num_features());
}

bool
ForestKernel::Supports(const GradientBoostedModel& gbdt)
{
    return EnsembleSupported(gbdt.trees(), gbdt.num_features());
}

ForestKernel::ForestKernel(const RandomForest& forest,
                           const ForestKernelOptions& options)
    : task_(forest.task()),
      num_classes_(forest.num_classes()),
      num_features_(forest.num_features()),
      options_(options),
      combine_(forest.task() == Task::kClassification
                   ? KernelCombine::kVoteClassify
                   : KernelCombine::kMeanRegress)
{
    if (!Supports(forest)) {
        throw InvalidArgument("forest kernel: unsupported forest "
                              "(empty, or features exceed int16)");
    }
    Compile(forest.trees());
}

ForestKernel::ForestKernel(const GradientBoostedModel& gbdt,
                           const ForestKernelOptions& options)
    : task_(gbdt.task()),
      num_features_(gbdt.num_features()),
      options_(options),
      combine_(gbdt.task() == Task::kClassification
                   ? KernelCombine::kMarginClassify
                   : KernelCombine::kMargin),
      init_(gbdt.base_score()),
      scale_(gbdt.learning_rate())
{
    if (!Supports(gbdt)) {
        throw InvalidArgument("forest kernel: unsupported gbdt "
                              "(empty, or features exceed int16)");
    }
    // Margin kernels accumulate sums; the class decision happens in
    // the combiner, so no per-leaf class table is needed.
    num_classes_ = combine_ == KernelCombine::kMarginClassify ? 2 : 0;
    Compile(gbdt.trees());
}

ForestKernel::~ForestKernel() = default;

void
ForestKernel::Compile(const std::vector<DecisionTree>& trees)
{
    if (options_.row_block == 0 || options_.tile_node_budget == 0) {
        throw InvalidArgument("forest kernel: zero row_block/tile budget");
    }
    if (options_.mode == KernelMode::kQuantized &&
        options_.version == KernelVersion::kV1) {
        throw InvalidArgument("forest kernel: quantized mode needs v2");
    }

    // Attribute compilation (the serve path's model prewarming pays
    // this on registration, and mutation pays it again) to its own
    // trace stage; the autotuner emits a child span.
    const auto build_start = std::chrono::steady_clock::now();
    trace::ScopedSpan span(trace::StageKind::kKernelBuild, "kernel-build");
    span.AddAttr("trees", static_cast<double>(trees.size()));
    span.AddAttr("version",
                 options_.version == KernelVersion::kV2 ? 2.0 : 1.0);

    version_ = options_.version;
    mode_ = options_.mode;
    if (version_ == KernelVersion::kV2 &&
        !V2Supported(trees, num_features_)) {
        // Oversized trees cannot use tree-local left indices; the v1
        // layout handles them with absolute 32-bit children.
        version_ = KernelVersion::kV1;
        mode_ = KernelMode::kExact;
    }

    std::size_t total_nodes = 0;
    for (const auto& tree : trees) {
        total_nodes += tree.NumNodes();
    }
    span.AddAttr("nodes", static_cast<double>(total_nodes));

    const bool vote = combine_ == KernelCombine::kVoteClassify;
    roots_.reserve(trees.size());
    depths_.reserve(trees.size());
    value_.reserve(total_nodes);
    if (vote) {
        leaf_class_.reserve(total_nodes);
    }
    if (version_ == KernelVersion::kV1) {
        nodes_.reserve(total_nodes);
    } else {
        v2_ = std::make_unique<KernelV2Plan>();
        v2_->mode = mode_;
        if (mode_ == KernelMode::kQuantized) {
            v2_->InitQuantization(trees, num_features_);
        } else {
            v2_->enode.reserve(total_nodes);
        }
        v2_->tune_lo.assign(num_features_, 0.0f);
        v2_->tune_hi.assign(num_features_, 1.0f);
    }

    std::vector<std::int32_t> order;
    std::vector<std::int32_t> new_id;
    std::vector<bool> range_seen(num_features_, false);
    // Per-tree leaf-value range, feeding the threshold early-exit
    // suffix bounds (v1 accumulate combines only).
    std::vector<double> tree_leaf_lo;
    std::vector<double> tree_leaf_hi;
    tree_leaf_lo.reserve(trees.size());
    tree_leaf_hi.reserve(trees.size());
    for (const auto& tree : trees) {
        const auto base = static_cast<std::int32_t>(num_nodes_);
        roots_.push_back(base);
        depths_.push_back(static_cast<std::int32_t>(tree.Depth()));
        double leaf_lo = std::numeric_limits<double>::infinity();
        double leaf_hi = -std::numeric_limits<double>::infinity();

        // Level (BFS) order: the upper levels every row traverses end
        // up contiguous at the front of the tree's node range, and
        // siblings land adjacently, making right == left + 1.
        const std::size_t n = tree.NumNodes();
        order.clear();
        order.push_back(0);
        for (std::size_t i = 0; i < order.size(); ++i) {
            const std::int32_t node = order[i];
            if (!tree.IsLeaf(node)) {
                order.push_back(tree.Left(node));
                order.push_back(tree.Right(node));
            }
        }
        DBS_ASSERT_MSG(order.size() == n,
                       "forest kernel: tree has unreachable nodes");
        new_id.assign(n, -1);
        for (std::size_t i = 0; i < n; ++i) {
            new_id[static_cast<std::size_t>(order[i])] =
                static_cast<std::int32_t>(i);
        }

        for (std::int32_t node : order) {
            const auto local =
                static_cast<std::int32_t>(num_nodes_) - base;
            if (tree.IsLeaf(node)) {
                const float value = tree.LeafValue(node);
                leaf_lo = std::min(leaf_lo, static_cast<double>(value));
                leaf_hi = std::max(leaf_hi, static_cast<double>(value));
                // {+inf, self, 0}: the branchless step re-evaluates
                // the leaf harmlessly (anything <= +inf stays at
                // left = self) until the fixed trip count runs out.
                if (version_ == KernelVersion::kV1) {
                    nodes_.push_back(
                        {std::numeric_limits<float>::infinity(),
                         base + local, 0});
                } else if (mode_ == KernelMode::kQuantized) {
                    v2_->qmeta.push_back(local);
                    v2_->qcut.push_back(kV2LeafCut);
                } else {
                    v2_->enode.push_back(V2PackExact(
                        std::numeric_limits<float>::infinity(), local));
                }
                value_.push_back(value);
                if (vote) {
                    const auto cls =
                        static_cast<std::int32_t>(std::lround(value));
                    DBS_ASSERT(cls >= 0 && cls < num_classes_);
                    leaf_class_.push_back(cls);
                }
            } else {
                const std::int32_t f = tree.Feature(node);
                DBS_ASSERT(f >= 0 &&
                           static_cast<std::size_t>(f) <= kV2MaxFeature);
                const std::int32_t left =
                    new_id[static_cast<std::size_t>(tree.Left(node))];
                DBS_ASSERT_MSG(
                    new_id[static_cast<std::size_t>(tree.Right(node))] ==
                        left + 1,
                    "forest kernel: BFS siblings must be adjacent");
                const float t = tree.Threshold(node);
                if (version_ == KernelVersion::kV1) {
                    nodes_.push_back(
                        {t, base + left, static_cast<std::int16_t>(f)});
                } else {
                    const std::int32_t packed =
                        (f << kV2LeftBits) | left;
                    if (mode_ == KernelMode::kQuantized) {
                        v2_->qmeta.push_back(packed);
                        v2_->qcut.push_back(v2_->CutFor(
                            static_cast<std::size_t>(f), t));
                    } else {
                        v2_->enode.push_back(V2PackExact(t, packed));
                    }
                    auto& lo = v2_->tune_lo[static_cast<std::size_t>(f)];
                    auto& hi = v2_->tune_hi[static_cast<std::size_t>(f)];
                    if (!range_seen[static_cast<std::size_t>(f)]) {
                        range_seen[static_cast<std::size_t>(f)] = true;
                        lo = hi = t;
                    } else {
                        lo = std::min(lo, t);
                        hi = std::max(hi, t);
                    }
                }
                value_.push_back(0.0f);
                if (vote) {
                    leaf_class_.push_back(0);
                }
            }
            ++num_nodes_;
        }
        tree_leaf_lo.push_back(leaf_lo);
        tree_leaf_hi.push_back(leaf_hi);
    }

    if (version_ == KernelVersion::kV1 &&
        combine_ != KernelCombine::kVoteClassify) {
        // Suffix bounds on the remaining-tree contribution: after t
        // trees the final sum lies in
        // [sum + suffix_min_[t], sum + suffix_max_[t]] up to rounding
        // (covered by the slack term at decision time).
        const std::size_t num_trees = trees.size();
        suffix_min_.assign(num_trees + 1, 0.0);
        suffix_max_.assign(num_trees + 1, 0.0);
        suffix_abs_.assign(num_trees + 1, 0.0);
        for (std::size_t t = num_trees; t-- > 0;) {
            const double a = scale_ * tree_leaf_lo[t];
            const double b = scale_ * tree_leaf_hi[t];
            const double clo = std::min(a, b);
            const double chi = std::max(a, b);
            suffix_min_[t] = suffix_min_[t + 1] + clo;
            suffix_max_[t] = suffix_max_[t + 1] + chi;
            suffix_abs_[t] =
                suffix_abs_[t + 1] + std::max(std::abs(clo), std::abs(chi));
        }
    }

    if (v2_) {
        if (mode_ == KernelMode::kQuantized) {
            // Pad for the shim's scale-2 u16 gather over-read.
            v2_->qcut.push_back(0);
        }
        v2_->row_block = options_.row_block;
        v2_->tile_node_budget = options_.tile_node_budget;
        AutotuneV2(*this, *v2_, options_);
        v2_->Retile(*this);
        return;
    }

    // Partition consecutive trees into tiles whose pooled nodes fit
    // the cache budget, so one tile stays resident while a row block
    // traverses it. A single oversized tree still gets its own tile.
    std::size_t tile_start = 0;
    std::size_t tile_nodes = 0;
    for (std::size_t t = 0; t < trees.size(); ++t) {
        const std::size_t nodes = trees[t].NumNodes();
        if (t > tile_start && tile_nodes + nodes > options_.tile_node_budget) {
            tiles_.push_back({tile_start, t});
            tile_start = t;
            tile_nodes = 0;
        }
        tile_nodes += nodes;
    }
    tiles_.push_back({tile_start, trees.size()});

    build_wall_ms_ = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - build_start)
                         .count();
}

std::size_t
ForestKernel::NumTiles() const
{
    return v2_ ? v2_->tiles.size() : tiles_.size();
}

bool
ForestKernel::simd_active() const
{
    return v2_ != nullptr && v2_->use_simd;
}

const char*
ForestKernel::SimdBackend()
{
    return simd::BackendName();
}

std::size_t
ForestKernel::simd_groups() const
{
    return simd_active() ? v2_->groups : 0;
}

std::size_t
ForestKernel::tuned_lane_rows() const
{
    return v2_ ? v2_->GroupRows() : kTraversalLanes;
}

std::size_t
ForestKernel::tuned_row_block() const
{
    return v2_ ? v2_->row_block : options_.row_block;
}

std::size_t
ForestKernel::tuned_tile_node_budget() const
{
    return v2_ ? v2_->tile_node_budget : options_.tile_node_budget;
}

bool
ForestKernel::autotuned() const
{
    return v2_ != nullptr && v2_->autotuned;
}

bool
ForestKernel::quant_exact() const
{
    return v2_ != nullptr && mode_ == KernelMode::kQuantized &&
           v2_->quant_exact;
}

std::size_t
ForestKernel::quant_max_bins() const
{
    return v2_ ? v2_->max_bins : 0;
}

void
ForestKernel::FinishSums(const double* sums, std::size_t num_rows,
                         float* out) const
{
    switch (combine_) {
    case KernelCombine::kMeanRegress: {
        const auto trees = static_cast<double>(roots_.size());
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(sums[i] / trees);
        }
        break;
    }
    case KernelCombine::kMargin:
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(sums[i]);
        }
        break;
    case KernelCombine::kMarginClassify:
        for (std::size_t i = 0; i < num_rows; ++i) {
            out[i] = static_cast<float>(GradientBoostedModel::MarginToClass(
                static_cast<float>(sums[i])));
        }
        break;
    case KernelCombine::kVoteClassify:
        DBS_ASSERT_MSG(false, "vote kernels do not accumulate sums");
        break;
    }
}

float
ForestKernel::FinishOne(double sum) const
{
    // Must mirror FinishSums exactly: the threshold path's full-finish
    // rows are bit-identical to a Predict() of the same row. Every
    // branch is monotone non-decreasing in the sum (float cast and
    // division by a positive count are correctly rounded; the sigmoid
    // + 0.5 threshold in MarginToClass is monotone), which is what
    // lets interval endpoints decide the predicate.
    switch (combine_) {
    case KernelCombine::kMeanRegress:
        return static_cast<float>(sum /
                                  static_cast<double>(roots_.size()));
    case KernelCombine::kMargin:
        return static_cast<float>(sum);
    case KernelCombine::kMarginClassify:
        return static_cast<float>(GradientBoostedModel::MarginToClass(
            static_cast<float>(sum)));
    case KernelCombine::kVoteClassify:
        break;
    }
    DBS_ASSERT_MSG(false, "vote kernels do not accumulate sums");
    return 0.0f;
}

bool
ThresholdHolds(ThresholdOp op, float threshold, float value)
{
    switch (op) {
    case ThresholdOp::kGt: return value > threshold;
    case ThresholdOp::kGe: return value >= threshold;
    case ThresholdOp::kLt: return value < threshold;
    case ThresholdOp::kLe: return value <= threshold;
    }
    return false;
}

namespace {

/**
 * Decides "value op threshold" for a value known to lie in
 * [glo, ghi]: 1 (holds for the whole interval), 0 (fails for the
 * whole interval), or -1 (undecided). kGt/kGe true-sets are
 * up-closed and kLt/kLe down-closed, so the interval endpoints
 * suffice.
 */
int
DecideThreshold(ThresholdOp op, float threshold, float glo, float ghi)
{
    const bool lo_holds = ThresholdHolds(op, threshold, glo);
    const bool hi_holds = ThresholdHolds(op, threshold, ghi);
    const bool up = op == ThresholdOp::kGt || op == ThresholdOp::kGe;
    if (up) {
        if (lo_holds) return 1;
        if (!hi_holds) return 0;
    } else {
        if (hi_holds) return 1;
        if (!lo_holds) return 0;
    }
    return -1;
}

/** Trees accumulated between two early-exit decision points. */
constexpr std::size_t kThresholdCheckTrees = 8;

}  // namespace

bool
ForestKernel::SupportsThresholdEarlyExit() const
{
    return v2_ == nullptr && combine_ != KernelCombine::kVoteClassify &&
           !suffix_min_.empty();
}

void
ForestKernel::RunThreshold(const float* rows, std::size_t num_rows,
                           std::size_t stride, ThresholdOp op,
                           float threshold, std::uint8_t* keep,
                           Scratch& scratch, ThresholdStats& stats) const
{
    const std::size_t num_trees = roots_.size();
    stats.rows += num_rows;
    stats.tree_traversals_full += num_rows * num_trees;
    if (scratch.sums.size() < num_rows) {
        scratch.sums.resize(num_rows);
    }
    if (scratch.active.size() < num_rows) {
        scratch.active.resize(num_rows);
    }
    double* const sums = scratch.sums.data();
    std::int32_t* const active = scratch.active.data();
    for (std::size_t i = 0; i < num_rows; ++i) {
        sums[i] = init_;
        active[i] = static_cast<std::int32_t>(i);
    }
    std::size_t live = num_rows;

    const Node* const nodes = nodes_.data();
    const float* const val = value_.data();
    const double scale = scale_;

    std::size_t t0 = 0;
    while (live > 0 && t0 < num_trees) {
        const std::size_t t1 =
            std::min(num_trees, t0 + kThresholdCheckTrees);
        // Accumulate trees [t0, t1) over the surviving rows, in the
        // same 16-lane groups as RunBlockAccumulate — tree order per
        // row is preserved, so a row that survives to the end carries
        // exactly the sum the full pass would have computed.
        std::size_t r = 0;
        for (; r + kTraversalLanes <= live; r += kTraversalLanes) {
            const float* rowp[kTraversalLanes];
            for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                rowp[k] =
                    rows + static_cast<std::size_t>(active[r + k]) * stride;
            }
            for (std::size_t t = t0; t < t1; ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(
                    nodes, roots_[t], depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    sums[r + k] += scale * val[n[k]];
                }
            }
        }
        for (; r < live; ++r) {
            const float* rowp[1] = {
                rows + static_cast<std::size_t>(active[r]) * stride};
            for (std::size_t t = t0; t < t1; ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                sums[r] += scale * val[n[0]];
            }
        }
        stats.tree_traversals += live * (t1 - t0);
        t0 = t1;
        if (t0 >= num_trees) {
            break;
        }

        // Decision point: bound the final sum and keep only rows whose
        // interval still straddles the threshold. The slack term
        // over-covers the rounding of both the remaining double
        // accumulation (gamma_k <= k * 2^-52 per unit magnitude) and
        // the suffix sums themselves.
        const double remaining = static_cast<double>(num_trees - t0);
        std::size_t w = 0;
        std::uint64_t decided = 0;
        for (std::size_t i = 0; i < live; ++i) {
            const double s = sums[i];
            const double slack = 1e-15 * (remaining + 4.0) *
                                 (std::abs(s) + suffix_abs_[t0]);
            const float glo = FinishOne(s + suffix_min_[t0] - slack);
            const float ghi = FinishOne(s + suffix_max_[t0] + slack);
            const int dec = DecideThreshold(op, threshold, glo, ghi);
            if (dec >= 0) {
                keep[active[i]] = static_cast<std::uint8_t>(dec);
                ++decided;
            } else {
                active[w] = active[i];
                sums[w] = s;
                ++w;
            }
        }
        stats.rows_decided_early += decided;
        live = w;
    }

    // Rows that ran every tree finish exactly like FinishSums.
    for (std::size_t i = 0; i < live; ++i) {
        keep[active[i]] = ThresholdHolds(op, threshold, FinishOne(sums[i]))
                              ? std::uint8_t{1}
                              : std::uint8_t{0};
    }
}

std::vector<std::uint8_t>
ForestKernel::PredictThreshold(const RowView& rows, ThresholdOp op,
                               float threshold, ThresholdStats* stats) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    const std::size_t num_rows = rows.rows();
    std::vector<std::uint8_t> keep(num_rows, 0);
    if (num_rows == 0) {
        return keep;
    }
    if (!SupportsThresholdEarlyExit()) {
        // v2 plans and vote combiners: score fully, then compare.
        // Exact, just without the skipped-tree savings.
        const std::vector<float> preds = Predict(rows);
        for (std::size_t i = 0; i < num_rows; ++i) {
            keep[i] = ThresholdHolds(op, threshold, preds[i])
                          ? std::uint8_t{1}
                          : std::uint8_t{0};
        }
        if (stats != nullptr) {
            stats->rows += num_rows;
            stats->tree_traversals += num_rows * NumTrees();
            stats->tree_traversals_full += num_rows * NumTrees();
        }
        return keep;
    }

    trace::ScopedSpan span(trace::StageKind::kKernel,
                           "forest-kernel-threshold");
    span.AddAttr("rows", static_cast<double>(num_rows));
    span.AddAttr("trees", static_cast<double>(NumTrees()));
    const trace::SpanContext parent = span.context();
    std::mutex stats_mutex;
    ThresholdStats total;
    auto worker = [&, parent](std::size_t begin, std::size_t end) {
        trace::ScopedSpan chunk(trace::StageKind::kKernel,
                                "kernel-threshold-chunk", parent);
        chunk.AddAttr("rows", static_cast<double>(end - begin));
        static thread_local Scratch scratch;
        ThresholdStats local;
        RunThreshold(rows.Row(begin), end - begin, rows.stride(), op,
                     threshold, keep.data() + begin, scratch, local);
        std::lock_guard<std::mutex> lock(stats_mutex);
        total.rows += local.rows;
        total.rows_decided_early += local.rows_decided_early;
        total.tree_traversals += local.tree_traversals;
        total.tree_traversals_full += local.tree_traversals_full;
    };
    if (num_rows >= options_.parallel_grain) {
        ThreadPool::Shared().ParallelForChunked(
            num_rows, options_.parallel_grain, worker);
    } else {
        worker(0, num_rows);
    }
    span.AddAttr("early",
                 static_cast<double>(total.rows_decided_early));
    if (stats != nullptr) {
        stats->rows += total.rows;
        stats->rows_decided_early += total.rows_decided_early;
        stats->tree_traversals += total.tree_traversals;
        stats->tree_traversals_full += total.tree_traversals_full;
    }
    return keep;
}

void
ForestKernel::RunBlockClassify(const float* rows, std::size_t num_rows,
                               std::size_t stride, float* out,
                               Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const auto num_classes = static_cast<std::size_t>(num_classes_);
    const std::int32_t* const cls = leaf_class_.data();
    std::int32_t* const counts = scratch.counts.data();
    std::fill(counts, counts + num_rows * num_classes, 0);

    // Row-group outer, trees inner: row pointers are computed once per
    // group and the group's feature rows stay hot in L1 across every
    // tree, while a tile's nodes stay cache-resident across groups.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    ++counts[(r + k) * num_classes +
                             static_cast<std::size_t>(cls[n[k]])];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                ++counts[r * num_classes +
                         static_cast<std::size_t>(cls[n[0]])];
            }
        }
    }
    for (std::size_t i = 0; i < num_rows; ++i) {
        const std::int32_t* c = counts + i * num_classes;
        std::size_t best = 0;
        for (std::size_t k = 1; k < num_classes; ++k) {
            // Strict > keeps the lowest class id on ties, exactly like
            // MajorityVote.
            if (c[k] > c[best]) {
                best = k;
            }
        }
        out[i] = static_cast<float>(best);
    }
}

void
ForestKernel::RunBlockAccumulate(const float* rows, std::size_t num_rows,
                                 std::size_t stride, float* out,
                                 Scratch& scratch) const
{
    const Node* const nodes = nodes_.data();
    const float* const val = value_.data();
    const double scale = scale_;
    double* const sums = scratch.sums.data();
    std::fill(sums, sums + num_rows, init_);

    // Trees iterate in ensemble order for every row (tiles cover
    // consecutive trees), so each row's double sum accumulates in the
    // reference order and the mean/margin is bit-identical to the
    // scalar path.
    std::size_t r = 0;
    for (; r + kTraversalLanes <= num_rows; r += kTraversalLanes) {
        const float* rowp[kTraversalLanes];
        for (std::size_t k = 0; k < kTraversalLanes; ++k) {
            rowp[k] = rows + (r + k) * stride;
        }
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[kTraversalLanes];
                TraverseGroup<kTraversalLanes>(nodes, roots_[t],
                                               depths_[t], rowp, n);
                for (std::size_t k = 0; k < kTraversalLanes; ++k) {
                    sums[r + k] += scale * val[n[k]];
                }
            }
        }
    }
    for (; r < num_rows; ++r) {
        const float* rowp[1] = {rows + r * stride};
        for (const TreeTile& tile : tiles_) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree;
                 ++t) {
                std::int32_t n[1];
                TraverseGroup<1>(nodes, roots_[t], depths_[t], rowp, n);
                sums[r] += scale * val[n[0]];
            }
        }
    }
    FinishSums(sums, num_rows, out);
}

void
ForestKernel::RunStrided(const float* rows, std::size_t num_rows,
                         std::size_t stride, float* out,
                         Scratch& scratch) const
{
    if (num_rows == 0) {
        return;
    }
    if (v2_) {
        v2_->RunStrided(*this, rows, num_rows, stride, out, scratch);
        return;
    }
    if (combine_ == KernelCombine::kVoteClassify) {
        const std::size_t need =
            options_.row_block * static_cast<std::size_t>(num_classes_);
        if (scratch.counts.size() < need) {
            scratch.counts.resize(need);
        }
    } else if (scratch.sums.size() < options_.row_block) {
        scratch.sums.resize(options_.row_block);
    }

    for (std::size_t begin = 0; begin < num_rows;
         begin += options_.row_block) {
        const std::size_t block =
            std::min(options_.row_block, num_rows - begin);
        if (combine_ == KernelCombine::kVoteClassify) {
            RunBlockClassify(rows + begin * stride, block, stride,
                             out + begin, scratch);
        } else {
            RunBlockAccumulate(rows + begin * stride, block, stride,
                               out + begin, scratch);
        }
    }
}

void
ForestKernel::Run(const float* rows, std::size_t num_rows,
                  std::size_t num_cols, float* out,
                  Scratch& scratch) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows, num_rows, num_cols, out, scratch);
}

void
ForestKernel::Run(const RowView& rows, float* out, Scratch& scratch) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    RunStrided(rows.data(), rows.rows(), rows.stride(), out, scratch);
}

std::vector<float>
ForestKernel::Predict(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) const
{
    if (num_cols != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    return Predict(RowView::Borrow(rows, num_rows, num_cols));
}

std::vector<float>
ForestKernel::Predict(const RowView& rows) const
{
    if (rows.cols() != num_features_) {
        throw InvalidArgument("forest kernel: row arity mismatch");
    }
    const std::size_t num_rows = rows.rows();
    std::vector<float> out(num_rows);
    if (num_rows == 0) {
        return out;
    }
    // Wall-clock batch span; pooled chunk workers parent to it via the
    // captured context (chunks run on pool threads, not this one).
    // One span per batch + one per chunk (>= 4096 rows each), so the
    // cost stays far under the bench's 3% overhead budget.
    trace::ScopedSpan span(trace::StageKind::kKernel, "forest-kernel");
    span.AddAttr("rows", static_cast<double>(num_rows));
    span.AddAttr("trees", static_cast<double>(NumTrees()));
    const trace::SpanContext parent = span.context();
    auto worker = [&, parent](std::size_t begin, std::size_t end) {
        trace::ScopedSpan chunk(trace::StageKind::kKernel, "kernel-chunk",
                                parent);
        chunk.AddAttr("rows", static_cast<double>(end - begin));
        static thread_local Scratch scratch;
        RunStrided(rows.Row(begin), end - begin, rows.stride(),
                   out.data() + begin, scratch);
    };
    if (num_rows >= options_.parallel_grain) {
        ThreadPool::Shared().ParallelForChunked(
            num_rows, options_.parallel_grain, worker);
    } else {
        worker(0, num_rows);
    }
    return out;
}

}  // namespace dbscore
