#include "dbscore/forest/onnx_like.h"

#include <algorithm>
#include <map>

#include "dbscore/common/error.h"
#include "dbscore/forest/serialize.h"

namespace dbscore {

namespace {
constexpr std::uint32_t kMagic = 0x454E4F54;  // "TONE"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::size_t
TreeEnsemble::NumTrees() const
{
    if (tree_ids.empty()) {
        return 0;
    }
    return static_cast<std::size_t>(
        *std::max_element(tree_ids.begin(), tree_ids.end())) + 1;
}

std::uint64_t
TreeEnsemble::ByteSize() const
{
    // Per node: tree id, node id, mode, feature, threshold, two child ids,
    // leaf value. Matches the serialized layout (mode packed to 1 byte).
    return static_cast<std::uint64_t>(NumNodes()) *
               (4 + 4 + 1 + 4 + 4 + 4 + 4 + 4) + 32;
}

TreeEnsemble
TreeEnsemble::FromForest(const RandomForest& forest)
{
    TreeEnsemble e;
    e.task = forest.task();
    e.num_features = static_cast<std::uint32_t>(forest.num_features());
    e.num_classes = forest.num_classes();
    const std::size_t total = forest.TotalNodes();
    e.tree_ids.reserve(total);
    e.node_ids.reserve(total);
    e.modes.reserve(total);
    e.feature_ids.reserve(total);
    e.thresholds.reserve(total);
    e.true_children.reserve(total);
    e.false_children.reserve(total);
    e.leaf_values.reserve(total);

    for (std::size_t t = 0; t < forest.NumTrees(); ++t) {
        const DecisionTree& tree = forest.Tree(t);
        for (std::size_t i = 0; i < tree.NumNodes(); ++i) {
            auto node = static_cast<std::int32_t>(i);
            e.tree_ids.push_back(static_cast<std::int32_t>(t));
            e.node_ids.push_back(node);
            if (tree.IsLeaf(node)) {
                e.modes.push_back(NodeMode::kLeaf);
                e.feature_ids.push_back(kLeafFeature);
                e.thresholds.push_back(0.0f);
                e.true_children.push_back(-1);
                e.false_children.push_back(-1);
                e.leaf_values.push_back(tree.LeafValue(node));
            } else {
                e.modes.push_back(NodeMode::kBranchLeq);
                e.feature_ids.push_back(tree.Feature(node));
                e.thresholds.push_back(tree.Threshold(node));
                e.true_children.push_back(tree.Left(node));
                e.false_children.push_back(tree.Right(node));
                e.leaf_values.push_back(0.0f);
            }
        }
    }
    return e;
}

RandomForest
TreeEnsemble::ToForest() const
{
    const std::size_t n = NumNodes();
    if (n == 0) {
        throw ParseError("ensemble: empty");
    }
    if (node_ids.size() != n || modes.size() != n ||
        feature_ids.size() != n || thresholds.size() != n ||
        true_children.size() != n || false_children.size() != n ||
        leaf_values.size() != n) {
        throw ParseError("ensemble: ragged attribute arrays");
    }

    RandomForest forest(task, num_features, num_classes);
    const std::size_t num_trees = NumTrees();
    if (num_trees > n) {
        // Every tree needs at least one node; a larger id space means a
        // corrupt tree_ids array.
        throw ParseError("ensemble: tree ids exceed node count");
    }

    // Entries may arrive in any order; bucket per tree by node id first.
    std::vector<std::vector<std::size_t>> per_tree(num_trees);
    for (std::size_t i = 0; i < n; ++i) {
        std::int32_t t = tree_ids[i];
        if (t < 0 || static_cast<std::size_t>(t) >= num_trees) {
            throw ParseError("ensemble: bad tree id");
        }
        per_tree[static_cast<std::size_t>(t)].push_back(i);
    }

    for (std::size_t t = 0; t < num_trees; ++t) {
        auto& entries = per_tree[t];
        if (entries.empty()) {
            throw ParseError("ensemble: tree with no nodes");
        }
        std::sort(entries.begin(), entries.end(),
                  [this](std::size_t a, std::size_t b) {
                      return node_ids[a] < node_ids[b];
                  });
        DecisionTree tree;
        for (std::size_t k = 0; k < entries.size(); ++k) {
            std::size_t i = entries[k];
            if (node_ids[i] != static_cast<std::int32_t>(k)) {
                throw ParseError("ensemble: node ids not dense");
            }
            if (modes[i] == NodeMode::kLeaf) {
                tree.AddLeafNode(leaf_values[i]);
            } else {
                if (feature_ids[i] < 0) {
                    throw ParseError("ensemble: branch without feature");
                }
                std::int32_t node =
                    tree.AddDecisionNode(feature_ids[i], thresholds[i]);
                tree.SetChildren(node, true_children[i], false_children[i]);
            }
        }
        tree.Validate(num_features);
        forest.AddTree(std::move(tree));
    }
    return forest;
}

std::vector<std::uint8_t>
TreeEnsemble::Serialize() const
{
    ByteWriter w;
    w.PutU32(kMagic);
    w.PutU32(kVersion);
    w.PutU8(task == Task::kClassification ? 0 : 1);
    w.PutU32(num_features);
    w.PutI32(num_classes);
    w.PutU64(NumNodes());
    for (std::size_t i = 0; i < NumNodes(); ++i) {
        w.PutI32(tree_ids[i]);
        w.PutI32(node_ids[i]);
        w.PutU8(static_cast<std::uint8_t>(modes[i]));
        w.PutI32(feature_ids[i]);
        w.PutF32(thresholds[i]);
        w.PutI32(true_children[i]);
        w.PutI32(false_children[i]);
        w.PutF32(leaf_values[i]);
    }
    return w.Take();
}

TreeEnsemble
TreeEnsemble::Deserialize(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.GetU32() != kMagic) {
        throw ParseError("ensemble blob: bad magic");
    }
    if (r.GetU32() != kVersion) {
        throw ParseError("ensemble blob: unsupported version");
    }
    TreeEnsemble e;
    std::uint8_t task_byte = r.GetU8();
    if (task_byte > 1) {
        throw ParseError("ensemble blob: bad task byte");
    }
    e.task = task_byte == 0 ? Task::kClassification : Task::kRegression;
    e.num_features = r.GetU32();
    e.num_classes = r.GetI32();
    std::uint64_t n = r.GetU64();
    // Each node occupies 25 serialized bytes; a count beyond what the
    // remaining payload can hold is corrupt (and would otherwise trigger
    // a giant up-front allocation).
    if (n == 0 || n > r.remaining() / 25) {
        throw ParseError("ensemble blob: implausible node count");
    }
    e.tree_ids.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        e.tree_ids.push_back(r.GetI32());
        e.node_ids.push_back(r.GetI32());
        std::uint8_t mode = r.GetU8();
        if (mode > 1) {
            throw ParseError("ensemble blob: bad node mode");
        }
        e.modes.push_back(static_cast<NodeMode>(mode));
        e.feature_ids.push_back(r.GetI32());
        e.thresholds.push_back(r.GetF32());
        e.true_children.push_back(r.GetI32());
        e.false_children.push_back(r.GetI32());
        e.leaf_values.push_back(r.GetF32());
    }
    if (!r.AtEnd()) {
        throw ParseError("ensemble blob: trailing bytes");
    }
    return e;
}

}  // namespace dbscore
