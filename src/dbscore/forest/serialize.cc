#include "dbscore/forest/serialize.h"

#include <cstring>

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

constexpr std::uint32_t kMagic = 0x46534244;  // "DBSF"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxReasonableCount = 1u << 28;

}  // namespace

void
ByteWriter::PutU8(std::uint8_t v)
{
    bytes_.push_back(v);
}

void
ByteWriter::PutU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::PutU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::PutI32(std::int32_t v)
{
    PutU32(static_cast<std::uint32_t>(v));
}

void
ByteWriter::PutF32(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
}

void
ByteWriter::PutF64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
}

void
ByteWriter::PutString(const std::string& s)
{
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
}

void
ByteWriter::PutBytes(const void* data, std::size_t size)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
}

void
ByteReader::Require(std::size_t n) const
{
    if (pos_ + n > bytes_.size()) {
        throw ParseError("blob: truncated input");
    }
}

std::uint8_t
ByteReader::GetU8()
{
    Require(1);
    return bytes_[pos_++];
}

std::uint32_t
ByteReader::GetU32()
{
    Require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
}

std::uint64_t
ByteReader::GetU64()
{
    Require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
}

std::int32_t
ByteReader::GetI32()
{
    return static_cast<std::int32_t>(GetU32());
}

float
ByteReader::GetF32()
{
    std::uint32_t bits = GetU32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

double
ByteReader::GetF64()
{
    std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::GetString()
{
    std::uint32_t size = GetU32();
    if (size > kMaxReasonableCount) {
        throw ParseError("blob: implausible string length");
    }
    Require(size);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return s;
}

void
ByteReader::GetBytes(void* out, std::size_t size)
{
    Require(size);
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
}

std::vector<std::uint8_t>
SerializeForest(const RandomForest& forest)
{
    ByteWriter w;
    w.PutU32(kMagic);
    w.PutU32(kVersion);
    w.PutU8(forest.task() == Task::kClassification ? 0 : 1);
    w.PutU32(static_cast<std::uint32_t>(forest.num_features()));
    w.PutU32(static_cast<std::uint32_t>(forest.num_classes()));
    w.PutU32(static_cast<std::uint32_t>(forest.NumTrees()));
    for (const auto& tree : forest.trees()) {
        const auto n = static_cast<std::uint32_t>(tree.NumNodes());
        w.PutU32(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            auto node = static_cast<std::int32_t>(i);
            w.PutI32(tree.Feature(node));
            w.PutF32(tree.Threshold(node));
            w.PutI32(tree.Left(node));
            w.PutI32(tree.Right(node));
            w.PutF32(tree.LeafValue(node));
        }
    }
    return w.Take();
}

RandomForest
DeserializeForest(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.GetU32() != kMagic) {
        throw ParseError("forest blob: bad magic");
    }
    std::uint32_t version = r.GetU32();
    if (version != kVersion) {
        throw ParseError("forest blob: unsupported version");
    }
    std::uint8_t task_byte = r.GetU8();
    if (task_byte > 1) {
        throw ParseError("forest blob: bad task byte");
    }
    Task task = task_byte == 0 ? Task::kClassification : Task::kRegression;
    std::uint32_t num_features = r.GetU32();
    std::uint32_t num_classes = r.GetU32();
    std::uint32_t num_trees = r.GetU32();
    if (num_features == 0 || num_features > kMaxReasonableCount ||
        num_trees == 0 || num_trees > kMaxReasonableCount) {
        throw ParseError("forest blob: implausible dimensions");
    }
    if (task == Task::kClassification && num_classes < 2) {
        throw ParseError("forest blob: bad class count");
    }
    if (task == Task::kRegression && num_classes != 0) {
        throw ParseError("forest blob: regression with classes");
    }

    RandomForest forest(task, num_features,
                        static_cast<int>(num_classes));
    for (std::uint32_t t = 0; t < num_trees; ++t) {
        std::uint32_t n = r.GetU32();
        if (n == 0 || n > kMaxReasonableCount) {
            throw ParseError("forest blob: implausible node count");
        }
        DecisionTree tree;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::int32_t feature = r.GetI32();
            float threshold = r.GetF32();
            std::int32_t left = r.GetI32();
            std::int32_t right = r.GetI32();
            float value = r.GetF32();
            if (feature == kLeafFeature) {
                tree.AddLeafNode(value);
            } else {
                if (feature < 0) {
                    throw ParseError("forest blob: bad feature id");
                }
                std::int32_t node = tree.AddDecisionNode(feature, threshold);
                // Children validated by tree.Validate() below; record raw.
                tree.SetChildren(node, left, right);
            }
        }
        tree.Validate(num_features);
        forest.AddTree(std::move(tree));
    }
    if (!r.AtEnd()) {
        throw ParseError("forest blob: trailing bytes");
    }
    return forest;
}

}  // namespace dbscore
