/**
 * @file
 * ForestKernel: a compiled, cache-blocked, allocation-free batch
 * inference plan for tree ensembles (random forests and GBDTs).
 *
 * The reference RandomForest::Predict walks one tree at a time through
 * per-tree std::vector storage — five vector-header dereferences per
 * tree per row and a working set that revisits the whole ensemble for
 * every row. ForestKernel compiles the ensemble once into flat node
 * pools with every tree's nodes in level (BFS) order, so the first K
 * levels of a tree — the part every row traverses — occupy a
 * contiguous prefix of its node range. BFS emits siblings adjacently,
 * so the right child is implicitly left + 1 and the descend step is
 * branchless integer arithmetic:
 * n = left[n] + !(row[feature[n]] <= threshold[n]), which matches the
 * reference "x <= t goes left, else (including NaN) right" exactly.
 *
 * Two compiled layouts are selectable through ForestKernelOptions:
 *
 *  - v1: packed 12-byte AoS nodes {f32 threshold, i32 absolute left,
 *    i16 feature}, traversed 16 scalar rows per tree (independent
 *    dependence chains held in registers).
 *  - v2 (default): structure-of-arrays nodes built for SIMD gathers —
 *    8 bytes/node exact ({f32 threshold} + {feat:15|left:17} packed
 *    i32 with tree-local left indices), 6 bytes/node quantized
 *    ({feat:15|left:17} + u16 threshold bin rank, with rows pre-binned
 *    once per block so traversal compares integers). The inner loop
 *    steps groups of 8 rows per tree through the simd.h shim
 *    (AVX2/NEON/scalar): gathered node loads, a blended descend
 *    (n = left - (x > t ? -1 : 0) as a SIMD mask subtract), and a
 *    whole-group early exit once every lane parks on its self-looping
 *    leaf. A build-time autotuner (see kernel_autotune.h) benchmarks
 *    (row_block, tile_node_budget, lane width) candidates on a
 *    deterministic synthetic sample and caches the winner per model
 *    shape, replacing the fixed LLC heuristic.
 *
 * Exact mode (v1 and v2) is bit-identical to the reference scalar
 * path: tree order within a row is preserved across tiles, so
 * regression sums (double accumulation in tree order) and
 * classification votes (integer counts, lowest-class-id tie break)
 * reproduce the reference exactly — tests assert this. Quantized mode
 * carries an epsilon-bounded prediction contract that degenerates to
 * bit-identity whenever every distinct threshold received its own bin
 * (quant_exact(), the common case): monotone binning with
 * rank-encoded cut points preserves every comparison outcome, see
 * DESIGN.md §13.
 *
 * Execution is tiled batch-major: blocks of R rows x T trees, with the
 * tree tile sized so its nodes stay resident in the last-level cache
 * while all R rows traverse it. Traversal is fixed-trip: a leaf is
 * {threshold = +inf (bin 0xFFFF quantized), left = self}, so the
 * branchless step is a no-op once a row bottoms out and a tree of
 * depth D is walked with exactly D steps and no leaf test. Votes and
 * sums accumulate into a caller-owned reusable Scratch, so
 * steady-state Run() performs zero heap allocations.
 *
 * Wall-clock only: the kernel changes how fast functional predictions
 * are computed, never the simulated OffloadBreakdown latencies (see
 * DESIGN.md, "Functional kernels vs simulated time"). Compilation
 * (and autotuning) is attributed to the kKernelBuild trace stage.
 */
#ifndef DBSCORE_FOREST_FOREST_KERNEL_H
#define DBSCORE_FOREST_FOREST_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dbscore/data/dataset.h"

namespace dbscore {

class RandomForest;
class GradientBoostedModel;
class DecisionTree;
struct KernelV2Plan;

/** Compiled node layout generation. */
enum class KernelVersion : std::uint8_t {
    kV1 = 1,  ///< 12-byte AoS nodes, scalar 16-lane traversal
    kV2 = 2,  ///< SoA 8/6-byte nodes, SIMD 8-lane groups + autotune
};

/** Threshold representation of the compiled plan. */
enum class KernelMode : std::uint8_t {
    kExact,      ///< f32 thresholds; bit-identical to the reference
    kQuantized,  ///< u16 bin ranks + pre-binned rows (v2 only)
};

/** Traversal inner-loop selection (v2 only; v1 is always scalar). */
enum class KernelLanes : std::uint8_t {
    kAuto,    ///< autotuner (or heuristic) picks scalar vs SIMD
    kScalar,  ///< force the scalar 16-lane loop
    kSimd,    ///< force the 8-lane SIMD shim loop
};

/**
 * Tuning knobs of the compiled plan. The full option set participates
 * in RandomForest/GradientBoostedModel kernel-cache keys, so two
 * requests with different options never share a stale plan.
 */
struct ForestKernelOptions {
    /** Rows per traversal tile (v2 kAuto: autotuner may override). */
    std::size_t row_block = 64;
    /**
     * Upper bound on nodes per tree tile; sized so one tile's packed
     * traversal nodes stay cache-resident while a row block traverses
     * it. The default keeps a v1 tile near 0.75 MB (v2 kAuto: the
     * autotuner may override).
     */
    std::size_t tile_node_budget = std::size_t{1} << 16;
    /**
     * Minimum rows per worker chunk when Predict() parallelizes over
     * the shared ThreadPool; below 2x this count the batch runs inline.
     */
    std::size_t parallel_grain = 4096;

    /** Layout generation; v2 falls back to v1 when unsupported. */
    KernelVersion version = KernelVersion::kV2;
    /** Threshold representation (quantized is v2-only). */
    KernelMode mode = KernelMode::kExact;
    /** Inner-loop selection (v2). */
    KernelLanes lanes = KernelLanes::kAuto;
    /**
     * Benchmark (row_block, tile_node_budget, lane width) candidates
     * at build time and adopt the winner (v2 + kAuto lanes only).
     * Winners are cached process-wide per model shape.
     */
    bool autotune = true;
    /** Seed for the autotuner's synthetic sample rows. */
    std::uint64_t autotune_seed = 42;
    /** SIMD row groups (of 8) in flight per tree; 0 = tuned/heuristic. */
    std::size_t simd_groups = 0;

    bool operator==(const ForestKernelOptions&) const = default;
};

/** How per-tree outputs combine into a final prediction. */
enum class KernelCombine : std::uint8_t {
    kVoteClassify,    ///< forest: majority vote, lowest-id tie break
    kMeanRegress,     ///< forest: mean of leaf values (tree order)
    kMargin,          ///< gbdt: base + lr * sum (tree order)
    kMarginClassify,  ///< gbdt: margin through sigmoid, threshold 0.5
};

/** Comparison a query pushes into traversal via PredictThreshold. */
enum class ThresholdOp : std::uint8_t {
    kGt,  ///< prediction >  threshold
    kGe,  ///< prediction >= threshold
    kLt,  ///< prediction <  threshold
    kLe,  ///< prediction <= threshold
};

/** True when @p value satisfies "@p value op @p threshold". */
bool ThresholdHolds(ThresholdOp op, float threshold, float value);

/** Work accounting for PredictThreshold (accumulates across calls). */
struct ThresholdStats {
    std::uint64_t rows = 0;
    /** Rows whose predicate was decided before the last tree. */
    std::uint64_t rows_decided_early = 0;
    /** (tree, row) traversals actually executed. */
    std::uint64_t tree_traversals = 0;
    /** rows x num_trees: what a full scoring pass would execute. */
    std::uint64_t tree_traversals_full = 0;
};

/** A compiled ensemble inference plan; immutable after construction. */
class ForestKernel {
 public:
    /**
     * Reusable per-thread working set. Buffers grow on first use and
     * are reused afterwards, so steady-state Run() calls allocate
     * nothing. Not thread-safe: one Scratch per running thread.
     */
    class Scratch {
     private:
        friend class ForestKernel;
        friend struct KernelV2Plan;
        /** Per-(row, class) vote counts, row_block x num_classes. */
        std::vector<std::int32_t> counts;
        /** Per-row accumulators, tree order, row_block. */
        std::vector<double> sums;
        /** v2 quantized: pre-binned rows (row-major, +2 bytes pad). */
        std::vector<std::uint16_t> binned;
        /** v2: per-group leaf indices. */
        std::vector<std::int32_t> leaves;
        /** threshold early-exit: undecided row indices (compacted). */
        std::vector<std::int32_t> active;
    };

    /**
     * Compiles @p forest. The forest may be destroyed afterwards; the
     * kernel owns flat copies of everything it needs.
     *
     * @throws InvalidArgument when Supports(forest) is false
     */
    explicit ForestKernel(const RandomForest& forest,
                          const ForestKernelOptions& options = {});

    /**
     * Compiles @p gbdt with a margin combiner: predictions are
     * bit-identical to GradientBoostedModel::Predict (margin
     * accumulated in double in tree order, classification thresholded
     * after a sigmoid).
     *
     * @throws InvalidArgument when Supports(gbdt) is false
     */
    explicit ForestKernel(const GradientBoostedModel& gbdt,
                          const ForestKernelOptions& options = {});

    ~ForestKernel();
    ForestKernel(ForestKernel&&) = delete;
    ForestKernel& operator=(ForestKernel&&) = delete;

    /**
     * True when @p forest can be compiled: at least one tree and
     * feature ids that fit the kernel's 15-bit feature field.
     */
    static bool Supports(const RandomForest& forest);

    /** True when @p gbdt can be compiled (same structural limits). */
    static bool Supports(const GradientBoostedModel& gbdt);

    Task task() const { return task_; }
    int num_classes() const { return num_classes_; }
    std::size_t num_features() const { return num_features_; }
    std::size_t NumTrees() const { return roots_.size(); }
    std::size_t NumNodes() const { return num_nodes_; }
    /** Tree tiles the ensemble was partitioned into. */
    std::size_t NumTiles() const;
    const ForestKernelOptions& options() const { return options_; }

    /** Layout actually compiled (v2 may have fallen back to v1). */
    KernelVersion version() const { return version_; }
    KernelMode mode() const { return mode_; }
    KernelCombine combine() const { return combine_; }

    /** True when the v2 plan runs the SIMD shim inner loop. */
    bool simd_active() const;
    /** Compile-time shim backend: "avx2", "neon", or "scalar". */
    static const char* SimdBackend();
    /** SIMD row groups in flight per tree (0 for scalar/v1 plans). */
    std::size_t simd_groups() const;
    /** Rows one traversal group keeps in flight per tree: 8 x groups
     * with SIMD, the tuned 16/32/64 scalar lane width otherwise (16
     * for v1's fixed loop). */
    std::size_t tuned_lane_rows() const;
    /** Row block the plan actually runs (post-autotune). */
    std::size_t tuned_row_block() const;
    /** Tile node budget the plan actually runs (post-autotune). */
    std::size_t tuned_tile_node_budget() const;
    /** True when the autotuner picked this plan's parameters. */
    bool autotuned() const;

    /**
     * Wall-clock milliseconds Compile() took (autotuning included) —
     * the build cost a serving layer re-pays when a cached kernel is
     * evicted and later rebuilt (the fleet registry's re-warm tax).
     */
    double build_wall_ms() const { return build_wall_ms_; }

    /**
     * Quantized plans: true when every distinct threshold received its
     * own bin, which upgrades the epsilon contract to bit-identity
     * (monotone binning preserves every comparison; DESIGN.md §13).
     */
    bool quant_exact() const;
    /** Largest per-feature bin count of a quantized plan (else 0). */
    std::size_t quant_max_bins() const;

    /**
     * Single-threaded execution: writes one prediction per row into
     * @p out (caller-owned, at least @p num_rows floats). Zero heap
     * allocations once @p scratch is warm. Thread-safe w.r.t. the
     * kernel (const); @p scratch must not be shared across threads.
     *
     * @throws InvalidArgument on arity mismatch
     */
    void Run(const float* rows, std::size_t num_rows, std::size_t num_cols,
             float* out, Scratch& scratch) const;

    /**
     * Zero-copy variant: traverses @p rows in place, honoring its
     * stride — strided views (e.g. a column-prefix of a wider block)
     * run directly, no compaction copy.
     */
    void Run(const RowView& rows, float* out, Scratch& scratch) const;

    /**
     * Batch prediction with chunked ThreadPool parallelism (thread-local
     * scratch per worker). Exact plans match the reference scalar path
     * bit-for-bit.
     */
    std::vector<float> Predict(const float* rows, std::size_t num_rows,
                               std::size_t num_cols) const;

    /** Zero-copy batch prediction over a (possibly strided) view. */
    std::vector<float> Predict(const RowView& rows) const;

    /**
     * True when PredictThreshold can stop accumulating trees early:
     * the plan compiled the v1 layout with an accumulator combiner
     * (kMeanRegress / kMargin / kMarginClassify). The combiner's
     * finisher g(sum) — float cast, divide by tree count, sigmoid +
     * 0.5 threshold — is monotone non-decreasing in the sum, so a
     * conservative [lo, hi] interval on the remaining-tree
     * contribution decides "g(sum) op θ" exactly (DESIGN.md §14).
     */
    bool SupportsThresholdEarlyExit() const;

    /**
     * Evaluates "prediction(row) op threshold" per row without
     * materializing a score column: keep[i] is 1 when row i satisfies
     * the predicate, else 0. Bit-equivalent to comparing Predict()
     * output — early exit uses per-tree leaf-value suffix bounds plus
     * a rounding-slack margin, and rows whose interval straddles the
     * threshold finish all trees exactly. Falls back to a full
     * Predict() + compare (no early exit, still exact) when
     * SupportsThresholdEarlyExit() is false. @p stats, when non-null,
     * accumulates traversal-work accounting.
     */
    std::vector<std::uint8_t> PredictThreshold(
        const RowView& rows, ThresholdOp op, float threshold,
        ThresholdStats* stats = nullptr) const;

 private:
    friend struct KernelV2Plan;

    /** A run of consecutive trees whose nodes share one cache tile. */
    struct TreeTile {
        std::size_t first_tree;
        std::size_t end_tree;
    };

    Task task_ = Task::kClassification;
    int num_classes_ = 0;
    std::size_t num_features_ = 0;
    std::size_t num_nodes_ = 0;
    ForestKernelOptions options_;
    KernelVersion version_ = KernelVersion::kV1;
    KernelMode mode_ = KernelMode::kExact;
    KernelCombine combine_ = KernelCombine::kVoteClassify;
    /** Margin combiner parameters (gbdt): out = init + scale * sum. */
    double init_ = 0.0;
    double scale_ = 1.0;
    double build_wall_ms_ = 0.0;

    /**
     * One packed v1 traversal node: everything one descend step reads,
     * on one cache line. The right child is implicitly left + 1 (BFS
     * emits siblings adjacently); a leaf is {threshold = +inf,
     * left = self, feature = 0}, which the branchless step can evaluate
     * harmlessly forever without moving.
     */
    struct Node {
        float threshold;
        /** Absolute pool index (already offset by the tree base). */
        std::int32_t left;
        std::int16_t feature;
    };

    void Compile(const std::vector<DecisionTree>& trees);

    /** @p stride is the float distance between consecutive rows. */
    void RunBlockClassify(const float* rows, std::size_t num_rows,
                          std::size_t stride, float* out,
                          Scratch& scratch) const;
    void RunBlockAccumulate(const float* rows, std::size_t num_rows,
                            std::size_t stride, float* out,
                            Scratch& scratch) const;
    void RunStrided(const float* rows, std::size_t num_rows,
                    std::size_t stride, float* out, Scratch& scratch) const;
    /** Applies the combiner to finish @p num_rows accumulated sums. */
    void FinishSums(const double* sums, std::size_t num_rows,
                    float* out) const;
    /** The combiner's monotone finisher for one accumulated sum. */
    float FinishOne(double sum) const;
    /** Early-exit traversal over one chunk (v1 accumulate only). */
    void RunThreshold(const float* rows, std::size_t num_rows,
                      std::size_t stride, ThresholdOp op, float threshold,
                      std::uint8_t* keep, Scratch& scratch,
                      ThresholdStats& stats) const;

    /** Pool index of each tree's root (== the tree's base offset). */
    std::vector<std::int32_t> roots_;
    /** Depth of each tree in edges: the fixed traversal trip count. */
    std::vector<std::int32_t> depths_;
    /** Flattened v1 node pool, level order per tree. */
    std::vector<Node> nodes_;
    /** Leaf payload: value (regression / margin kernels). */
    std::vector<float> value_;
    /** Leaf payload: precomputed class id (vote kernels). */
    std::vector<std::int32_t> leaf_class_;

    std::vector<TreeTile> tiles_;

    /**
     * Threshold early-exit bounds (v1 accumulate combines only),
     * indexed by tree: suffix_min_[t] / suffix_max_[t] bound the
     * summed contribution (scale * leaf value) of trees [t, T), and
     * suffix_abs_[t] sums their magnitudes for the rounding-slack
     * term. Size T + 1 with zeros at index T.
     */
    std::vector<double> suffix_min_;
    std::vector<double> suffix_max_;
    std::vector<double> suffix_abs_;

    /** v2 plan; null when the kernel compiled the v1 layout. */
    std::unique_ptr<KernelV2Plan> v2_;
};

}  // namespace dbscore

#endif  // DBSCORE_FOREST_FOREST_KERNEL_H
