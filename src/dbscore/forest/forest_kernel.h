/**
 * @file
 * ForestKernel: a compiled, cache-blocked, allocation-free batch
 * inference plan for random forests.
 *
 * The reference RandomForest::Predict walks one tree at a time through
 * per-tree std::vector storage — five vector-header dereferences per
 * tree per row and a working set that revisits the whole ensemble for
 * every row. ForestKernel compiles the ensemble once into a single
 * contiguous pool of packed 12-byte nodes (float threshold, absolute
 * int32 left-child index, int16 feature id) with every tree's nodes in
 * level (BFS) order, so the first K levels of a tree — the part every
 * row traverses — occupy a contiguous prefix of its node range and one
 * node visit touches one cache line instead of three parallel arrays.
 * BFS emits siblings adjacently, so the right child is implicitly
 * left + 1 and the descend step is branchless integer arithmetic:
 * n = left[n] + !(row[feature[n]] <= threshold[n]), which matches the
 * reference "x <= t goes left, else (including NaN) right" exactly.
 *
 * Execution is tiled batch-major: blocks of R rows x T trees, with the
 * tree tile sized so its nodes stay resident in the last-level cache
 * while all R rows traverse it. Traversal is fixed-trip: a leaf is
 * {threshold = +inf, left = self}, so the branchless step is a no-op
 * once a row bottoms out and a tree of depth D is walked with exactly
 * D steps and no leaf test. That lets the inner loop interleave a
 * compile-time number of rows per tree (independent dependence chains
 * held in registers), which is what actually hides the node-load
 * latency that dominates pointer-chasing inference. Votes and sums
 * accumulate into a caller-owned reusable Scratch, so steady-state
 * Run() performs zero heap allocations. Tree order within a row is
 * preserved across tiles, which keeps regression sums (double
 * accumulation in tree order) and classification votes (integer counts,
 * lowest-class-id tie break) bit-identical to the reference scalar
 * path — tests assert this.
 *
 * Wall-clock only: the kernel changes how fast functional predictions
 * are computed, never the simulated OffloadBreakdown latencies (see
 * DESIGN.md, "Functional kernels vs simulated time").
 */
#ifndef DBSCORE_FOREST_FOREST_KERNEL_H
#define DBSCORE_FOREST_FOREST_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbscore/data/dataset.h"

namespace dbscore {

class RandomForest;

/** Tuning knobs of the compiled plan. */
struct ForestKernelOptions {
    /** Rows per traversal tile. */
    std::size_t row_block = 64;
    /**
     * Upper bound on nodes per tree tile; sized so one tile's packed
     * traversal nodes (12 bytes each) stay cache-resident while a row
     * block traverses it. The default keeps a tile near 0.75 MB.
     */
    std::size_t tile_node_budget = std::size_t{1} << 16;
    /**
     * Minimum rows per worker chunk when Predict() parallelizes over
     * the shared ThreadPool; below 2x this count the batch runs inline.
     */
    std::size_t parallel_grain = 4096;
};

/** A compiled forest inference plan; immutable after construction. */
class ForestKernel {
 public:
    /**
     * Reusable per-thread working set. Buffers grow on first use and
     * are reused afterwards, so steady-state Run() calls allocate
     * nothing. Not thread-safe: one Scratch per running thread.
     */
    class Scratch {
     private:
        friend class ForestKernel;
        /** Per-(row, class) vote counts, row_block x num_classes. */
        std::vector<std::int32_t> counts;
        /** Per-row regression accumulators, tree order, row_block. */
        std::vector<double> sums;
    };

    /**
     * Compiles @p forest. The forest may be destroyed afterwards; the
     * kernel owns flat copies of everything it needs.
     *
     * @throws InvalidArgument when Supports(forest) is false
     */
    explicit ForestKernel(const RandomForest& forest,
                          const ForestKernelOptions& options = {});

    /**
     * True when @p forest can be compiled: at least one tree and
     * feature ids that fit the kernel's int16 feature array.
     */
    static bool Supports(const RandomForest& forest);

    Task task() const { return task_; }
    int num_classes() const { return num_classes_; }
    std::size_t num_features() const { return num_features_; }
    std::size_t NumTrees() const { return roots_.size(); }
    std::size_t NumNodes() const { return nodes_.size(); }
    /** Tree tiles the ensemble was partitioned into. */
    std::size_t NumTiles() const { return tiles_.size(); }
    const ForestKernelOptions& options() const { return options_; }

    /**
     * Single-threaded execution: writes one prediction per row into
     * @p out (caller-owned, at least @p num_rows floats). Zero heap
     * allocations once @p scratch is warm. Thread-safe w.r.t. the
     * kernel (const); @p scratch must not be shared across threads.
     *
     * @throws InvalidArgument on arity mismatch
     */
    void Run(const float* rows, std::size_t num_rows, std::size_t num_cols,
             float* out, Scratch& scratch) const;

    /**
     * Zero-copy variant: traverses @p rows in place, honoring its
     * stride — strided views (e.g. a column-prefix of a wider block)
     * run directly, no compaction copy.
     */
    void Run(const RowView& rows, float* out, Scratch& scratch) const;

    /**
     * Batch prediction with chunked ThreadPool parallelism (thread-local
     * scratch per worker). Matches the reference scalar path
     * bit-for-bit.
     */
    std::vector<float> Predict(const float* rows, std::size_t num_rows,
                               std::size_t num_cols) const;

    /** Zero-copy batch prediction over a (possibly strided) view. */
    std::vector<float> Predict(const RowView& rows) const;

 private:
    /** A run of consecutive trees whose nodes share one cache tile. */
    struct TreeTile {
        std::size_t first_tree;
        std::size_t end_tree;
    };

    Task task_ = Task::kClassification;
    int num_classes_ = 0;
    std::size_t num_features_ = 0;
    ForestKernelOptions options_;

    /**
     * One packed traversal node: everything one descend step reads,
     * on one cache line. The right child is implicitly left + 1 (BFS
     * emits siblings adjacently); a leaf is {threshold = +inf,
     * left = self, feature = 0}, which the branchless step can evaluate
     * harmlessly forever without moving.
     */
    struct Node {
        float threshold;
        /** Absolute pool index (already offset by the tree base). */
        std::int32_t left;
        std::int16_t feature;
    };

    /** @p stride is the float distance between consecutive rows. */
    void RunBlockClassify(const float* rows, std::size_t num_rows,
                          std::size_t stride, float* out,
                          Scratch& scratch) const;
    void RunBlockRegress(const float* rows, std::size_t num_rows,
                         std::size_t stride, float* out,
                         Scratch& scratch) const;
    void RunStrided(const float* rows, std::size_t num_rows,
                    std::size_t stride, float* out, Scratch& scratch) const;

    /** Pool index of each tree's root (== the tree's base offset). */
    std::vector<std::int32_t> roots_;
    /** Depth of each tree in edges: the fixed traversal trip count. */
    std::vector<std::int32_t> depths_;
    /** Flattened node pool, level order per tree. */
    std::vector<Node> nodes_;
    /** Leaf payload: regression value (regression kernels). */
    std::vector<float> value_;
    /** Leaf payload: precomputed class id (classification kernels). */
    std::vector<std::int32_t> leaf_class_;

    std::vector<TreeTile> tiles_;
};

}  // namespace dbscore

#endif  // DBSCORE_FOREST_FOREST_KERNEL_H
