/**
 * @file
 * Depth pruning of trained trees.
 *
 * The paper's FPGA engine "does not support processing trees with more
 * than 10 levels, they need to be processed by the CPU". Besides the
 * hybrid FPGA+CPU extension, the other practical answer is pruning: cut
 * every subtree below the limit and replace it with its most likely
 * outcome. Pruned models fit the plain FPGA engine unchanged, trading a
 * (usually small) accuracy loss for full offload.
 *
 * Collapsed subtrees predict their probability-weighted outcome: each
 * leaf inside the cut subtree is weighted by its reach probability under
 * uniform branching (2^-depth-below-the-cut), a data-free approximation
 * of the training distribution.
 */
#ifndef DBSCORE_FOREST_PRUNE_H
#define DBSCORE_FOREST_PRUNE_H

#include <cstddef>

#include "dbscore/forest/forest.h"

namespace dbscore {

/**
 * Returns @p tree cut to at most @p max_depth levels.
 *
 * @param task decides how collapsed subtrees vote (majority class vs
 *        weighted mean)
 * @param num_classes class count for classification trees
 * @throws InvalidArgument for max_depth == 0
 */
DecisionTree PruneTreeToDepth(const DecisionTree& tree,
                              std::size_t max_depth, Task task,
                              int num_classes);

/** Prunes every tree of @p forest to @p max_depth levels. */
RandomForest PruneForestToDepth(const RandomForest& forest,
                                std::size_t max_depth);

/**
 * Fraction of probed rows whose forest prediction changes after pruning
 * to @p max_depth — the accuracy cost of fitting the FPGA.
 */
double PruningDisagreement(const RandomForest& forest,
                           std::size_t max_depth, const Dataset& data);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_PRUNE_H
