#include "dbscore/forest/tree.h"

#include <algorithm>
#include <utility>

#include "dbscore/common/error.h"

namespace dbscore {

std::size_t
DecisionTree::Idx(std::int32_t n) const
{
    DBS_ASSERT(n >= 0 && static_cast<std::size_t>(n) < NumNodes());
    return static_cast<std::size_t>(n);
}

std::int32_t
DecisionTree::AddDecisionNode(std::int32_t feature, float threshold)
{
    DBS_ASSERT(feature >= 0);
    feature_.push_back(feature);
    threshold_.push_back(threshold);
    left_.push_back(-1);
    right_.push_back(-1);
    value_.push_back(0.0f);
    return static_cast<std::int32_t>(NumNodes() - 1);
}

std::int32_t
DecisionTree::AddLeafNode(float value)
{
    feature_.push_back(kLeafFeature);
    threshold_.push_back(0.0f);
    left_.push_back(-1);
    right_.push_back(-1);
    value_.push_back(value);
    return static_cast<std::int32_t>(NumNodes() - 1);
}

void
DecisionTree::SetChildren(std::int32_t node, std::int32_t left,
                          std::int32_t right)
{
    DBS_ASSERT(!IsLeaf(node));
    left_[Idx(node)] = left;
    right_[Idx(node)] = right;
}

float
DecisionTree::Predict(const float* row) const
{
    return value_[static_cast<std::size_t>(PredictLeaf(row))];
}

std::int32_t
DecisionTree::PredictLeaf(const float* row) const
{
    DBS_ASSERT(!Empty());
    std::int32_t node = 0;
    while (feature_[static_cast<std::size_t>(node)] != kLeafFeature) {
        const auto i = static_cast<std::size_t>(node);
        node = row[feature_[i]] <= threshold_[i] ? left_[i] : right_[i];
    }
    return node;
}

std::size_t
DecisionTree::PathLength(const float* row) const
{
    DBS_ASSERT(!Empty());
    std::int32_t node = 0;
    std::size_t edges = 0;
    while (feature_[static_cast<std::size_t>(node)] != kLeafFeature) {
        const auto i = static_cast<std::size_t>(node);
        node = row[feature_[i]] <= threshold_[i] ? left_[i] : right_[i];
        ++edges;
    }
    return edges;
}

std::size_t
DecisionTree::Depth() const
{
    if (Empty()) {
        return 0;
    }
    std::size_t max_depth = 0;
    std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
        auto [node, depth] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, depth);
        if (!IsLeaf(node)) {
            stack.push_back({Left(node), depth + 1});
            stack.push_back({Right(node), depth + 1});
        }
    }
    return max_depth;
}

std::size_t
DecisionTree::NumLeaves() const
{
    std::size_t leaves = 0;
    for (std::int32_t f : feature_) {
        if (f == kLeafFeature) {
            ++leaves;
        }
    }
    return leaves;
}

void
DecisionTree::Validate(std::size_t num_features) const
{
    if (Empty()) {
        throw ParseError("tree: empty");
    }
    const std::size_t n = NumNodes();
    std::vector<int> visits(n, 0);
    std::vector<std::int32_t> stack{0};
    std::size_t seen = 0;
    while (!stack.empty()) {
        std::int32_t node = stack.back();
        stack.pop_back();
        if (node < 0 || static_cast<std::size_t>(node) >= n) {
            throw ParseError("tree: child id out of range");
        }
        if (++visits[static_cast<std::size_t>(node)] > 1) {
            throw ParseError("tree: node reachable more than once");
        }
        ++seen;
        const auto i = static_cast<std::size_t>(node);
        if (feature_[i] == kLeafFeature) {
            continue;
        }
        if (feature_[i] < 0 ||
            static_cast<std::size_t>(feature_[i]) >= num_features) {
            throw ParseError("tree: feature id out of range");
        }
        if (left_[i] < 0 || right_[i] < 0) {
            throw ParseError("tree: decision node missing a child");
        }
        stack.push_back(left_[i]);
        stack.push_back(right_[i]);
    }
    if (seen != n) {
        throw ParseError("tree: unreachable nodes present");
    }
}

}  // namespace dbscore
