#include "dbscore/forest/model_stats.h"

#include <algorithm>

#include "dbscore/forest/onnx_like.h"

namespace dbscore {

ModelStats
ComputeModelStats(const RandomForest& forest, const RowView& probe)
{
    ModelStats s;
    s.task = forest.task();
    s.num_trees = forest.NumTrees();
    s.num_features = forest.num_features();
    s.num_classes = forest.num_classes();
    s.max_depth = forest.MaxDepth();
    s.total_nodes = forest.TotalNodes();
    for (const auto& tree : forest.trees()) {
        s.total_leaves += tree.NumLeaves();
    }
    s.avg_nodes_per_tree = s.num_trees == 0
        ? 0.0
        : static_cast<double>(s.total_nodes) /
              static_cast<double>(s.num_trees);

    if (!probe.empty() && probe.cols() == forest.num_features()) {
        const std::size_t sample =
            std::min<std::size_t>(probe.rows(), 2048);
        std::uint64_t edges = 0;
        std::uint64_t traversals = 0;
        for (std::size_t i = 0; i < sample; ++i) {
            const float* row = probe.Row(i);
            for (const auto& tree : forest.trees()) {
                edges += tree.PathLength(row);
                ++traversals;
            }
        }
        s.avg_path_length = traversals == 0
            ? 0.0
            : static_cast<double>(edges) / static_cast<double>(traversals);
    } else {
        s.avg_path_length = static_cast<double>(s.max_depth) * 0.9;
    }

    s.serialized_bytes = TreeEnsemble::FromForest(forest).ByteSize();
    return s;
}

ModelStats
ComputeModelStats(const RandomForest& forest, const Dataset* probe)
{
    if (probe != nullptr && probe->num_rows() > 0 &&
        probe->num_features() == forest.num_features()) {
        return ComputeModelStats(forest, probe->View());
    }
    return ComputeModelStats(forest, RowView());
}

}  // namespace dbscore
