/**
 * @file
 * Random forest model: an ensemble of decision trees plus task metadata.
 *
 * Prediction combines per-tree outputs exactly as the paper describes:
 * majority vote for classification (ties broken toward the lowest class id,
 * the convention every engine in this repository follows) and the mean for
 * regression.
 */
#ifndef DBSCORE_FOREST_FOREST_H
#define DBSCORE_FOREST_FOREST_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dbscore/data/dataset.h"
#include "dbscore/forest/forest_kernel.h"
#include "dbscore/forest/tree.h"

namespace dbscore {

/** A trained random forest. */
class RandomForest {
 public:
    RandomForest() = default;

    /**
     * @param task classification or regression
     * @param num_features input arity every row must match
     * @param num_classes classification class count; 0 for regression
     */
    RandomForest(Task task, std::size_t num_features, int num_classes);

    // Value semantics despite the kernel-cache mutex: copies share the
    // (immutable) compiled kernel, never the lock.
    RandomForest(const RandomForest& other);
    RandomForest& operator=(const RandomForest& other);
    RandomForest(RandomForest&& other) noexcept;
    RandomForest& operator=(RandomForest&& other) noexcept;

    /** Invalidates the cached inference kernel. */
    void AddTree(DecisionTree tree);

    Task task() const { return task_; }
    std::size_t num_features() const { return num_features_; }
    int num_classes() const { return num_classes_; }
    std::size_t NumTrees() const { return trees_.size(); }

    const DecisionTree& Tree(std::size_t i) const;
    const std::vector<DecisionTree>& trees() const { return trees_; }

    /**
     * Reference single-row prediction: the ground truth every scoring
     * engine is tested against.
     */
    float Predict(const float* row) const;

    /** Batch prediction over a dataset's rows (see raw overload). */
    std::vector<float> PredictBatch(const Dataset& data) const;

    /**
     * Batch prediction over a raw row-major buffer. Delegates to the
     * cached ForestKernel (built lazily on first use, invalidated by
     * AddTree) whenever the kernel supports the model; predictions are
     * bit-identical to the scalar reference path either way.
     */
    std::vector<float> PredictBatch(const float* rows, std::size_t num_rows,
                                    std::size_t num_cols) const;

    /**
     * Zero-copy batch prediction over a (possibly strided) view:
     * traverses the viewed rows in place.
     */
    std::vector<float> PredictBatch(const RowView& rows) const;

    /**
     * The scalar reference batch path: per-row Predict with chunked
     * ThreadPool parallelism and no compiled kernel. The baseline the
     * kernel is benched and property-tested against.
     */
    std::vector<float> PredictBatchScalar(const float* rows,
                                          std::size_t num_rows,
                                          std::size_t num_cols) const;

    /**
     * The compiled inference plan for the current ensemble under the
     * default options: built on first call, cached until the forest
     * mutates, shared by copies. Thread-safe.
     * @throws InvalidArgument when the model is not kernel-compilable
     * (no trees yet)
     */
    std::shared_ptr<const ForestKernel> Kernel() const;

    /**
     * Same, honoring @p options. The full option set is part of the
     * cache key: a request whose options differ from the cached plan's
     * rebuilds instead of silently serving the stale plan (options
     * used to be dropped whenever a kernel was already cached).
     */
    std::shared_ptr<const ForestKernel> Kernel(
        const ForestKernelOptions& options) const;

    /** Fraction of rows whose prediction matches the dataset label. */
    double Accuracy(const Dataset& data) const;

    /** Deepest tree depth across the ensemble. */
    std::size_t MaxDepth() const;

    /** Total node count across the ensemble. */
    std::size_t TotalNodes() const;

    /** Validates every tree structurally. @throws ParseError */
    void Validate() const;

 private:
    Task task_ = Task::kClassification;
    std::size_t num_features_ = 0;
    int num_classes_ = 0;
    std::vector<DecisionTree> trees_;

    /** Lazily-built compiled kernel; null until first batch call. */
    mutable std::shared_ptr<const ForestKernel> kernel_;
    /** Options the cached kernel was built with (the cache key). */
    mutable ForestKernelOptions kernel_options_;
    mutable std::mutex kernel_mutex_;
};

/**
 * Combines per-tree votes into a final classification using majority vote
 * with lowest-class-id tie breaking. Exposed so accelerator simulators can
 * reuse the exact semantics.
 *
 * @param votes one predicted class id per tree
 * @param num_classes total class count
 */
int MajorityVote(const std::vector<int>& votes, int num_classes);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_FOREST_H
