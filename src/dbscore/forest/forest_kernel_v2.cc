#include "dbscore/forest/forest_kernel_v2.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "dbscore/common/error.h"
#include "dbscore/forest/simd.h"
#include "dbscore/forest/tree.h"

namespace dbscore {

namespace {

/**
 * Base rows per scalar v2 traversal group. Same ILP rationale as the
 * v1 loop — independent dependence chains hide node-load latency — but
 * v2 lets the autotuner widen this to 32 or 64 rows (groups 2/4) when
 * the model spills out of cache and the extra in-flight loads pay.
 */
constexpr std::size_t kScalarLanes = 16;

/**
 * Scalar exact traversal: kLanes rows through one tree. Identical
 * descend arithmetic to v1 (left + !(x <= t), NaN right), only the
 * node encoding differs — one interleaved 8-byte word per node
 * (threshold low, feature/left meta high, left tree-local), so each
 * step costs a single node load from a single cache line.
 */
template <std::size_t kLanes>
inline void
TraverseExactScalar(const std::uint64_t* enode, std::int32_t base,
                    std::int32_t depth, const float* const* rowp,
                    std::int32_t* n)
{
    // Two narrow loads per node instead of one u64 load: the threshold
    // goes straight to an FP register and the meta half to a GPR, so no
    // shift-and-transfer uops sit on the compare's critical path.
    const auto* fp = reinterpret_cast<const float*>(enode + base);
    const auto* mp =
        reinterpret_cast<const std::uint32_t*>(enode + base) + 1;
    for (std::size_t k = 0; k < kLanes; ++k) {
        n[k] = 0;
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        std::int32_t moved = 0;
        for (std::size_t k = 0; k < kLanes; ++k) {
            const std::int32_t n2 = 2 * n[k];
            const float t = fp[n2];
            const std::uint32_t meta = mp[n2];
            const auto feat = meta >> kV2LeftBits;
            const auto left =
                static_cast<std::int32_t>(meta) & kV2LeftMask;
            const std::int32_t next =
                left + static_cast<std::int32_t>(!(rowp[k][feat] <= t));
            moved |= next ^ n[k];
            n[k] = next;
        }
        if (moved == 0) {
            break;
        }
    }
}

/**
 * Scalar quantized traversal over pre-binned rows: the descend compares
 * integers, bin(x) <= cut(t) standing in for x <= t (see CutFor/BinOf
 * for why the ranks preserve every comparison).
 */
template <std::size_t kLanes>
inline void
TraverseQuantScalar(const std::int32_t* qmeta, const std::uint16_t* qcut,
                    std::int32_t base, std::int32_t depth,
                    const std::uint16_t* const* rowp, std::int32_t* n)
{
    const std::int32_t* const mp = qmeta + base;
    const std::uint16_t* const cp = qcut + base;
    for (std::size_t k = 0; k < kLanes; ++k) {
        n[k] = 0;
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        std::int32_t moved = 0;
        for (std::size_t k = 0; k < kLanes; ++k) {
            const std::int32_t w = mp[n[k]];
            const auto feat = static_cast<std::uint32_t>(w) >> kV2LeftBits;
            const std::int32_t left = w & kV2LeftMask;
            const std::int32_t next =
                left + static_cast<std::int32_t>(
                           rowp[k][feat] >
                           static_cast<std::uint16_t>(cp[n[k]]));
            moved |= next ^ n[k];
            n[k] = next;
        }
        if (moved == 0) {
            break;
        }
    }
}

/**
 * SIMD exact traversal: G interleaved groups of simd::kWidth rows
 * through one tree. Each step gathers the node's threshold and meta
 * halves (indices 2n and 2n+1 of the interleaved pool, so both land on
 * the node's one cache line), gathers one feature per lane from the
 * strided row base, and blends the descend as integer mask arithmetic:
 * CmpNotLe yields -1 where the row goes right, so next = left - mask.
 * Interleaving G groups keeps 3G gathers in flight per step, hiding
 * gather latency on one core. Leaves ({+inf, left = self}) keep every
 * non-NaN lane parked, and the level loop breaks once all G groups
 * stop moving.
 */
template <int G>
DBSCORE_SIMD_FN void
TraverseExactSimd(const std::uint64_t* enode, std::int32_t base,
                  std::int32_t depth, const float* rows,
                  std::int32_t stride, std::int32_t* leaves)
{
    using namespace simd;
    // Pre-offset both gather bases by the tree root (and the meta base
    // by its in-node position), so the hot loop computes only 2n.
    const auto* fbase = reinterpret_cast<const float*>(enode + base);
    const auto* ibase =
        reinterpret_cast<const std::int32_t*>(enode + base) + 1;
    const VI rowoff = Iota(stride);
    const VI vmask = Set1(kV2LeftMask);
    VI n[G];
    const float* rbase[G];
    for (int g = 0; g < G; ++g) {
        n[g] = Set1(0);
        rbase[g] = rows + static_cast<std::size_t>(g) * kWidth *
                              static_cast<std::size_t>(stride);
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        // One accumulated motion mask per level replaces a per-group
        // movemask: parked lanes contribute all-zero next ^ n.
        VI motion = Set1(0);
        for (int g = 0; g < G; ++g) {
            const VI n2 = Add(n[g], n[g]);
            const VF t = GatherF32(fbase, n2);
            const VI w = GatherI32(ibase, n2);
            const VI feat = Srl(w, kV2LeftBits);
            const VI left = And(w, vmask);
            const VF x = GatherF32(rbase[g], Add(rowoff, feat));
            const VI next = Sub(left, CmpNotLe(x, t));
            motion = Or(motion, Xor(next, n[g]));
            n[g] = next;
        }
        if (!AnyNonZero(motion)) {
            break;
        }
    }
    for (int g = 0; g < G; ++g) {
        Store(leaves + static_cast<std::size_t>(g) * kWidth, n[g]);
    }
}

/**
 * SIMD quantized traversal over pre-binned rows: same shape as the
 * exact loop but every load is 2 bytes narrower — u16 cut and bin
 * gathers (scale-2 trick, both buffers carry the +2-byte pad) and an
 * integer compare instead of the float one.
 */
template <int G>
DBSCORE_SIMD_FN void
TraverseQuantSimd(const std::int32_t* qmeta, const std::uint16_t* qcut,
                  std::int32_t base, std::int32_t depth,
                  const std::uint16_t* binned, std::int32_t stride,
                  std::int32_t* leaves)
{
    using namespace simd;
    const std::int32_t* mbase = qmeta + base;
    const std::uint16_t* cbase = qcut + base;
    const VI rowoff = Iota(stride);
    const VI vmask = Set1(kV2LeftMask);
    VI n[G];
    const std::uint16_t* rbase[G];
    for (int g = 0; g < G; ++g) {
        n[g] = Set1(0);
        rbase[g] = binned + static_cast<std::size_t>(g) * kWidth *
                                static_cast<std::size_t>(stride);
    }
    for (std::int32_t d = 0; d < depth; ++d) {
        VI motion = Set1(0);
        for (int g = 0; g < G; ++g) {
            const VI w = GatherI32(mbase, n[g]);
            const VI cut = GatherU16(cbase, n[g]);
            const VI feat = Srl(w, kV2LeftBits);
            const VI left = And(w, vmask);
            const VI b = GatherU16(rbase[g], Add(rowoff, feat));
            const VI next = Sub(left, CmpGt(b, cut));
            motion = Or(motion, Xor(next, n[g]));
            n[g] = next;
        }
        if (!AnyNonZero(motion)) {
            break;
        }
    }
    for (int g = 0; g < G; ++g) {
        Store(leaves + static_cast<std::size_t>(g) * kWidth, n[g]);
    }
}

/** Dispatches the group-count template parameter (G in {1, 2, 4, 8}). */
DBSCORE_SIMD_FN void
RunExactSimd(std::size_t groups, const std::uint64_t* enode,
             std::int32_t base, std::int32_t depth, const float* rows,
             std::int32_t stride, std::int32_t* leaves)
{
    switch (groups) {
    case 1:
        TraverseExactSimd<1>(enode, base, depth, rows, stride, leaves);
        break;
    case 2:
        TraverseExactSimd<2>(enode, base, depth, rows, stride, leaves);
        break;
    case 8:
        TraverseExactSimd<8>(enode, base, depth, rows, stride, leaves);
        break;
    default:
        TraverseExactSimd<4>(enode, base, depth, rows, stride, leaves);
        break;
    }
}

DBSCORE_SIMD_FN void
RunQuantSimd(std::size_t groups, const std::int32_t* qmeta,
             const std::uint16_t* qcut, std::int32_t base,
             std::int32_t depth, const std::uint16_t* binned,
             std::int32_t stride, std::int32_t* leaves)
{
    switch (groups) {
    case 1:
        TraverseQuantSimd<1>(qmeta, qcut, base, depth, binned, stride,
                             leaves);
        break;
    case 2:
        TraverseQuantSimd<2>(qmeta, qcut, base, depth, binned, stride,
                             leaves);
        break;
    case 8:
        TraverseQuantSimd<8>(qmeta, qcut, base, depth, binned, stride,
                             leaves);
        break;
    default:
        TraverseQuantSimd<4>(qmeta, qcut, base, depth, binned, stride,
                             leaves);
        break;
    }
}

/** Scalar traversal of L rows into n[], exact or quantized. */
template <std::size_t L>
inline void
ScalarTraverse(const KernelV2Plan& plan, bool quant, std::int32_t base,
               std::int32_t depth, const float* const* rowp,
               const std::uint16_t* const* browp, std::int32_t* n)
{
    if (quant) {
        TraverseQuantScalar<L>(plan.qmeta.data(), plan.qcut.data(), base,
                               depth, browp, n);
    } else {
        TraverseExactScalar<L>(plan.enode.data(), base, depth, rowp, n);
    }
}

/**
 * Scalar vote loop over full L-row groups, advancing @p r; the caller
 * finishes the sub-L tail with L = 1.
 */
template <std::size_t L>
void
ScalarVoteGroups(const KernelV2Plan& plan, bool quant,
                 const std::int32_t* roots, const std::int32_t* depths,
                 const std::int32_t* cls, const float* rows,
                 std::size_t num_rows, std::size_t stride,
                 const std::uint16_t* binned, std::size_t brow,
                 std::int32_t* counts, std::size_t num_classes,
                 std::size_t& r)
{
    for (; r + L <= num_rows; r += L) {
        const float* rowp[L];
        const std::uint16_t* browp[L];
        for (std::size_t i = 0; i < L; ++i) {
            rowp[i] = rows + (r + i) * stride;
            browp[i] = binned + (r + i) * brow;
        }
        for (const KernelV2Plan::Tile& tile : plan.tiles) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree; ++t) {
                const std::int32_t base = roots[t];
                std::int32_t n[L];
                ScalarTraverse<L>(plan, quant, base, depths[t], rowp,
                                  browp, n);
                for (std::size_t i = 0; i < L; ++i) {
                    ++counts[(r + i) * num_classes +
                             static_cast<std::size_t>(cls[base + n[i]])];
                }
            }
        }
    }
}

/** Scalar accumulate loop over full L-row groups, advancing @p r. */
template <std::size_t L>
void
ScalarAccumulateGroups(const KernelV2Plan& plan, bool quant,
                       const std::int32_t* roots, const std::int32_t* depths,
                       const float* val, double scale, const float* rows,
                       std::size_t num_rows, std::size_t stride,
                       const std::uint16_t* binned, std::size_t brow,
                       double* sums, std::size_t& r)
{
    for (; r + L <= num_rows; r += L) {
        const float* rowp[L];
        const std::uint16_t* browp[L];
        for (std::size_t i = 0; i < L; ++i) {
            rowp[i] = rows + (r + i) * stride;
            browp[i] = binned + (r + i) * brow;
        }
        for (const KernelV2Plan::Tile& tile : plan.tiles) {
            for (std::size_t t = tile.first_tree; t < tile.end_tree; ++t) {
                const std::int32_t base = roots[t];
                std::int32_t n[L];
                ScalarTraverse<L>(plan, quant, base, depths[t], rowp,
                                  browp, n);
                for (std::size_t i = 0; i < L; ++i) {
                    sums[r + i] += scale * val[base + n[i]];
                }
            }
        }
    }
}

}  // namespace

bool
V2Supported(const std::vector<DecisionTree>& trees,
            std::size_t num_features)
{
    if (num_features > kV2MaxFeature) {
        return false;
    }
    for (const auto& tree : trees) {
        // Tree-local left indices must fit the packed 17-bit field.
        if (tree.NumNodes() > kV2MaxTreeNodes) {
            return false;
        }
    }
    return true;
}

bool
V2SimdRuntimeEnabled()
{
    if (!simd::HaveSimd()) {
        return false;
    }
    // Runtime escape hatch mirroring the DBSCORE_SIMD=OFF build leg:
    // lets one binary A/B the vector and scalar inner loops.
    const char* env = std::getenv("DBSCORE_SIMD");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
         std::strcmp(env, "0") == 0)) {
        return false;
    }
    return true;
}

std::size_t
KernelV2Plan::GroupRows() const
{
    // The scalar loop widths top out at 64 lanes (groups 4).
    return use_simd ? groups * simd::kWidth
                    : kScalarLanes * std::min<std::size_t>(groups, 4);
}

void
KernelV2Plan::Retile(const ForestKernel& kernel)
{
    tiles.clear();
    const std::size_t num_trees = kernel.roots_.size();
    std::size_t tile_start = 0;
    std::size_t tile_nodes = 0;
    for (std::size_t t = 0; t < num_trees; ++t) {
        const std::size_t end = t + 1 < num_trees
                                    ? static_cast<std::size_t>(
                                          kernel.roots_[t + 1])
                                    : kernel.num_nodes_;
        const std::size_t nodes =
            end - static_cast<std::size_t>(kernel.roots_[t]);
        if (t > tile_start && tile_nodes + nodes > tile_node_budget) {
            tiles.push_back({tile_start, t});
            tile_start = t;
            tile_nodes = 0;
        }
        tile_nodes += nodes;
    }
    tiles.push_back({tile_start, num_trees});
}

void
KernelV2Plan::InitQuantization(const std::vector<DecisionTree>& trees,
                               std::size_t num_features)
{
    // Collect every distinct decision threshold per feature. When each
    // one gets its own bin the rank encoding preserves every x <= t
    // outcome exactly (quant_exact); features with more distinct
    // thresholds than the u16 encoding can hold are subsampled evenly,
    // degrading to the epsilon contract.
    std::vector<std::vector<float>> per(num_features);
    std::size_t total_nodes = 0;
    for (const auto& tree : trees) {
        total_nodes += tree.NumNodes();
        for (std::size_t i = 0; i < tree.NumNodes(); ++i) {
            const auto node = static_cast<std::int32_t>(i);
            if (!tree.IsLeaf(node)) {
                per[static_cast<std::size_t>(tree.Feature(node))]
                    .push_back(tree.Threshold(node));
            }
        }
    }
    edge_off.assign(num_features + 1, 0);
    quant_exact = true;
    max_bins = 0;
    for (std::size_t f = 0; f < num_features; ++f) {
        auto& t = per[f];
        std::sort(t.begin(), t.end());
        t.erase(std::unique(t.begin(), t.end()), t.end());
        if (t.size() > kV2MaxBins) {
            // Even subsample keeping first and last, so the kept edges
            // still bracket the feature's threshold range.
            std::vector<float> kept;
            kept.reserve(kV2MaxBins);
            const double step = static_cast<double>(t.size() - 1) /
                                static_cast<double>(kV2MaxBins - 1);
            for (std::size_t i = 0; i < kV2MaxBins; ++i) {
                kept.push_back(
                    t[static_cast<std::size_t>(
                        static_cast<double>(i) * step + 0.5)]);
            }
            kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
            t = std::move(kept);
            quant_exact = false;
        }
        max_bins = std::max(max_bins, t.size());
        edge_off[f + 1] =
            edge_off[f] + static_cast<std::uint32_t>(t.size());
    }
    edges.reserve(edge_off[num_features]);
    for (std::size_t f = 0; f < num_features; ++f) {
        edges.insert(edges.end(), per[f].begin(), per[f].end());
    }
    qmeta.reserve(total_nodes);
    qcut.reserve(total_nodes + 1);
}

std::uint16_t
KernelV2Plan::CutFor(std::size_t feature, float t) const
{
    const float* lo = edges.data() + edge_off[feature];
    const float* hi = edges.data() + edge_off[feature + 1];
    // Rank of the last edge <= t: bin(x) <= rank  <=>  x <= that edge,
    // which equals x <= t exactly when t itself is an edge (always the
    // case unless this feature was subsampled).
    const auto rank =
        static_cast<std::ptrdiff_t>(std::upper_bound(lo, hi, t) - lo) - 1;
    return static_cast<std::uint16_t>(std::max<std::ptrdiff_t>(rank, 0));
}

std::uint16_t
KernelV2Plan::BinOf(std::size_t feature, float x) const
{
    if (std::isnan(x)) {
        // Greater than every decision cut (NaN descends right) yet
        // <= the 0xFFFF leaf sentinel, so parked lanes stay parked.
        return kV2NanBin;
    }
    const float* lo = edges.data() + edge_off[feature];
    const float* hi = edges.data() + edge_off[feature + 1];
    return static_cast<std::uint16_t>(std::lower_bound(lo, hi, x) - lo);
}

void
KernelV2Plan::RunBlockVote(const ForestKernel& k, const float* rows,
                           std::size_t num_rows, std::size_t stride,
                           float* out, ForestKernel::Scratch& scratch) const
{
    const auto num_classes = static_cast<std::size_t>(k.num_classes_);
    const std::int32_t* const cls = k.leaf_class_.data();
    std::int32_t* const counts = scratch.counts.data();
    std::fill(counts, counts + num_rows * num_classes, 0);

    const bool quant = mode == KernelMode::kQuantized;
    const std::uint16_t* const binned = scratch.binned.data();
    const std::size_t brow = k.num_features_;
    const std::size_t grows = GroupRows();
    std::int32_t* const leaves = scratch.leaves.data();

    std::size_t r = 0;
    if (use_simd) {
        const auto sstride = static_cast<std::int32_t>(stride);
        const auto bstride = static_cast<std::int32_t>(brow);
        for (; r + grows <= num_rows; r += grows) {
            for (const Tile& tile : tiles) {
                for (std::size_t t = tile.first_tree; t < tile.end_tree;
                     ++t) {
                    const std::int32_t base = k.roots_[t];
                    if (quant) {
                        RunQuantSimd(groups, qmeta.data(), qcut.data(),
                                     base, k.depths_[t], binned + r * brow,
                                     bstride, leaves);
                    } else {
                        RunExactSimd(groups, enode.data(), base,
                                     k.depths_[t], rows + r * stride,
                                     sstride, leaves);
                    }
                    for (std::size_t i = 0; i < grows; ++i) {
                        ++counts[(r + i) * num_classes +
                                 static_cast<std::size_t>(
                                     cls[base + leaves[i]])];
                    }
                }
            }
        }
    } else {
        switch (groups) {
        case 1:
            ScalarVoteGroups<kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), cls, rows,
                num_rows, stride, binned, brow, counts, num_classes, r);
            break;
        case 2:
            ScalarVoteGroups<2 * kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), cls, rows,
                num_rows, stride, binned, brow, counts, num_classes, r);
            break;
        default:
            ScalarVoteGroups<4 * kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), cls, rows,
                num_rows, stride, binned, brow, counts, num_classes, r);
            break;
        }
    }
    ScalarVoteGroups<1>(*this, quant, k.roots_.data(), k.depths_.data(),
                        cls, rows, num_rows, stride, binned, brow, counts,
                        num_classes, r);

    for (std::size_t i = 0; i < num_rows; ++i) {
        const std::int32_t* c = counts + i * num_classes;
        std::size_t best = 0;
        for (std::size_t j = 1; j < num_classes; ++j) {
            // Strict > keeps the lowest class id on ties (MajorityVote).
            if (c[j] > c[best]) {
                best = j;
            }
        }
        out[i] = static_cast<float>(best);
    }
}

void
KernelV2Plan::RunBlockAccumulate(const ForestKernel& k, const float* rows,
                                 std::size_t num_rows, std::size_t stride,
                                 float* out,
                                 ForestKernel::Scratch& scratch) const
{
    const float* const val = k.value_.data();
    const double scale = k.scale_;
    double* const sums = scratch.sums.data();
    std::fill(sums, sums + num_rows, k.init_);

    const bool quant = mode == KernelMode::kQuantized;
    const std::uint16_t* const binned = scratch.binned.data();
    const std::size_t brow = k.num_features_;
    const std::size_t grows = GroupRows();
    std::int32_t* const leaves = scratch.leaves.data();

    // Tiles cover consecutive trees, so each row's double sum
    // accumulates in ensemble order — bit-identical to the reference.
    std::size_t r = 0;
    if (use_simd) {
        const auto sstride = static_cast<std::int32_t>(stride);
        const auto bstride = static_cast<std::int32_t>(brow);
        for (; r + grows <= num_rows; r += grows) {
            for (const Tile& tile : tiles) {
                for (std::size_t t = tile.first_tree; t < tile.end_tree;
                     ++t) {
                    const std::int32_t base = k.roots_[t];
                    if (quant) {
                        RunQuantSimd(groups, qmeta.data(), qcut.data(),
                                     base, k.depths_[t], binned + r * brow,
                                     bstride, leaves);
                    } else {
                        RunExactSimd(groups, enode.data(), base,
                                     k.depths_[t], rows + r * stride,
                                     sstride, leaves);
                    }
                    for (std::size_t i = 0; i < grows; ++i) {
                        sums[r + i] += scale * val[base + leaves[i]];
                    }
                }
            }
        }
    } else {
        switch (groups) {
        case 1:
            ScalarAccumulateGroups<kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), val,
                scale, rows, num_rows, stride, binned, brow, sums, r);
            break;
        case 2:
            ScalarAccumulateGroups<2 * kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), val,
                scale, rows, num_rows, stride, binned, brow, sums, r);
            break;
        default:
            ScalarAccumulateGroups<4 * kScalarLanes>(
                *this, quant, k.roots_.data(), k.depths_.data(), val,
                scale, rows, num_rows, stride, binned, brow, sums, r);
            break;
        }
    }
    ScalarAccumulateGroups<1>(*this, quant, k.roots_.data(),
                              k.depths_.data(), val, scale, rows, num_rows,
                              stride, binned, brow, sums, r);
    k.FinishSums(sums, num_rows, out);
}

void
KernelV2Plan::RunStrided(const ForestKernel& k, const float* rows,
                         std::size_t num_rows, std::size_t stride,
                         float* out, ForestKernel::Scratch& scratch) const
{
    const bool vote = k.combine_ == KernelCombine::kVoteClassify;
    if (vote) {
        const std::size_t need =
            row_block * static_cast<std::size_t>(k.num_classes_);
        if (scratch.counts.size() < need) {
            scratch.counts.resize(need);
        }
    } else if (scratch.sums.size() < row_block) {
        scratch.sums.resize(row_block);
    }
    if (scratch.leaves.size() < GroupRows()) {
        scratch.leaves.resize(GroupRows());
    }
    const bool quant = mode == KernelMode::kQuantized;
    if (quant) {
        // +1 element pads the final row for the scale-2 u16 gather.
        const std::size_t need = row_block * k.num_features_ + 1;
        if (scratch.binned.size() < need) {
            scratch.binned.resize(need);
        }
    }

    for (std::size_t begin = 0; begin < num_rows; begin += row_block) {
        const std::size_t block = std::min(row_block, num_rows - begin);
        const float* block_rows = rows + begin * stride;
        if (quant) {
            // Bin once per block: D tree levels then compare integers,
            // so the log-time edge search amortizes across every tree.
            std::uint16_t* b = scratch.binned.data();
            for (std::size_t i = 0; i < block; ++i) {
                const float* row = block_rows + i * stride;
                for (std::size_t f = 0; f < k.num_features_; ++f) {
                    *b++ = BinOf(f, row[f]);
                }
            }
        }
        if (vote) {
            RunBlockVote(k, block_rows, block, stride, out + begin,
                         scratch);
        } else {
            RunBlockAccumulate(k, block_rows, block, stride, out + begin,
                               scratch);
        }
    }
}

}  // namespace dbscore
