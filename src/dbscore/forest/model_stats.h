/**
 * @file
 * Model-complexity statistics.
 *
 * The paper's offload decision hinges on "model complexity" — tree count,
 * depth, node counts, and the average traversal path length actually
 * exercised by the data. The timing models consume these numbers.
 */
#ifndef DBSCORE_FOREST_MODEL_STATS_H
#define DBSCORE_FOREST_MODEL_STATS_H

#include <cstddef>
#include <cstdint>

#include "dbscore/data/dataset.h"
#include "dbscore/forest/forest.h"

namespace dbscore {

/** Aggregate statistics over one forest. */
struct ModelStats {
    Task task = Task::kClassification;
    std::size_t num_trees = 0;
    std::size_t num_features = 0;
    int num_classes = 0;
    std::size_t max_depth = 0;
    std::size_t total_nodes = 0;
    std::size_t total_leaves = 0;
    double avg_nodes_per_tree = 0.0;
    /**
     * Mean root-to-leaf edges per tree traversal. Measured on the probe
     * data when available, otherwise estimated as max_depth * 0.9 (paths
     * in trained trees rarely all reach the depth cap).
     */
    double avg_path_length = 0.0;
    /** Size of the serialized ONNX-like blob in bytes. */
    std::uint64_t serialized_bytes = 0;
};

/**
 * Computes model statistics.
 *
 * @param forest model to analyze
 * @param probe optional dataset sample for measuring avg_path_length;
 *        at most 2048 rows are probed
 */
ModelStats ComputeModelStats(const RandomForest& forest,
                             const Dataset* probe = nullptr);

/**
 * Zero-copy variant: probes avg_path_length directly through @p probe
 * (no Dataset and no label buffer needed). An empty view — or one whose
 * width does not match the forest — falls back to the depth estimate.
 */
ModelStats ComputeModelStats(const RandomForest& forest,
                             const RowView& probe);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_MODEL_STATS_H
