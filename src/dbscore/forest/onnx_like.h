/**
 * @file
 * ONNX-like flattened tree-ensemble exchange format.
 *
 * The paper's flow converts Scikit-learn models to ONNX
 * (TreeEnsembleClassifier / TreeEnsembleRegressor) before storing them in
 * the database and extracting them for the FPGA. This mirrors that
 * representation: all trees flattened into parallel attribute arrays keyed
 * by (tree_id, node_id), with BRANCH_LEQ decision semantics.
 */
#ifndef DBSCORE_FOREST_ONNX_LIKE_H
#define DBSCORE_FOREST_ONNX_LIKE_H

#include <cstdint>
#include <span>
#include <vector>

#include "dbscore/forest/forest.h"

namespace dbscore {

/** Node role in the flattened ensemble. */
enum class NodeMode : std::uint8_t {
    kBranchLeq = 0,  ///< go to true-branch when x[f] <= threshold
    kLeaf = 1,
};

/** Flattened ensemble, one entry per node across all trees. */
struct TreeEnsemble {
    Task task = Task::kClassification;
    std::uint32_t num_features = 0;
    std::int32_t num_classes = 0;

    std::vector<std::int32_t> tree_ids;
    std::vector<std::int32_t> node_ids;        ///< node index within tree
    std::vector<NodeMode> modes;
    std::vector<std::int32_t> feature_ids;     ///< valid for branches
    std::vector<float> thresholds;
    std::vector<std::int32_t> true_children;   ///< node id within tree
    std::vector<std::int32_t> false_children;
    std::vector<float> leaf_values;            ///< valid for leaves

    std::size_t NumNodes() const { return tree_ids.size(); }
    std::size_t NumTrees() const;

    /** Approximate in-memory/wire size, used by transfer cost models. */
    std::uint64_t ByteSize() const;

    /** Flattens a forest into ensemble attribute arrays. */
    static TreeEnsemble FromForest(const RandomForest& forest);

    /**
     * Rebuilds a forest; validates structure.
     * @throws ParseError on inconsistent arrays.
     */
    RandomForest ToForest() const;

    /** Serializes to an opaque blob (the DBMS VARBINARY payload). */
    std::vector<std::uint8_t> Serialize() const;

    /** @throws ParseError on malformed input. */
    static TreeEnsemble Deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace dbscore

#endif  // DBSCORE_FOREST_ONNX_LIKE_H
