/**
 * @file
 * 8-lane f32/i32 SIMD portability shim for the v2 traversal kernel.
 *
 * One backend is selected at compile time:
 *
 *  - AVX2 on x86-64 GCC/Clang builds. The intrinsics live inside
 *    functions carrying `target("avx2,fma")` attributes, so the shim
 *    compiles (and the rest of the binary stays baseline-ISA) without
 *    any special per-file flags; callers must themselves be compiled
 *    for AVX2 (see DBSCORE_SIMD_FN) and must only run after
 *    HaveSimd() confirms the CPU supports it.
 *  - NEON on AArch64: 8 lanes as a pair of 128-bit quads. NEON has no
 *    gather, so gathers are per-lane loads — the layout and masking
 *    semantics stay identical to AVX2.
 *  - Scalar fallback everywhere else (and when DBSCORE_SIMD_DISABLED
 *    is defined, which the `DBSCORE_SIMD=OFF` CMake leg forces): plain
 *    8-element loops the autovectorizer may or may not pick up. Keeps
 *    every v2 code path compilable and bit-identical on any ISA.
 *
 * The API is exactly what one blended descend step of the forest
 * traversal needs: i32/f32 gathers (plus a zero-extending u16 gather
 * for quantized nodes and pre-binned rows, done as a scale-2 i32
 * gather off an even base — buffers gathered this way must be padded
 * by 2 bytes), an ordered-complement float compare matching
 * `!(x <= t)` (NaN compares true, i.e. descends right), and mask
 * arithmetic where a true lane is -1 so `left - mask` implements
 * `left + (x > t)`.
 */
#ifndef DBSCORE_FOREST_SIMD_H
#define DBSCORE_FOREST_SIMD_H

#include <cstdint>

#if !defined(DBSCORE_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DBSCORE_SIMD_AVX2 1
#include <immintrin.h>
/** Marks a function compiled for AVX2+FMA regardless of global flags. */
#define DBSCORE_SIMD_FN __attribute__((target("avx2,fma")))
#define DBSCORE_SIMD_OP \
    inline __attribute__((always_inline)) DBSCORE_SIMD_FN
#elif !defined(DBSCORE_SIMD_DISABLED) && defined(__ARM_NEON)
#define DBSCORE_SIMD_NEON 1
#include <arm_neon.h>
#define DBSCORE_SIMD_FN
#define DBSCORE_SIMD_OP inline __attribute__((always_inline))
#else
#define DBSCORE_SIMD_SCALAR 1
#define DBSCORE_SIMD_FN
#define DBSCORE_SIMD_OP inline
#endif

namespace dbscore::simd {

/** Lane count of the shim's vector types. */
inline constexpr std::size_t kWidth = 8;

/** Compile-time backend tag, for diagnostics and bench JSON. */
inline const char*
BackendName()
{
#if defined(DBSCORE_SIMD_AVX2)
    return "avx2";
#elif defined(DBSCORE_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/**
 * True when the vector backend may be used on this machine: the AVX2
 * backend additionally needs a runtime CPUID check (the binary may be
 * baseline x86-64), NEON/scalar are always safe.
 */
inline bool
HaveSimd()
{
#if defined(DBSCORE_SIMD_AVX2)
    return __builtin_cpu_supports("avx2") != 0;
#elif defined(DBSCORE_SIMD_NEON)
    return true;
#else
    return false;
#endif
}

#if defined(DBSCORE_SIMD_AVX2)

struct VI {
    __m256i v;
};
struct VF {
    __m256 v;
};

DBSCORE_SIMD_OP VI
Set1(std::int32_t x)
{
    return {_mm256_set1_epi32(x)};
}

/** {0, step, 2*step, ..., 7*step} — per-lane row offsets. */
DBSCORE_SIMD_OP VI
Iota(std::int32_t step)
{
    return {_mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(step))};
}

DBSCORE_SIMD_OP VI
Add(VI a, VI b)
{
    return {_mm256_add_epi32(a.v, b.v)};
}

DBSCORE_SIMD_OP VI
Sub(VI a, VI b)
{
    return {_mm256_sub_epi32(a.v, b.v)};
}

DBSCORE_SIMD_OP VI
And(VI a, VI b)
{
    return {_mm256_and_si256(a.v, b.v)};
}

DBSCORE_SIMD_OP VI
Or(VI a, VI b)
{
    return {_mm256_or_si256(a.v, b.v)};
}

DBSCORE_SIMD_OP VI
Xor(VI a, VI b)
{
    return {_mm256_xor_si256(a.v, b.v)};
}

/** Logical (zero-fill) right shift of each lane. */
DBSCORE_SIMD_OP VI
Srl(VI a, int bits)
{
    return {_mm256_srli_epi32(a.v, bits)};
}

DBSCORE_SIMD_OP VI
GatherI32(const std::int32_t* base, VI idx)
{
    return {_mm256_i32gather_epi32(base, idx.v, 4)};
}

DBSCORE_SIMD_OP VF
GatherF32(const float* base, VI idx)
{
    return {_mm256_i32gather_ps(base, idx.v, 4)};
}

/**
 * Zero-extending u16 gather via a scale-2 i32 gather: reads 4 bytes at
 * base + 2*idx and masks the low half, so @p base's buffer must be
 * padded with at least 2 trailing bytes.
 */
DBSCORE_SIMD_OP VI
GatherU16(const std::uint16_t* base, VI idx)
{
    const __m256i wide = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(base), idx.v, 2);
    return {_mm256_and_si256(wide, _mm256_set1_epi32(0xFFFF))};
}

/** -1 where !(x <= t) — strictly greater or unordered (NaN). */
DBSCORE_SIMD_OP VI
CmpNotLe(VF x, VF t)
{
    return {_mm256_castps_si256(_mm256_cmp_ps(x.v, t.v, _CMP_NLE_UQ))};
}

/** -1 where a > b (signed; bin ids stay below 2^16). */
DBSCORE_SIMD_OP VI
CmpGt(VI a, VI b)
{
    return {_mm256_cmpgt_epi32(a.v, b.v)};
}

DBSCORE_SIMD_OP bool
AllEq(VI a, VI b)
{
    return _mm256_movemask_epi8(_mm256_cmpeq_epi32(a.v, b.v)) == -1;
}

/** True when any bit of any lane is set. */
DBSCORE_SIMD_OP bool
AnyNonZero(VI a)
{
    return _mm256_testz_si256(a.v, a.v) == 0;
}

DBSCORE_SIMD_OP void
Store(std::int32_t* dst, VI a)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a.v);
}

#elif defined(DBSCORE_SIMD_NEON)

struct VI {
    int32x4_t lo;
    int32x4_t hi;
};
struct VF {
    float32x4_t lo;
    float32x4_t hi;
};

DBSCORE_SIMD_OP VI
Set1(std::int32_t x)
{
    return {vdupq_n_s32(x), vdupq_n_s32(x)};
}

DBSCORE_SIMD_OP VI
Iota(std::int32_t step)
{
    const std::int32_t lo[4] = {0, step, 2 * step, 3 * step};
    const std::int32_t hi[4] = {4 * step, 5 * step, 6 * step, 7 * step};
    return {vld1q_s32(lo), vld1q_s32(hi)};
}

DBSCORE_SIMD_OP VI
Add(VI a, VI b)
{
    return {vaddq_s32(a.lo, b.lo), vaddq_s32(a.hi, b.hi)};
}

DBSCORE_SIMD_OP VI
Sub(VI a, VI b)
{
    return {vsubq_s32(a.lo, b.lo), vsubq_s32(a.hi, b.hi)};
}

DBSCORE_SIMD_OP VI
And(VI a, VI b)
{
    return {vandq_s32(a.lo, b.lo), vandq_s32(a.hi, b.hi)};
}

DBSCORE_SIMD_OP VI
Or(VI a, VI b)
{
    return {vorrq_s32(a.lo, b.lo), vorrq_s32(a.hi, b.hi)};
}

DBSCORE_SIMD_OP VI
Xor(VI a, VI b)
{
    return {veorq_s32(a.lo, b.lo), veorq_s32(a.hi, b.hi)};
}

DBSCORE_SIMD_OP VI
Srl(VI a, int bits)
{
    const int32x4_t shift = vdupq_n_s32(-bits);
    return {vreinterpretq_s32_u32(
                vshlq_u32(vreinterpretq_u32_s32(a.lo), shift)),
            vreinterpretq_s32_u32(
                vshlq_u32(vreinterpretq_u32_s32(a.hi), shift))};
}

DBSCORE_SIMD_OP VI
GatherI32(const std::int32_t* base, VI idx)
{
    std::int32_t i[8];
    vst1q_s32(i, idx.lo);
    vst1q_s32(i + 4, idx.hi);
    const std::int32_t v[8] = {base[i[0]], base[i[1]], base[i[2]],
                               base[i[3]], base[i[4]], base[i[5]],
                               base[i[6]], base[i[7]]};
    return {vld1q_s32(v), vld1q_s32(v + 4)};
}

DBSCORE_SIMD_OP VF
GatherF32(const float* base, VI idx)
{
    std::int32_t i[8];
    vst1q_s32(i, idx.lo);
    vst1q_s32(i + 4, idx.hi);
    const float v[8] = {base[i[0]], base[i[1]], base[i[2]], base[i[3]],
                        base[i[4]], base[i[5]], base[i[6]], base[i[7]]};
    return {vld1q_f32(v), vld1q_f32(v + 4)};
}

DBSCORE_SIMD_OP VI
GatherU16(const std::uint16_t* base, VI idx)
{
    std::int32_t i[8];
    vst1q_s32(i, idx.lo);
    vst1q_s32(i + 4, idx.hi);
    const std::int32_t v[8] = {base[i[0]], base[i[1]], base[i[2]],
                               base[i[3]], base[i[4]], base[i[5]],
                               base[i[6]], base[i[7]]};
    return {vld1q_s32(v), vld1q_s32(v + 4)};
}

DBSCORE_SIMD_OP VI
CmpNotLe(VF x, VF t)
{
    // vcle is false for NaN, so its complement matches !(x <= t).
    return {vreinterpretq_s32_u32(vmvnq_u32(vcleq_f32(x.lo, t.lo))),
            vreinterpretq_s32_u32(vmvnq_u32(vcleq_f32(x.hi, t.hi)))};
}

DBSCORE_SIMD_OP VI
CmpGt(VI a, VI b)
{
    return {vreinterpretq_s32_u32(vcgtq_s32(a.lo, b.lo)),
            vreinterpretq_s32_u32(vcgtq_s32(a.hi, b.hi))};
}

DBSCORE_SIMD_OP bool
AllEq(VI a, VI b)
{
    const uint32x4_t eq_lo = vceqq_s32(a.lo, b.lo);
    const uint32x4_t eq_hi = vceqq_s32(a.hi, b.hi);
    return vminvq_u32(vandq_u32(eq_lo, eq_hi)) == 0xFFFFFFFFu;
}

DBSCORE_SIMD_OP bool
AnyNonZero(VI a)
{
    return vmaxvq_u32(vreinterpretq_u32_s32(vorrq_s32(a.lo, a.hi))) != 0;
}

DBSCORE_SIMD_OP void
Store(std::int32_t* dst, VI a)
{
    vst1q_s32(dst, a.lo);
    vst1q_s32(dst + 4, a.hi);
}

#else  // scalar fallback

struct VI {
    std::int32_t v[kWidth];
};
struct VF {
    float v[kWidth];
};

DBSCORE_SIMD_OP VI
Set1(std::int32_t x)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = x;
    return r;
}

DBSCORE_SIMD_OP VI
Iota(std::int32_t step)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k)
        r.v[k] = static_cast<std::int32_t>(k) * step;
    return r;
}

DBSCORE_SIMD_OP VI
Add(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = a.v[k] + b.v[k];
    return r;
}

DBSCORE_SIMD_OP VI
Sub(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = a.v[k] - b.v[k];
    return r;
}

DBSCORE_SIMD_OP VI
And(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = a.v[k] & b.v[k];
    return r;
}

DBSCORE_SIMD_OP VI
Or(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = a.v[k] | b.v[k];
    return r;
}

DBSCORE_SIMD_OP VI
Xor(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = a.v[k] ^ b.v[k];
    return r;
}

DBSCORE_SIMD_OP VI
Srl(VI a, int bits)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k)
        r.v[k] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[k]) >> bits);
    return r;
}

DBSCORE_SIMD_OP VI
GatherI32(const std::int32_t* base, VI idx)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = base[idx.v[k]];
    return r;
}

DBSCORE_SIMD_OP VF
GatherF32(const float* base, VI idx)
{
    VF r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = base[idx.v[k]];
    return r;
}

DBSCORE_SIMD_OP VI
GatherU16(const std::uint16_t* base, VI idx)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k) r.v[k] = base[idx.v[k]];
    return r;
}

DBSCORE_SIMD_OP VI
CmpNotLe(VF x, VF t)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k)
        r.v[k] = !(x.v[k] <= t.v[k]) ? -1 : 0;
    return r;
}

DBSCORE_SIMD_OP VI
CmpGt(VI a, VI b)
{
    VI r;
    for (std::size_t k = 0; k < kWidth; ++k)
        r.v[k] = a.v[k] > b.v[k] ? -1 : 0;
    return r;
}

DBSCORE_SIMD_OP bool
AllEq(VI a, VI b)
{
    for (std::size_t k = 0; k < kWidth; ++k)
        if (a.v[k] != b.v[k]) return false;
    return true;
}

DBSCORE_SIMD_OP bool
AnyNonZero(VI a)
{
    for (std::size_t k = 0; k < kWidth; ++k)
        if (a.v[k] != 0) return true;
    return false;
}

DBSCORE_SIMD_OP void
Store(std::int32_t* dst, VI a)
{
    for (std::size_t k = 0; k < kWidth; ++k) dst[k] = a.v[k];
}

#endif

}  // namespace dbscore::simd

#endif  // DBSCORE_FOREST_SIMD_H
