#include "dbscore/forest/gbdt.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/forest/forest_kernel.h"
#include "dbscore/forest/trainer.h"

namespace dbscore {

namespace {

double
Sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

/** Fits one regression tree to the residuals with the shared CART code. */
DecisionTree
FitStageTree(const Dataset& residuals, const GbdtConfig& config,
             std::uint64_t stage_seed)
{
    ForestTrainerConfig tree_config;
    tree_config.num_trees = 1;
    tree_config.max_depth = config.max_depth;
    tree_config.min_samples_leaf = config.min_samples_leaf;
    tree_config.max_features_fraction = 1.0;  // boosting uses all features
    tree_config.bootstrap = false;
    tree_config.seed = stage_seed;
    RandomForest stage = TrainForest(residuals, tree_config);
    return stage.trees().front();
}

/** Builds a residual dataset over the (optionally subsampled) rows. */
Dataset
MakeResidualData(const Dataset& train,
                 const std::vector<std::size_t>& rows,
                 const std::vector<double>& residuals)
{
    Dataset out("residuals", Task::kRegression, train.num_features(), 0);
    for (std::size_t r : rows) {
        // Span append straight from the source row — no staging buffer.
        out.AddRow(train.Row(r), train.num_features(),
                   static_cast<float>(residuals[r]));
    }
    return out;
}

std::vector<std::size_t>
SampleRows(std::size_t num_rows, double fraction, Rng& rng)
{
    std::vector<std::size_t> rows(num_rows);
    for (std::size_t i = 0; i < num_rows; ++i) {
        rows[i] = i;
    }
    if (fraction >= 1.0) {
        return rows;
    }
    rng.Shuffle(rows);
    auto keep = std::max<std::size_t>(
        2, static_cast<std::size_t>(fraction *
                                    static_cast<double>(num_rows)));
    rows.resize(keep);
    return rows;
}

void
ValidateConfig(const GbdtConfig& config)
{
    if (config.num_trees == 0 || config.max_depth == 0) {
        throw InvalidArgument("gbdt: num_trees/max_depth must be positive");
    }
    if (config.learning_rate <= 0.0 || config.learning_rate > 1.0) {
        throw InvalidArgument("gbdt: learning_rate must be in (0, 1]");
    }
    if (config.subsample <= 0.0 || config.subsample > 1.0) {
        throw InvalidArgument("gbdt: subsample must be in (0, 1]");
    }
}

}  // namespace

GradientBoostedModel::GradientBoostedModel(Task task,
                                           std::size_t num_features,
                                           double base_score,
                                           double learning_rate)
    : task_(task),
      num_features_(num_features),
      base_score_(base_score),
      learning_rate_(learning_rate)
{
}

GradientBoostedModel::GradientBoostedModel(
    const GradientBoostedModel& other)
    : task_(other.task_),
      num_features_(other.num_features_),
      base_score_(other.base_score_),
      learning_rate_(other.learning_rate_),
      trees_(other.trees_)
{
    std::lock_guard<std::mutex> lock(other.kernel_mutex_);
    kernel_ = other.kernel_;
    kernel_options_ = other.kernel_options_;
}

GradientBoostedModel&
GradientBoostedModel::operator=(const GradientBoostedModel& other)
{
    if (this != &other) {
        task_ = other.task_;
        num_features_ = other.num_features_;
        base_score_ = other.base_score_;
        learning_rate_ = other.learning_rate_;
        trees_ = other.trees_;
        std::shared_ptr<const ForestKernel> kernel;
        ForestKernelOptions kernel_options;
        {
            std::lock_guard<std::mutex> lock(other.kernel_mutex_);
            kernel = other.kernel_;
            kernel_options = other.kernel_options_;
        }
        std::lock_guard<std::mutex> lock(kernel_mutex_);
        kernel_ = std::move(kernel);
        kernel_options_ = kernel_options;
    }
    return *this;
}

GradientBoostedModel::GradientBoostedModel(
    GradientBoostedModel&& other) noexcept
    : task_(other.task_),
      num_features_(other.num_features_),
      base_score_(other.base_score_),
      learning_rate_(other.learning_rate_),
      trees_(std::move(other.trees_))
{
    std::lock_guard<std::mutex> lock(other.kernel_mutex_);
    kernel_ = std::move(other.kernel_);
    kernel_options_ = other.kernel_options_;
}

GradientBoostedModel&
GradientBoostedModel::operator=(GradientBoostedModel&& other) noexcept
{
    if (this != &other) {
        task_ = other.task_;
        num_features_ = other.num_features_;
        base_score_ = other.base_score_;
        learning_rate_ = other.learning_rate_;
        trees_ = std::move(other.trees_);
        std::shared_ptr<const ForestKernel> kernel;
        ForestKernelOptions kernel_options;
        {
            std::lock_guard<std::mutex> lock(other.kernel_mutex_);
            kernel = std::move(other.kernel_);
            kernel_options = other.kernel_options_;
        }
        std::lock_guard<std::mutex> lock(kernel_mutex_);
        kernel_ = std::move(kernel);
        kernel_options_ = kernel_options;
    }
    return *this;
}

void
GradientBoostedModel::AddTree(DecisionTree tree)
{
    DBS_ASSERT(!tree.Empty());
    trees_.push_back(std::move(tree));
    // The compiled plan no longer matches the ensemble.
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    kernel_.reset();
}

std::shared_ptr<const ForestKernel>
GradientBoostedModel::Kernel() const
{
    return Kernel(ForestKernelOptions{});
}

std::shared_ptr<const ForestKernel>
GradientBoostedModel::Kernel(const ForestKernelOptions& options) const
{
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    if (kernel_ == nullptr || !(kernel_options_ == options)) {
        kernel_ = std::make_shared<const ForestKernel>(*this, options);
        kernel_options_ = options;
    }
    return kernel_;
}

double
GradientBoostedModel::Margin(const float* row) const
{
    double margin = base_score_;
    for (const auto& tree : trees_) {
        margin += learning_rate_ * tree.Predict(row);
    }
    return margin;
}

int
GradientBoostedModel::MarginToClass(float margin)
{
    return Sigmoid(margin) >= 0.5 ? 1 : 0;
}

float
GradientBoostedModel::Predict(const float* row) const
{
    double margin = Margin(row);
    if (task_ == Task::kRegression) {
        return static_cast<float>(margin);
    }
    return static_cast<float>(
        MarginToClass(static_cast<float>(margin)));
}

std::vector<float>
GradientBoostedModel::PredictBatch(const Dataset& data) const
{
    if (data.num_features() != num_features_) {
        throw InvalidArgument("gbdt: row arity mismatch");
    }
    if (ForestKernel::Supports(*this)) {
        return Kernel()->Predict(data.View());
    }
    std::vector<float> out(data.num_rows());
    auto worker = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            out[i] = Predict(data.Row(i));
        }
    };
    // Same chunked pattern and cutoff as RandomForest's batch paths.
    if (data.num_rows() >= kParallelRowCutoff) {
        ThreadPool::Shared().ParallelForChunked(data.num_rows(), worker);
    } else {
        worker(0, data.num_rows());
    }
    return out;
}

double
GradientBoostedModel::Accuracy(const Dataset& data) const
{
    if (task_ != Task::kClassification) {
        throw InvalidArgument("gbdt: accuracy needs a classifier");
    }
    auto preds = PredictBatch(data);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == data.Label(i)) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(preds.size());
}

TreeEnsemble
GradientBoostedModel::ToTreeEnsemble() const
{
    DBS_ASSERT_MSG(!trees_.empty(), "export of an untrained GBDT");
    // Engines combine regression trees by averaging. Rescale each leaf
    // to T*lr*value + base so the average equals the additive margin.
    const double t = static_cast<double>(trees_.size());
    RandomForest forest(Task::kRegression, num_features_, 0);
    for (const auto& tree : trees_) {
        DecisionTree scaled;
        for (std::size_t i = 0; i < tree.NumNodes(); ++i) {
            auto node = static_cast<std::int32_t>(i);
            if (tree.IsLeaf(node)) {
                scaled.AddLeafNode(static_cast<float>(
                    t * learning_rate_ * tree.LeafValue(node) +
                    base_score_));
            } else {
                std::int32_t id = scaled.AddDecisionNode(
                    tree.Feature(node), tree.Threshold(node));
                scaled.SetChildren(id, tree.Left(node), tree.Right(node));
            }
        }
        forest.AddTree(std::move(scaled));
    }
    return TreeEnsemble::FromForest(forest);
}

GradientBoostedModel
TrainGbdtRegressor(const Dataset& train, const GbdtConfig& config)
{
    ValidateConfig(config);
    if (train.task() != Task::kRegression || train.num_rows() == 0) {
        throw InvalidArgument("gbdt regressor: need non-empty regression "
                              "data");
    }

    double base = 0.0;
    for (std::size_t i = 0; i < train.num_rows(); ++i) {
        base += train.Label(i);
    }
    base /= static_cast<double>(train.num_rows());

    GradientBoostedModel model(Task::kRegression, train.num_features(),
                               base, config.learning_rate);

    std::vector<double> margin(train.num_rows(), base);
    std::vector<double> residual(train.num_rows());
    Rng rng(config.seed);
    for (std::size_t stage = 0; stage < config.num_trees; ++stage) {
        for (std::size_t i = 0; i < train.num_rows(); ++i) {
            residual[i] = train.Label(i) - margin[i];
        }
        auto rows = SampleRows(train.num_rows(), config.subsample, rng);
        Dataset data = MakeResidualData(train, rows, residual);
        DecisionTree tree = FitStageTree(data, config, rng.Next());
        for (std::size_t i = 0; i < train.num_rows(); ++i) {
            margin[i] += config.learning_rate * tree.Predict(train.Row(i));
        }
        model.AddTree(std::move(tree));
    }
    return model;
}

GradientBoostedModel
TrainGbdtClassifier(const Dataset& train, const GbdtConfig& config)
{
    ValidateConfig(config);
    if (train.task() != Task::kClassification ||
        train.num_classes() != 2 || train.num_rows() == 0) {
        throw InvalidArgument(
            "gbdt classifier: need non-empty binary classification data");
    }

    double positives = 0.0;
    for (std::size_t i = 0; i < train.num_rows(); ++i) {
        positives += train.Label(i);
    }
    double p = std::clamp(
        positives / static_cast<double>(train.num_rows()), 1e-6,
        1.0 - 1e-6);
    const double base = std::log(p / (1.0 - p));  // log-odds prior

    GradientBoostedModel model(Task::kClassification,
                               train.num_features(), base,
                               config.learning_rate);

    std::vector<double> margin(train.num_rows(), base);
    std::vector<double> residual(train.num_rows());
    Rng rng(config.seed);
    for (std::size_t stage = 0; stage < config.num_trees; ++stage) {
        for (std::size_t i = 0; i < train.num_rows(); ++i) {
            // Negative gradient of logistic loss: y - sigmoid(F).
            residual[i] = train.Label(i) - Sigmoid(margin[i]);
        }
        auto rows = SampleRows(train.num_rows(), config.subsample, rng);
        Dataset data = MakeResidualData(train, rows, residual);
        DecisionTree tree = FitStageTree(data, config, rng.Next());
        for (std::size_t i = 0; i < train.num_rows(); ++i) {
            margin[i] += config.learning_rate * tree.Predict(train.Row(i));
        }
        model.AddTree(std::move(tree));
    }
    return model;
}

}  // namespace dbscore
