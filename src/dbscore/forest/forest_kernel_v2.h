/**
 * @file
 * Internal v2 plan of ForestKernel: structure-of-arrays node layout
 * built for SIMD gathers, in an exact and a quantized flavor, plus the
 * tuned runtime parameters the autotuner picks. Not part of the public
 * API — include forest_kernel.h instead.
 *
 * Layout (all arrays indexed by global pool position, tree-local
 * traversal indices are rebased by the tree's root offset):
 *
 *  - exact: `enode`, one interleaved 8-byte word per node — the f32
 *    threshold bits in the low half and a packed feature:15 | left:17
 *    meta word (left child as a tree-local index) in the high half.
 *    Interleaving (rather than split thr/lf arrays) keeps each descend
 *    step on a single cache line: the scalar loop does one 8-byte
 *    load, the SIMD loop two 4-byte gathers at indices 2n and 2n+1 of
 *    the same base.
 *  - quantized: `qmeta` (same feature/left packing) + `qcut` (u16 bin
 *    rank of the threshold within the feature's sorted distinct
 *    thresholds; 0xFFFF marks a leaf) — 6 bytes/node. Rows are
 *    pre-binned once per row block (bin(x) = #{edges < x}, NaN =
 *    0xFFFF) so the descend compares integers: bin(x) <= cut(t) is
 *    exactly x <= t whenever every distinct threshold got its own bin
 *    (`quant_exact`), and an epsilon-rank approximation when a
 *    feature's threshold count had to be subsampled below 2^16 - 2.
 *
 * The shared leaf payloads (value / leaf class), tree roots, and
 * depths live on the owning ForestKernel; the plan only adds what the
 * v2 traversal needs.
 */
#ifndef DBSCORE_FOREST_FOREST_KERNEL_V2_H
#define DBSCORE_FOREST_FOREST_KERNEL_V2_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbscore/forest/forest_kernel.h"

namespace dbscore {

/** Bits of the packed lf/qmeta word holding the tree-local left id. */
inline constexpr int kV2LeftBits = 17;
inline constexpr std::int32_t kV2LeftMask = (1 << kV2LeftBits) - 1;
/** Largest tree (nodes) and feature id the packed word can address. */
inline constexpr std::size_t kV2MaxTreeNodes = std::size_t{1}
                                               << kV2LeftBits;
inline constexpr std::size_t kV2MaxFeature = 32767;
/** Quantized leaf sentinel: bin(x) <= 0xFFFF always holds. */
inline constexpr std::uint16_t kV2LeafCut = 0xFFFF;
/** Pre-binned NaN sentinel: greater than every decision cut. */
inline constexpr std::uint16_t kV2NanBin = 0xFFFF;
/** Per-feature bin-count cap (cuts must stay below the sentinels). */
inline constexpr std::size_t kV2MaxBins = 0xFFFE;

/** Packs one exact v2 node: threshold bits low, meta word high. */
inline std::uint64_t
V2PackExact(float threshold, std::int32_t meta)
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(meta))
            << 32) |
           std::bit_cast<std::uint32_t>(threshold);
}

struct KernelV2Plan {
    KernelMode mode = KernelMode::kExact;

    // ------------------------------------------------ exact layout --
    std::vector<std::uint64_t> enode;

    // -------------------------------------------- quantized layout --
    std::vector<std::int32_t> qmeta;
    /** Padded by one element for the shim's scale-2 u16 gather. */
    std::vector<std::uint16_t> qcut;
    /** Sorted distinct (possibly subsampled) thresholds, flat. */
    std::vector<float> edges;
    /** Per-feature [edge_off[f], edge_off[f+1]) segment of `edges`. */
    std::vector<std::uint32_t> edge_off;
    bool quant_exact = true;
    std::size_t max_bins = 0;

    /** Per-feature threshold range, for the autotuner's sample rows. */
    std::vector<float> tune_lo;
    std::vector<float> tune_hi;

    // ------------------------------------- tuned runtime parameters --
    std::size_t row_block = 64;
    std::size_t tile_node_budget = std::size_t{1} << 16;
    /** Lane-width multiplier: with SIMD, row groups (of simd::kWidth
     * rows) interleaved per tree; without, the scalar loop runs
     * 16 * groups independent rows per tree. Either way more groups
     * means more loads in flight to hide node-load latency. */
    std::size_t groups = 2;
    bool use_simd = false;
    bool autotuned = false;

    struct Tile {
        std::size_t first_tree;
        std::size_t end_tree;
    };
    std::vector<Tile> tiles;

    /** Rows one traversal group covers under the current parameters. */
    std::size_t GroupRows() const;

    /** Rebuilds `tiles` for the current tile_node_budget. */
    void Retile(const ForestKernel& kernel);

    /**
     * Precomputes per-feature threshold edges and sets up the
     * quantized arrays' reservations. Must run before nodes are
     * emitted in quantized mode.
     */
    void InitQuantization(const std::vector<DecisionTree>& trees,
                          std::size_t num_features);

    /** Bin rank of decision threshold @p t on feature @p feature. */
    std::uint16_t CutFor(std::size_t feature, float t) const;

    /** bin(x) = #{edges[feature] < x}; NaN maps to kV2NanBin. */
    std::uint16_t BinOf(std::size_t feature, float x) const;

    /**
     * One row block: classification vote kernels. @p stride is the
     * float distance between consecutive rows.
     */
    void RunBlockVote(const ForestKernel& k, const float* rows,
                      std::size_t num_rows, std::size_t stride, float* out,
                      ForestKernel::Scratch& scratch) const;

    /** One row block: sum-accumulating kernels (regress / margin). */
    void RunBlockAccumulate(const ForestKernel& k, const float* rows,
                            std::size_t num_rows, std::size_t stride,
                            float* out,
                            ForestKernel::Scratch& scratch) const;

    /** Blocked driver, mirroring ForestKernel::RunStrided for v1. */
    void RunStrided(const ForestKernel& k, const float* rows,
                    std::size_t num_rows, std::size_t stride, float* out,
                    ForestKernel::Scratch& scratch) const;
};

/** True when every tree/feature fits the packed v2 node word. */
bool V2Supported(const std::vector<DecisionTree>& trees,
                 std::size_t num_features);

/** True when the SIMD shim may run on this machine (see simd.h), and
 * neither the build (DBSCORE_SIMD=OFF) nor the environment
 * (DBSCORE_SIMD=off) forces the scalar loop. */
bool V2SimdRuntimeEnabled();

}  // namespace dbscore

#endif  // DBSCORE_FOREST_FOREST_KERNEL_V2_H
