/**
 * @file
 * Model inspection utilities: human-readable tree rendering and
 * permutation feature importance.
 */
#ifndef DBSCORE_FOREST_INSPECT_H
#define DBSCORE_FOREST_INSPECT_H

#include <cstdint>
#include <string>
#include <vector>

#include "dbscore/data/dataset.h"
#include "dbscore/forest/forest.h"

namespace dbscore {

/**
 * Renders a tree as indented ASCII, e.g.
 *
 *   [f2 <= 2.45]
 *     yes: leaf -> 0
 *     no:  [f3 <= 1.75]
 *       yes: leaf -> 1
 *       no:  leaf -> 2
 *
 * @param feature_names optional names (falls back to f<i>)
 * @param max_depth nodes deeper than this render as "..."
 */
std::string RenderTree(const DecisionTree& tree,
                       const std::vector<std::string>& feature_names = {},
                       std::size_t max_depth = 6);

/** One feature's permutation importance. */
struct FeatureImportance {
    std::size_t feature = 0;
    std::string name;
    /**
     * Drop in accuracy (classification) or rise in MSE relative to the
     * baseline (regression) when the feature's column is shuffled.
     */
    double importance = 0.0;
};

/**
 * Permutation importance of every feature: shuffle one column at a time
 * (deterministically, by @p seed) and measure how much the model's
 * quality degrades. Features the model never uses score ~0.
 *
 * Results are sorted by importance, descending.
 *
 * @throws InvalidArgument on arity mismatch or empty data
 */
std::vector<FeatureImportance> ComputePermutationImportance(
    const RandomForest& forest, const Dataset& data,
    std::uint64_t seed = 42);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_INSPECT_H
