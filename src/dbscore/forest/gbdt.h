/**
 * @file
 * Gradient-boosted decision trees (GBDT).
 *
 * The paper targets "tree ensemble models" generally — random forests in
 * the evaluation, with gradient boosting named alongside (Hummingbird
 * compiles "decision tree, random forest, and gradient boost models").
 * This module adds the boosted variant: stagewise least-squares boosting
 * for regression and logistic-loss boosting for binary classification,
 * reusing the CART tree builder.
 *
 * A trained model exports to the same ONNX-like TreeEnsemble the engines
 * consume: leaf values are folded so that the engines' mean-of-trees
 * regression combiner reproduces base + lr * sum(tree outputs) exactly,
 * letting every backend (CPU/GPU/FPGA) score boosted models unchanged.
 */
#ifndef DBSCORE_FOREST_GBDT_H
#define DBSCORE_FOREST_GBDT_H

#include <cstdint>
#include <memory>
#include <mutex>

#include "dbscore/data/dataset.h"
#include "dbscore/forest/forest.h"
#include "dbscore/forest/forest_kernel.h"
#include "dbscore/forest/onnx_like.h"

namespace dbscore {

/** GBDT hyperparameters. */
struct GbdtConfig {
    std::size_t num_trees = 100;
    std::size_t max_depth = 6;
    double learning_rate = 0.1;
    std::size_t min_samples_leaf = 1;
    /** Row subsample fraction per stage (stochastic gradient boosting). */
    double subsample = 1.0;
    std::uint64_t seed = 42;
};

/** A trained boosted ensemble. */
class GradientBoostedModel {
 public:
    GradientBoostedModel() = default;

    GradientBoostedModel(Task task, std::size_t num_features,
                         double base_score, double learning_rate);

    // Value semantics despite the kernel-cache mutex: copies share the
    // (immutable) compiled kernel, never the lock.
    GradientBoostedModel(const GradientBoostedModel& other);
    GradientBoostedModel& operator=(const GradientBoostedModel& other);
    GradientBoostedModel(GradientBoostedModel&& other) noexcept;
    GradientBoostedModel& operator=(GradientBoostedModel&& other) noexcept;

    Task task() const { return task_; }
    std::size_t num_features() const { return num_features_; }
    double base_score() const { return base_score_; }
    double learning_rate() const { return learning_rate_; }
    std::size_t NumTrees() const { return trees_.size(); }
    const std::vector<DecisionTree>& trees() const { return trees_; }

    void AddTree(DecisionTree tree);

    /** Raw additive score: base + lr * sum of tree outputs. */
    double Margin(const float* row) const;

    /**
     * Final prediction: the margin for regression; class id (margin
     * through a sigmoid, threshold 0.5) for binary classification.
     */
    float Predict(const float* row) const;

    /**
     * Batch prediction. Delegates to the cached ForestKernel (margin
     * combiner: base + lr * sum accumulated in double in tree order,
     * classification thresholded after the sigmoid) whenever the
     * kernel supports the model; bit-identical to per-row Predict
     * either way.
     */
    std::vector<float> PredictBatch(const Dataset& data) const;

    /**
     * The compiled margin-combining inference plan under the default
     * options: built on first call, cached until the model mutates,
     * shared by copies. Thread-safe.
     * @throws InvalidArgument when the model is not kernel-compilable
     */
    std::shared_ptr<const ForestKernel> Kernel() const;

    /** Same, honoring @p options (part of the cache key, as for
     * RandomForest::Kernel). */
    std::shared_ptr<const ForestKernel> Kernel(
        const ForestKernelOptions& options) const;

    /** Classification accuracy / regression is invalid. */
    double Accuracy(const Dataset& data) const;

    /**
     * Exports to the engines' exchange format. The ensemble is tagged as
     * regression with leaf values scaled by (num_trees * learning_rate)
     * plus the distributed base score, so mean-of-trees == Margin().
     * Classification consumers threshold the margin at 0.5 after a
     * sigmoid — see MarginToClass().
     */
    TreeEnsemble ToTreeEnsemble() const;

    /** Converts an engine-produced margin to a class id. */
    static int MarginToClass(float margin);

 private:
    Task task_ = Task::kRegression;
    std::size_t num_features_ = 0;
    double base_score_ = 0.0;
    double learning_rate_ = 0.1;
    std::vector<DecisionTree> trees_;

    /** Lazily-built compiled kernel; null until first batch call. */
    mutable std::shared_ptr<const ForestKernel> kernel_;
    /** Options the cached kernel was built with (the cache key). */
    mutable ForestKernelOptions kernel_options_;
    mutable std::mutex kernel_mutex_;
};

/**
 * Least-squares gradient boosting for regression.
 * @throws InvalidArgument on bad config or non-regression data
 */
GradientBoostedModel TrainGbdtRegressor(const Dataset& train,
                                        const GbdtConfig& config);

/**
 * Logistic-loss gradient boosting for binary classification
 * (labels 0/1).
 * @throws InvalidArgument unless the dataset is binary classification
 */
GradientBoostedModel TrainGbdtClassifier(const Dataset& train,
                                         const GbdtConfig& config);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_GBDT_H
