/**
 * @file
 * Build-time autotuner for the v2 forest kernel.
 *
 * Instead of the fixed tile-fits-in-LLC heuristic, the tuner times a
 * small candidate grid of (inner loop, row block, tile node budget)
 * against the freshly compiled plan on a deterministic synthetic row
 * sample (seeded, drawn from the ensemble's per-feature threshold
 * ranges so traversal paths are realistic), then adopts the fastest
 * configuration. Winners are cached process-wide per model shape, so a
 * serve path that prewarms the same model repeatedly — or rebuilds a
 * kernel after mutation with an unchanged shape — pays the tuning cost
 * once. Tuning time is attributed to the kKernelBuild trace stage via
 * a "kernel-autotune" child span.
 *
 * Determinism: candidates are enumerated in a fixed order, the sample
 * is a fixed-seed xorshift sequence, and ties keep the earlier
 * candidate, so the *chosen parameters* only vary with genuine timing
 * differences. Tests that need full reproducibility pin
 * options.autotune = false or compare predictions (which never depend
 * on the tuned parameters — every candidate computes identical
 * results).
 */
#ifndef DBSCORE_FOREST_KERNEL_AUTOTUNE_H
#define DBSCORE_FOREST_KERNEL_AUTOTUNE_H

namespace dbscore {

class ForestKernel;
struct ForestKernelOptions;
struct KernelV2Plan;

/**
 * Resolves @p plan's runtime parameters (use_simd, groups, row_block,
 * tile_node_budget) for @p kernel under @p options: forced lanes are
 * honored as-is, kAuto without autotune takes the heuristic, and kAuto
 * with autotune benchmarks the candidate grid (or reuses a cached
 * winner). The plan's node arrays must be fully built; tiles are
 * left for the caller to (re)build.
 */
void AutotuneV2(const ForestKernel& kernel, KernelV2Plan& plan,
                const ForestKernelOptions& options);

/** Drops every cached autotune winner (tests). */
void AutotuneCacheClear();

}  // namespace dbscore

#endif  // DBSCORE_FOREST_KERNEL_AUTOTUNE_H
