#include "dbscore/forest/inspect.h"

#include <algorithm>
#include <sstream>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

namespace {

void
RenderNode(const DecisionTree& tree, std::int32_t node,
           const std::vector<std::string>& names, std::size_t depth,
           std::size_t max_depth, std::ostringstream& os)
{
    const std::string indent(depth * 2, ' ');
    if (tree.IsLeaf(node)) {
        os << indent << "leaf -> " << StrFormat("%g", tree.LeafValue(node))
           << "\n";
        return;
    }
    if (depth >= max_depth) {
        os << indent << "...\n";
        return;
    }
    auto f = static_cast<std::size_t>(tree.Feature(node));
    std::string name = f < names.size()
        ? names[f]
        : "f" + std::to_string(f);
    os << indent << "[" << name << " <= "
       << StrFormat("%g", tree.Threshold(node)) << "]\n";
    os << indent << "  yes:\n";
    RenderNode(tree, tree.Left(node), names, depth + 2, max_depth, os);
    os << indent << "  no:\n";
    RenderNode(tree, tree.Right(node), names, depth + 2, max_depth, os);
}

/** Quality score: accuracy for classification, negative MSE otherwise. */
double
Quality(const RandomForest& forest, const std::vector<float>& values,
        const Dataset& data)
{
    auto preds = forest.PredictBatch(values.data(), data.num_rows(),
                                     data.num_features());
    if (forest.task() == Task::kClassification) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (preds[i] == data.Label(i)) {
                ++hits;
            }
        }
        return static_cast<double>(hits) /
               static_cast<double>(preds.size());
    }
    double mse = 0.0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        double err = preds[i] - data.Label(i);
        mse += err * err;
    }
    return -mse / static_cast<double>(preds.size());
}

}  // namespace

std::string
RenderTree(const DecisionTree& tree,
           const std::vector<std::string>& feature_names,
           std::size_t max_depth)
{
    if (tree.Empty()) {
        throw InvalidArgument("render: empty tree");
    }
    std::ostringstream os;
    RenderNode(tree, 0, feature_names, 0, max_depth, os);
    return os.str();
}

std::vector<FeatureImportance>
ComputePermutationImportance(const RandomForest& forest,
                             const Dataset& data, std::uint64_t seed)
{
    if (data.num_rows() == 0 ||
        data.num_features() != forest.num_features()) {
        throw InvalidArgument("importance: data does not match model");
    }
    const std::size_t rows = data.num_rows();
    const std::size_t cols = data.num_features();

    std::vector<float> values = data.values();
    const double baseline = Quality(forest, values, data);

    Rng rng(seed);
    std::vector<FeatureImportance> out;
    out.reserve(cols);
    std::vector<float> column(rows);
    for (std::size_t f = 0; f < cols; ++f) {
        for (std::size_t r = 0; r < rows; ++r) {
            column[r] = values[r * cols + f];
        }
        // Shuffle the column, score, restore.
        std::vector<float> shuffled = column;
        rng.Shuffle(shuffled);
        for (std::size_t r = 0; r < rows; ++r) {
            values[r * cols + f] = shuffled[r];
        }
        double degraded = Quality(forest, values, data);
        for (std::size_t r = 0; r < rows; ++r) {
            values[r * cols + f] = column[r];
        }

        FeatureImportance fi;
        fi.feature = f;
        fi.name = f < data.feature_names().size()
            ? data.feature_names()[f]
            : "f" + std::to_string(f);
        fi.importance = baseline - degraded;
        out.push_back(std::move(fi));
    }
    std::sort(out.begin(), out.end(),
              [](const FeatureImportance& a, const FeatureImportance& b) {
                  return a.importance > b.importance;
              });
    return out;
}

}  // namespace dbscore
