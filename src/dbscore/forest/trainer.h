/**
 * @file
 * CART-style random forest trainer.
 *
 * Implements the standard algorithm: bootstrap sampling per tree, random
 * feature subsets per split (sqrt(F) default for classification, F/3 for
 * regression), exact best-split search by per-feature sorting, Gini
 * impurity for classification and variance reduction for regression.
 *
 * Training exists so the benches can generate models whose *shape* (node
 * counts, depths, path lengths) genuinely depends on the dataset, which is
 * the model-complexity axis of the paper's evaluation.
 */
#ifndef DBSCORE_FOREST_TRAINER_H
#define DBSCORE_FOREST_TRAINER_H

#include <cstddef>
#include <cstdint>

#include "dbscore/data/dataset.h"
#include "dbscore/forest/forest.h"

namespace dbscore {

/** Trainer hyperparameters. */
struct ForestTrainerConfig {
    /** Ensemble size. */
    std::size_t num_trees = 100;
    /** Maximum tree depth in edges; splits stop at this depth. */
    std::size_t max_depth = 10;
    /** Minimum samples required to attempt a split. */
    std::size_t min_samples_split = 2;
    /** Minimum samples each child must keep. */
    std::size_t min_samples_leaf = 1;
    /**
     * Fraction of features examined per split; 0 means the library
     * default (sqrt(F)/F for classification, 1/3 for regression).
     */
    double max_features_fraction = 0.0;
    /** Draw a bootstrap sample per tree (with replacement). */
    bool bootstrap = true;
    std::uint64_t seed = 42;
};

/**
 * Trains a random forest on @p train.
 *
 * @throws InvalidArgument on empty data or nonsensical config.
 */
RandomForest TrainForest(const Dataset& train,
                         const ForestTrainerConfig& config);

/** Gini impurity of a class-count histogram. Exposed for testing. */
double GiniImpurity(const std::vector<std::size_t>& counts);

}  // namespace dbscore

#endif  // DBSCORE_FOREST_TRAINER_H
