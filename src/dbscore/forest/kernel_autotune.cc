#include "dbscore/forest/kernel_autotune.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dbscore/forest/forest_kernel.h"
#include "dbscore/forest/forest_kernel_v2.h"
#include "dbscore/forest/simd.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

namespace {

/** Rows in the synthetic timing sample (multiple of every lane/group
 * width, small enough that a full candidate grid stays well under a
 * second even on large ensembles). */
constexpr std::size_t kSampleRows = 1024;
/** Timing repetitions per candidate; the minimum is kept. Three keeps
 * the full grid in the hundreds of milliseconds on 128-tree models
 * while giving each candidate two chances to dodge a scheduler hiccup
 * (a mistimed winner costs every later Predict call, a slow autotune
 * costs once). */
constexpr int kReps = 3;

struct TunedParams {
    std::size_t row_block;
    std::size_t tile_node_budget;
    std::size_t groups;
    bool use_simd;
};

std::mutex g_cache_mutex;
std::map<std::string, TunedParams>& // NOLINT(runtime/string)
Cache()
{
    static auto* cache = new std::map<std::string, TunedParams>();
    return *cache;
}

/** xorshift64: deterministic, seedable, no <random> state size. */
inline std::uint64_t
NextRand(std::uint64_t& s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

/**
 * Draws the timing sample from the ensemble's per-feature threshold
 * ranges (padded 25% beyond each side), so rows split at every level
 * instead of all draining down one side — traversal cost on the sample
 * tracks cost on real data.
 */
std::vector<float>
MakeSample(const KernelV2Plan& plan, std::size_t num_features,
           std::uint64_t seed)
{
    std::vector<float> rows(kSampleRows * num_features);
    std::uint64_t s = seed | 1;
    for (std::size_t i = 0; i < kSampleRows; ++i) {
        for (std::size_t f = 0; f < num_features; ++f) {
            const double frac =
                static_cast<double>(NextRand(s) >> 11) *
                (1.0 / 9007199254740992.0);
            const double lo = plan.tune_lo[f];
            const double hi = plan.tune_hi[f];
            const double margin = 0.25 * (hi - lo) + 1e-3;
            rows[i * num_features + f] = static_cast<float>(
                lo - margin + frac * (hi - lo + 2.0 * margin));
        }
    }
    return rows;
}

std::string
CacheKey(const ForestKernel& kernel, const ForestKernelOptions& options)
{
    char buf[160];
    std::snprintf(
        buf, sizeof(buf), "t%zu n%zu f%zu c%d m%d s%llu rb%zu tb%zu g%zu",
        kernel.NumTrees(), kernel.NumNodes(), kernel.num_features(),
        static_cast<int>(kernel.combine()),
        static_cast<int>(kernel.mode()),
        static_cast<unsigned long long>(options.autotune_seed),
        options.row_block, options.tile_node_budget, options.simd_groups);
    return buf;
}

std::size_t
ClampGroups(std::size_t g)
{
    if (g >= 8) {
        return 8;
    }
    if (g >= 4) {
        return 4;
    }
    return g == 0 ? 2 : g;
}

void
Apply(KernelV2Plan& plan, const TunedParams& p)
{
    plan.row_block = p.row_block;
    plan.tile_node_budget = p.tile_node_budget;
    plan.groups = p.groups;
    plan.use_simd = p.use_simd;
}

}  // namespace

void
AutotuneV2(const ForestKernel& kernel, KernelV2Plan& plan,
           const ForestKernelOptions& options)
{
    const bool simd_ok = V2SimdRuntimeEnabled();
    plan.row_block = options.row_block;
    plan.tile_node_budget = options.tile_node_budget;
    plan.groups = ClampGroups(options.simd_groups);
    plan.autotuned = false;

    if (options.lanes == KernelLanes::kScalar) {
        plan.use_simd = false;
        return;
    }
    if (options.lanes == KernelLanes::kSimd) {
        // Forced SIMD still degrades to scalar when the machine (or the
        // DBSCORE_SIMD escape hatch) cannot run the vector backend —
        // predictions are identical either way.
        plan.use_simd = simd_ok;
        return;
    }
    if (!options.autotune) {
        plan.use_simd = simd_ok;
        return;
    }

    const std::string key = CacheKey(kernel, options);
    {
        std::lock_guard<std::mutex> lock(g_cache_mutex);
        auto it = Cache().find(key);
        if (it != Cache().end()) {
            Apply(plan, it->second);
            plan.autotuned = true;
            return;
        }
    }

    trace::ScopedSpan span(trace::StageKind::kKernelBuild,
                           "kernel-autotune");

    // Candidate grid, fixed enumeration order (ties keep the earliest).
    // Scalar candidates sweep the lane width (16/32/64 rows in flight);
    // SIMD candidates sweep the interleaved group count.
    std::vector<std::pair<std::size_t, bool>> lanes;  // {groups, simd}
    lanes.emplace_back(1, false);
    lanes.emplace_back(2, false);
    lanes.emplace_back(4, false);
    if (simd_ok) {
        lanes.emplace_back(1, true);
        lanes.emplace_back(2, true);
        lanes.emplace_back(4, true);
        lanes.emplace_back(8, true);
    }
    std::vector<std::size_t> row_blocks = {64, 256, options.row_block};
    std::sort(row_blocks.begin(), row_blocks.end());
    row_blocks.erase(std::unique(row_blocks.begin(), row_blocks.end()),
                     row_blocks.end());
    const std::size_t nn = kernel.NumNodes();
    std::vector<std::size_t> budgets = {
        std::min<std::size_t>(std::size_t{1} << 14, nn),
        std::min<std::size_t>(std::size_t{1} << 16, nn), nn,
        std::min(options.tile_node_budget, nn)};
    std::sort(budgets.begin(), budgets.end());
    budgets.erase(std::unique(budgets.begin(), budgets.end()),
                  budgets.end());

    const std::vector<float> sample =
        MakeSample(plan, kernel.num_features(), options.autotune_seed);
    std::vector<float> out(kSampleRows);
    ForestKernel::Scratch scratch;

    TunedParams best{};
    double best_ns = 0.0;
    bool have_best = false;
    std::size_t tried = 0;
    for (const auto& [groups, use_simd] : lanes) {
        for (const std::size_t rb : row_blocks) {
            for (const std::size_t tb : budgets) {
                const TunedParams cand{rb, tb, groups, use_simd};
                Apply(plan, cand);
                plan.Retile(kernel);
                double ns = 0.0;
                for (int rep = 0; rep < kReps; ++rep) {
                    const auto t0 =
                        std::chrono::steady_clock::now();
                    plan.RunStrided(kernel, sample.data(), kSampleRows,
                                    kernel.num_features(), out.data(),
                                    scratch);
                    const auto t1 =
                        std::chrono::steady_clock::now();
                    const double rep_ns =
                        std::chrono::duration<double, std::nano>(t1 - t0)
                            .count();
                    ns = rep == 0 ? rep_ns : std::min(ns, rep_ns);
                }
                ++tried;
                if (!have_best || ns < best_ns) {
                    have_best = true;
                    best_ns = ns;
                    best = cand;
                }
            }
        }
    }
    span.AddAttr("candidates", static_cast<double>(tried));
    span.AddAttr("winner_row_block", static_cast<double>(best.row_block));
    span.AddAttr("winner_tile_budget",
                 static_cast<double>(best.tile_node_budget));
    span.AddAttr("winner_simd_groups",
                 best.use_simd ? static_cast<double>(best.groups) : 0.0);

    Apply(plan, best);
    plan.autotuned = true;
    {
        std::lock_guard<std::mutex> lock(g_cache_mutex);
        Cache().emplace(key, best);
    }
}

void
AutotuneCacheClear()
{
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    Cache().clear();
}

}  // namespace dbscore
