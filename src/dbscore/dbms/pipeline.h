/**
 * @file
 * The end-to-end analytics + scoring pipeline (paper Figure 2):
 *
 *   T-SQL query -> launch external process -> copy data to it ->
 *   deserialize model -> prepare features -> score on a backend ->
 *   copy predictions back.
 *
 * RunScoringQuery executes the whole flow functionally (real predictions)
 * while accumulating the Figure-11 stage breakdown; EstimateQuery produces
 * the same breakdown analytically for sizes too large to materialize.
 */
#ifndef DBSCORE_DBMS_PIPELINE_H
#define DBSCORE_DBMS_PIPELINE_H

#include <optional>
#include <string>
#include <vector>

#include "dbscore/core/backend_factory.h"
#include "dbscore/dbms/database.h"
#include "dbscore/dbms/external_runtime.h"

namespace dbscore {

/** Figure-11 stage times for one query. */
struct PipelineStageTimes {
    /** Launching the external Python process. */
    SimTime python_invocation;
    /** DBMS <-> process copies of data and results. */
    SimTime data_transfer;
    /** Deserializing the model blob. */
    SimTime model_preprocessing;
    /** Feature extraction / scoring-matrix preparation. */
    SimTime data_preprocessing;
    /** The overall model scoring time (engine breakdown). */
    OffloadBreakdown scoring;

    SimTime Total() const;
    /** Everything except scoring — the pipeline overhead. */
    SimTime NonScoring() const;
};

/** Result of one end-to-end scoring query. */
struct PipelineRunResult {
    std::vector<float> predictions;
    PipelineStageTimes stages;
};

/** Executes scoring queries against a database. */
class ScoringPipeline {
 public:
    ScoringPipeline(Database& db, const HardwareProfile& profile,
                    const ExternalRuntimeParams& runtime_params);

    Database& db() { return db_; }
    ExternalScriptRuntime& runtime() { return runtime_; }
    const HardwareProfile& profile() const { return profile_; }

    /**
     * Runs the full pipeline: data from @p data_table, model
     * @p model_name from the models table, scoring on @p backend.
     *
     * @param max_rows optionally scores only the first rows (the paper's
     *        record-count axis)
     * @throws NotFound / CapacityError / InvalidArgument per stage
     */
    PipelineRunResult RunScoringQuery(const std::string& model_name,
                                      const std::string& data_table,
                                      BackendKind backend,
                                      std::optional<std::size_t> max_rows =
                                          std::nullopt);

    /**
     * Analytic stage breakdown for scoring @p num_rows records of the
     * stored model @p model_name on @p backend, without materializing
     * data (used for the 1M-record points of Figure 11).
     */
    PipelineStageTimes EstimateQuery(const std::string& model_name,
                                     std::size_t num_rows,
                                     BackendKind backend);

    /**
     * Scheduler-backed backend choice for scoring @p num_rows records of
     * the stored model: the dynamic decision the paper argues for
     * (drives sp_score_model's @backend = 'auto').
     */
    BackendKind AdviseBackend(const std::string& model_name,
                              std::size_t num_rows);

 private:
    /**
     * The out-of-core variant of RunScoringQuery: streams the paged
     * table chunk-wise (one pinned page at a time) through the same
     * stage sequence, so tables larger than the buffer pool score in
     * bounded memory. Per-chunk marshal and offload spans accumulate
     * into the same Figure-11 stage totals the in-memory path reports.
     */
    PipelineRunResult RunPagedScoringQuery(
        const std::string& model_name, const Table& table,
        BackendKind backend, std::optional<std::size_t> max_rows);

    Database& db_;
    HardwareProfile profile_;
    ExternalScriptRuntime runtime_;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_PIPELINE_H
