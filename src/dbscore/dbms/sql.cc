#include "dbscore/dbms/sql.h"

#include <cctype>
#include <cstdlib>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

const char*
AggFuncName(AggFunc func)
{
    switch (func) {
      case AggFunc::kCount: return "COUNT";
      case AggFunc::kSum: return "SUM";
      case AggFunc::kAvg: return "AVG";
      case AggFunc::kMin: return "MIN";
      case AggFunc::kMax: return "MAX";
    }
    return "?";
}

bool
EvalCompareOp(CompareOp op, int cmp)
{
    switch (op) {
      case CompareOp::kEq: return cmp == 0;
      case CompareOp::kNe: return cmp != 0;
      case CompareOp::kLt: return cmp < 0;
      case CompareOp::kLe: return cmp <= 0;
      case CompareOp::kGt: return cmp > 0;
      case CompareOp::kGe: return cmp >= 0;
    }
    return false;
}

const char*
CompareOpName(CompareOp op)
{
    switch (op) {
      case CompareOp::kEq: return "=";
      case CompareOp::kNe: return "<>";
      case CompareOp::kLt: return "<";
      case CompareOp::kLe: return "<=";
      case CompareOp::kGt: return ">";
      case CompareOp::kGe: return ">=";
    }
    return "?";
}

std::string
ScoreExprToString(const ScoreExpr& expr)
{
    std::string out = "SCORE(" + expr.model;
    for (const std::string& f : expr.features) {
        out += ", " + f;
    }
    out += ")";
    return out;
}

bool
SelectStatement::HasScore() const
{
    if (!scores.empty()) return true;
    for (const AggregateItem& agg : aggregates) {
        if (agg.score) return true;
    }
    for (const WhereClause& clause : where) {
        if (clause.score) return true;
    }
    return order_by && order_by->score;
}

namespace {

/** Token kinds produced by the lexer. */
enum class TokKind {
    kIdent,
    kNumber,
    kString,
    kPunct,   ///< ( ) , = < > <= >= <> @ *
    kEnd,
};

struct Token {
    TokKind kind;
    std::string text;
    std::size_t pos;
};

/** Hand-rolled lexer over the statement text. */
class Lexer {
 public:
    explicit Lexer(const std::string& text) : text_(text) { Advance(); }

    const Token& Peek() const { return current_; }

    Token
    Take()
    {
        Token t = current_;
        Advance();
        return t;
    }

    [[noreturn]] void
    Fail(const std::string& why) const
    {
        throw ParseError(StrFormat("sql: %s at position %zu", why.c_str(),
                                   current_.pos));
    }

 private:
    void
    Advance()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        current_.pos = pos_;
        if (pos_ >= text_.size()) {
            current_ = {TokKind::kEnd, "", pos_};
            return;
        }
        char c = text_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
                ++pos_;
            }
            current_ = {TokKind::kIdent, text_.substr(start, pos_ - start),
                        start};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && pos_ + 1 < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
            std::size_t start = pos_;
            ++pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' ||
                    ((text_[pos_] == '+' || text_[pos_] == '-') &&
                     (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
                ++pos_;
            }
            current_ = {TokKind::kNumber, text_.substr(start, pos_ - start),
                        start};
            return;
        }
        if (c == '\'') {
            std::size_t start = pos_++;
            std::string value;
            while (true) {
                if (pos_ >= text_.size()) {
                    throw ParseError("sql: unterminated string literal");
                }
                if (text_[pos_] == '\'') {
                    if (pos_ + 1 < text_.size() &&
                        text_[pos_ + 1] == '\'') {
                        value.push_back('\'');
                        pos_ += 2;
                        continue;
                    }
                    ++pos_;
                    break;
                }
                value.push_back(text_[pos_++]);
            }
            current_ = {TokKind::kString, std::move(value), start};
            return;
        }
        // Two-character operators first.
        if ((c == '<' || c == '>') && pos_ + 1 < text_.size()) {
            char next = text_[pos_ + 1];
            if (next == '=' || (c == '<' && next == '>')) {
                current_ = {TokKind::kPunct, text_.substr(pos_, 2), pos_};
                pos_ += 2;
                return;
            }
        }
        static const std::string kSingle = "(),=<>@*;";
        if (kSingle.find(c) != std::string::npos) {
            current_ = {TokKind::kPunct, std::string(1, c), pos_};
            ++pos_;
            return;
        }
        throw ParseError(StrFormat("sql: unexpected character '%c' at %zu",
                                   c, pos_));
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    Token current_;
};

/** Recursive-descent parser over the token stream. */
class Parser {
 public:
    explicit Parser(const std::string& sql) : lex_(sql) {}

    Statement
    Parse()
    {
        Token head = ExpectIdent();
        Statement stmt = [&]() -> Statement {
            if (EqualsIgnoreCase(head.text, "CREATE")) {
                return ParseCreate();
            }
            if (EqualsIgnoreCase(head.text, "INSERT")) {
                return ParseInsert();
            }
            if (EqualsIgnoreCase(head.text, "SELECT")) {
                return ParseSelect();
            }
            if (EqualsIgnoreCase(head.text, "EXEC") ||
                EqualsIgnoreCase(head.text, "EXECUTE")) {
                return ParseExec();
            }
            lex_.Fail("unsupported statement '" + head.text + "'");
        }();
        SkipOptionalSemicolon();
        if (lex_.Peek().kind != TokKind::kEnd) {
            lex_.Fail("trailing input '" + lex_.Peek().text +
                      "' after complete statement");
        }
        return stmt;
    }

 private:
    /*
     * Keyword handling is funneled through PeekKeyword/TryKeyword/
     * ExpectKeyword so case-insensitivity lives in exactly one
     * comparison site (PeekKeyword) instead of being re-spelled at
     * every grammar rule.
     */
    bool
    PeekKeyword(const char* keyword) const
    {
        return lex_.Peek().kind == TokKind::kIdent &&
               EqualsIgnoreCase(lex_.Peek().text, keyword);
    }

    bool
    TryKeyword(const char* keyword)
    {
        if (!PeekKeyword(keyword)) {
            return false;
        }
        lex_.Take();
        return true;
    }

    void
    ExpectKeyword(const char* keyword)
    {
        if (!TryKeyword(keyword)) {
            lex_.Fail(StrFormat("expected %s", keyword));
        }
    }

    Token
    ExpectIdent()
    {
        if (lex_.Peek().kind != TokKind::kIdent) {
            lex_.Fail("expected identifier");
        }
        return lex_.Take();
    }

    void
    ExpectPunct(const char* punct)
    {
        if (lex_.Peek().kind != TokKind::kPunct ||
            lex_.Peek().text != punct) {
            lex_.Fail(StrFormat("expected '%s'", punct));
        }
        lex_.Take();
    }

    bool
    PeekPunct(const char* punct) const
    {
        return lex_.Peek().kind == TokKind::kPunct &&
               lex_.Peek().text == punct;
    }

    bool
    TryPunct(const char* punct)
    {
        if (!PeekPunct(punct)) {
            return false;
        }
        lex_.Take();
        return true;
    }

    void
    SkipOptionalSemicolon()
    {
        TryPunct(";");
    }

    Value
    ParseLiteral()
    {
        Token t = lex_.Take();
        if (t.kind == TokKind::kString) {
            return Value(t.text);
        }
        if (t.kind == TokKind::kNumber) {
            if (t.text.find_first_of(".eE") == std::string::npos) {
                return Value(static_cast<std::int64_t>(
                    std::strtoll(t.text.c_str(), nullptr, 10)));
            }
            return Value(std::strtod(t.text.c_str(), nullptr));
        }
        lex_.Fail("expected literal");
    }

    ColumnType
    ParseColumnType()
    {
        Token t = ExpectIdent();
        if (EqualsIgnoreCase(t.text, "INT") ||
            EqualsIgnoreCase(t.text, "BIGINT")) {
            return ColumnType::kInt64;
        }
        if (EqualsIgnoreCase(t.text, "FLOAT") ||
            EqualsIgnoreCase(t.text, "REAL") ||
            EqualsIgnoreCase(t.text, "DOUBLE")) {
            return ColumnType::kDouble;
        }
        if (EqualsIgnoreCase(t.text, "VARCHAR") ||
            EqualsIgnoreCase(t.text, "TEXT") ||
            EqualsIgnoreCase(t.text, "NVARCHAR")) {
            SkipTypeArgs();
            return ColumnType::kString;
        }
        if (EqualsIgnoreCase(t.text, "VARBINARY") ||
            EqualsIgnoreCase(t.text, "BLOB")) {
            SkipTypeArgs();
            return ColumnType::kBlob;
        }
        lex_.Fail("unsupported column type '" + t.text + "'");
    }

    /** Consumes "(max)" / "(255)" style type arguments. */
    void
    SkipTypeArgs()
    {
        if (!TryPunct("(")) {
            return;
        }
        while (lex_.Peek().kind != TokKind::kEnd && !TryPunct(")")) {
            lex_.Take();
        }
    }

    Statement
    ParseCreate()
    {
        ExpectKeyword("TABLE");
        CreateTableStatement stmt;
        stmt.table = ExpectIdent().text;
        ExpectPunct("(");
        do {
            ColumnDef def;
            def.name = ExpectIdent().text;
            def.type = ParseColumnType();
            stmt.columns.push_back(std::move(def));
        } while (TryPunct(","));
        ExpectPunct(")");
        return stmt;
    }

    Statement
    ParseInsert()
    {
        ExpectKeyword("INTO");
        InsertStatement stmt;
        stmt.table = ExpectIdent().text;
        ExpectKeyword("VALUES");
        do {
            ExpectPunct("(");
            std::vector<Value> row;
            do {
                row.push_back(ParseLiteral());
            } while (TryPunct(","));
            ExpectPunct(")");
            stmt.rows.push_back(std::move(row));
        } while (TryPunct(","));
        return stmt;
    }

    CompareOp
    ParseCompareOp()
    {
        if (lex_.Peek().kind != TokKind::kPunct) {
            lex_.Fail("expected comparison operator");
        }
        std::string op = lex_.Take().text;
        if (op == "=") return CompareOp::kEq;
        if (op == "<>") return CompareOp::kNe;
        if (op == "<") return CompareOp::kLt;
        if (op == "<=") return CompareOp::kLe;
        if (op == ">") return CompareOp::kGt;
        if (op == ">=") return CompareOp::kGe;
        lex_.Fail("unsupported operator '" + op + "'");
    }

    /**
     * Parses "(model [, col ...])" after the SCORE keyword has been
     * consumed. The model is an identifier or a quoted string.
     */
    ScoreExpr
    ParseScoreArgs()
    {
        ExpectPunct("(");
        ScoreExpr expr;
        if (lex_.Peek().kind == TokKind::kString) {
            expr.model = lex_.Take().text;
        } else {
            expr.model = ExpectIdent().text;
        }
        while (TryPunct(",")) {
            expr.features.push_back(ExpectIdent().text);
        }
        ExpectPunct(")");
        return expr;
    }

    /**
     * If @p ident is the SCORE keyword applied to an argument list,
     * parses and returns the ScoreExpr; otherwise @p ident was a
     * plain identifier (possibly a column literally named "score").
     */
    std::optional<ScoreExpr>
    TryScoreCall(const Token& ident)
    {
        if (EqualsIgnoreCase(ident.text, "SCORE") && PeekPunct("(")) {
            return ParseScoreArgs();
        }
        return std::nullopt;
    }

    Statement
    ParseSelect()
    {
        SelectStatement stmt;
        if (TryKeyword("TOP")) {
            Token n = lex_.Take();
            if (n.kind != TokKind::kNumber) {
                lex_.Fail("expected row count after TOP");
            }
            stmt.top = static_cast<std::size_t>(
                std::strtoull(n.text.c_str(), nullptr, 10));
        }
        if (TryPunct("*")) {
            stmt.star = true;
        } else {
            do {
                ParseSelectItem(stmt);
            } while (TryPunct(","));
            bool has_plain = !stmt.columns.empty() || !stmt.scores.empty();
            if (has_plain && !stmt.aggregates.empty()) {
                lex_.Fail("cannot mix aggregates and plain columns "
                          "without GROUP BY");
            }
        }
        ExpectKeyword("FROM");
        stmt.table = ExpectIdent().text;
        if (TryKeyword("WHERE")) {
            do {
                WhereClause clause;
                Token ident = ExpectIdent();
                if (auto score = TryScoreCall(ident)) {
                    clause.score = std::move(*score);
                } else {
                    clause.column = ident.text;
                }
                clause.op = ParseCompareOp();
                clause.literal = ParseLiteral();
                stmt.where.push_back(std::move(clause));
            } while (TryKeyword("AND"));
        }
        if (TryKeyword("ORDER")) {
            ExpectKeyword("BY");
            OrderBy order;
            Token ident = ExpectIdent();
            if (auto score = TryScoreCall(ident)) {
                order.score = std::move(*score);
            } else {
                order.column = ident.text;
            }
            if (TryKeyword("DESC")) {
                order.descending = true;
            } else {
                TryKeyword("ASC");
            }
            stmt.order_by = std::move(order);
        }
        return stmt;
    }

    /** Parses one select-list entry: column, SCORE(...), or AGG(...). */
    void
    ParseSelectItem(SelectStatement& stmt)
    {
        Token ident = ExpectIdent();
        if (auto score = TryScoreCall(ident)) {
            stmt.items.push_back(
                {SelectItemKind::kScore, stmt.scores.size()});
            stmt.scores.push_back(std::move(*score));
            return;
        }
        AggFunc func;
        bool is_agg = true;
        if (EqualsIgnoreCase(ident.text, "COUNT")) {
            func = AggFunc::kCount;
        } else if (EqualsIgnoreCase(ident.text, "SUM")) {
            func = AggFunc::kSum;
        } else if (EqualsIgnoreCase(ident.text, "AVG")) {
            func = AggFunc::kAvg;
        } else if (EqualsIgnoreCase(ident.text, "MIN")) {
            func = AggFunc::kMin;
        } else if (EqualsIgnoreCase(ident.text, "MAX")) {
            func = AggFunc::kMax;
        } else {
            is_agg = false;
            func = AggFunc::kCount;  // unused
        }
        if (is_agg && TryPunct("(")) {
            AggregateItem item;
            item.func = func;
            if (TryPunct("*")) {
                if (func != AggFunc::kCount) {
                    lex_.Fail("only COUNT accepts '*'");
                }
            } else {
                Token arg = ExpectIdent();
                if (auto score = TryScoreCall(arg)) {
                    if (func == AggFunc::kCount) {
                        lex_.Fail("COUNT(SCORE(...)) is not supported; "
                                  "use COUNT(*) with a WHERE predicate");
                    }
                    item.score = std::move(*score);
                } else {
                    item.column = arg.text;
                }
            }
            ExpectPunct(")");
            stmt.items.push_back(
                {SelectItemKind::kAggregate, stmt.aggregates.size()});
            stmt.aggregates.push_back(std::move(item));
            return;
        }
        stmt.items.push_back(
            {SelectItemKind::kColumn, stmt.columns.size()});
        stmt.columns.push_back(ident.text);
    }

    Statement
    ParseExec()
    {
        ExecStatement stmt;
        stmt.procedure = ExpectIdent().text;
        if (lex_.Peek().kind == TokKind::kPunct &&
            lex_.Peek().text == "@") {
            do {
                ExpectPunct("@");
                std::string param = ExpectIdent().text;
                ExpectPunct("=");
                stmt.params[ToLower(param)] = ParseLiteral();
            } while (TryPunct(","));
        }
        return stmt;
    }

    Lexer lex_;
};

}  // namespace

Statement
ParseSql(const std::string& sql)
{
    Parser parser(sql);
    return parser.Parse();
}

}  // namespace dbscore
