/**
 * @file
 * Parser for the T-SQL subset the scoring pipeline needs:
 *
 *   CREATE TABLE t (col TYPE, ...)
 *   INSERT INTO t VALUES (lit, ...), (lit, ...)
 *   SELECT [TOP n] * | item, ... FROM t [WHERE pred [AND ...]]
 *       [ORDER BY col|SCORE(...) [ASC|DESC]]
 *   EXEC proc @param = lit, ...
 *
 * where an item is a column, AGG(col | * | SCORE(...)), or
 * SCORE(model [, feature_cols...]) — the SQL+ML surface: SCORE is a
 * first-class expression usable in the select list, in WHERE
 * predicates (SCORE(...) > θ), and in ORDER BY, and is planned/
 * co-optimized by dbscore::dbms::plan rather than interpreted here.
 *
 * EXEC drives stored procedures like the paper's Figure-3 query, which
 * executes a scoring script with @model_name/@dataset parameters.
 */
#ifndef DBSCORE_DBMS_SQL_H
#define DBSCORE_DBMS_SQL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dbscore/dbms/table.h"

namespace dbscore {

/** WHERE comparison operators. */
enum class CompareOp {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
};

/** Evaluates @p op on the strcmp-style result of CompareValues. */
bool EvalCompareOp(CompareOp op, int cmp);

/** Returns "=", "<>", "<", ... */
const char* CompareOpName(CompareOp op);

/**
 * SCORE(model [, feature_cols...]) — score the row with a stored
 * model. An empty feature list means "all non-label feature columns
 * of the table, in table order" (the sp_score_model convention).
 */
struct ScoreExpr {
    std::string model;
    std::vector<std::string> features;

    bool
    operator==(const ScoreExpr& o) const
    {
        return model == o.model && features == o.features;
    }
};

/** "SCORE(model, f1, f2)" — used by explain output and tests. */
std::string ScoreExprToString(const ScoreExpr& expr);

/**
 * One WHERE conjunct: either "col op literal" (score unset) or
 * "SCORE(...) op literal" (score set, column empty).
 */
struct WhereClause {
    std::string column;
    CompareOp op;
    Value literal;
    std::optional<ScoreExpr> score;
};

/** CREATE TABLE statement. */
struct CreateTableStatement {
    std::string table;
    std::vector<ColumnDef> columns;
};

/** INSERT INTO ... VALUES statement. */
struct InsertStatement {
    std::string table;
    std::vector<std::vector<Value>> rows;
};

/** Aggregate functions usable in a SELECT list. */
enum class AggFunc {
    kCount,
    kSum,
    kAvg,
    kMin,
    kMax,
};

/** Returns "COUNT", "SUM", ... */
const char* AggFuncName(AggFunc func);

/**
 * One aggregate select item, e.g. AVG(price), COUNT(*), or
 * AVG(SCORE(m)). When @c score is set the aggregate runs over the
 * model's per-row score and @c column is empty.
 */
struct AggregateItem {
    AggFunc func = AggFunc::kCount;
    /** Aggregated column; empty means '*' (COUNT(*) only) or SCORE. */
    std::string column;
    std::optional<ScoreExpr> score;
};

/** ORDER BY clause: a column or SCORE(...) (column empty). */
struct OrderBy {
    std::string column;
    bool descending = false;
    std::optional<ScoreExpr> score;
};

/** What one ordered select-list slot refers to. */
enum class SelectItemKind : std::uint8_t {
    kColumn,     ///< columns[index]
    kScore,      ///< scores[index]
    kAggregate,  ///< aggregates[index]
};

/** Ordered select-list slot -> (kind, index into the typed vector). */
struct SelectItemRef {
    SelectItemKind kind = SelectItemKind::kColumn;
    std::size_t index = 0;
};

/**
 * SELECT statement (single table, conjunctive WHERE, optional ORDER BY).
 * Either plain columns/scores (columns/scores/star) or aggregates are
 * populated, never both — mixing them without GROUP BY is rejected at
 * parse time. @c items preserves the textual select-list order across
 * the typed columns/scores/aggregates vectors.
 */
struct SelectStatement {
    bool star = false;
    std::vector<std::string> columns;
    std::vector<ScoreExpr> scores;
    std::vector<AggregateItem> aggregates;
    std::vector<SelectItemRef> items;
    std::string table;
    std::vector<WhereClause> where;
    std::optional<OrderBy> order_by;
    std::optional<std::size_t> top;

    /** True when the statement references SCORE anywhere. */
    bool HasScore() const;
};

/** EXEC stored-procedure statement. */
struct ExecStatement {
    std::string procedure;
    std::map<std::string, Value> params;
};

/** Any parsed statement. */
using Statement = std::variant<CreateTableStatement, InsertStatement,
                               SelectStatement, ExecStatement>;

/**
 * Parses one SQL statement (a trailing ';' is allowed).
 * @throws ParseError with position context on malformed input
 */
Statement ParseSql(const std::string& sql);

}  // namespace dbscore

#endif  // DBSCORE_DBMS_SQL_H
