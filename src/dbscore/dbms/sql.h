/**
 * @file
 * Parser for the T-SQL subset the scoring pipeline needs:
 *
 *   CREATE TABLE t (col TYPE, ...)
 *   INSERT INTO t VALUES (lit, ...), (lit, ...)
 *   SELECT [TOP n] * | col, ... FROM t [WHERE col op lit [AND ...]]
 *   EXEC proc @param = lit, ...
 *
 * EXEC drives stored procedures like the paper's Figure-3 query, which
 * executes a scoring script with @model_name/@dataset parameters.
 */
#ifndef DBSCORE_DBMS_SQL_H
#define DBSCORE_DBMS_SQL_H

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dbscore/dbms/table.h"

namespace dbscore {

/** WHERE comparison operators. */
enum class CompareOp {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
};

/** Evaluates @p op on the strcmp-style result of CompareValues. */
bool EvalCompareOp(CompareOp op, int cmp);

/** One "col op literal" conjunct. */
struct WhereClause {
    std::string column;
    CompareOp op;
    Value literal;
};

/** CREATE TABLE statement. */
struct CreateTableStatement {
    std::string table;
    std::vector<ColumnDef> columns;
};

/** INSERT INTO ... VALUES statement. */
struct InsertStatement {
    std::string table;
    std::vector<std::vector<Value>> rows;
};

/** Aggregate functions usable in a SELECT list. */
enum class AggFunc {
    kCount,
    kSum,
    kAvg,
    kMin,
    kMax,
};

/** Returns "COUNT", "SUM", ... */
const char* AggFuncName(AggFunc func);

/** One aggregate select item, e.g. AVG(price) or COUNT(*). */
struct AggregateItem {
    AggFunc func = AggFunc::kCount;
    /** Aggregated column; empty means '*' (COUNT(*) only). */
    std::string column;
};

/** ORDER BY clause. */
struct OrderBy {
    std::string column;
    bool descending = false;
};

/**
 * SELECT statement (single table, conjunctive WHERE, optional ORDER BY).
 * Either plain columns (columns/star) or aggregates are populated, never
 * both — mixing them without GROUP BY is rejected at parse time.
 */
struct SelectStatement {
    bool star = false;
    std::vector<std::string> columns;
    std::vector<AggregateItem> aggregates;
    std::string table;
    std::vector<WhereClause> where;
    std::optional<OrderBy> order_by;
    std::optional<std::size_t> top;
};

/** EXEC stored-procedure statement. */
struct ExecStatement {
    std::string procedure;
    std::map<std::string, Value> params;
};

/** Any parsed statement. */
using Statement = std::variant<CreateTableStatement, InsertStatement,
                               SelectStatement, ExecStatement>;

/**
 * Parses one SQL statement (a trailing ';' is allowed).
 * @throws ParseError with position context on malformed input
 */
Statement ParseSql(const std::string& sql);

}  // namespace dbscore

#endif  // DBSCORE_DBMS_SQL_H
