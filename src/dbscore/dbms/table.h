/**
 * @file
 * Columnar table storage for the mini-DBMS.
 *
 * A Table has one of two backings:
 *  - in-memory (the default): columns of Values, with the feature
 *    block lazily materialized by MaterializeFeatures();
 *  - paged: rows live in a dbscore::storage::PagedTable page file and
 *    flow through a BufferPool — the out-of-core mode for datasets
 *    larger than RAM. Paged tables answer NumRows/At/AppendRow/
 *    MaterializeFeatures through the store and additionally support
 *    ScanFeatures(), a streaming iterator of pinned zero-copy chunks
 *    (the pipeline's paged scoring path). Column() is the one
 *    operation a paged table cannot serve (no whole-column Values in
 *    memory) and throws.
 */
#ifndef DBSCORE_DBMS_TABLE_H
#define DBSCORE_DBMS_TABLE_H

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/data/row_block.h"
#include "dbscore/dbms/value.h"
#include "dbscore/storage/paged_table.h"

namespace dbscore {

/** One column's name and type. */
struct ColumnDef {
    std::string name;
    ColumnType type;
};

/** A columnar table. */
class Table {
 public:
    Table() = default;
    Table(std::string name, std::vector<ColumnDef> schema);

    /**
     * Wraps an opened/created paged store as a catalog table. The
     * schema is reconstructed from the store's column names (every
     * stored column is FLOAT).
     */
    static Table FromPagedStore(
        std::string name,
        std::shared_ptr<storage::PagedTable> store);

    /** True when rows live in the out-of-core page file. */
    bool paged() const { return store_ != nullptr; }

    /** The paged backing store; null for in-memory tables. */
    const std::shared_ptr<storage::PagedTable>& store() const
    {
        return store_;
    }

    const std::string& name() const { return name_; }
    const std::vector<ColumnDef>& schema() const { return schema_; }
    std::size_t NumColumns() const { return schema_.size(); }

    std::size_t
    NumRows() const
    {
        return paged() ? static_cast<std::size_t>(store_->num_rows())
                       : num_rows_;
    }

    /**
     * Index of column @p column_name (case-insensitive).
     * @throws NotFound if absent
     */
    std::size_t ColumnIndex(const std::string& column_name) const;

    /**
     * Appends one row. Int literals coerce into FLOAT columns.
     * @throws InvalidArgument on arity or type mismatch
     */
    void AppendRow(std::vector<Value> row);

    /**
     * Cell reference. @throws InvalidArgument on a paged table — use
     * FloatAt() (values live in the page file, not as Values).
     */
    const Value& At(std::size_t row, std::size_t col) const;

    /**
     * Cell as float — works for both backings (paged tables read
     * through the buffer pool; in-memory tables convert the Value).
     */
    float FloatAt(std::size_t row, std::size_t col) const;

    /**
     * Whole column (for scans). @throws InvalidArgument on a paged
     * table — stream with ScanFeatures() instead.
     */
    const std::vector<Value>& Column(std::size_t col) const;

    /** Approximate wire size of @p row in bytes. */
    std::uint64_t RowWireBytes(std::size_t row) const;

    /** Index of the feature-excluded "label" column, or NumColumns(). */
    std::size_t LabelColumnIndex() const;

    /** Columns that materialize as features (all but "label"). */
    std::size_t NumFeatureColumns() const;

    /**
     * Row-major float32 materialization of every non-label column —
     * the data plane's single copy out of DBMS storage. Built lazily,
     * cached until the next AppendRow, and counted against
     * RowBlock::CopyStats. Views taken from the returned block share
     * its refcounted storage and stay valid across cache invalidation
     * (the cache drops its reference; it never mutates the old block).
     */
    const RowBlock& MaterializeFeatures() const;

    /**
     * Narrowed materialization for column-pruned plans: a row-major
     * float32 block of just @p cols (table column indices, in the
     * requested order), so a query that touches k of n columns copies
     * k/n of the bytes MaterializeFeatures() would. Counted against
     * RowBlock::CopyStats; not cached (the pruned column set is a
     * property of the query, not the table).
     * @throws InvalidArgument when @p cols is empty or out of range
     */
    RowBlock MaterializeColumns(const std::vector<std::size_t>& cols) const;

    /**
     * Streaming feature iterator — the chunk-wise alternative to
     * MaterializeFeatures(). Paged tables yield one pinned zero-copy
     * chunk per data page (optionally zone-map-pruned by
     * @p predicate); in-memory tables yield the materialized block as
     * a single chunk, so consumers are written once against the
     * streaming shape. Pruning is conservative: in-memory streams
     * ignore the predicate (a legal superset).
     */
    storage::FeatureStream ScanFeatures(
        const std::optional<storage::ScanPredicate>& predicate =
            std::nullopt) const;

 private:
    std::string name_;
    std::vector<ColumnDef> schema_;
    std::vector<std::vector<Value>> columns_;
    std::size_t num_rows_ = 0;
    /** Lazy feature cache; empty() means not materialized. */
    mutable RowBlock features_;
    /** Paged backing; null for in-memory tables. */
    std::shared_ptr<storage::PagedTable> store_;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_TABLE_H
