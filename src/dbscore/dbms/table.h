/**
 * @file
 * Columnar table storage for the mini-DBMS.
 */
#ifndef DBSCORE_DBMS_TABLE_H
#define DBSCORE_DBMS_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

#include "dbscore/data/row_block.h"
#include "dbscore/dbms/value.h"

namespace dbscore {

/** One column's name and type. */
struct ColumnDef {
    std::string name;
    ColumnType type;
};

/** A columnar table. */
class Table {
 public:
    Table() = default;
    Table(std::string name, std::vector<ColumnDef> schema);

    const std::string& name() const { return name_; }
    const std::vector<ColumnDef>& schema() const { return schema_; }
    std::size_t NumColumns() const { return schema_.size(); }
    std::size_t NumRows() const { return num_rows_; }

    /**
     * Index of column @p column_name (case-insensitive).
     * @throws NotFound if absent
     */
    std::size_t ColumnIndex(const std::string& column_name) const;

    /**
     * Appends one row. Int literals coerce into FLOAT columns.
     * @throws InvalidArgument on arity or type mismatch
     */
    void AppendRow(std::vector<Value> row);

    const Value& At(std::size_t row, std::size_t col) const;

    /** Whole column (for scans). */
    const std::vector<Value>& Column(std::size_t col) const;

    /** Approximate wire size of @p row in bytes. */
    std::uint64_t RowWireBytes(std::size_t row) const;

    /** Index of the feature-excluded "label" column, or NumColumns(). */
    std::size_t LabelColumnIndex() const;

    /** Columns that materialize as features (all but "label"). */
    std::size_t NumFeatureColumns() const;

    /**
     * Row-major float32 materialization of every non-label column —
     * the data plane's single copy out of DBMS storage. Built lazily,
     * cached until the next AppendRow, and counted against
     * RowBlock::CopyStats. Views taken from the returned block share
     * its refcounted storage and stay valid across cache invalidation
     * (the cache drops its reference; it never mutates the old block).
     */
    const RowBlock& MaterializeFeatures() const;

 private:
    std::string name_;
    std::vector<ColumnDef> schema_;
    std::vector<std::vector<Value>> columns_;
    std::size_t num_rows_ = 0;
    /** Lazy feature cache; empty() means not materialized. */
    mutable RowBlock features_;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_TABLE_H
