/**
 * @file
 * Database catalog: named tables plus helpers for storing datasets and
 * serialized models the way the paper's pipeline does.
 */
#ifndef DBSCORE_DBMS_DATABASE_H
#define DBSCORE_DBMS_DATABASE_H

#include <map>
#include <string>
#include <vector>

#include "dbscore/data/dataset.h"
#include "dbscore/dbms/table.h"
#include "dbscore/forest/onnx_like.h"

namespace dbscore {

/** A named collection of tables. */
class Database {
 public:
    /** @throws InvalidArgument if the table already exists */
    Table& CreateTable(const std::string& name,
                       std::vector<ColumnDef> schema);

    bool HasTable(const std::string& name) const;

    /** @throws NotFound */
    Table& GetTable(const std::string& name);
    const Table& GetTable(const std::string& name) const;

    /** @throws NotFound */
    void DropTable(const std::string& name);

    std::vector<std::string> TableNames() const;

    /**
     * Stores @p dataset as a table with one FLOAT column per feature
     * plus a FLOAT "label" column — how the paper keeps scoring data in
     * the DBMS.
     */
    Table& StoreDataset(const std::string& table_name,
                        const Dataset& dataset);

    /**
     * Stores @p dataset out of core: creates a page file at
     * @p page_path, bulk-loads every row through the buffer pool, and
     * registers the table in paged mode (same schema shape as
     * StoreDataset). The data is committed (ordered commit protocol,
     * DESIGN.md §16) before returning; pass
     * options.sync_mode = SyncMode::kFsync for a real device barrier.
     */
    Table& StoreDatasetPaged(const std::string& table_name,
                             const Dataset& dataset,
                             const std::string& page_path,
                             const storage::StorageOptions& options = {});

    /**
     * Registers an existing page file (written by StoreDatasetPaged /
     * BulkLoadCsvPaged, possibly in an earlier process) as a paged
     * table. The attach is recovery-aware: Open() rolls a torn commit
     * back to the last committed generation and reclaims orphan pages
     * (check the table's store()->last_recovery() for what happened),
     * so every consumer — engines, planner, serve, fleet — sees a
     * consistent table even after a crash. options.scrub_on_attach
     * additionally checksum-verifies every reachable page up front.
     */
    Table& AttachPagedTable(const std::string& table_name,
                            const std::string& page_path,
                            const storage::StorageOptions& options = {});

    /**
     * Streams @p csv_path (header row required; a column named
     * "label", if present, becomes the label column) directly into a
     * fresh page file at @p page_path — one record in memory at a
     * time, so the CSV may exceed RAM — and registers the paged table.
     * @throws ParseError on malformed CSV or non-numeric cells
     */
    Table& BulkLoadCsvPaged(const std::string& table_name,
                            const std::string& csv_path,
                            const std::string& page_path,
                            const storage::StorageOptions& options = {});

    /** Reads a dataset table back into a Dataset (features + label). */
    Dataset LoadDataset(const std::string& table_name, Task task,
                        int num_classes) const;

    /**
     * Inserts a serialized model into the "models" table (created on
     * first use: name VARCHAR, model VARBINARY), the paper's
     * models-live-in-the-database arrangement.
     */
    void StoreModel(const std::string& model_name,
                    const TreeEnsemble& ensemble);

    /** Fetches and deserializes a model. @throws NotFound */
    TreeEnsemble LoadModel(const std::string& model_name) const;

    /** Serialized size of a stored model blob. @throws NotFound */
    std::uint64_t ModelBlobBytes(const std::string& model_name) const;

    /**
     * Monotonic counter bumped by every catalog mutation (table
     * create/drop, model store, paged attach). Cached query plans
     * carry the version they compiled against and are invalidated when
     * it moves (plan/plan_cache.h).
     */
    std::uint64_t catalog_version() const { return catalog_version_; }

    /** Records a catalog mutation (also for out-of-band changes, e.g.
     * INSERTs into the models table through the engine). */
    void NoteCatalogChange() { ++catalog_version_; }

    /**
     * Creates (or returns) the paged "model_meta" side table and
     * starts mirroring per-model metadata into it: one row per
     * StoreModel call with columns model_id, blob_bytes, num_trees,
     * num_nodes, num_features, num_classes, task. Routing model
     * metadata through PagedTable means sp_storage_stats covers the
     * model catalog like any other paged table. Blobs themselves stay
     * in the in-memory "models" table (page cells are float32).
     */
    Table& EnableModelMetaPaging(const std::string& page_path,
                                 const storage::StorageOptions& options = {});

 private:
    /** Case-insensitive name key. */
    static std::string Key(const std::string& name);

    /** Inserts a paged store as a catalog table. */
    Table& RegisterPaged(const std::string& name,
                         std::shared_ptr<storage::PagedTable> store);

    const std::vector<std::uint8_t>&
    ModelBlob(const std::string& model_name) const;

    std::map<std::string, Table> tables_;
    std::uint64_t catalog_version_ = 0;
    /** Next model_id for the paged model_meta mirror. */
    std::uint64_t next_model_id_ = 0;
    /** True once EnableModelMetaPaging has been called. */
    bool model_meta_paged_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_DATABASE_H
