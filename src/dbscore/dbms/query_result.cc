#include "dbscore/dbms/query_result.h"

#include <sstream>
#include <utility>

#include "dbscore/common/table_printer.h"

namespace dbscore {

std::string
QueryResult::ToString() const
{
    std::ostringstream os;
    if (!columns.empty()) {
        TablePrinter table(columns);
        for (const auto& row : rows) {
            std::vector<std::string> cells;
            cells.reserve(row.size());
            for (const auto& value : row) {
                cells.push_back(ValueToString(value));
            }
            table.AddRow(std::move(cells));
        }
        table.Print(os);
    }
    if (!message.empty()) {
        os << message << "\n";
    }
    return os.str();
}

}  // namespace dbscore
