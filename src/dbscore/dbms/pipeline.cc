#include "dbscore/dbms/pipeline.h"

#include <algorithm>

#include "dbscore/common/error.h"
#include "dbscore/core/scheduler.h"
#include "dbscore/forest/model_stats.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

using trace::StageKind;

SimTime
PipelineStageTimes::Total() const
{
    return NonScoring() + scoring.Total();
}

SimTime
PipelineStageTimes::NonScoring() const
{
    return python_invocation + data_transfer + model_preprocessing +
           data_preprocessing;
}

ScoringPipeline::ScoringPipeline(Database& db, const HardwareProfile& profile,
                                 const ExternalRuntimeParams& runtime_params)
    : db_(db), profile_(profile), runtime_(runtime_params)
{
}

PipelineRunResult
ScoringPipeline::RunScoringQuery(const std::string& model_name,
                                 const std::string& data_table,
                                 BackendKind backend,
                                 std::optional<std::size_t> max_rows)
{
    {
        const Table& early = db_.GetTable(data_table);
        if (early.paged()) {
            return RunPagedScoringQuery(model_name, early, backend,
                                        max_rows);
        }
    }

    PipelineRunResult result;
    PipelineStageTimes& stages = result.stages;

    // Root span: every simulated stage below parents to it, so one
    // query = one trace. The simulated cursor restarts at t=0 per
    // query; queries are self-relative on the modeled timeline.
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    trace::ScopedSpan root(StageKind::kQuery, "scoring-query");
    trace::SimClock::Set(SimTime());

    // Stage 1: launch (or reuse) the external scripting process.
    stages.python_invocation = runtime_.InvokeProcess();
    tracer.EmitStage(StageKind::kInvocation, "python-invocation",
                     stages.python_invocation);

    // Stage 2: the DBMS materializes the feature block once (the data
    // plane's only copy out of columnar storage) and marshals a view of
    // it. The simulated channel cost is charged from the view's actual
    // float32 payload size; the host passes the view through by
    // reference without copying.
    const Table& table = db_.GetTable(data_table);
    const std::size_t num_rows =
        std::min<std::size_t>(table.NumRows(),
                              max_rows.value_or(table.NumRows()));
    if (num_rows == 0) {
        throw InvalidArgument("pipeline: no rows to score in '" +
                              data_table + "'");
    }
    const RowBlock& block = table.MaterializeFeatures();
    const RowView features = block.View(0, num_rows);
    const std::size_t num_features = table.NumFeatureColumns();
    const SimTime transfer_in = runtime_.TransferToProcess(features);
    stages.data_transfer += transfer_in;
    tracer.EmitStage(StageKind::kMarshal, "rows-to-process", transfer_in,
                     {{"rows", static_cast<double>(num_rows)},
                      {"cols", static_cast<double>(num_features)}});

    // Stage 3: the script deserializes the model (functionally real).
    const std::uint64_t blob_bytes = db_.ModelBlobBytes(model_name);
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    stages.model_preprocessing = runtime_.ModelPreprocessing(blob_bytes);
    tracer.EmitStage(StageKind::kModelPreproc, "model-deserialize",
                     stages.model_preprocessing,
                     {{"blob_bytes", static_cast<double>(blob_bytes)}});

    // Stage 4: feature extraction into the scoring matrix. The block
    // already excludes the label column; only the shape check and the
    // simulated preparation cost remain.
    if (num_features != ensemble.num_features) {
        throw InvalidArgument("pipeline: table width does not match model");
    }
    stages.data_preprocessing =
        runtime_.DataPreprocessing(num_rows, num_features);
    tracer.EmitStage(StageKind::kDataPreproc, "feature-matrix-prep",
                     stages.data_preprocessing);

    // Stage 5: score on the chosen backend. A slice of the live view
    // serves as the path-length probe — no probe dataset is copied.
    RandomForest forest = ensemble.ToForest();
    ModelStats stats = ComputeModelStats(
        forest, features.Slice(0, std::min<std::size_t>(num_rows, 256)));
    auto engine = CreateLoadedEngine(backend, profile_, ensemble, stats);
    if (engine == nullptr) {
        throw CapacityError(std::string("pipeline: backend ") +
                            BackendName(backend) +
                            " cannot host this model");
    }
    ScoreResult score = [&] {
        // Grouping span: the engine's TraceOffloadStages emits the
        // Fig 6/7 components as children and advances the SimClock;
        // the span itself records the whole offload so the export
        // shows scoring-total over its parts.
        trace::ScopedSpan offload(StageKind::kOffload, BackendName(backend));
        const SimTime sim_start = trace::SimClock::Now();
        ScoreResult r = engine->Score(features);
        offload.SetSim(sim_start, r.breakdown.Total());
        offload.AddAttr("rows", static_cast<double>(num_rows));
        return r;
    }();
    stages.scoring = score.breakdown;

    // Stage 6: float32 predictions copied back into the DBMS.
    const SimTime transfer_out = runtime_.TransferFromProcess(
        static_cast<std::uint64_t>(num_rows) * sizeof(float));
    stages.data_transfer += transfer_out;
    tracer.EmitStage(StageKind::kMarshal, "results-to-dbms", transfer_out);
    root.SetSim(SimTime(), stages.Total());
    root.AddAttr("rows", static_cast<double>(num_rows));

    result.predictions = std::move(score.predictions);
    return result;
}

PipelineRunResult
ScoringPipeline::RunPagedScoringQuery(const std::string& model_name,
                                      const Table& table,
                                      BackendKind backend,
                                      std::optional<std::size_t> max_rows)
{
    PipelineRunResult result;
    PipelineStageTimes& stages = result.stages;

    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    trace::ScopedSpan root(StageKind::kQuery, "scoring-query");
    trace::SimClock::Set(SimTime());

    // Stage 1: launch (or reuse) the external scripting process.
    stages.python_invocation = runtime_.InvokeProcess();
    tracer.EmitStage(StageKind::kInvocation, "python-invocation",
                     stages.python_invocation);

    // The stream snapshots the page list up front; each chunk below is
    // a pinned zero-copy view over one buffer-pool frame, so memory
    // use is bounded by the pool no matter how large the table is.
    storage::FeatureStream stream = table.ScanFeatures();
    const std::size_t num_rows =
        std::min<std::size_t>(stream.total_rows(),
                              max_rows.value_or(stream.total_rows()));
    if (num_rows == 0) {
        throw InvalidArgument("pipeline: no rows to score in '" +
                              table.name() + "'");
    }

    // Stages 3+4 (model + feature-matrix preparation) happen once,
    // before the chunk loop, exactly like the in-memory path.
    const std::uint64_t blob_bytes = db_.ModelBlobBytes(model_name);
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    stages.model_preprocessing = runtime_.ModelPreprocessing(blob_bytes);
    tracer.EmitStage(StageKind::kModelPreproc, "model-deserialize",
                     stages.model_preprocessing,
                     {{"blob_bytes", static_cast<double>(blob_bytes)}});

    const std::size_t num_features = table.NumFeatureColumns();
    if (num_features != ensemble.num_features) {
        throw InvalidArgument("pipeline: table width does not match model");
    }
    stages.data_preprocessing =
        runtime_.DataPreprocessing(num_rows, num_features);
    tracer.EmitStage(StageKind::kDataPreproc, "feature-matrix-prep",
                     stages.data_preprocessing);

    // Stage 2+5, chunk-wise: marshal each pinned chunk to the process
    // and score it, accumulating the same stage totals. The engine is
    // created on the first chunk (the path-length probe needs live
    // rows) and reused for the rest of the stream.
    RandomForest forest = ensemble.ToForest();
    std::unique_ptr<ScoringEngine> engine;
    result.predictions.reserve(num_rows);
    std::size_t scored = 0;
    storage::StreamChunk chunk;
    while (scored < num_rows && stream.Next(chunk)) {
        RowView view = chunk.view;
        if (scored + view.rows() > num_rows) {
            view = view.Slice(0, num_rows - scored);
        }
        const SimTime transfer_in = runtime_.TransferToProcess(view);
        stages.data_transfer += transfer_in;
        tracer.EmitStage(StageKind::kMarshal, "rows-to-process",
                         transfer_in,
                         {{"rows", static_cast<double>(view.rows())},
                          {"page_id",
                           static_cast<double>(chunk.page_id)}});
        if (engine == nullptr) {
            ModelStats stats = ComputeModelStats(
                forest,
                view.Slice(0, std::min<std::size_t>(view.rows(), 256)));
            engine = CreateLoadedEngine(backend, profile_, ensemble,
                                        stats);
            if (engine == nullptr) {
                throw CapacityError(std::string("pipeline: backend ") +
                                    BackendName(backend) +
                                    " cannot host this model");
            }
        }
        trace::ScopedSpan offload(StageKind::kOffload,
                                  BackendName(backend));
        const SimTime sim_start = trace::SimClock::Now();
        ScoreResult score = engine->Score(view);
        offload.SetSim(sim_start, score.breakdown.Total());
        offload.AddAttr("rows", static_cast<double>(view.rows()));
        stages.scoring += score.breakdown;
        result.predictions.insert(result.predictions.end(),
                                  score.predictions.begin(),
                                  score.predictions.end());
        scored += view.rows();
    }

    // Stage 6: float32 predictions copied back into the DBMS.
    const SimTime transfer_out = runtime_.TransferFromProcess(
        static_cast<std::uint64_t>(scored) * sizeof(float));
    stages.data_transfer += transfer_out;
    tracer.EmitStage(StageKind::kMarshal, "results-to-dbms", transfer_out);
    root.SetSim(SimTime(), stages.Total());
    root.AddAttr("rows", static_cast<double>(scored));
    return result;
}

PipelineStageTimes
ScoringPipeline::EstimateQuery(const std::string& model_name,
                               std::size_t num_rows, BackendKind backend)
{
    PipelineStageTimes stages;

    // Same trace shape as the run path, with the same stage order, so
    // trace-derived totals are comparable between the two.
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    trace::ScopedSpan root(StageKind::kQuery, "estimate-query");
    trace::SimClock::Set(SimTime());

    stages.python_invocation = runtime_.InvokeProcess();
    tracer.EmitStage(StageKind::kInvocation, "python-invocation",
                     stages.python_invocation);

    // Wire format mirrors the run path: a float32 feature view out,
    // float32 predictions back.
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    const std::uint64_t wire_bytes =
        static_cast<std::uint64_t>(num_rows) * ensemble.num_features *
        sizeof(float);
    const SimTime transfer_in = runtime_.TransferToProcess(wire_bytes);
    stages.data_transfer += transfer_in;
    tracer.EmitStage(StageKind::kMarshal, "rows-to-process", transfer_in,
                     {{"rows", static_cast<double>(num_rows)}});

    const std::uint64_t blob_bytes = db_.ModelBlobBytes(model_name);
    stages.model_preprocessing = runtime_.ModelPreprocessing(blob_bytes);
    tracer.EmitStage(StageKind::kModelPreproc, "model-deserialize",
                     stages.model_preprocessing);

    stages.data_preprocessing =
        runtime_.DataPreprocessing(num_rows, ensemble.num_features);
    tracer.EmitStage(StageKind::kDataPreproc, "feature-matrix-prep",
                     stages.data_preprocessing);

    RandomForest forest = ensemble.ToForest();
    ModelStats stats = ComputeModelStats(forest, nullptr);
    auto engine = CreateLoadedEngine(backend, profile_, ensemble, stats);
    if (engine == nullptr) {
        throw CapacityError(std::string("pipeline: backend ") +
                            BackendName(backend) +
                            " cannot host this model");
    }
    stages.scoring = engine->Estimate(num_rows);
    {
        // Estimate never enters the engines' functional path, so the
        // pipeline tags the offload components itself.
        trace::ScopedSpan offload(StageKind::kOffload, BackendName(backend));
        offload.SetSim(trace::SimClock::Now(), stages.scoring.Total());
        TraceOffloadStages(stages.scoring);
    }

    const SimTime transfer_out = runtime_.TransferFromProcess(
        static_cast<std::uint64_t>(num_rows) * sizeof(float));
    stages.data_transfer += transfer_out;
    tracer.EmitStage(StageKind::kMarshal, "results-to-dbms", transfer_out);
    root.SetSim(SimTime(), stages.Total());
    return stages;
}

BackendKind
ScoringPipeline::AdviseBackend(const std::string& model_name,
                               std::size_t num_rows)
{
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    RandomForest forest = ensemble.ToForest();
    ModelStats stats = ComputeModelStats(forest, nullptr);
    OffloadScheduler scheduler(profile_, ensemble, stats);
    return scheduler.Choose(num_rows).best;
}

}  // namespace dbscore
