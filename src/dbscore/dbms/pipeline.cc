#include "dbscore/dbms/pipeline.h"

#include <algorithm>

#include "dbscore/common/error.h"
#include "dbscore/core/scheduler.h"
#include "dbscore/forest/model_stats.h"

namespace dbscore {

SimTime
PipelineStageTimes::Total() const
{
    return NonScoring() + scoring.Total();
}

SimTime
PipelineStageTimes::NonScoring() const
{
    return python_invocation + data_transfer + model_preprocessing +
           data_preprocessing;
}

ScoringPipeline::ScoringPipeline(Database& db, const HardwareProfile& profile,
                                 const ExternalRuntimeParams& runtime_params)
    : db_(db), profile_(profile), runtime_(runtime_params)
{
}

PipelineRunResult
ScoringPipeline::RunScoringQuery(const std::string& model_name,
                                 const std::string& data_table,
                                 BackendKind backend,
                                 std::optional<std::size_t> max_rows)
{
    PipelineRunResult result;
    PipelineStageTimes& stages = result.stages;

    // Stage 1: launch (or reuse) the external scripting process.
    stages.python_invocation = runtime_.InvokeProcess();

    // Stage 2: the DBMS copies the selected rows into the process.
    const Table& table = db_.GetTable(data_table);
    const std::size_t num_rows =
        std::min<std::size_t>(table.NumRows(),
                              max_rows.value_or(table.NumRows()));
    if (num_rows == 0) {
        throw InvalidArgument("pipeline: no rows to score in '" +
                              data_table + "'");
    }
    std::uint64_t wire_bytes = 0;
    for (std::size_t r = 0; r < num_rows; ++r) {
        wire_bytes += table.RowWireBytes(r);
    }
    stages.data_transfer += runtime_.TransferToProcess(wire_bytes);

    // Stage 3: the script deserializes the model (functionally real).
    const std::uint64_t blob_bytes = db_.ModelBlobBytes(model_name);
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    stages.model_preprocessing = runtime_.ModelPreprocessing(blob_bytes);

    // Stage 4: feature extraction into the scoring matrix. The label
    // column (if present) is excluded from the features.
    std::size_t label_col = table.NumColumns();
    for (std::size_t c = 0; c < table.NumColumns(); ++c) {
        if (table.schema()[c].name == "label") {
            label_col = c;
        }
    }
    const std::size_t num_features =
        table.NumColumns() - (label_col < table.NumColumns() ? 1 : 0);
    if (num_features != ensemble.num_features) {
        throw InvalidArgument("pipeline: table width does not match model");
    }
    std::vector<float> matrix(num_rows * num_features);
    for (std::size_t r = 0; r < num_rows; ++r) {
        std::size_t out = 0;
        for (std::size_t c = 0; c < table.NumColumns(); ++c) {
            if (c == label_col) {
                continue;
            }
            matrix[r * num_features + out++] =
                static_cast<float>(ValueAsDouble(table.At(r, c)));
        }
    }
    stages.data_preprocessing =
        runtime_.DataPreprocessing(num_rows, num_features);

    // Stage 5: score on the chosen backend.
    RandomForest forest = ensemble.ToForest();
    Dataset probe("probe", ensemble.task,
                  ensemble.num_features,
                  ensemble.task == Task::kClassification
                      ? ensemble.num_classes : 0);
    // Use a slice of the actual rows as the path-length probe.
    {
        const std::size_t probe_rows = std::min<std::size_t>(num_rows, 256);
        std::vector<float> values(
            matrix.begin(),
            matrix.begin() +
                static_cast<std::ptrdiff_t>(probe_rows * num_features));
        probe.Assign(std::move(values),
                     std::vector<float>(probe_rows, 0.0f));
    }
    ModelStats stats = ComputeModelStats(forest, &probe);
    auto engine = CreateLoadedEngine(backend, profile_, ensemble, stats);
    if (engine == nullptr) {
        throw CapacityError(std::string("pipeline: backend ") +
                            BackendName(backend) +
                            " cannot host this model");
    }
    ScoreResult score = engine->Score(matrix.data(), num_rows, num_features);
    stages.scoring = score.breakdown;

    // Stage 6: predictions copied back into the DBMS.
    stages.data_transfer += runtime_.TransferFromProcess(
        static_cast<std::uint64_t>(num_rows) * 8);

    result.predictions = std::move(score.predictions);
    return result;
}

PipelineStageTimes
ScoringPipeline::EstimateQuery(const std::string& model_name,
                               std::size_t num_rows, BackendKind backend)
{
    PipelineStageTimes stages;
    stages.python_invocation = runtime_.InvokeProcess();

    const std::uint64_t blob_bytes = db_.ModelBlobBytes(model_name);
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    stages.model_preprocessing = runtime_.ModelPreprocessing(blob_bytes);

    // Wire format: 8 bytes per numeric cell, features + label column.
    const std::uint64_t wire_bytes =
        static_cast<std::uint64_t>(num_rows) *
        (ensemble.num_features + 1) * 8;
    stages.data_transfer = runtime_.TransferToProcess(wire_bytes) +
                           runtime_.TransferFromProcess(
                               static_cast<std::uint64_t>(num_rows) * 8);
    stages.data_preprocessing =
        runtime_.DataPreprocessing(num_rows, ensemble.num_features);

    RandomForest forest = ensemble.ToForest();
    ModelStats stats = ComputeModelStats(forest, nullptr);
    auto engine = CreateLoadedEngine(backend, profile_, ensemble, stats);
    if (engine == nullptr) {
        throw CapacityError(std::string("pipeline: backend ") +
                            BackendName(backend) +
                            " cannot host this model");
    }
    stages.scoring = engine->Estimate(num_rows);
    return stages;
}

BackendKind
ScoringPipeline::AdviseBackend(const std::string& model_name,
                               std::size_t num_rows)
{
    TreeEnsemble ensemble = db_.LoadModel(model_name);
    RandomForest forest = ensemble.ToForest();
    ModelStats stats = ComputeModelStats(forest, nullptr);
    OffloadScheduler scheduler(profile_, ensemble, stats);
    return scheduler.Choose(num_rows).best;
}

}  // namespace dbscore
