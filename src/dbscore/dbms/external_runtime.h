/**
 * @file
 * The external script runtime: our stand-in for SQL Server's
 * sp_execute_external_script Python launchpad.
 *
 * The paper's Figure 11 identifies the application-pipeline overheads that
 * prior accelerator work ignored: launching the external Python process,
 * transparently copying data between the DBMS and that process, and the
 * model/data pre-processing done inside the script. This class models each
 * with explicit, perturbable costs; scripts themselves are C++ callables
 * executed in-process (the language is irrelevant — the stage costs are
 * the object of study).
 */
#ifndef DBSCORE_DBMS_EXTERNAL_RUNTIME_H
#define DBSCORE_DBMS_EXTERNAL_RUNTIME_H

#include <cstdint>

#include "dbscore/common/sim_time.h"

namespace dbscore {

/** Pipeline-overhead cost parameters. */
struct ExternalRuntimeParams {
    /** First invocation: spawn the Python process, import libraries. */
    SimTime cold_invocation = SimTime::Millis(350.0);
    /** Re-use of a pooled warm process. */
    SimTime warm_invocation = SimTime::Millis(60.0);
    /**
     * DBMS <-> external process data channel throughput. Row data is
     * serialized through a local channel, far slower than a memcpy —
     * this is the paper's "data transfer time" that dominates once
     * scoring is accelerated.
     */
    double channel_bytes_per_second = 600e6;
    /** Fixed model deserialization cost. */
    SimTime model_deser_fixed = SimTime::Millis(2.0);
    /** Model deserialization throughput (bytes/s). */
    double model_deser_bytes_per_second = 100e6;
    /** Per-feature-value cost of preparing the scoring matrix. */
    double data_preproc_ns_per_value = 8.0;
};

/** Stage-cost model of one external runtime. */
class ExternalScriptRuntime {
 public:
    explicit ExternalScriptRuntime(const ExternalRuntimeParams& params);

    const ExternalRuntimeParams& params() const { return params_; }

    /**
     * Cost of invoking the external process. The first call is cold;
     * later calls hit the warm pool until ResetPool().
     */
    SimTime InvokeProcess();

    /** True if the next invocation will be warm. */
    bool warm() const { return warm_; }

    /** Simulates recycling the process pool (next invocation is cold). */
    void ResetPool() { warm_ = false; }

    /** DBMS -> process copy of @p bytes. */
    SimTime TransferToProcess(std::uint64_t bytes) const;

    /** process -> DBMS copy of @p bytes. */
    SimTime TransferFromProcess(std::uint64_t bytes) const;

    /** Model pre-processing: deserializing a @p blob_bytes model. */
    SimTime ModelPreprocessing(std::uint64_t blob_bytes) const;

    /** Data pre-processing: preparing a rows x cols scoring matrix. */
    SimTime DataPreprocessing(std::uint64_t rows, std::uint64_t cols) const;

 private:
    ExternalRuntimeParams params_;
    bool warm_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_EXTERNAL_RUNTIME_H
