/**
 * @file
 * The external script runtime: our stand-in for SQL Server's
 * sp_execute_external_script Python launchpad.
 *
 * The paper's Figure 11 identifies the application-pipeline overheads that
 * prior accelerator work ignored: launching the external Python process,
 * transparently copying data between the DBMS and that process, and the
 * model/data pre-processing done inside the script. This class models each
 * with explicit, perturbable costs; scripts themselves are C++ callables
 * executed in-process (the language is irrelevant — the stage costs are
 * the object of study).
 */
#ifndef DBSCORE_DBMS_EXTERNAL_RUNTIME_H
#define DBSCORE_DBMS_EXTERNAL_RUNTIME_H

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "dbscore/common/sim_time.h"
#include "dbscore/data/row_block.h"

namespace dbscore {

/** Pipeline-overhead cost parameters. */
struct ExternalRuntimeParams {
    /** First invocation: spawn the Python process, import libraries. */
    SimTime cold_invocation = SimTime::Millis(350.0);
    /** Re-use of a pooled warm process. */
    SimTime warm_invocation = SimTime::Millis(60.0);
    /**
     * DBMS <-> external process data channel throughput. Row data is
     * serialized through a local channel, far slower than a memcpy —
     * this is the paper's "data transfer time" that dominates once
     * scoring is accelerated.
     */
    double channel_bytes_per_second = 600e6;
    /** Fixed model deserialization cost. */
    SimTime model_deser_fixed = SimTime::Millis(2.0);
    /** Model deserialization throughput (bytes/s). */
    double model_deser_bytes_per_second = 100e6;
    /** Per-feature-value cost of preparing the scoring matrix. */
    double data_preproc_ns_per_value = 8.0;
    /**
     * Pool-recycling hook: after this many invocations the warm process
     * pool is torn down and the next invocation pays the cold cost again
     * (SQL Server recycles pooled satellite processes under memory
     * pressure and resource-governor limits). 0 disables recycling.
     */
    std::size_t pool_recycle_every = 0;
};

/** One invocation's cost, with the warm/cold decision made explicit. */
struct InvocationCost {
    SimTime cost;
    bool cold = false;
    /**
     * The process died during this invocation (injected
     * fault::FaultSite::kExternalInvoke). The launch cost was still
     * paid but no results were produced; the pool is dead and the next
     * invocation re-pays the cold start.
     */
    bool crashed = false;
};

/**
 * Stage-cost model of one external runtime.
 *
 * Thread-safety: one instance models exactly one warm-process pool, and
 * its warm/cold invocation state is guarded by an internal mutex, so
 * concurrent Invoke()/ResetPool() calls are safe and every invocation is
 * attributed exactly once (exactly one caller observes each cold start).
 * The pure cost functions (TransferToProcess, TransferFromProcess, and
 * the preprocessing estimators) are const and stateless. Components
 * that want independent pools — e.g. one per
 * device worker in dbscore::serve — should each own their own instance.
 */
class ExternalScriptRuntime {
 public:
    explicit ExternalScriptRuntime(const ExternalRuntimeParams& params);

    const ExternalRuntimeParams& params() const { return params_; }

    /**
     * Cost of invoking the external process. The first call is cold;
     * later calls hit the warm pool until ResetPool() or until the
     * pool_recycle_every hook forces a recycle. When the fault injector
     * fires at kExternalInvoke the invocation comes back with
     * crashed = true and the pool is marked dead — the crash is a
     * return flag, not an exception, so cost-model callers that predate
     * fault injection keep summing costs unchanged.
     */
    InvocationCost Invoke();

    /** Invoke() for callers that only need the cost. */
    SimTime InvokeProcess() { return Invoke().cost; }

    /** True if the next invocation will be warm. */
    bool warm() const;

    /** Simulates recycling the process pool (next invocation is cold). */
    void ResetPool();

    /**
     * Models an out-of-band process crash: the pool is dead and the
     * next invocation re-pays the cold start. Unlike ResetPool this
     * counts as a crash in the accounting.
     */
    void CrashProcess();

    /** Total invocations served by this runtime instance. */
    std::size_t invocations() const;

    /** Invocations that paid the cold-start cost. */
    std::size_t cold_invocations() const;

    /** Invocations (plus CrashProcess calls) that killed the pool. */
    std::size_t crashes() const;

    /** DBMS -> process copy of @p bytes. */
    SimTime TransferToProcess(std::uint64_t bytes) const;

    /**
     * DBMS -> process marshal of @p view. Charges the view's actual
     * float32 payload size (rows * cols * 4); the view itself passes
     * through by reference — the host performs no copy.
     */
    SimTime TransferToProcess(const RowView& view) const;

    /** process -> DBMS copy of @p bytes. */
    SimTime TransferFromProcess(std::uint64_t bytes) const;

    /** Model pre-processing: deserializing a @p blob_bytes model. */
    SimTime ModelPreprocessing(std::uint64_t blob_bytes) const;

    /** Data pre-processing: preparing a rows x cols scoring matrix. */
    SimTime DataPreprocessing(std::uint64_t rows, std::uint64_t cols) const;

 private:
    ExternalRuntimeParams params_;
    mutable std::mutex mutex_;
    bool warm_ = false;
    std::size_t invocations_ = 0;
    std::size_t cold_invocations_ = 0;
    std::size_t crashes_ = 0;
    /** Invocations since the pool last went cold (recycling hook). */
    std::size_t since_recycle_ = 0;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_EXTERNAL_RUNTIME_H
