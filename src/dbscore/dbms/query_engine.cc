#include "dbscore/dbms/query_engine.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/common/table_printer.h"
#include "dbscore/fault/fault.h"
#include "dbscore/trace/exporters.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

std::string
GetStringParam(const ExecStatement& stmt, const std::string& name)
{
    auto it = stmt.params.find(ToLower(name));
    if (it == stmt.params.end() ||
        TypeOf(it->second) != ColumnType::kString) {
        throw InvalidArgument("exec " + stmt.procedure +
                              ": missing string parameter @" + name);
    }
    return std::get<std::string>(it->second);
}

std::optional<std::int64_t>
GetIntParam(const ExecStatement& stmt, const std::string& name)
{
    auto it = stmt.params.find(ToLower(name));
    if (it == stmt.params.end()) {
        return std::nullopt;
    }
    if (TypeOf(it->second) != ColumnType::kInt64) {
        throw InvalidArgument("exec " + stmt.procedure + ": @" + name +
                              " must be an integer");
    }
    return std::get<std::int64_t>(it->second);
}

std::optional<double>
GetDoubleParam(const ExecStatement& stmt, const std::string& name)
{
    auto it = stmt.params.find(ToLower(name));
    if (it == stmt.params.end()) {
        return std::nullopt;
    }
    if (TypeOf(it->second) == ColumnType::kInt64) {
        return static_cast<double>(std::get<std::int64_t>(it->second));
    }
    if (TypeOf(it->second) != ColumnType::kDouble) {
        throw InvalidArgument("exec " + stmt.procedure + ": @" + name +
                              " must be numeric");
    }
    return std::get<double>(it->second);
}

BackendKind
ParseBackendName(const std::string& name)
{
    for (BackendKind kind :
         {BackendKind::kCpuSklearn, BackendKind::kCpuOnnx,
          BackendKind::kCpuOnnxMt, BackendKind::kGpuHummingbird,
          BackendKind::kGpuRapids, BackendKind::kFpga,
          BackendKind::kFpgaHybrid}) {
        if (EqualsIgnoreCase(name, BackendName(kind))) {
            return kind;
        }
    }
    // Friendly aliases.
    if (EqualsIgnoreCase(name, "cpu")) {
        return BackendKind::kCpuSklearn;
    }
    if (EqualsIgnoreCase(name, "gpu")) {
        return BackendKind::kGpuHummingbird;
    }
    throw InvalidArgument("unknown backend '" + name + "'");
}

namespace {

/** The paper's Figure-3 analog: score a stored model over a table. */
QueryResult
SpScoreModel(QueryEngine& engine, const ExecStatement& stmt)
{
    const std::string model = GetStringParam(stmt, "model");
    const std::string data = GetStringParam(stmt, "data");
    std::optional<std::size_t> max_rows;
    if (auto top = GetIntParam(stmt, "top"); top.has_value()) {
        if (*top <= 0) {
            throw InvalidArgument("sp_score_model: @top must be positive");
        }
        max_rows = static_cast<std::size_t>(*top);
    }

    BackendKind backend = BackendKind::kCpuSklearn;
    if (stmt.params.count("backend") > 0) {
        const std::string name = GetStringParam(stmt, "backend");
        if (EqualsIgnoreCase(name, "auto")) {
            // The paper's dynamic offloading decision, per query.
            std::size_t rows = max_rows.value_or(
                engine.db().GetTable(data).NumRows());
            backend = engine.pipeline().AdviseBackend(model, rows);
        } else {
            backend = ParseBackendName(name);
        }
    }

    PipelineRunResult run =
        engine.pipeline().RunScoringQuery(model, data, backend, max_rows);

    QueryResult result;
    result.columns = {"row_id", "prediction"};
    result.rows.reserve(run.predictions.size());
    for (std::size_t i = 0; i < run.predictions.size(); ++i) {
        result.rows.push_back({static_cast<std::int64_t>(i),
                               static_cast<double>(run.predictions[i])});
    }
    result.modeled_time = run.stages.Total();
    result.pipeline_stages = run.stages;
    result.message = StrFormat(
        "%zu rows scored on %s in %s (modeled)", run.predictions.size(),
        BackendName(backend), run.stages.Total().ToString().c_str());
    return result;
}

/**
 * Surfaces the trace subsystem at the SQL layer: one row per stage
 * with counts, simulated totals, and tail percentiles. Optional
 * @file='path' also writes the full Chrome trace_event JSON;
 * @clear=1 resets the collector after reporting.
 */
QueryResult
SpTraceDump(QueryEngine& engine, const ExecStatement& stmt)
{
    (void)engine;
    trace::TraceCollector& tracer = trace::TraceCollector::Get();

    std::string exported;
    if (stmt.params.count("file") > 0) {
        const std::string path = GetStringParam(stmt, "file");
        std::ofstream out(path);
        if (!out) {
            throw InvalidArgument("sp_trace_dump: cannot write '" + path +
                                  "'");
        }
        trace::WriteChromeTrace(out, tracer.Spans(), tracer.TotalDropped());
        exported = "; chrome trace written to " + path;
    }

    trace::TraceSummary summary = tracer.Summary();
    QueryResult result;
    result.columns = {"stage",      "paper_component", "count",
                      "sim_total_ms", "sim_p50_us",    "sim_p95_us",
                      "sim_p99_us", "wall_total_ms"};
    for (const trace::StageSummary& s : summary.stages) {
        result.rows.push_back({
            std::string(trace::StageName(s.stage)),
            std::string(trace::StagePaperComponent(s.stage)),
            static_cast<std::int64_t>(s.count),
            s.sim_total.millis(),
            s.sim_p50_us,
            s.sim_p95_us,
            s.sim_p99_us,
            s.wall_total_us * 1e-3,
        });
    }
    result.message = StrFormat(
        "%llu span(s) recorded, %llu dropped%s",
        static_cast<unsigned long long>(summary.spans_recorded),
        static_cast<unsigned long long>(summary.spans_dropped),
        exported.c_str());

    if (GetIntParam(stmt, "clear").value_or(0) != 0) {
        tracer.Clear();
    }
    return result;
}

/**
 * Operator console for dbscore::fault. Forms:
 *   EXEC sp_fault_inject                          -- report plan + stats
 *   EXEC sp_fault_inject @clear=1                 -- remove the plan
 *   EXEC sp_fault_inject @repair='fpga-setup'     -- un-stick one site
 *   EXEC sp_fault_inject @site='pcie-dma', @probability=0.1
 *        [, @every_nth=N] [, @sticky=1] [, @seed=S]
 * Site rules merge into the currently installed plan (installing one
 * if none), so a campaign is built up one statement at a time.
 */
QueryResult
SpFaultInject(QueryEngine& engine, const ExecStatement& stmt)
{
    (void)engine;
    fault::FaultInjector& injector = fault::FaultInjector::Get();

    std::string action;
    if (GetIntParam(stmt, "clear").value_or(0) != 0) {
        injector.Clear();
        action = "fault plan cleared";
    } else if (stmt.params.count("repair") > 0) {
        const std::string name = GetStringParam(stmt, "repair");
        auto site = fault::ParseFaultSite(name);
        if (!site.has_value()) {
            throw InvalidArgument("sp_fault_inject: unknown site '" +
                                  name + "'");
        }
        injector.Repair(*site);
        action = StrFormat("site %s repaired",
                           fault::FaultSiteName(*site));
    } else if (stmt.params.count("site") > 0) {
        const std::string name = GetStringParam(stmt, "site");
        auto site = fault::ParseFaultSite(name);
        if (!site.has_value()) {
            throw InvalidArgument("sp_fault_inject: unknown site '" +
                                  name + "'");
        }
        fault::FaultPlan plan =
            injector.plan().value_or(fault::FaultPlan{});
        if (auto seed = GetIntParam(stmt, "seed"); seed.has_value()) {
            plan.seed = static_cast<std::uint64_t>(*seed);
        }
        fault::SiteTrigger& trigger = plan.At(*site);
        if (auto p = GetDoubleParam(stmt, "probability");
            p.has_value()) {
            if (*p < 0.0 || *p > 1.0) {
                throw InvalidArgument(
                    "sp_fault_inject: @probability must be in [0, 1]");
            }
            trigger.probability = *p;
        }
        if (auto n = GetIntParam(stmt, "every_nth"); n.has_value()) {
            if (*n < 0) {
                throw InvalidArgument(
                    "sp_fault_inject: @every_nth must be >= 0");
            }
            trigger.every_nth = static_cast<std::uint64_t>(*n);
        }
        trigger.sticky = GetIntParam(stmt, "sticky")
                             .value_or(trigger.sticky ? 1 : 0) != 0;
        injector.Install(plan);
        action = StrFormat("site %s armed (plan reinstalled, seed %llu)",
                           fault::FaultSiteName(*site),
                           static_cast<unsigned long long>(plan.seed));
    }

    const fault::FaultPlan plan =
        injector.plan().value_or(fault::FaultPlan{});
    const auto stats = injector.Stats();
    QueryResult result;
    result.columns = {"site", "probability", "every_nth", "sticky",
                      "ops",  "injected",    "stuck"};
    for (int s = 0; s < fault::kNumFaultSites; ++s) {
        const fault::SiteTrigger& t = plan.sites[s];
        result.rows.push_back(
            {std::string(fault::FaultSiteName(
                 static_cast<fault::FaultSite>(s))),
             t.probability, static_cast<std::int64_t>(t.every_nth),
             static_cast<std::int64_t>(t.sticky ? 1 : 0),
             static_cast<std::int64_t>(stats[s].ops),
             static_cast<std::int64_t>(stats[s].injected),
             static_cast<std::int64_t>(stats[s].stuck ? 1 : 0)});
    }
    result.message = StrFormat(
        "%sinjector %s, %llu fault(s) injected",
        action.empty() ? "" : (action + "; ").c_str(),
        injector.active() ? "active" : "inactive",
        static_cast<unsigned long long>(injector.TotalInjected()));
    return result;
}

/**
 * Storage observability console. Forms:
 *   EXEC sp_storage_stats                  -- one row per paged table
 *   EXEC sp_storage_stats @table='t'       -- just that table
 *   EXEC sp_storage_stats @reset=1         -- also zero the counters
 * Reports buffer-pool hit ratio / evictions, pager I/O, and zone-map
 * pruning per paged table; in-memory tables are skipped.
 */
QueryResult
SpStorageStats(QueryEngine& engine, const ExecStatement& stmt)
{
    std::vector<std::string> names;
    if (stmt.params.count("table") > 0) {
        names.push_back(GetStringParam(stmt, "table"));
    } else {
        names = engine.db().TableNames();
    }
    const bool reset = GetIntParam(stmt, "reset").value_or(0) != 0;

    QueryResult result;
    result.columns = {"table",       "rows",          "data_pages",
                      "pool_pages",  "hit_ratio",     "hits",
                      "misses",      "evictions",     "write_backs",
                      "flush_failures",
                      "page_reads",  "page_writes",   "read_retries",
                      "pages_scanned", "pages_pruned",
                      "generation",  "free_pages",    "recoveries",
                      "rollbacks",   "orphans_reclaimed", "pages_reused"};
    std::size_t reported = 0;
    for (const std::string& name : names) {
        const Table& table = engine.db().GetTable(name);
        if (!table.paged()) {
            continue;
        }
        const storage::StorageStats stats = table.store()->Stats();
        result.rows.push_back(
            {table.name(),
             static_cast<std::int64_t>(stats.num_rows),
             static_cast<std::int64_t>(stats.data_pages),
             static_cast<std::int64_t>(stats.pool_pages),
             stats.pool.HitRatio(),
             static_cast<std::int64_t>(stats.pool.hits),
             static_cast<std::int64_t>(stats.pool.misses),
             static_cast<std::int64_t>(stats.pool.evictions),
             static_cast<std::int64_t>(stats.pool.write_backs),
             static_cast<std::int64_t>(stats.pool.flush_failures),
             static_cast<std::int64_t>(stats.pager.reads),
             static_cast<std::int64_t>(stats.pager.writes),
             static_cast<std::int64_t>(stats.pager.read_retries),
             static_cast<std::int64_t>(stats.pages_scanned),
             static_cast<std::int64_t>(stats.pages_pruned),
             static_cast<std::int64_t>(stats.generation),
             static_cast<std::int64_t>(stats.free_pages),
             static_cast<std::int64_t>(stats.recovery.recoveries),
             static_cast<std::int64_t>(stats.recovery.rollbacks),
             static_cast<std::int64_t>(stats.recovery.orphans_reclaimed),
             static_cast<std::int64_t>(stats.recovery.pages_reused)});
        if (reset) {
            table.store()->ResetStats();
        }
        ++reported;
    }
    result.message = StrFormat(
        "%zu paged table(s)%s", reported,
        reset ? ", counters reset" : "");
    return result;
}

/**
 * EXEC sp_storage_recover [@table='t'] — runs an on-demand recovery
 * pass over the paged tables: commit pending appends, sweep for pages
 * unreachable from the committed generation, and reclaim them into
 * the persistent free list. Open() already recovers automatically, so
 * a healthy table reports zero orphans here.
 */
QueryResult
SpStorageRecover(QueryEngine& engine, const ExecStatement& stmt)
{
    std::vector<std::string> names;
    if (stmt.params.count("table") > 0) {
        names.push_back(GetStringParam(stmt, "table"));
    } else {
        names = engine.db().TableNames();
    }

    QueryResult result;
    result.columns = {"table", "generation", "rolled_back",
                      "orphans_reclaimed", "free_pages", "detail"};
    std::size_t reported = 0;
    std::uint64_t total_orphans = 0;
    for (const std::string& name : names) {
        const Table& table = engine.db().GetTable(name);
        if (!table.paged()) {
            continue;
        }
        const storage::RecoveryReport report = table.store()->Recover();
        result.rows.push_back(
            {table.name(),
             static_cast<std::int64_t>(report.generation),
             static_cast<std::int64_t>(report.rolled_back ? 1 : 0),
             static_cast<std::int64_t>(report.orphans_reclaimed),
             static_cast<std::int64_t>(report.free_pages),
             report.Describe()});
        total_orphans += report.orphans_reclaimed;
        ++reported;
    }
    result.message =
        StrFormat("%zu paged table(s) recovered, %llu orphan page(s) "
                  "reclaimed",
                  reported,
                  static_cast<unsigned long long>(total_orphans));
    return result;
}

/**
 * EXEC sp_storage_scrub [@table='t'] — online integrity pass: re-read
 * every page reachable from each paged table's committed generation
 * straight from disk and verify its checksum. Corrupt pages are
 * reported (and quarantined in the table's stats); the scrub itself
 * never throws, so one rotten table doesn't hide the state of the
 * rest.
 */
QueryResult
SpStorageScrub(QueryEngine& engine, const ExecStatement& stmt)
{
    std::vector<std::string> names;
    if (stmt.params.count("table") > 0) {
        names.push_back(GetStringParam(stmt, "table"));
    } else {
        names = engine.db().TableNames();
    }

    QueryResult result;
    result.columns = {"table", "pages_checked", "corrupt_pages",
                      "detail"};
    std::size_t reported = 0;
    std::uint64_t total_corrupt = 0;
    for (const std::string& name : names) {
        const Table& table = engine.db().GetTable(name);
        if (!table.paged()) {
            continue;
        }
        const storage::ScrubReport report = table.store()->Scrub();
        result.rows.push_back(
            {table.name(),
             static_cast<std::int64_t>(report.pages_checked),
             static_cast<std::int64_t>(report.corrupt_pages.size()),
             report.Describe()});
        total_corrupt += report.corrupt_pages.size();
        ++reported;
    }
    result.message = StrFormat(
        "%zu paged table(s) scrubbed, %llu corrupt page(s)", reported,
        static_cast<unsigned long long>(total_corrupt));
    return result;
}

/**
 * EXEC sp_explain @query='SELECT ...' — plans the statement (through
 * the cache, like a real execution would) and reports the optimized
 * logical tree, the rewrite rules that fired, the compiled physical
 * annotations (kernels, zone maps, pruning, early-exit counters), and
 * the plan-cache counters. Never executes the query.
 */
QueryResult
SpExplain(QueryEngine& engine, const ExecStatement& stmt)
{
    const std::string sql = GetStringParam(stmt, "query");
    std::shared_ptr<const plan::PhysicalPlan> plan =
        engine.planner().PlanQuery(sql);

    QueryResult result;
    result.columns = {"section", "detail"};
    std::istringstream tree(plan->logical().ToString());
    std::string line;
    while (std::getline(tree, line)) {
        result.rows.push_back({std::string("logical"), line});
    }
    for (const std::string& rule : plan->logical().applied_rules) {
        result.rows.push_back({std::string("rewrite"), rule});
    }
    for (const std::string& note : plan->ExplainPhysical()) {
        result.rows.push_back({std::string("physical"), note});
    }
    const plan::PlanCacheStats cache = engine.planner().CacheStats();
    result.rows.push_back(
        {std::string("cache"),
         StrFormat("hits=%llu misses=%llu invalidations=%llu "
                   "evictions=%llu entries=%zu",
                   static_cast<unsigned long long>(cache.hits),
                   static_cast<unsigned long long>(cache.misses),
                   static_cast<unsigned long long>(cache.invalidations),
                   static_cast<unsigned long long>(cache.evictions),
                   cache.entries)});
    result.message = StrFormat("%zu line(s)", result.rows.size());
    return result;
}

}  // namespace

QueryEngine::QueryEngine(Database& db, ScoringPipeline& pipeline)
    : db_(db), pipeline_(pipeline), planner_(db)
{
    RegisterProcedure("sp_score_model", SpScoreModel);
    RegisterProcedure("sp_trace_dump", SpTraceDump);
    RegisterProcedure("sp_fault_inject", SpFaultInject);
    RegisterProcedure("sp_storage_stats", SpStorageStats);
    RegisterProcedure("sp_storage_recover", SpStorageRecover);
    RegisterProcedure("sp_storage_scrub", SpStorageScrub);
    RegisterProcedure("sp_explain", SpExplain);
}

void
QueryEngine::RegisterProcedure(const std::string& name, StoredProcedure proc)
{
    procedures_[ToLower(name)] = std::move(proc);
}

QueryResult
QueryEngine::Execute(const std::string& sql)
{
    Statement stmt = ParseSql(sql);
    return std::visit(
        [this, &sql](const auto& s) -> QueryResult {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, CreateTableStatement>) {
                return ExecuteCreate(s);
            } else if constexpr (std::is_same_v<T, InsertStatement>) {
                return ExecuteInsert(s);
            } else if constexpr (std::is_same_v<T, SelectStatement>) {
                return planner_.ExecuteSelect(s, sql);
            } else {
                return ExecuteExec(s);
            }
        },
        stmt);
}

QueryResult
QueryEngine::ExecuteCreate(const CreateTableStatement& stmt)
{
    db_.CreateTable(stmt.table, stmt.columns);
    QueryResult result;
    result.message = "table '" + stmt.table + "' created";
    return result;
}

QueryResult
QueryEngine::ExecuteInsert(const InsertStatement& stmt)
{
    Table& table = db_.GetTable(stmt.table);
    for (const auto& row : stmt.rows) {
        table.AppendRow(row);
    }
    if (EqualsIgnoreCase(stmt.table, "models")) {
        // A re-stored model must invalidate cached plans that compiled
        // the old blob.
        db_.NoteCatalogChange();
    }
    QueryResult result;
    result.message =
        StrFormat("%zu row(s) inserted into '%s'", stmt.rows.size(),
                  stmt.table.c_str());
    return result;
}

QueryResult
QueryEngine::ExecuteExec(const ExecStatement& stmt)
{
    auto it = procedures_.find(ToLower(stmt.procedure));
    if (it == procedures_.end()) {
        throw NotFound("no stored procedure '" + stmt.procedure + "'");
    }
    return it->second(*this, stmt);
}

}  // namespace dbscore
