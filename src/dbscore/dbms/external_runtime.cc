#include "dbscore/dbms/external_runtime.h"

#include "dbscore/common/error.h"
#include "dbscore/fault/fault.h"

namespace dbscore {

ExternalScriptRuntime::ExternalScriptRuntime(
    const ExternalRuntimeParams& params)
    : params_(params)
{
    if (params.channel_bytes_per_second <= 0.0 ||
        params.model_deser_bytes_per_second <= 0.0) {
        throw InvalidArgument("external runtime: bad bandwidth");
    }
}

InvocationCost
ExternalScriptRuntime::Invoke()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (params_.pool_recycle_every > 0 &&
        since_recycle_ >= params_.pool_recycle_every) {
        warm_ = false;
        since_recycle_ = 0;
    }
    ++invocations_;
    ++since_recycle_;
    InvocationCost result;
    if (warm_) {
        result = {params_.warm_invocation, false, false};
    } else {
        warm_ = true;
        ++cold_invocations_;
        result = {params_.cold_invocation, true, false};
    }
    // The process may die *during* this invocation: the launch cost is
    // still paid, no results come back, and the pool is dead — the next
    // invocation must re-pay the cold start rather than reuse the dead
    // process's warm state.
    if (fault::FaultInjector::Get().ShouldFail(
            fault::FaultSite::kExternalInvoke)) {
        result.crashed = true;
        warm_ = false;
        since_recycle_ = 0;
        ++crashes_;
    }
    return result;
}

bool
ExternalScriptRuntime::warm() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return warm_ && !(params_.pool_recycle_every > 0 &&
                      since_recycle_ >= params_.pool_recycle_every);
}

void
ExternalScriptRuntime::ResetPool()
{
    std::lock_guard<std::mutex> lock(mutex_);
    warm_ = false;
    since_recycle_ = 0;
}

void
ExternalScriptRuntime::CrashProcess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    warm_ = false;
    since_recycle_ = 0;
    ++crashes_;
}

std::size_t
ExternalScriptRuntime::invocations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return invocations_;
}

std::size_t
ExternalScriptRuntime::cold_invocations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cold_invocations_;
}

std::size_t
ExternalScriptRuntime::crashes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return crashes_;
}

SimTime
ExternalScriptRuntime::TransferToProcess(std::uint64_t bytes) const
{
    return TransferTime(bytes, params_.channel_bytes_per_second);
}

SimTime
ExternalScriptRuntime::TransferToProcess(const RowView& view) const
{
    return TransferToProcess(view.ByteSize());
}

SimTime
ExternalScriptRuntime::TransferFromProcess(std::uint64_t bytes) const
{
    return TransferTime(bytes, params_.channel_bytes_per_second);
}

SimTime
ExternalScriptRuntime::ModelPreprocessing(std::uint64_t blob_bytes) const
{
    return params_.model_deser_fixed +
           TransferTime(blob_bytes, params_.model_deser_bytes_per_second);
}

SimTime
ExternalScriptRuntime::DataPreprocessing(std::uint64_t rows,
                                         std::uint64_t cols) const
{
    return SimTime::Nanos(params_.data_preproc_ns_per_value *
                          static_cast<double>(rows) *
                          static_cast<double>(cols));
}

}  // namespace dbscore
