#include "dbscore/dbms/database.h"

#include <cstdlib>
#include <fstream>

#include "dbscore/common/csv.h"
#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

namespace {
constexpr const char* kModelsTable = "models";
constexpr const char* kModelMetaTable = "model_meta";
}  // namespace

std::string
Database::Key(const std::string& name)
{
    return ToLower(name);
}

Table&
Database::CreateTable(const std::string& name, std::vector<ColumnDef> schema)
{
    auto [it, inserted] =
        tables_.try_emplace(Key(name), Table(name, std::move(schema)));
    if (!inserted) {
        throw InvalidArgument("database: table '" + name +
                              "' already exists");
    }
    NoteCatalogChange();
    return it->second;
}

bool
Database::HasTable(const std::string& name) const
{
    return tables_.count(Key(name)) > 0;
}

Table&
Database::GetTable(const std::string& name)
{
    auto it = tables_.find(Key(name));
    if (it == tables_.end()) {
        throw NotFound("database: no table '" + name + "'");
    }
    return it->second;
}

const Table&
Database::GetTable(const std::string& name) const
{
    auto it = tables_.find(Key(name));
    if (it == tables_.end()) {
        throw NotFound("database: no table '" + name + "'");
    }
    return it->second;
}

void
Database::DropTable(const std::string& name)
{
    if (tables_.erase(Key(name)) == 0) {
        throw NotFound("database: no table '" + name + "'");
    }
    if (EqualsIgnoreCase(name, kModelMetaTable)) {
        model_meta_paged_ = false;
    }
    NoteCatalogChange();
}

std::vector<std::string>
Database::TableNames() const
{
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [key, table] : tables_) {
        names.push_back(table.name());
    }
    return names;
}

Table&
Database::StoreDataset(const std::string& table_name, const Dataset& dataset)
{
    std::vector<ColumnDef> schema;
    schema.reserve(dataset.num_features() + 1);
    for (std::size_t f = 0; f < dataset.num_features(); ++f) {
        std::string col = f < dataset.feature_names().size()
            ? dataset.feature_names()[f]
            : "f" + std::to_string(f);
        schema.push_back({std::move(col), ColumnType::kDouble});
    }
    schema.push_back({"label", ColumnType::kDouble});

    Table& table = CreateTable(table_name, std::move(schema));
    std::vector<Value> row(dataset.num_features() + 1);
    for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
        const float* src = dataset.Row(r);
        for (std::size_t f = 0; f < dataset.num_features(); ++f) {
            row[f] = static_cast<double>(src[f]);
        }
        row[dataset.num_features()] =
            static_cast<double>(dataset.Label(r));
        table.AppendRow(row);
    }
    return table;
}

Table&
Database::RegisterPaged(const std::string& name,
                        std::shared_ptr<storage::PagedTable> store)
{
    auto [it, inserted] = tables_.try_emplace(
        Key(name), Table::FromPagedStore(name, std::move(store)));
    if (!inserted) {
        throw InvalidArgument("database: table '" + name +
                              "' already exists");
    }
    NoteCatalogChange();
    return it->second;
}

Table&
Database::StoreDatasetPaged(const std::string& table_name,
                            const Dataset& dataset,
                            const std::string& page_path,
                            const storage::StorageOptions& options)
{
    if (HasTable(table_name)) {
        throw InvalidArgument("database: table '" + table_name +
                              "' already exists");
    }
    std::vector<std::string> columns;
    columns.reserve(dataset.num_features() + 1);
    for (std::size_t f = 0; f < dataset.num_features(); ++f) {
        columns.push_back(f < dataset.feature_names().size()
                              ? dataset.feature_names()[f]
                              : "f" + std::to_string(f));
    }
    columns.push_back("label");
    auto store = storage::PagedTable::Create(
        page_path, std::move(columns), dataset.num_features(), options);
    for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
        store->AppendRow(dataset.Row(r), dataset.num_features(),
                         dataset.Label(r));
    }
    store->Flush();
    return RegisterPaged(table_name, std::move(store));
}

Table&
Database::AttachPagedTable(const std::string& table_name,
                           const std::string& page_path,
                           const storage::StorageOptions& options)
{
    return RegisterPaged(table_name,
                         storage::PagedTable::Open(page_path, options));
}

Table&
Database::BulkLoadCsvPaged(const std::string& table_name,
                           const std::string& csv_path,
                           const std::string& page_path,
                           const storage::StorageOptions& options)
{
    if (HasTable(table_name)) {
        throw InvalidArgument("database: table '" + table_name +
                              "' already exists");
    }
    std::ifstream in(csv_path, std::ios::binary);
    if (!in) {
        throw IoError("database: cannot open CSV '" + csv_path + "'");
    }
    std::shared_ptr<storage::PagedTable> store;
    std::size_t label_col = 0;
    std::vector<float> features;
    std::uint64_t line = 0;
    // One record in memory at a time: the header creates the store,
    // every later record appends straight through the buffer pool.
    ForEachCsvRecord(in, [&](std::vector<std::string>& record) {
        ++line;
        if (store == nullptr) {
            label_col = record.size();
            for (std::size_t c = 0; c < record.size(); ++c) {
                if (EqualsIgnoreCase(record[c], "label")) {
                    label_col = c;
                    break;
                }
            }
            store = storage::PagedTable::Create(page_path, record,
                                                label_col, options);
            features.reserve(store->num_feature_cols());
            return;
        }
        if (record.size() != store->columns().size()) {
            throw ParseError(
                StrFormat("csv %s record %llu: %zu cells, header has %zu",
                          csv_path.c_str(),
                          static_cast<unsigned long long>(line),
                          record.size(), store->columns().size()));
        }
        features.clear();
        float label = 0.0F;
        for (std::size_t c = 0; c < record.size(); ++c) {
            const char* text = record[c].c_str();
            char* end = nullptr;
            const float v = std::strtof(text, &end);
            if (end == text || *end != '\0') {
                throw ParseError(
                    StrFormat("csv %s record %llu: cell '%s' is not "
                              "numeric",
                              csv_path.c_str(),
                              static_cast<unsigned long long>(line),
                              record[c].c_str()));
            }
            if (c == label_col) {
                label = v;
            } else {
                features.push_back(v);
            }
        }
        store->AppendRow(features.data(), features.size(), label);
    });
    if (store == nullptr) {
        throw ParseError("database: CSV '" + csv_path +
                         "' has no header record");
    }
    store->Flush();
    return RegisterPaged(table_name, std::move(store));
}

Dataset
Database::LoadDataset(const std::string& table_name, Task task,
                      int num_classes) const
{
    const Table& table = GetTable(table_name);
    std::size_t label_col = table.ColumnIndex("label");
    if (table.NumColumns() < 2) {
        throw InvalidArgument("database: dataset table too narrow");
    }
    Dataset data(table_name, task, table.NumColumns() - 1, num_classes);
    for (std::size_t c = 0; c < table.NumColumns(); ++c) {
        if (c != label_col) {
            data.feature_names().push_back(table.schema()[c].name);
        }
    }
    std::vector<float> row(table.NumColumns() - 1);
    for (std::size_t r = 0; r < table.NumRows(); ++r) {
        std::size_t out = 0;
        for (std::size_t c = 0; c < table.NumColumns(); ++c) {
            if (c == label_col) {
                continue;
            }
            row[out++] = table.FloatAt(r, c);
        }
        data.AddRow(row.data(), row.size(), table.FloatAt(r, label_col));
    }
    return data;
}

void
Database::StoreModel(const std::string& model_name,
                     const TreeEnsemble& ensemble)
{
    if (!HasTable(kModelsTable)) {
        CreateTable(kModelsTable, {{"name", ColumnType::kString},
                                   {"model", ColumnType::kBlob}});
    }
    Table& table = GetTable(kModelsTable);
    std::vector<std::uint8_t> blob = ensemble.Serialize();
    const std::uint64_t blob_bytes = blob.size();
    table.AppendRow({model_name, std::move(blob)});
    if (model_meta_paged_ && HasTable(kModelMetaTable)) {
        // Mirror the numeric metadata through the buffer pool so
        // sp_storage_stats reports the model catalog too.
        Table& meta = GetTable(kModelMetaTable);
        meta.AppendRow({static_cast<double>(next_model_id_++),
                        static_cast<double>(blob_bytes),
                        static_cast<double>(ensemble.NumTrees()),
                        static_cast<double>(ensemble.NumNodes()),
                        static_cast<double>(ensemble.num_features),
                        static_cast<double>(ensemble.num_classes),
                        static_cast<double>(
                            static_cast<int>(ensemble.task))});
    }
    NoteCatalogChange();
}

Table&
Database::EnableModelMetaPaging(const std::string& page_path,
                                const storage::StorageOptions& options)
{
    if (!model_meta_paged_) {
        if (!HasTable(kModelMetaTable)) {
            // All-numeric schema: the page format stores float32
            // cells, so only the metadata (not the blob) pages out.
            // No column is named "label" -> every column is a feature
            // column and the store's label slot is unused.
            std::vector<std::string> columns = {
                "model_id",  "blob_bytes",  "num_trees", "num_nodes",
                "num_features", "num_classes", "task"};
            const std::size_t no_label = columns.size();
            auto store = storage::PagedTable::Create(
                page_path, std::move(columns), no_label, options);
            RegisterPaged(kModelMetaTable, std::move(store));
        }
        model_meta_paged_ = true;
    }
    return GetTable(kModelMetaTable);
}

const std::vector<std::uint8_t>&
Database::ModelBlob(const std::string& model_name) const
{
    const Table& table = GetTable(kModelsTable);
    std::size_t name_col = table.ColumnIndex("name");
    std::size_t blob_col = table.ColumnIndex("model");
    // Last write wins, like an upserted model catalog.
    for (std::size_t r = table.NumRows(); r > 0; --r) {
        if (EqualsIgnoreCase(
                std::get<std::string>(table.At(r - 1, name_col)),
                model_name)) {
            return std::get<std::vector<std::uint8_t>>(
                table.At(r - 1, blob_col));
        }
    }
    throw NotFound("database: no model '" + model_name + "'");
}

TreeEnsemble
Database::LoadModel(const std::string& model_name) const
{
    return TreeEnsemble::Deserialize(ModelBlob(model_name));
}

std::uint64_t
Database::ModelBlobBytes(const std::string& model_name) const
{
    return ModelBlob(model_name).size();
}

}  // namespace dbscore
