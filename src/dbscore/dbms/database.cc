#include "dbscore/dbms/database.h"

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

namespace {
constexpr const char* kModelsTable = "models";
}  // namespace

std::string
Database::Key(const std::string& name)
{
    return ToLower(name);
}

Table&
Database::CreateTable(const std::string& name, std::vector<ColumnDef> schema)
{
    auto [it, inserted] =
        tables_.try_emplace(Key(name), Table(name, std::move(schema)));
    if (!inserted) {
        throw InvalidArgument("database: table '" + name +
                              "' already exists");
    }
    return it->second;
}

bool
Database::HasTable(const std::string& name) const
{
    return tables_.count(Key(name)) > 0;
}

Table&
Database::GetTable(const std::string& name)
{
    auto it = tables_.find(Key(name));
    if (it == tables_.end()) {
        throw NotFound("database: no table '" + name + "'");
    }
    return it->second;
}

const Table&
Database::GetTable(const std::string& name) const
{
    auto it = tables_.find(Key(name));
    if (it == tables_.end()) {
        throw NotFound("database: no table '" + name + "'");
    }
    return it->second;
}

void
Database::DropTable(const std::string& name)
{
    if (tables_.erase(Key(name)) == 0) {
        throw NotFound("database: no table '" + name + "'");
    }
}

std::vector<std::string>
Database::TableNames() const
{
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [key, table] : tables_) {
        names.push_back(table.name());
    }
    return names;
}

Table&
Database::StoreDataset(const std::string& table_name, const Dataset& dataset)
{
    std::vector<ColumnDef> schema;
    schema.reserve(dataset.num_features() + 1);
    for (std::size_t f = 0; f < dataset.num_features(); ++f) {
        std::string col = f < dataset.feature_names().size()
            ? dataset.feature_names()[f]
            : "f" + std::to_string(f);
        schema.push_back({std::move(col), ColumnType::kDouble});
    }
    schema.push_back({"label", ColumnType::kDouble});

    Table& table = CreateTable(table_name, std::move(schema));
    std::vector<Value> row(dataset.num_features() + 1);
    for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
        const float* src = dataset.Row(r);
        for (std::size_t f = 0; f < dataset.num_features(); ++f) {
            row[f] = static_cast<double>(src[f]);
        }
        row[dataset.num_features()] =
            static_cast<double>(dataset.Label(r));
        table.AppendRow(row);
    }
    return table;
}

Dataset
Database::LoadDataset(const std::string& table_name, Task task,
                      int num_classes) const
{
    const Table& table = GetTable(table_name);
    std::size_t label_col = table.ColumnIndex("label");
    if (table.NumColumns() < 2) {
        throw InvalidArgument("database: dataset table too narrow");
    }
    Dataset data(table_name, task, table.NumColumns() - 1, num_classes);
    for (std::size_t c = 0; c < table.NumColumns(); ++c) {
        if (c != label_col) {
            data.feature_names().push_back(table.schema()[c].name);
        }
    }
    std::vector<float> row(table.NumColumns() - 1);
    for (std::size_t r = 0; r < table.NumRows(); ++r) {
        std::size_t out = 0;
        for (std::size_t c = 0; c < table.NumColumns(); ++c) {
            if (c == label_col) {
                continue;
            }
            row[out++] = static_cast<float>(ValueAsDouble(table.At(r, c)));
        }
        data.AddRow(row.data(), row.size(),
                    static_cast<float>(
                        ValueAsDouble(table.At(r, label_col))));
    }
    return data;
}

void
Database::StoreModel(const std::string& model_name,
                     const TreeEnsemble& ensemble)
{
    if (!HasTable(kModelsTable)) {
        CreateTable(kModelsTable, {{"name", ColumnType::kString},
                                   {"model", ColumnType::kBlob}});
    }
    Table& table = GetTable(kModelsTable);
    table.AppendRow({model_name, ensemble.Serialize()});
}

const std::vector<std::uint8_t>&
Database::ModelBlob(const std::string& model_name) const
{
    const Table& table = GetTable(kModelsTable);
    std::size_t name_col = table.ColumnIndex("name");
    std::size_t blob_col = table.ColumnIndex("model");
    // Last write wins, like an upserted model catalog.
    for (std::size_t r = table.NumRows(); r > 0; --r) {
        if (EqualsIgnoreCase(
                std::get<std::string>(table.At(r - 1, name_col)),
                model_name)) {
            return std::get<std::vector<std::uint8_t>>(
                table.At(r - 1, blob_col));
        }
    }
    throw NotFound("database: no model '" + model_name + "'");
}

TreeEnsemble
Database::LoadModel(const std::string& model_name) const
{
    return TreeEnsemble::Deserialize(ModelBlob(model_name));
}

std::uint64_t
Database::ModelBlobBytes(const std::string& model_name) const
{
    return ModelBlob(model_name).size();
}

}  // namespace dbscore
