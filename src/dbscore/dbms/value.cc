#include "dbscore/dbms/value.h"

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

const char*
ColumnTypeName(ColumnType type)
{
    switch (type) {
      case ColumnType::kInt64: return "INT";
      case ColumnType::kDouble: return "FLOAT";
      case ColumnType::kString: return "VARCHAR";
      case ColumnType::kBlob: return "VARBINARY";
    }
    return "?";
}

ColumnType
TypeOf(const Value& value)
{
    switch (value.index()) {
      case 0: return ColumnType::kInt64;
      case 1: return ColumnType::kDouble;
      case 2: return ColumnType::kString;
      default: return ColumnType::kBlob;
    }
}

std::string
ValueToString(const Value& value)
{
    switch (TypeOf(value)) {
      case ColumnType::kInt64:
        return std::to_string(std::get<std::int64_t>(value));
      case ColumnType::kDouble:
        return StrFormat("%g", std::get<double>(value));
      case ColumnType::kString:
        return std::get<std::string>(value);
      case ColumnType::kBlob:
        return StrFormat(
            "<%zu bytes>",
            std::get<std::vector<std::uint8_t>>(value).size());
    }
    return "?";
}

double
ValueAsDouble(const Value& value)
{
    switch (TypeOf(value)) {
      case ColumnType::kInt64:
        return static_cast<double>(std::get<std::int64_t>(value));
      case ColumnType::kDouble:
        return std::get<double>(value);
      default:
        throw InvalidArgument("value: not numeric");
    }
}

std::uint64_t
ValueWireBytes(const Value& value)
{
    switch (TypeOf(value)) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        return 8;
      case ColumnType::kString:
        return std::get<std::string>(value).size() + 4;
      case ColumnType::kBlob:
        return std::get<std::vector<std::uint8_t>>(value).size() + 4;
    }
    return 8;
}

int
CompareValues(const Value& a, const Value& b)
{
    ColumnType ta = TypeOf(a);
    ColumnType tb = TypeOf(b);
    bool numeric_a = ta == ColumnType::kInt64 || ta == ColumnType::kDouble;
    bool numeric_b = tb == ColumnType::kInt64 || tb == ColumnType::kDouble;
    if (numeric_a && numeric_b) {
        double da = ValueAsDouble(a);
        double db = ValueAsDouble(b);
        if (da < db) {
            return -1;
        }
        return da > db ? 1 : 0;
    }
    if (ta == ColumnType::kString && tb == ColumnType::kString) {
        return std::get<std::string>(a).compare(std::get<std::string>(b));
    }
    throw InvalidArgument("value: incomparable types");
}

}  // namespace dbscore
