/**
 * @file
 * The query engine: executes parsed SQL statements against a Database and
 * dispatches EXEC statements to stored procedures.
 *
 * A built-in sp_score_model procedure mirrors the paper's Figure-3 stored
 * procedure: it runs the full external-script scoring pipeline with
 * parameters @model, @data, @backend and optional @top.
 */
#ifndef DBSCORE_DBMS_QUERY_ENGINE_H
#define DBSCORE_DBMS_QUERY_ENGINE_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dbscore/dbms/database.h"
#include "dbscore/dbms/pipeline.h"
#include "dbscore/dbms/sql.h"

namespace dbscore {

/** Rows + metadata returned by Execute(). */
struct QueryResult {
    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    /** Human-readable status for DDL/DML ("1 table created", ...). */
    std::string message;
    /** Modeled end-to-end time for pipeline-backed statements. */
    SimTime modeled_time;
    /** Stage breakdown when the statement ran the scoring pipeline. */
    std::optional<PipelineStageTimes> pipeline_stages;

    /** Renders an ASCII result table. */
    std::string ToString() const;
};

class QueryEngine;

/** A stored procedure: params in, result set out. */
using StoredProcedure =
    std::function<QueryResult(QueryEngine&, const ExecStatement&)>;

/** Executes SQL text. */
class QueryEngine {
 public:
    QueryEngine(Database& db, ScoringPipeline& pipeline);

    Database& db() { return db_; }
    ScoringPipeline& pipeline() { return pipeline_; }

    /**
     * Parses and executes one statement.
     * @throws ParseError / NotFound / InvalidArgument / CapacityError
     */
    QueryResult Execute(const std::string& sql);

    /** Registers (or replaces) a stored procedure. */
    void RegisterProcedure(const std::string& name, StoredProcedure proc);

 private:
    QueryResult ExecuteCreate(const CreateTableStatement& stmt);
    QueryResult ExecuteInsert(const InsertStatement& stmt);
    QueryResult ExecuteSelect(const SelectStatement& stmt);
    QueryResult ExecuteExec(const ExecStatement& stmt);

    Database& db_;
    ScoringPipeline& pipeline_;
    std::map<std::string, StoredProcedure> procedures_;
};

/** Extracts a required string parameter. @throws InvalidArgument */
std::string GetStringParam(const ExecStatement& stmt,
                           const std::string& name);

/** Extracts an optional integer parameter. */
std::optional<std::int64_t> GetIntParam(const ExecStatement& stmt,
                                        const std::string& name);

/** Extracts an optional numeric parameter (FLOAT or INT literal). */
std::optional<double> GetDoubleParam(const ExecStatement& stmt,
                                     const std::string& name);

/** Parses a backend name ("FPGA", "GPU_HB", ...). @throws InvalidArgument */
BackendKind ParseBackendName(const std::string& name);

}  // namespace dbscore

#endif  // DBSCORE_DBMS_QUERY_ENGINE_H
