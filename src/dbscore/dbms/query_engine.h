/**
 * @file
 * The query engine: a thin statement façade. SELECTs route through the
 * plan pipeline (dbscore::plan::Planner — parse -> logical plan ->
 * rewrite -> compiled physical plan, with an LRU plan cache); CREATE /
 * INSERT apply directly; EXEC dispatches to stored procedures.
 *
 * Built-ins: sp_score_model (the paper's Figure-3 stored procedure:
 * full external-script scoring pipeline with @model, @data, @backend,
 * optional @top), sp_explain (@query='SELECT ...': logical plan,
 * applied rewrite rules, physical annotations, plan-cache counters),
 * sp_trace_dump, sp_fault_inject, sp_storage_stats,
 * sp_storage_recover, sp_storage_scrub.
 */
#ifndef DBSCORE_DBMS_QUERY_ENGINE_H
#define DBSCORE_DBMS_QUERY_ENGINE_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dbscore/dbms/database.h"
#include "dbscore/dbms/pipeline.h"
#include "dbscore/dbms/plan/planner.h"
#include "dbscore/dbms/query_result.h"
#include "dbscore/dbms/sql.h"

namespace dbscore {

class QueryEngine;

/** A stored procedure: params in, result set out. */
using StoredProcedure =
    std::function<QueryResult(QueryEngine&, const ExecStatement&)>;

/** Executes SQL text. */
class QueryEngine {
 public:
    QueryEngine(Database& db, ScoringPipeline& pipeline);

    Database& db() { return db_; }
    ScoringPipeline& pipeline() { return pipeline_; }
    /** The SELECT planner (plan cache, sp_explain, sp_serve_query). */
    plan::Planner& planner() { return planner_; }

    /**
     * Parses and executes one statement.
     * @throws ParseError / NotFound / InvalidArgument / CapacityError
     */
    QueryResult Execute(const std::string& sql);

    /** Registers (or replaces) a stored procedure. */
    void RegisterProcedure(const std::string& name, StoredProcedure proc);

 private:
    QueryResult ExecuteCreate(const CreateTableStatement& stmt);
    QueryResult ExecuteInsert(const InsertStatement& stmt);
    QueryResult ExecuteExec(const ExecStatement& stmt);

    Database& db_;
    ScoringPipeline& pipeline_;
    plan::Planner planner_;
    std::map<std::string, StoredProcedure> procedures_;
};

/** Extracts a required string parameter. @throws InvalidArgument */
std::string GetStringParam(const ExecStatement& stmt,
                           const std::string& name);

/** Extracts an optional integer parameter. */
std::optional<std::int64_t> GetIntParam(const ExecStatement& stmt,
                                        const std::string& name);

/** Extracts an optional numeric parameter (FLOAT or INT literal). */
std::optional<double> GetDoubleParam(const ExecStatement& stmt,
                                     const std::string& name);

/** Parses a backend name ("FPGA", "GPU_HB", ...). @throws InvalidArgument */
BackendKind ParseBackendName(const std::string& name);

}  // namespace dbscore

#endif  // DBSCORE_DBMS_QUERY_ENGINE_H
