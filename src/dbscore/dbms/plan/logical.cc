#include "dbscore/dbms/plan/logical.h"

#include <sstream>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore::plan {

const char*
LogicalOpKindName(LogicalOpKind kind)
{
    switch (kind) {
      case LogicalOpKind::kScan:
        return "Scan";
      case LogicalOpKind::kFilter:
        return "Filter";
      case LogicalOpKind::kScore:
        return "Score";
      case LogicalOpKind::kFilterScore:
        return "FilterScore";
      case LogicalOpKind::kProject:
        return "Project";
      case LogicalOpKind::kAggregate:
        return "Aggregate";
      case LogicalOpKind::kSort:
        return "Sort";
      case LogicalOpKind::kLimit:
        return "Limit";
    }
    return "?";
}

namespace {

/**
 * Resolves @p raw against the table and returns its index in
 * plan.scores, reusing an existing entry when the same (model,
 * feature-column) pair was already interned.
 */
std::size_t
InternScore(LogicalPlan& plan, const Table& table, const ScoreExpr& raw)
{
    const std::size_t label_col = table.LabelColumnIndex();
    ResolvedScore resolved;
    resolved.expr.model = raw.model;
    if (raw.features.empty()) {
        // The sp_score_model convention: every non-label column, in
        // table order.
        for (std::size_t c = 0; c < table.NumColumns(); ++c) {
            if (c == label_col) {
                continue;
            }
            resolved.expr.features.push_back(table.schema()[c].name);
            resolved.feature_cols.push_back(c);
        }
    } else {
        for (const std::string& name : raw.features) {
            const std::size_t c = table.ColumnIndex(name);
            if (c == label_col) {
                throw InvalidArgument(
                    "SCORE(" + raw.model + ", ...): feature '" + name +
                    "' is the label column of table " + table.name());
            }
            resolved.expr.features.push_back(table.schema()[c].name);
            resolved.feature_cols.push_back(c);
        }
    }
    for (std::size_t i = 0; i < plan.scores.size(); ++i) {
        if (EqualsIgnoreCase(plan.scores[i].expr.model,
                             resolved.expr.model) &&
            plan.scores[i].feature_cols == resolved.feature_cols) {
            return i;
        }
    }
    plan.scores.push_back(std::move(resolved));
    return plan.scores.size() - 1;
}

}  // namespace

LogicalOp*
LogicalPlan::Find(LogicalOpKind kind) const
{
    for (LogicalOp* op = root.get(); op != nullptr; op = op->input.get()) {
        if (op->kind == kind) {
            return op;
        }
    }
    return nullptr;
}

LogicalPlan
BuildLogicalPlan(const SelectStatement& stmt, const Table& table)
{
    LogicalPlan plan;
    plan.stmt = stmt;
    plan.column_names.reserve(table.NumColumns());
    for (const ColumnDef& col : table.schema()) {
        plan.column_names.push_back(col.name);
    }
    plan.label_col = table.LabelColumnIndex();
    plan.table_paged = table.paged();

    // Resolve every SCORE expression (dedup across clauses) and
    // validate every referenced column up front.
    plan.select_score_map.reserve(stmt.scores.size());
    for (const ScoreExpr& expr : stmt.scores) {
        plan.select_score_map.push_back(InternScore(plan, table, expr));
    }
    for (const std::string& name : stmt.columns) {
        (void)table.ColumnIndex(name);
    }

    std::vector<ColumnPredicate> predicates;
    std::vector<ScorePredicate> score_predicates;
    for (const WhereClause& clause : stmt.where) {
        if (clause.score.has_value()) {
            ScorePredicate pred;
            pred.score_index = InternScore(plan, table, *clause.score);
            pred.op = clause.op;
            pred.literal =
                static_cast<float>(ValueAsDouble(clause.literal));
            score_predicates.push_back(pred);
        } else {
            predicates.push_back({table.ColumnIndex(clause.column),
                                  clause.op, clause.literal});
        }
    }

    plan.agg_score_map.reserve(stmt.aggregates.size());
    for (const AggregateItem& item : stmt.aggregates) {
        if (item.score.has_value()) {
            plan.agg_score_map.push_back(
                InternScore(plan, table, *item.score));
        } else {
            if (!item.column.empty()) {
                (void)table.ColumnIndex(item.column);
            }
            plan.agg_score_map.push_back(std::nullopt);
        }
    }

    if (stmt.order_by.has_value()) {
        if (stmt.order_by->score.has_value()) {
            plan.order_score =
                InternScore(plan, table, *stmt.order_by->score);
        } else {
            (void)table.ColumnIndex(stmt.order_by->column);
        }
    }

    // Assemble the canonical chain bottom-up.
    auto scan = std::make_unique<LogicalOp>();
    scan->kind = LogicalOpKind::kScan;
    for (std::size_t c = 0; c < table.NumColumns(); ++c) {
        scan->columns.push_back(c);
    }
    std::unique_ptr<LogicalOp> node = std::move(scan);

    if (!predicates.empty()) {
        auto filter = std::make_unique<LogicalOp>();
        filter->kind = LogicalOpKind::kFilter;
        filter->predicates = std::move(predicates);
        filter->input = std::move(node);
        node = std::move(filter);
    }
    if (!plan.scores.empty()) {
        auto score = std::make_unique<LogicalOp>();
        score->kind = LogicalOpKind::kScore;
        for (std::size_t i = 0; i < plan.scores.size(); ++i) {
            score->score_indices.push_back(i);
        }
        score->input = std::move(node);
        node = std::move(score);
    }
    if (!score_predicates.empty()) {
        auto filter = std::make_unique<LogicalOp>();
        filter->kind = LogicalOpKind::kFilterScore;
        filter->score_predicates = std::move(score_predicates);
        filter->input = std::move(node);
        node = std::move(filter);
    }
    if (!stmt.aggregates.empty()) {
        auto agg = std::make_unique<LogicalOp>();
        agg->kind = LogicalOpKind::kAggregate;
        agg->input = std::move(node);
        node = std::move(agg);
        // Aggregates collapse to one row; ORDER BY / TOP are inert
        // (the pre-planner executor ignored them the same way).
    } else {
        auto project = std::make_unique<LogicalOp>();
        project->kind = LogicalOpKind::kProject;
        project->input = std::move(node);
        node = std::move(project);
        if (stmt.order_by.has_value()) {
            auto sort = std::make_unique<LogicalOp>();
            sort->kind = LogicalOpKind::kSort;
            sort->input = std::move(node);
            node = std::move(sort);
        }
        if (stmt.top.has_value()) {
            auto limit = std::make_unique<LogicalOp>();
            limit->kind = LogicalOpKind::kLimit;
            limit->input = std::move(node);
            node = std::move(limit);
        }
    }
    plan.root = std::move(node);
    return plan;
}

namespace {

std::string
AggregateLabel(const LogicalPlan& plan, std::size_t index)
{
    const AggregateItem& item = plan.stmt.aggregates[index];
    std::string arg;
    if (plan.agg_score_map[index].has_value()) {
        arg = ScoreExprToString(
            plan.scores[*plan.agg_score_map[index]].expr);
    } else {
        arg = item.column.empty() ? "*" : item.column;
    }
    return std::string(AggFuncName(item.func)) + "(" + arg + ")";
}

void
AppendOp(const LogicalPlan& plan, const LogicalOp& op, int depth,
         std::ostringstream& os)
{
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
       << LogicalOpKindName(op.kind) << "(";
    switch (op.kind) {
      case LogicalOpKind::kScan: {
        os << plan.stmt.table;
        if (op.pruned) {
            os << " columns=[";
            for (std::size_t i = 0; i < op.columns.size(); ++i) {
                os << (i > 0 ? ", " : "")
                   << plan.column_names[op.columns[i]];
            }
            os << "]";
        } else {
            os << " columns=*";
        }
        if (op.zone_predicate.has_value()) {
            // ScanPredicate columns index the feature layout (label
            // excluded); map back to the schema for display.
            std::size_t c = op.zone_predicate->column;
            c += (c >= plan.label_col ? 1 : 0);
            os << StrFormat(" zone=[%s in [%g, %g]]",
                            plan.column_names[c].c_str(),
                            op.zone_predicate->min,
                            op.zone_predicate->max);
        }
        if (plan.table_paged) {
            os << " paged";
        }
        break;
      }
      case LogicalOpKind::kFilter:
        for (std::size_t i = 0; i < op.predicates.size(); ++i) {
            const ColumnPredicate& pred = op.predicates[i];
            os << (i > 0 ? " AND " : "")
               << plan.column_names[pred.column] << " "
               << CompareOpName(pred.op) << " "
               << ValueToString(pred.literal);
        }
        break;
      case LogicalOpKind::kScore:
        for (std::size_t i = 0; i < op.score_indices.size(); ++i) {
            os << (i > 0 ? ", " : "")
               << ScoreExprToString(
                      plan.scores[op.score_indices[i]].expr);
        }
        break;
      case LogicalOpKind::kFilterScore:
        for (std::size_t i = 0; i < op.score_predicates.size(); ++i) {
            const ScorePredicate& pred = op.score_predicates[i];
            os << (i > 0 ? " AND " : "")
               << ScoreExprToString(plan.scores[pred.score_index].expr)
               << " " << CompareOpName(pred.op)
               << StrFormat(" %g", pred.literal);
            if (pred.early_exit) {
                os << " [early-exit]";
            }
        }
        break;
      case LogicalOpKind::kProject:
        if (plan.stmt.star) {
            os << "*";
        } else {
            for (std::size_t i = 0; i < plan.stmt.items.size(); ++i) {
                const SelectItemRef& ref = plan.stmt.items[i];
                os << (i > 0 ? ", " : "");
                if (ref.kind == SelectItemKind::kScore) {
                    os << ScoreExprToString(
                        plan.scores[plan.select_score_map[ref.index]]
                            .expr);
                } else {
                    os << plan.stmt.columns[ref.index];
                }
            }
        }
        break;
      case LogicalOpKind::kAggregate:
        for (std::size_t i = 0; i < plan.stmt.aggregates.size(); ++i) {
            os << (i > 0 ? ", " : "") << AggregateLabel(plan, i);
        }
        break;
      case LogicalOpKind::kSort:
        if (plan.order_score.has_value()) {
            os << ScoreExprToString(plan.scores[*plan.order_score].expr);
        } else {
            os << plan.stmt.order_by->column;
        }
        os << (plan.stmt.order_by->descending ? " desc" : " asc");
        break;
      case LogicalOpKind::kLimit:
        os << "top=" << *plan.stmt.top;
        break;
    }
    os << ")";
    if (op.kind == LogicalOpKind::kAggregate && op.fused) {
        os << " [fused]";
    }
    os << "\n";
    if (op.input != nullptr) {
        AppendOp(plan, *op.input, depth + 1, os);
    }
}

}  // namespace

std::string
LogicalPlan::ToString() const
{
    std::ostringstream os;
    if (root != nullptr) {
        AppendOp(*this, *root, 0, os);
    }
    return os.str();
}

}  // namespace dbscore::plan
