#include "dbscore/dbms/plan/planner.h"

#include <cctype>
#include <utility>
#include <variant>

#include "dbscore/common/error.h"
#include "dbscore/trace/trace.h"

namespace dbscore::plan {

Planner::Planner(Database& db, PlannerOptions options)
    : db_(db), options_(options), cache_(options.cache_capacity)
{
}

std::string
Planner::NormalizeSql(const std::string& sql)
{
    std::string out;
    out.reserve(sql.size());
    bool in_literal = false;
    bool pending_space = false;
    for (char c : sql) {
        if (!in_literal &&
            std::isspace(static_cast<unsigned char>(c)) != 0) {
            pending_space = !out.empty();
            continue;
        }
        if (pending_space) {
            out.push_back(' ');
            pending_space = false;
        }
        if (c == '\'') {
            // No unquoting: '' inside a literal flips twice, which is
            // harmless for a cache key (both sides normalize alike).
            in_literal = !in_literal;
            out.push_back(c);
        } else {
            out.push_back(
                in_literal
                    ? c
                    : static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c))));
        }
    }
    return out;
}

std::shared_ptr<const PhysicalPlan>
Planner::Plan(const SelectStatement& stmt, const std::string& sql_text)
{
    const std::string key = NormalizeSql(sql_text);
    const std::uint64_t version = db_.catalog_version();
    if (auto cached = cache_.Lookup(key, version)) {
        trace::TraceCollector::Get().EmitStage(
            trace::StageKind::kPlanCacheHit, "plan-cache-hit", SimTime());
        return cached;
    }
    trace::ScopedSpan span(trace::StageKind::kPlan, "plan-select");
    LogicalPlan logical = BuildLogicalPlan(stmt, db_.GetTable(stmt.table));
    if (options_.optimize) {
        RewritePlan(logical);
    }
    span.AddAttr("rules_applied",
                 static_cast<double>(logical.applied_rules.size()));
    span.AddAttr("scores", static_cast<double>(logical.scores.size()));
    auto plan = std::make_shared<PhysicalPlan>(std::move(logical), db_);
    cache_.Insert(key, version, plan);
    return plan;
}

QueryResult
Planner::ExecuteSelect(const SelectStatement& stmt,
                       const std::string& sql_text)
{
    return Plan(stmt, sql_text)->Execute(db_);
}

std::shared_ptr<const PhysicalPlan>
Planner::PlanQuery(const std::string& sql)
{
    Statement parsed = ParseSql(sql);
    const auto* select = std::get_if<SelectStatement>(&parsed);
    if (select == nullptr) {
        throw InvalidArgument(
            "planner: expected a SELECT statement, got: " + sql);
    }
    return Plan(*select, sql);
}

}  // namespace dbscore::plan
