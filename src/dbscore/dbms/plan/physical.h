/**
 * @file
 * Physical plans: a compiled, executable form of a rewritten logical
 * plan.
 *
 * Compilation front-loads everything expensive and reusable — the
 * stored model is loaded from the database, deserialized, rebuilt as a
 * RandomForest, and compiled into ForestKernel plans (the default
 * kernel for score values, plus a v1 accumulate kernel for pushed-down
 * SCORE thresholds) — so a plan served from the LRU plan cache
 * (plan/plan_cache.h) skips the whole LoadModel -> ToForest -> Kernel
 * chain on every subsequent execution.
 *
 * Execution has two paths:
 *
 *  - plain statements (no SCORE) run the legacy Value-typed
 *    interpreter, preserving the pre-planner engine's semantics
 *    exactly (including "At() on a paged table" errors);
 *  - scored statements stream feature chunks (zone-map-pruned for
 *    paged tables), apply plain predicates first, evaluate SCORE
 *    predicates over the compacted survivors (early-exit kernel when
 *    the rewriter pushed the threshold down), and fold fused
 *    aggregates into the loop without materializing a score column.
 *
 * Executing a rewritten plan is bit-identical to executing the naive
 * plan of the same statement: pruning/pushdown/fusion change how much
 * work runs, never the result (DESIGN.md §14).
 */
#ifndef DBSCORE_DBMS_PLAN_PHYSICAL_H
#define DBSCORE_DBMS_PLAN_PHYSICAL_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/dbms/database.h"
#include "dbscore/dbms/plan/logical.h"
#include "dbscore/dbms/query_result.h"
#include "dbscore/forest/forest.h"

namespace dbscore::plan {

/** One SCORE expression compiled against its stored model. */
struct CompiledScore {
    /** Resolved expression (explicit feature list). */
    ScoreExpr expr;
    /** Table column index per model feature, model order. */
    std::vector<std::size_t> feature_cols;
    /** Same, in the feature layout (label excluded) of scans. */
    std::vector<std::size_t> feature_idx;
    /** feature_idx == [0, k): a strided column-prefix view suffices. */
    bool identity_prefix = false;
    /** feature_idx covers every feature column, in table order. */
    bool covers_all = false;

    /** The deserialized model (always a RandomForest; GBDTs stored as
     * ensembles fold into the regression/margin representation). */
    std::shared_ptr<const RandomForest> model;
    /** Compiled inference plan; null when the kernel can't compile
     * this model (execution falls back to the scalar reference). */
    std::shared_ptr<const ForestKernel> kernel;
    /** v1 accumulate plan for pushed-down thresholds; null unless a
     * SCORE predicate was marked early-exit and the combine supports
     * suffix-bound early exit. */
    std::shared_ptr<const ForestKernel> threshold_kernel;
};

/**
 * The scan + plain-filter prefix of a scored plan, materialized as a
 * serving payload: survivors' model features plus their row ids. How
 * sp_serve_query hands a SQL-shaped request to the ScoringService.
 */
struct ScoringBatch {
    /** Model named by the plan's (single) SCORE expression. */
    std::string model;
    /** survivors x model-features block (service request payload). */
    RowBlock features;
    /** Global row id of each batch row. */
    std::vector<std::size_t> row_ids;
};

/** A compiled, immutable, shareable plan. Thread-safe to Execute. */
class PhysicalPlan {
 public:
    /**
     * Compiles @p logical: loads + compiles every referenced model.
     * @throws NotFound when a model is missing
     * @throws InvalidArgument on feature-arity mismatches
     */
    PhysicalPlan(LogicalPlan logical, const Database& db);

    /** Runs the plan against the current table contents. */
    QueryResult Execute(const Database& db) const;

    /**
     * Runs the scan + plain-filter prefix and gathers the survivors'
     * model features (plans with exactly one SCORE expression).
     * SCORE predicates / sort / aggregation are left to the caller —
     * the serving layer computes predictions remotely.
     * @throws InvalidArgument unless exactly one SCORE is present
     */
    ScoringBatch CollectScoringBatch(const Database& db) const;

    const LogicalPlan& logical() const { return logical_; }
    const std::vector<CompiledScore>& scores() const { return scores_; }
    bool uses_score() const { return !scores_.empty(); }
    /** SCORE predicates in WHERE order (empty for plain plans). */
    const std::vector<ScorePredicate>& score_predicates() const
    {
        return score_preds_;
    }

    /** Cumulative early-exit work accounting across Execute calls. */
    ThresholdStats threshold_stats() const;

    /** Physical annotation lines for EXEC sp_explain. */
    std::vector<std::string> ExplainPhysical() const;

 private:
    QueryResult ExecutePlain(const Table& table) const;
    QueryResult ExecuteScore(const Table& table) const;

    LogicalPlan logical_;
    std::vector<CompiledScore> scores_;

    // Flattened annotations (mirrors of the logical chain, resolved
    // once at compile time).
    std::vector<ColumnPredicate> plain_preds_;
    std::vector<ScorePredicate> score_preds_;
    std::optional<storage::ScanPredicate> zone_predicate_;
    bool scan_pruned_ = false;
    bool fused_aggregate_ = false;

    mutable std::mutex stats_mutex_;
    mutable ThresholdStats threshold_stats_;
};

}  // namespace dbscore::plan

#endif  // DBSCORE_DBMS_PLAN_PHYSICAL_H
