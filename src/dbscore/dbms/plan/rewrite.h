/**
 * @file
 * Rule-based logical-plan rewriter: the three SQL+ML co-optimizations
 * EXEC sp_explain reports and bench/wallclock_query measures.
 *
 *  1. column-pruning — the scan produces only the columns the query
 *     actually touches (projected columns, predicate columns, sort
 *     key, aggregate inputs, and every SCORE expression's feature
 *     columns), so a narrow model over a wide table never materializes
 *     the unused features.
 *  2. predicate-pushdown —
 *     a. a plain numeric predicate over a paged table's feature column
 *        becomes a zone-map ScanPredicate, letting the buffer pool
 *        skip whole pages whose [min, max] cannot match;
 *     b. an ordered "SCORE(...) op literal" conjunct whose score value
 *        is not otherwise needed is marked early-exit, pushing the
 *        comparison into ForestKernel::PredictThreshold, which stops
 *        accumulating trees once suffix bounds decide the predicate
 *        (exact; see DESIGN.md §14).
 *  3. score-aggregate-fusion — aggregates over a scored stream
 *     (AVG(SCORE(...)), COUNT(*) WHERE SCORE(...) > t) fold into the
 *     chunk-streaming scoring loop without materializing a score
 *     column.
 *
 * Every applied rule appends a human-readable entry to
 * LogicalPlan::applied_rules. Rules only annotate the plan; executing
 * an annotated plan is bit-identical to executing the naive one.
 */
#ifndef DBSCORE_DBMS_PLAN_REWRITE_H
#define DBSCORE_DBMS_PLAN_REWRITE_H

#include "dbscore/dbms/plan/logical.h"

namespace dbscore::plan {

/** Per-rule enables (all on by default; the naive planner uses none). */
struct RewriteOptions {
    bool prune_columns = true;
    bool push_predicates = true;
    bool fuse_aggregates = true;
};

/** Applies the enabled rewrite rules to @p plan in place. */
void RewritePlan(LogicalPlan& plan, const RewriteOptions& options = {});

}  // namespace dbscore::plan

#endif  // DBSCORE_DBMS_PLAN_REWRITE_H
