#include "dbscore/dbms/plan/physical.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/forest/onnx_like.h"

namespace dbscore::plan {

namespace {

/** CompareOp -> kernel ThresholdOp (ordered comparisons only). */
std::optional<ThresholdOp>
ToThresholdOp(CompareOp op)
{
    switch (op) {
      case CompareOp::kGt:
        return ThresholdOp::kGt;
      case CompareOp::kGe:
        return ThresholdOp::kGe;
      case CompareOp::kLt:
        return ThresholdOp::kLt;
      case CompareOp::kLe:
        return ThresholdOp::kLe;
      case CompareOp::kEq:
      case CompareOp::kNe:
        return std::nullopt;
    }
    return std::nullopt;
}

/**
 * "score op literal" at float32 precision — the SCORE-predicate
 * semantics both the early-exit kernel path and the naive
 * score-then-compare path implement, so optimized and naive plans are
 * bit-identical even for literals that are not exactly representable
 * as float (DESIGN.md §14).
 */
bool
ScorePredHolds(CompareOp op, float value, float literal)
{
    switch (op) {
      case CompareOp::kEq:
        return value == literal;
      case CompareOp::kNe:
        return value != literal;
      case CompareOp::kLt:
        return value < literal;
      case CompareOp::kLe:
        return value <= literal;
      case CompareOp::kGt:
        return value > literal;
      case CompareOp::kGe:
        return value >= literal;
    }
    return false;
}

/**
 * Compacting gather from @p src into @p scratch: row subset (@p rows
 * null = all), column subset (@p cols null = all of src's columns).
 * Returns a borrowing view over @p scratch — valid until the next
 * gather into the same scratch. Counted as a feature-storage copy.
 */
RowView
Gather(const RowView& src, const std::uint32_t* rows, std::size_t num_rows,
       const std::size_t* cols, std::size_t num_cols,
       std::vector<float>& scratch)
{
    const std::size_t width = cols != nullptr ? num_cols : src.cols();
    scratch.resize(num_rows * width);
    float* out = scratch.data();
    for (std::size_t i = 0; i < num_rows; ++i) {
        const float* row =
            src.Row(rows != nullptr ? rows[i] : i);
        if (cols != nullptr) {
            for (std::size_t j = 0; j < width; ++j) {
                out[j] = row[cols[j]];
            }
        } else {
            std::copy(row, row + width, out);
        }
        out += width;
    }
    RowBlock::NoteCopy(static_cast<std::uint64_t>(num_rows) * width *
                       sizeof(float));
    return RowView::Borrow(scratch.data(), num_rows, width);
}

/**
 * Cell read for the plain interpreter: in-memory tables return the
 * stored Value (legacy-exact, including strings and blobs); paged
 * tables surface their float32 cells as doubles, which makes plain
 * SELECTs work over paged tables (every paged column is numeric).
 */
Value
PlainCell(const Table& table, std::size_t row, std::size_t col)
{
    if (table.paged()) {
        return static_cast<double>(table.FloatAt(row, col));
    }
    return table.At(row, col);
}

/** Evaluates one aggregate over the selected rows (legacy path). */
Value
EvaluateAggregate(const Table& table, const AggregateItem& item,
                  const std::vector<std::size_t>& rows)
{
    if (item.func == AggFunc::kCount && item.column.empty()) {
        return static_cast<std::int64_t>(rows.size());
    }
    const std::size_t col = table.ColumnIndex(item.column);
    switch (item.func) {
      case AggFunc::kCount:
        return static_cast<std::int64_t>(rows.size());
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        double sum = 0.0;
        for (std::size_t r : rows) {
            sum += ValueAsDouble(PlainCell(table, r, col));
        }
        if (item.func == AggFunc::kSum) {
            return sum;
        }
        if (rows.empty()) {
            throw InvalidArgument("AVG over zero rows");
        }
        return sum / static_cast<double>(rows.size());
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (rows.empty()) {
            throw InvalidArgument(std::string(AggFuncName(item.func)) +
                                  " over zero rows");
        }
        Value best = PlainCell(table, rows.front(), col);
        for (std::size_t r : rows) {
            Value v = PlainCell(table, r, col);
            int cmp = CompareValues(v, best);
            if ((item.func == AggFunc::kMin && cmp < 0) ||
                (item.func == AggFunc::kMax && cmp > 0)) {
                best = std::move(v);
            }
        }
        return best;
      }
    }
    throw InvalidArgument("unknown aggregate");
}

}  // namespace

PhysicalPlan::PhysicalPlan(LogicalPlan logical, const Database& db)
    : logical_(std::move(logical))
{
    if (const LogicalOp* op = logical_.Find(LogicalOpKind::kFilter)) {
        plain_preds_ = op->predicates;
    }
    if (const LogicalOp* op = logical_.Find(LogicalOpKind::kFilterScore)) {
        score_preds_ = op->score_predicates;
    }
    if (const LogicalOp* op = logical_.Find(LogicalOpKind::kScan)) {
        zone_predicate_ = op->zone_predicate;
        scan_pruned_ = op->pruned;
    }
    if (const LogicalOp* op = logical_.Find(LogicalOpKind::kAggregate)) {
        fused_aggregate_ = op->fused;
    }

    const std::size_t label_col = logical_.label_col;
    const std::size_t num_cols = logical_.column_names.size();
    const std::size_t num_features =
        num_cols - (label_col < num_cols ? 1 : 0);

    scores_.reserve(logical_.scores.size());
    for (std::size_t s = 0; s < logical_.scores.size(); ++s) {
        const ResolvedScore& rs = logical_.scores[s];
        CompiledScore cs;
        cs.expr = rs.expr;
        cs.feature_cols = rs.feature_cols;
        cs.feature_idx.reserve(rs.feature_cols.size());
        for (std::size_t c : rs.feature_cols) {
            cs.feature_idx.push_back(c - (c > label_col ? 1 : 0));
        }
        cs.identity_prefix = true;
        for (std::size_t j = 0; j < cs.feature_idx.size(); ++j) {
            if (cs.feature_idx[j] != j) {
                cs.identity_prefix = false;
                break;
            }
        }
        cs.covers_all = cs.identity_prefix &&
                        cs.feature_idx.size() == num_features;

        // The expensive part the plan cache amortizes: blob ->
        // TreeEnsemble -> RandomForest -> compiled kernel(s).
        TreeEnsemble ensemble = db.LoadModel(cs.expr.model);
        auto model = std::make_shared<RandomForest>(ensemble.ToForest());
        if (model->num_features() != cs.feature_cols.size()) {
            throw InvalidArgument(StrFormat(
                "SCORE(%s): model expects %zu feature(s), expression "
                "provides %zu",
                cs.expr.model.c_str(), model->num_features(),
                cs.feature_cols.size()));
        }
        if (ForestKernel::Supports(*model)) {
            cs.kernel = model->Kernel();
        }
        bool wants_early_exit = false;
        for (const ScorePredicate& pred : score_preds_) {
            if (pred.score_index == s && pred.early_exit) {
                wants_early_exit = true;
            }
        }
        if (wants_early_exit && cs.kernel != nullptr) {
            ForestKernelOptions options;
            options.version = KernelVersion::kV1;
            options.autotune = false;
            auto threshold = model->Kernel(options);
            if (threshold->SupportsThresholdEarlyExit()) {
                cs.threshold_kernel = std::move(threshold);
            }
        }
        cs.model = std::move(model);
        scores_.push_back(std::move(cs));
    }
}

QueryResult
PhysicalPlan::Execute(const Database& db) const
{
    const Table& table = db.GetTable(logical_.stmt.table);
    return uses_score() ? ExecuteScore(table) : ExecutePlain(table);
}

// The pre-planner interpreter, preserved verbatim for plain
// statements on in-memory tables: Value-typed filtering, stable
// ORDER BY, TOP after sort. Paged tables (numeric-only by
// construction) are read through FloatAt, so plain SELECTs also work
// against the out-of-core data plane.
QueryResult
PhysicalPlan::ExecutePlain(const Table& table) const
{
    const SelectStatement& stmt = logical_.stmt;

    std::vector<std::size_t> where_cols;
    where_cols.reserve(stmt.where.size());
    for (const auto& clause : stmt.where) {
        where_cols.push_back(table.ColumnIndex(clause.column));
    }

    // Filter.
    std::vector<std::size_t> matched;
    for (std::size_t r = 0; r < table.NumRows(); ++r) {
        bool keep = true;
        for (std::size_t w = 0; w < stmt.where.size(); ++w) {
            int cmp = CompareValues(PlainCell(table, r, where_cols[w]),
                                    stmt.where[w].literal);
            if (!EvalCompareOp(stmt.where[w].op, cmp)) {
                keep = false;
                break;
            }
        }
        if (keep) {
            matched.push_back(r);
        }
    }

    QueryResult result;

    // Aggregate queries collapse to a single row.
    if (!stmt.aggregates.empty()) {
        std::vector<Value> row;
        for (const auto& item : stmt.aggregates) {
            result.columns.push_back(
                std::string(AggFuncName(item.func)) + "(" +
                (item.column.empty() ? "*" : item.column) + ")");
            row.push_back(EvaluateAggregate(table, item, matched));
        }
        result.rows.push_back(std::move(row));
        result.message = "1 row(s)";
        return result;
    }

    // ORDER BY (stable, so ties keep table order), then TOP.
    if (stmt.order_by.has_value()) {
        const std::size_t col = table.ColumnIndex(stmt.order_by->column);
        const bool desc = stmt.order_by->descending;
        std::stable_sort(matched.begin(), matched.end(),
                         [&](std::size_t a, std::size_t b) {
                             int cmp =
                                 CompareValues(PlainCell(table, a, col),
                                               PlainCell(table, b, col));
                             return desc ? cmp > 0 : cmp < 0;
                         });
    }
    if (stmt.top.has_value() && matched.size() > *stmt.top) {
        matched.resize(*stmt.top);
    }

    // Project.
    std::vector<std::size_t> projection;
    if (stmt.star) {
        for (std::size_t c = 0; c < table.NumColumns(); ++c) {
            projection.push_back(c);
            result.columns.push_back(table.schema()[c].name);
        }
    } else {
        for (const auto& name : stmt.columns) {
            projection.push_back(table.ColumnIndex(name));
            result.columns.push_back(name);
        }
    }
    result.rows.reserve(matched.size());
    for (std::size_t r : matched) {
        std::vector<Value> row;
        row.reserve(projection.size());
        for (std::size_t c : projection) {
            row.push_back(PlainCell(table, r, c));
        }
        result.rows.push_back(std::move(row));
    }
    result.message = StrFormat("%zu row(s)", result.rows.size());
    return result;
}

namespace {

/** Running state of one streaming aggregate. */
struct AggState {
    double sum = 0.0;
    std::optional<Value> best;
};

}  // namespace

QueryResult
PhysicalPlan::ExecuteScore(const Table& table) const
{
    const SelectStatement& stmt = logical_.stmt;
    const std::size_t label_col = table.LabelColumnIndex();
    const bool paged = table.paged();
    auto feature_index = [label_col](std::size_t col) {
        return col - (col > label_col ? 1 : 0);
    };

    // Which scores must produce values (vs predicate-only scores the
    // rewriter may have pushed into the kernel).
    std::vector<bool> value_needed(scores_.size(), false);
    for (std::size_t s : logical_.select_score_map) {
        value_needed[s] = true;
    }
    for (const auto& s : logical_.agg_score_map) {
        if (s.has_value()) {
            value_needed[*s] = true;
        }
    }
    if (logical_.order_score.has_value()) {
        value_needed[*logical_.order_score] = true;
    }

    // In-memory feature sources, one per score, built once. A pruned
    // scan materializes only the score's columns; an unpruned (naive)
    // plan pays the full-width materialization like the legacy data
    // plane did, then narrows with a strided prefix view or a gather.
    std::vector<RowBlock> held;
    std::vector<RowView> mem_src(scores_.size());
    if (!paged) {
        std::vector<float> unused;
        for (std::size_t s = 0; s < scores_.size(); ++s) {
            const CompiledScore& cs = scores_[s];
            if (cs.covers_all) {
                mem_src[s] = table.MaterializeFeatures().View();
            } else if (scan_pruned_) {
                held.push_back(table.MaterializeColumns(cs.feature_cols));
                mem_src[s] = held.back().View();
            } else if (cs.identity_prefix) {
                mem_src[s] = table.MaterializeFeatures().View().Prefix(
                    cs.feature_idx.size());
            } else {
                std::vector<float> scratch;
                RowView full = table.MaterializeFeatures().View();
                RowView gathered =
                    Gather(full, nullptr, full.rows(),
                           cs.feature_idx.data(), cs.feature_idx.size(),
                           scratch);
                held.push_back(RowBlock(std::move(scratch),
                                        cs.feature_idx.size()));
                mem_src[s] = held.back().View();
                (void)gathered;
            }
        }
    }

    // Projection layout (non-aggregate statements).
    QueryResult result;
    std::vector<std::size_t> agg_cols(stmt.aggregates.size(),
                                      table.NumColumns());
    struct ProjItem {
        bool is_score = false;
        std::size_t index = 0;  // score index or table column
    };
    std::vector<ProjItem> proj;
    if (stmt.aggregates.empty()) {
        if (stmt.star) {
            for (std::size_t c = 0; c < table.NumColumns(); ++c) {
                proj.push_back({false, c});
                result.columns.push_back(table.schema()[c].name);
            }
        } else {
            for (const SelectItemRef& ref : stmt.items) {
                if (ref.kind == SelectItemKind::kScore) {
                    const std::size_t s =
                        logical_.select_score_map[ref.index];
                    proj.push_back({true, s});
                    result.columns.push_back(
                        ScoreExprToString(scores_[s].expr));
                } else {
                    proj.push_back(
                        {false,
                         table.ColumnIndex(stmt.columns[ref.index])});
                    result.columns.push_back(stmt.columns[ref.index]);
                }
            }
        }
    } else {
        for (std::size_t a = 0; a < stmt.aggregates.size(); ++a) {
            const AggregateItem& item = stmt.aggregates[a];
            std::string arg;
            if (logical_.agg_score_map[a].has_value()) {
                arg = ScoreExprToString(
                    scores_[*logical_.agg_score_map[a]].expr);
            } else {
                arg = item.column.empty() ? "*" : item.column;
                if (!item.column.empty()) {
                    agg_cols[a] = table.ColumnIndex(item.column);
                }
            }
            result.columns.push_back(
                std::string(AggFuncName(item.func)) + "(" + arg + ")");
        }
    }
    const std::size_t order_col =
        (stmt.order_by.has_value() && !logical_.order_score.has_value())
            ? table.ColumnIndex(stmt.order_by->column)
            : table.NumColumns();

    std::vector<AggState> agg(stmt.aggregates.size());
    std::size_t matched = 0;
    std::vector<Value> sort_keys;
    ThresholdStats run_stats;

    // Per-chunk processing; returns false to stop the scan early
    // (TOP with no ORDER BY).
    auto process = [&](const RowView* chunk_feats, std::size_t row_begin,
                       std::size_t n) -> bool {
        // 1. Plain predicates first — cheap column compares shrink the
        //    row set before any tree traversal.
        std::vector<std::uint32_t> live;
        live.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::size_t r = row_begin + i;
            bool keep = true;
            for (const ColumnPredicate& pred : plain_preds_) {
                int cmp;
                if (paged) {
                    const double v =
                        pred.column == label_col
                            ? static_cast<double>(
                                  table.FloatAt(r, pred.column))
                            : static_cast<double>(chunk_feats->At(
                                  i, feature_index(pred.column)));
                    cmp = CompareValues(Value(v), pred.literal);
                } else {
                    cmp = CompareValues(table.At(r, pred.column),
                                        pred.literal);
                }
                if (!EvalCompareOp(pred.op, cmp)) {
                    keep = false;
                    break;
                }
            }
            if (keep) {
                live.push_back(i);
            }
        }

        // 2. Chunk-local feature sources per score (lazy).
        std::vector<std::optional<RowView>> src(scores_.size());
        std::vector<std::vector<float>> col_scratch(scores_.size());
        auto chunk_src = [&](std::size_t s) -> const RowView& {
            if (!src[s].has_value()) {
                const CompiledScore& cs = scores_[s];
                if (!paged) {
                    src[s] = mem_src[s];
                } else if (cs.identity_prefix) {
                    src[s] =
                        chunk_feats->Prefix(cs.feature_idx.size());
                } else {
                    src[s] = Gather(*chunk_feats, nullptr, n,
                                    cs.feature_idx.data(),
                                    cs.feature_idx.size(),
                                    col_scratch[s]);
                }
            }
            return *src[s];
        };

        // 3. SCORE predicates over the compacted survivors.
        std::vector<float> row_scratch;
        for (const ScorePredicate& pred : score_preds_) {
            if (live.empty()) {
                break;
            }
            const CompiledScore& cs = scores_[pred.score_index];
            const bool all = live.size() == n;
            RowView view =
                all ? chunk_src(pred.score_index)
                    : Gather(chunk_src(pred.score_index), live.data(),
                             live.size(), nullptr, 0, row_scratch);
            std::vector<std::uint8_t> keep;
            if (pred.early_exit && cs.threshold_kernel != nullptr) {
                keep = cs.threshold_kernel->PredictThreshold(
                    view, *ToThresholdOp(pred.op), pred.literal,
                    &run_stats);
            } else {
                const std::vector<float> vals =
                    cs.kernel != nullptr ? cs.kernel->Predict(view)
                                         : cs.model->PredictBatch(view);
                keep.resize(vals.size());
                for (std::size_t i = 0; i < vals.size(); ++i) {
                    keep[i] = ScorePredHolds(pred.op, vals[i],
                                             pred.literal)
                                  ? 1
                                  : 0;
                }
            }
            std::vector<std::uint32_t> next;
            next.reserve(live.size());
            for (std::size_t i = 0; i < live.size(); ++i) {
                if (keep[i] != 0) {
                    next.push_back(live[i]);
                }
            }
            live.swap(next);
        }
        if (live.empty()) {
            return true;
        }

        // 4. Score values for the survivors.
        std::vector<std::vector<float>> vals(scores_.size());
        {
            const bool all = live.size() == n;
            for (std::size_t s = 0; s < scores_.size(); ++s) {
                if (!value_needed[s]) {
                    continue;
                }
                const CompiledScore& cs = scores_[s];
                RowView view =
                    all ? chunk_src(s)
                        : Gather(chunk_src(s), live.data(), live.size(),
                                 nullptr, 0, row_scratch);
                vals[s] = cs.kernel != nullptr
                              ? cs.kernel->Predict(view)
                              : cs.model->PredictBatch(view);
            }
        }

        // Cell accessor for plain columns of surviving rows.
        auto column_value = [&](std::size_t local, std::size_t col) {
            const std::size_t r = row_begin + local;
            if (!paged) {
                return table.At(r, col);
            }
            const double v =
                col == label_col
                    ? static_cast<double>(table.FloatAt(r, col))
                    : static_cast<double>(
                          chunk_feats->At(local, feature_index(col)));
            return Value(v);
        };

        // 5. Sink: fused aggregates or projected rows.
        if (!stmt.aggregates.empty()) {
            for (std::size_t j = 0; j < live.size(); ++j) {
                for (std::size_t a = 0; a < stmt.aggregates.size();
                     ++a) {
                    const AggregateItem& item = stmt.aggregates[a];
                    if (item.func == AggFunc::kCount) {
                        continue;  // counted via `matched`
                    }
                    Value v;
                    if (logical_.agg_score_map[a].has_value()) {
                        v = static_cast<double>(
                            vals[*logical_.agg_score_map[a]][j]);
                    } else {
                        v = column_value(live[j], agg_cols[a]);
                    }
                    AggState& state = agg[a];
                    if (item.func == AggFunc::kSum ||
                        item.func == AggFunc::kAvg) {
                        state.sum += ValueAsDouble(v);
                    } else if (!state.best.has_value()) {
                        state.best = std::move(v);
                    } else {
                        const int cmp = CompareValues(v, *state.best);
                        if ((item.func == AggFunc::kMin && cmp < 0) ||
                            (item.func == AggFunc::kMax && cmp > 0)) {
                            state.best = std::move(v);
                        }
                    }
                }
            }
            matched += live.size();
            return true;
        }

        for (std::size_t j = 0; j < live.size(); ++j) {
            std::vector<Value> row;
            row.reserve(proj.size());
            for (const ProjItem& item : proj) {
                if (item.is_score) {
                    row.push_back(
                        static_cast<double>(vals[item.index][j]));
                } else {
                    row.push_back(column_value(live[j], item.index));
                }
            }
            result.rows.push_back(std::move(row));
            if (stmt.order_by.has_value()) {
                if (logical_.order_score.has_value()) {
                    sort_keys.push_back(static_cast<double>(
                        vals[*logical_.order_score][j]));
                } else {
                    sort_keys.push_back(
                        column_value(live[j], order_col));
                }
            } else if (stmt.top.has_value() &&
                       result.rows.size() >= *stmt.top) {
                return false;  // enough rows, stop scanning
            }
        }
        return true;
    };

    if (paged) {
        storage::FeatureStream stream =
            table.ScanFeatures(zone_predicate_);
        storage::StreamChunk chunk;
        while (stream.Next(chunk)) {
            if (!process(&chunk.view, chunk.row_begin,
                         chunk.view.rows())) {
                break;
            }
        }
    } else {
        process(nullptr, 0, table.NumRows());
    }

    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        threshold_stats_.rows += run_stats.rows;
        threshold_stats_.rows_decided_early += run_stats.rows_decided_early;
        threshold_stats_.tree_traversals += run_stats.tree_traversals;
        threshold_stats_.tree_traversals_full +=
            run_stats.tree_traversals_full;
    }

    if (!stmt.aggregates.empty()) {
        std::vector<Value> row;
        for (std::size_t a = 0; a < stmt.aggregates.size(); ++a) {
            const AggregateItem& item = stmt.aggregates[a];
            switch (item.func) {
              case AggFunc::kCount:
                row.push_back(static_cast<std::int64_t>(matched));
                break;
              case AggFunc::kSum:
                row.push_back(agg[a].sum);
                break;
              case AggFunc::kAvg:
                if (matched == 0) {
                    throw InvalidArgument("AVG over zero rows");
                }
                row.push_back(agg[a].sum /
                              static_cast<double>(matched));
                break;
              case AggFunc::kMin:
              case AggFunc::kMax:
                if (!agg[a].best.has_value()) {
                    throw InvalidArgument(
                        std::string(AggFuncName(item.func)) +
                        " over zero rows");
                }
                row.push_back(*agg[a].best);
                break;
            }
        }
        result.rows.push_back(std::move(row));
        result.message = "1 row(s)";
        return result;
    }

    if (stmt.order_by.has_value()) {
        const bool desc = stmt.order_by->descending;
        std::vector<std::size_t> perm(result.rows.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::stable_sort(perm.begin(), perm.end(),
                         [&](std::size_t a, std::size_t b) {
                             int cmp = CompareValues(sort_keys[a],
                                                     sort_keys[b]);
                             return desc ? cmp > 0 : cmp < 0;
                         });
        std::vector<std::vector<Value>> sorted;
        sorted.reserve(result.rows.size());
        for (std::size_t i : perm) {
            sorted.push_back(std::move(result.rows[i]));
        }
        result.rows = std::move(sorted);
    }
    if (stmt.top.has_value() && result.rows.size() > *stmt.top) {
        result.rows.resize(*stmt.top);
    }
    result.message = StrFormat("%zu row(s)", result.rows.size());
    return result;
}

ScoringBatch
PhysicalPlan::CollectScoringBatch(const Database& db) const
{
    if (scores_.size() != 1) {
        throw InvalidArgument(
            "plan: a scoring batch needs exactly one SCORE(...) "
            "expression");
    }
    const Table& table = db.GetTable(logical_.stmt.table);
    const CompiledScore& cs = scores_[0];
    const std::size_t label_col = table.LabelColumnIndex();
    const bool paged = table.paged();
    auto feature_index = [label_col](std::size_t col) {
        return col - (col > label_col ? 1 : 0);
    };
    const std::size_t width = cs.feature_cols.size();

    ScoringBatch batch;
    batch.model = cs.expr.model;
    std::vector<float> features;

    auto process = [&](const RowView* chunk_feats, std::size_t row_begin,
                       std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t r = row_begin + i;
            bool keep = true;
            for (const ColumnPredicate& pred : plain_preds_) {
                int cmp;
                if (paged) {
                    const double v =
                        pred.column == label_col
                            ? static_cast<double>(
                                  table.FloatAt(r, pred.column))
                            : static_cast<double>(chunk_feats->At(
                                  i, feature_index(pred.column)));
                    cmp = CompareValues(Value(v), pred.literal);
                } else {
                    cmp = CompareValues(table.At(r, pred.column),
                                        pred.literal);
                }
                if (!EvalCompareOp(pred.op, cmp)) {
                    keep = false;
                    break;
                }
            }
            if (!keep) {
                continue;
            }
            batch.row_ids.push_back(r);
            for (std::size_t j = 0; j < width; ++j) {
                features.push_back(
                    paged ? chunk_feats->At(i, cs.feature_idx[j])
                          : table.FloatAt(r, cs.feature_cols[j]));
            }
        }
    };

    if (paged) {
        storage::FeatureStream stream =
            table.ScanFeatures(zone_predicate_);
        storage::StreamChunk chunk;
        while (stream.Next(chunk)) {
            process(&chunk.view, chunk.row_begin, chunk.view.rows());
        }
    } else {
        process(nullptr, 0, table.NumRows());
    }

    RowBlock::NoteCopy(static_cast<std::uint64_t>(features.size()) *
                       sizeof(float));
    batch.features = RowBlock(std::move(features), width);
    return batch;
}

ThresholdStats
PhysicalPlan::threshold_stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return threshold_stats_;
}

std::vector<std::string>
PhysicalPlan::ExplainPhysical() const
{
    std::vector<std::string> lines;
    for (const CompiledScore& cs : scores_) {
        std::string kernel;
        if (cs.kernel != nullptr) {
            kernel = StrFormat(
                "kernel v%d %s (%zu trees)",
                static_cast<int>(cs.kernel->version()),
                cs.kernel->mode() == KernelMode::kExact ? "exact"
                                                        : "quantized",
                cs.kernel->NumTrees());
        } else {
            kernel = "scalar reference (kernel unsupported)";
        }
        lines.push_back(StrFormat(
            "%s: %s%s", ScoreExprToString(cs.expr).c_str(),
            kernel.c_str(),
            cs.threshold_kernel != nullptr
                ? ", threshold kernel v1 [early-exit]"
                : ""));
    }
    if (zone_predicate_.has_value()) {
        lines.push_back(StrFormat(
            "scan: zone-map pruning on feature column %zu in [%g, %g]",
            zone_predicate_->column,
            static_cast<double>(zone_predicate_->min),
            static_cast<double>(zone_predicate_->max)));
    }
    if (scan_pruned_) {
        const LogicalOp* scan = logical_.Find(LogicalOpKind::kScan);
        lines.push_back(StrFormat(
            "scan: pruned to %zu of %zu column(s)",
            scan->columns.size(), logical_.column_names.size()));
    }
    if (fused_aggregate_) {
        lines.push_back(
            "aggregate: fused into the streaming scoring loop");
    }
    const ThresholdStats stats = threshold_stats();
    if (stats.rows > 0) {
        lines.push_back(StrFormat(
            "early-exit: %llu of %llu row(s) decided early, %llu of "
            "%llu tree traversal(s) executed",
            static_cast<unsigned long long>(stats.rows_decided_early),
            static_cast<unsigned long long>(stats.rows),
            static_cast<unsigned long long>(stats.tree_traversals),
            static_cast<unsigned long long>(
                stats.tree_traversals_full)));
    }
    return lines;
}

}  // namespace dbscore::plan
