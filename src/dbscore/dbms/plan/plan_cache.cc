#include "dbscore/dbms/plan/plan_cache.h"

#include <utility>

namespace dbscore::plan {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

std::shared_ptr<const PhysicalPlan>
PlanCache::Lookup(const std::string& key, std::uint64_t catalog_version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    if (it->second->catalog_version != catalog_version) {
        lru_.erase(it->second);
        index_.erase(it);
        ++stats_.invalidations;
        ++stats_.misses;
        stats_.entries = index_.size();
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    ++stats_.hits;
    return it->second->plan;
}

void
PlanCache::Insert(const std::string& key, std::uint64_t catalog_version,
                  std::shared_ptr<const PhysicalPlan> plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
    lru_.push_front(Entry{key, catalog_version, std::move(plan)});
    index_[key] = lru_.begin();
    while (index_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = index_.size();
}

void
PlanCache::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_.entries = 0;
}

PlanCacheStats
PlanCache::Stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace dbscore::plan
