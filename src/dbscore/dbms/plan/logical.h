/**
 * @file
 * Logical query plans for the mini-DBMS SELECT pipeline.
 *
 * ParseSql produces a SelectStatement; BuildLogicalPlan resolves it
 * against a table's schema into an operator chain
 *
 *   Scan -> Filter -> Score -> FilterScore -> Project|Aggregate
 *        -> Sort -> Limit
 *
 * with SCORE(model, ...) expressions deduplicated into a resolved-score
 * list (features mapped to table column indices, the empty feature list
 * expanded to "all non-label columns in table order", the sp_score_model
 * convention). The chain is what the rule-based rewriter
 * (plan/rewrite.h) annotates — column pruning, zone-map predicate
 * pushdown, SCORE-threshold pushdown, score-aggregate fusion — and what
 * EXEC sp_explain prints; execution happens in plan/physical.h.
 */
#ifndef DBSCORE_DBMS_PLAN_LOGICAL_H
#define DBSCORE_DBMS_PLAN_LOGICAL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/dbms/sql.h"
#include "dbscore/dbms/table.h"

namespace dbscore::plan {

/** Operator kinds, bottom (kScan) to top (kLimit). */
enum class LogicalOpKind : std::uint8_t {
    kScan,         ///< read the table (optionally pruned / zone-mapped)
    kFilter,       ///< plain "col op literal" conjuncts
    kScore,        ///< compute SCORE(...) expressions
    kFilterScore,  ///< "SCORE(...) op literal" conjuncts
    kProject,      ///< select-list projection
    kAggregate,    ///< COUNT/SUM/AVG/MIN/MAX collapse
    kSort,         ///< ORDER BY
    kLimit,        ///< TOP n
};

const char* LogicalOpKindName(LogicalOpKind kind);

/**
 * One SCORE expression resolved against the table: features named (or
 * defaulted) in the statement become table column indices in the
 * model's feature order.
 */
struct ResolvedScore {
    /** Expression with the feature list made explicit. */
    ScoreExpr expr;
    /** Table column index of each model feature, model order. */
    std::vector<std::size_t> feature_cols;
};

/** "SCORE(scores[score_index]) op literal" conjunct. */
struct ScorePredicate {
    std::size_t score_index = 0;
    CompareOp op = CompareOp::kGt;
    /**
     * Comparison literal at float precision. SCORE predicates compare
     * the model's float32 prediction against the literal cast to
     * float, so the kernel's early-exit path and the naive
     * score-then-compare path agree bit for bit (DESIGN.md §14).
     */
    float literal = 0.0F;
    /** Rewriter: push the comparison into ForestKernel traversal. */
    bool early_exit = false;
};

/** One plain WHERE conjunct with its column resolved. */
struct ColumnPredicate {
    std::size_t column = 0;
    CompareOp op = CompareOp::kEq;
    Value literal;
};

/** A node in the logical operator chain. */
struct LogicalOp {
    LogicalOpKind kind = LogicalOpKind::kScan;
    /** The operator this one consumes; null for kScan. */
    std::unique_ptr<LogicalOp> input;

    // -- kScan --------------------------------------------------------
    /** Table columns the scan must produce, schema order. */
    std::vector<std::size_t> columns;
    /** Rewriter: columns was narrowed below the full schema. */
    bool pruned = false;
    /** Rewriter: zone-map page-pruning predicate (paged tables). */
    std::optional<storage::ScanPredicate> zone_predicate;

    // -- kFilter ------------------------------------------------------
    std::vector<ColumnPredicate> predicates;

    // -- kScore -------------------------------------------------------
    /** Indices into LogicalPlan::scores computed here. */
    std::vector<std::size_t> score_indices;

    // -- kFilterScore -------------------------------------------------
    std::vector<ScorePredicate> score_predicates;

    // -- kAggregate ---------------------------------------------------
    /** Rewriter: aggregates fold into the streaming scoring loop. */
    bool fused = false;
};

/**
 * A resolved logical plan: the operator chain plus the statement it
 * came from and the deduplicated score expressions every layer indexes
 * into.
 */
struct LogicalPlan {
    /** The (validated) statement; projection/sort details live here. */
    SelectStatement stmt;
    /** Schema column names, for ToString. */
    std::vector<std::string> column_names;
    /** Table column index of the label column, or column count. */
    std::size_t label_col = 0;
    /** True when the scanned table is page-file backed. */
    bool table_paged = false;

    /** Deduplicated resolved SCORE expressions. */
    std::vector<ResolvedScore> scores;
    /** stmt.scores[i] -> scores index. */
    std::vector<std::size_t> select_score_map;
    /** stmt.aggregates[i] -> scores index (empty = plain aggregate). */
    std::vector<std::optional<std::size_t>> agg_score_map;
    /** ORDER BY SCORE(...) -> scores index. */
    std::optional<std::size_t> order_score;

    /** Top of the operator chain. */
    std::unique_ptr<LogicalOp> root;
    /** Rewrite-rule audit trail ("column-pruning(...)", ...). */
    std::vector<std::string> applied_rules;

    /** Finds the (single) op of @p kind, or null. */
    LogicalOp* Find(LogicalOpKind kind) const;

    /** Indented operator tree, top-down — explain / plan-shape tests. */
    std::string ToString() const;
};

/**
 * Resolves @p stmt against @p table into the canonical (unoptimized)
 * operator chain. Column and SCORE-feature names are validated here.
 *
 * @throws NotFound on unknown columns
 * @throws InvalidArgument when a SCORE feature names the label column
 */
LogicalPlan BuildLogicalPlan(const SelectStatement& stmt,
                             const Table& table);

}  // namespace dbscore::plan

#endif  // DBSCORE_DBMS_PLAN_LOGICAL_H
