/**
 * @file
 * The planner: SELECT statement -> (cached) compiled physical plan.
 *
 * Pipeline per statement:
 *
 *   ParseSql -> BuildLogicalPlan -> RewritePlan -> PhysicalPlan
 *                (resolve+validate)  (prune/push/fuse)  (compile models)
 *
 * wrapped in an LRU plan cache keyed on the normalized statement text
 * (case-folded outside string literals, whitespace collapsed) and
 * invalidated by the Database catalog version. Planning emits a kPlan
 * trace stage; a cache hit emits kPlanCacheHit instead, so traces show
 * exactly which executions skipped model compilation.
 */
#ifndef DBSCORE_DBMS_PLAN_PLANNER_H
#define DBSCORE_DBMS_PLAN_PLANNER_H

#include <memory>
#include <string>

#include "dbscore/dbms/plan/physical.h"
#include "dbscore/dbms/plan/plan_cache.h"
#include "dbscore/dbms/plan/rewrite.h"
#include "dbscore/dbms/sql.h"

namespace dbscore::plan {

struct PlannerOptions {
    /** Run the rewriter (false = naive plans, the bench baseline). */
    bool optimize = true;
    /** LRU plan cache capacity (entries). */
    std::size_t cache_capacity = 64;
};

/** Plans and executes SELECT statements against one Database. */
class Planner {
 public:
    explicit Planner(Database& db, PlannerOptions options = {});

    /**
     * Returns the compiled plan for @p stmt, from cache when the
     * normalized @p sql_text matches a plan compiled at the current
     * catalog version.
     */
    std::shared_ptr<const PhysicalPlan> Plan(const SelectStatement& stmt,
                                             const std::string& sql_text);

    /** Plans (with caching) and executes in one step. */
    QueryResult ExecuteSelect(const SelectStatement& stmt,
                              const std::string& sql_text);

    /**
     * Parses @p sql and plans it; the statement must be a SELECT.
     * Entry point for procedures that receive a query as a string
     * parameter (sp_explain, sp_serve_query).
     * @throws InvalidArgument when @p sql is not a SELECT
     */
    std::shared_ptr<const PhysicalPlan> PlanQuery(const std::string& sql);

    PlanCacheStats CacheStats() const { return cache_.Stats(); }
    void ClearCache() { cache_.Clear(); }
    const PlannerOptions& options() const { return options_; }
    Database& db() { return db_; }

    /**
     * Cache key: lowercase outside single-quoted literals, runs of
     * whitespace collapsed to one space, trimmed. "SELECT X FROM T"
     * and "select  x from t" plan once.
     */
    static std::string NormalizeSql(const std::string& sql);

 private:
    Database& db_;
    PlannerOptions options_;
    PlanCache cache_;
};

}  // namespace dbscore::plan

#endif  // DBSCORE_DBMS_PLAN_PLANNER_H
