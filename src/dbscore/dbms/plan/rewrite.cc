#include "dbscore/dbms/plan/rewrite.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "dbscore/common/string_util.h"

namespace dbscore::plan {

namespace {

std::size_t
ColIndex(const LogicalPlan& plan, const std::string& name)
{
    for (std::size_t c = 0; c < plan.column_names.size(); ++c) {
        if (EqualsIgnoreCase(plan.column_names[c], name)) {
            return c;
        }
    }
    return plan.column_names.size();  // unreachable: plan was validated
}

/**
 * Rule 1: narrow the scan to the columns the query touches. Only
 * meaningful for scored plans — the legacy Value path reads cells
 * directly and is kept untouched for plain statements.
 */
void
PruneColumns(LogicalPlan& plan)
{
    LogicalOp* scan = plan.Find(LogicalOpKind::kScan);
    if (scan == nullptr || plan.scores.empty() || plan.stmt.star) {
        return;
    }
    std::vector<bool> needed(plan.column_names.size(), false);
    for (const std::string& name : plan.stmt.columns) {
        needed[ColIndex(plan, name)] = true;
    }
    if (const LogicalOp* filter = plan.Find(LogicalOpKind::kFilter)) {
        for (const ColumnPredicate& pred : filter->predicates) {
            needed[pred.column] = true;
        }
    }
    for (const ResolvedScore& score : plan.scores) {
        for (std::size_t c : score.feature_cols) {
            needed[c] = true;
        }
    }
    for (const AggregateItem& item : plan.stmt.aggregates) {
        if (!item.score.has_value() && !item.column.empty()) {
            needed[ColIndex(plan, item.column)] = true;
        }
    }
    if (plan.stmt.order_by.has_value() &&
        !plan.stmt.order_by->score.has_value()) {
        needed[ColIndex(plan, plan.stmt.order_by->column)] = true;
    }

    std::vector<std::size_t> columns;
    for (std::size_t c = 0; c < needed.size(); ++c) {
        if (needed[c]) {
            columns.push_back(c);
        }
    }
    if (columns.size() >= plan.column_names.size()) {
        return;  // nothing to prune
    }
    std::ostringstream rule;
    rule << "column-pruning(kept " << columns.size() << " of "
         << plan.column_names.size() << ":";
    for (std::size_t c : columns) {
        rule << " " << plan.column_names[c];
    }
    rule << ")";
    scan->columns = std::move(columns);
    scan->pruned = true;
    plan.applied_rules.push_back(rule.str());
}

/**
 * Rule 2a: derive a zone-map ScanPredicate from the first pushable
 * plain predicate — a numeric comparison on a feature column of a
 * paged table. The row filter stays (zone maps prune at page
 * granularity); the derived range is a conservative superset.
 */
void
PushZonePredicate(LogicalPlan& plan)
{
    LogicalOp* scan = plan.Find(LogicalOpKind::kScan);
    LogicalOp* filter = plan.Find(LogicalOpKind::kFilter);
    if (scan == nullptr || filter == nullptr || !plan.table_paged ||
        scan->zone_predicate.has_value()) {
        return;
    }
    for (const ColumnPredicate& pred : filter->predicates) {
        if (pred.column == plan.label_col) {
            continue;  // zone maps cover feature columns only
        }
        const ColumnType type = TypeOf(pred.literal);
        if (type != ColumnType::kInt64 && type != ColumnType::kDouble) {
            continue;
        }
        if (pred.op == CompareOp::kNe) {
            continue;  // excludes a point: no useful page range
        }
        const float lit =
            static_cast<float>(ValueAsDouble(pred.literal));
        storage::ScanPredicate zone;
        zone.column =
            pred.column - (pred.column > plan.label_col ? 1 : 0);
        zone.min = std::numeric_limits<float>::lowest();
        zone.max = std::numeric_limits<float>::max();
        switch (pred.op) {
          case CompareOp::kGt:
          case CompareOp::kGe:
            zone.min = lit;
            break;
          case CompareOp::kLt:
          case CompareOp::kLe:
            zone.max = lit;
            break;
          case CompareOp::kEq:
            zone.min = zone.max = lit;
            break;
          case CompareOp::kNe:
            break;
        }
        scan->zone_predicate = zone;
        plan.applied_rules.push_back(StrFormat(
            "zone-pushdown(%s %s %g)",
            plan.column_names[pred.column].c_str(),
            CompareOpName(pred.op), static_cast<double>(lit)));
        return;
    }
}

/**
 * Rule 2b: mark ordered SCORE predicates whose score value the query
 * never projects, sorts by, or aggregates — those comparisons run
 * through ForestKernel::PredictThreshold, which early-exits tree
 * accumulation once suffix bounds decide the outcome.
 */
void
PushScoreThresholds(LogicalPlan& plan)
{
    LogicalOp* filter = plan.Find(LogicalOpKind::kFilterScore);
    if (filter == nullptr) {
        return;
    }
    std::vector<bool> value_needed(plan.scores.size(), false);
    for (std::size_t s : plan.select_score_map) {
        value_needed[s] = true;
    }
    for (const auto& s : plan.agg_score_map) {
        if (s.has_value()) {
            value_needed[*s] = true;
        }
    }
    if (plan.order_score.has_value()) {
        value_needed[*plan.order_score] = true;
    }
    for (ScorePredicate& pred : filter->score_predicates) {
        const bool ordered =
            pred.op == CompareOp::kLt || pred.op == CompareOp::kLe ||
            pred.op == CompareOp::kGt || pred.op == CompareOp::kGe;
        if (!ordered || value_needed[pred.score_index]) {
            continue;
        }
        pred.early_exit = true;
        plan.applied_rules.push_back(StrFormat(
            "score-threshold-pushdown(%s %s %g)",
            ScoreExprToString(plan.scores[pred.score_index].expr)
                .c_str(),
            CompareOpName(pred.op),
            static_cast<double>(pred.literal)));
    }
}

/**
 * Rule 3: aggregates over a scored stream fold into the scoring loop —
 * running accumulators per chunk, no materialized score column.
 */
void
FuseScoreAggregates(LogicalPlan& plan)
{
    LogicalOp* agg = plan.Find(LogicalOpKind::kAggregate);
    if (agg == nullptr || plan.scores.empty() || agg->fused) {
        return;
    }
    std::ostringstream rule;
    rule << "score-aggregate-fusion(";
    for (std::size_t i = 0; i < plan.stmt.aggregates.size(); ++i) {
        const AggregateItem& item = plan.stmt.aggregates[i];
        rule << (i > 0 ? ", " : "") << AggFuncName(item.func);
        (void)item;
    }
    rule << ")";
    agg->fused = true;
    plan.applied_rules.push_back(rule.str());
}

}  // namespace

void
RewritePlan(LogicalPlan& plan, const RewriteOptions& options)
{
    if (options.prune_columns) {
        PruneColumns(plan);
    }
    if (options.push_predicates) {
        PushZonePredicate(plan);
        PushScoreThresholds(plan);
    }
    if (options.fuse_aggregates) {
        FuseScoreAggregates(plan);
    }
}

}  // namespace dbscore::plan
