/**
 * @file
 * LRU plan cache: normalized statement text -> compiled PhysicalPlan.
 *
 * Compiling a scored plan repeats the most expensive part of every
 * query — deserializing the stored model and building forest kernels —
 * so the planner caches compiled plans keyed on the normalized SQL
 * text. Entries carry the Database catalog version they compiled
 * against; a lookup that finds a stale entry (catalog moved: a table
 * or model was created, dropped, or re-stored) drops it and reports a
 * miss, which is how `INSERT INTO models ...` invalidates plans that
 * captured the old model bytes.
 */
#ifndef DBSCORE_DBMS_PLAN_PLAN_CACHE_H
#define DBSCORE_DBMS_PLAN_PLAN_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dbscore/dbms/plan/physical.h"

namespace dbscore::plan {

/** Cache observability counters (EXEC sp_explain reports these). */
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Entries dropped because the catalog version moved. */
    std::uint64_t invalidations = 0;
    /** Entries evicted by LRU capacity pressure. */
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
};

/** Thread-safe LRU map of normalized SQL -> shared compiled plan. */
class PlanCache {
 public:
    explicit PlanCache(std::size_t capacity = 64);

    /**
     * Returns the cached plan for @p key when present and compiled at
     * @p catalog_version; null on miss. A version mismatch erases the
     * entry (counted as an invalidation) and misses.
     */
    std::shared_ptr<const PhysicalPlan> Lookup(
        const std::string& key, std::uint64_t catalog_version);

    /** Inserts (or replaces) @p key, evicting the LRU tail at capacity. */
    void Insert(const std::string& key, std::uint64_t catalog_version,
                std::shared_ptr<const PhysicalPlan> plan);

    /** Drops every entry (counters survive). */
    void Clear();

    PlanCacheStats Stats() const;

 private:
    struct Entry {
        std::string key;
        std::uint64_t catalog_version = 0;
        std::shared_ptr<const PhysicalPlan> plan;
    };

    std::size_t capacity_;
    mutable std::mutex mutex_;
    /** MRU first. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    PlanCacheStats stats_;
};

}  // namespace dbscore::plan

#endif  // DBSCORE_DBMS_PLAN_PLAN_CACHE_H
