/**
 * @file
 * QueryResult: rows + metadata every statement executor returns. Split
 * out of query_engine.h so the plan layer (dbscore::dbms::plan) can
 * produce results without depending on the engine facade.
 */
#ifndef DBSCORE_DBMS_QUERY_RESULT_H
#define DBSCORE_DBMS_QUERY_RESULT_H

#include <optional>
#include <string>
#include <vector>

#include "dbscore/dbms/pipeline.h"
#include "dbscore/dbms/value.h"

namespace dbscore {

/** Rows + metadata returned by QueryEngine::Execute(). */
struct QueryResult {
    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    /** Human-readable status for DDL/DML ("1 table created", ...). */
    std::string message;
    /** Modeled end-to-end time for pipeline-backed statements. */
    SimTime modeled_time;
    /** Stage breakdown when the statement ran the scoring pipeline. */
    std::optional<PipelineStageTimes> pipeline_stages;

    /** Renders an ASCII result table. */
    std::string ToString() const;
};

}  // namespace dbscore

#endif  // DBSCORE_DBMS_QUERY_RESULT_H
