/**
 * @file
 * SQL value and column types for the embedded mini-DBMS.
 *
 * The paper's pipeline stores both the scoring data and the serialized
 * models inside SQL Server tables; our substitute supports the column
 * types that flow needs: integers, doubles, strings, and VARBINARY blobs.
 */
#ifndef DBSCORE_DBMS_VALUE_H
#define DBSCORE_DBMS_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace dbscore {

/** Supported column types. */
enum class ColumnType {
    kInt64,
    kDouble,
    kString,
    kBlob,  ///< VARBINARY — serialized models
};

/** Returns "INT", "FLOAT", "VARCHAR", or "VARBINARY". */
const char* ColumnTypeName(ColumnType type);

/** A single SQL value. */
using Value = std::variant<std::int64_t, double, std::string,
                           std::vector<std::uint8_t>>;

/** Runtime type of @p value. */
ColumnType TypeOf(const Value& value);

/** Renders a value for result display (blobs render as "<N bytes>"). */
std::string ValueToString(const Value& value);

/**
 * Numeric coercion: int64 or double values as double.
 * @throws InvalidArgument for strings/blobs.
 */
double ValueAsDouble(const Value& value);

/** Approximate wire size of a value in bytes (for transfer models). */
std::uint64_t ValueWireBytes(const Value& value);

/**
 * SQL comparison between two values. Numerics compare numerically
 * (int vs double allowed); strings lexicographically.
 *
 * @return negative/zero/positive like strcmp
 * @throws InvalidArgument for blob comparisons or type mixes
 */
int CompareValues(const Value& a, const Value& b);

}  // namespace dbscore

#endif  // DBSCORE_DBMS_VALUE_H
