#include "dbscore/dbms/table.h"

#include <cstring>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

Table::Table(std::string name, std::vector<ColumnDef> schema)
    : name_(std::move(name)), schema_(std::move(schema))
{
    if (schema_.empty()) {
        throw InvalidArgument("table: needs at least one column");
    }
    columns_.resize(schema_.size());
}

Table
Table::FromPagedStore(std::string name,
                      std::shared_ptr<storage::PagedTable> store)
{
    DBS_ASSERT(store != nullptr);
    std::vector<ColumnDef> schema;
    schema.reserve(store->columns().size());
    for (const std::string& col : store->columns()) {
        schema.push_back({col, ColumnType::kDouble});
    }
    Table table(std::move(name), std::move(schema));
    table.columns_.clear();  // rows live in the page file
    table.store_ = std::move(store);
    return table;
}

std::size_t
Table::ColumnIndex(const std::string& column_name) const
{
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        if (EqualsIgnoreCase(schema_[i].name, column_name)) {
            return i;
        }
    }
    throw NotFound("table " + name_ + ": no column '" + column_name + "'");
}

void
Table::AppendRow(std::vector<Value> row)
{
    if (row.size() != schema_.size()) {
        throw InvalidArgument("table " + name_ + ": row arity mismatch");
    }
    if (paged()) {
        // Split the row into features + label and write through the
        // buffer pool; zone maps update as part of the append.
        const std::size_t label_col = store_->label_col();
        std::vector<float> features;
        features.reserve(store_->num_feature_cols());
        float label = 0.0F;
        for (std::size_t i = 0; i < row.size(); ++i) {
            const float v = static_cast<float>(ValueAsDouble(row[i]));
            if (i == label_col) {
                label = v;
            } else {
                features.push_back(v);
            }
        }
        store_->AppendRow(features.data(), features.size(), label);
        features_ = RowBlock();
        return;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        ColumnType expected = schema_[i].type;
        ColumnType got = TypeOf(row[i]);
        if (got == expected) {
            continue;
        }
        // Integer literals coerce into FLOAT columns.
        if (expected == ColumnType::kDouble && got == ColumnType::kInt64) {
            row[i] = static_cast<double>(std::get<std::int64_t>(row[i]));
            continue;
        }
        throw InvalidArgument(
            StrFormat("table %s: column %s expects %s, got %s",
                      name_.c_str(), schema_[i].name.c_str(),
                      ColumnTypeName(expected), ColumnTypeName(got)));
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        columns_[i].push_back(std::move(row[i]));
    }
    ++num_rows_;
    // Drop (don't mutate) the cached materialization; live views keep
    // the old block's storage alive through their refcounts.
    features_ = RowBlock();
}

const Value&
Table::At(std::size_t row, std::size_t col) const
{
    if (paged()) {
        throw InvalidArgument("table " + name_ +
                              ": At() on a paged table — use FloatAt()");
    }
    DBS_ASSERT(row < num_rows_ && col < schema_.size());
    return columns_[col][row];
}

float
Table::FloatAt(std::size_t row, std::size_t col) const
{
    if (paged()) {
        const std::size_t label_col = store_->label_col();
        if (col == label_col) {
            return store_->Label(row);
        }
        return store_->Feature(row, col - (col > label_col ? 1 : 0));
    }
    return static_cast<float>(ValueAsDouble(At(row, col)));
}

const std::vector<Value>&
Table::Column(std::size_t col) const
{
    if (paged()) {
        throw InvalidArgument(
            "table " + name_ +
            ": Column() on a paged table — stream with ScanFeatures()");
    }
    DBS_ASSERT(col < schema_.size());
    return columns_[col];
}

std::uint64_t
Table::RowWireBytes(std::size_t row) const
{
    if (paged()) {
        // Every paged cell is a float32 on the wire.
        return static_cast<std::uint64_t>(schema_.size()) * sizeof(float);
    }
    std::uint64_t bytes = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        bytes += ValueWireBytes(At(row, c));
    }
    return bytes;
}

std::size_t
Table::LabelColumnIndex() const
{
    if (paged()) {
        return store_->label_col();
    }
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (schema_[c].name == "label") {
            return c;
        }
    }
    return schema_.size();
}

std::size_t
Table::NumFeatureColumns() const
{
    return schema_.size() -
           (LabelColumnIndex() < schema_.size() ? 1 : 0);
}

const RowBlock&
Table::MaterializeFeatures() const
{
    const std::size_t num_features = NumFeatureColumns();
    if (!features_.empty() || NumRows() == 0 || num_features == 0) {
        return features_;
    }
    if (paged()) {
        // Whole-table materialization of a paged table: stream every
        // chunk into one compact block. This is the compatibility
        // path — out-of-core consumers should use ScanFeatures() and
        // never hold the full table in memory.
        std::vector<float> values(NumRows() * num_features);
        storage::FeatureStream stream = store_->Scan();
        storage::StreamChunk chunk;
        while (stream.Next(chunk)) {
            std::memcpy(values.data() + chunk.row_begin * num_features,
                        chunk.view.data(),
                        chunk.view.rows() * num_features * sizeof(float));
        }
        RowBlock::NoteCopy(static_cast<std::uint64_t>(values.size()) *
                           sizeof(float));
        features_ = RowBlock(std::move(values), num_features);
        return features_;
    }
    const std::size_t label_col = LabelColumnIndex();
    std::vector<float> values(num_rows_ * num_features);
    std::size_t out_col = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (c == label_col) {
            continue;
        }
        const std::vector<Value>& column = columns_[c];
        float* out = values.data() + out_col;
        for (std::size_t r = 0; r < num_rows_; ++r) {
            out[r * num_features] =
                static_cast<float>(ValueAsDouble(column[r]));
        }
        ++out_col;
    }
    // The one counted copy: DBMS values -> float32 feature block.
    RowBlock::NoteCopy(static_cast<std::uint64_t>(values.size()) *
                       sizeof(float));
    features_ = RowBlock(std::move(values), num_features);
    return features_;
}

RowBlock
Table::MaterializeColumns(const std::vector<std::size_t>& cols) const
{
    if (cols.empty()) {
        throw InvalidArgument("table " + name_ +
                              ": MaterializeColumns needs columns");
    }
    for (std::size_t c : cols) {
        if (c >= schema_.size()) {
            throw InvalidArgument("table " + name_ +
                                  ": MaterializeColumns column out of "
                                  "range");
        }
    }
    const std::size_t num_rows = NumRows();
    const std::size_t width = cols.size();
    std::vector<float> values(num_rows * width);
    if (paged()) {
        // Read through the buffer pool; pages are touched once per
        // column run thanks to row-major iteration.
        for (std::size_t r = 0; r < num_rows; ++r) {
            for (std::size_t j = 0; j < width; ++j) {
                values[r * width + j] = FloatAt(r, cols[j]);
            }
        }
    } else {
        std::size_t out_col = 0;
        for (std::size_t c : cols) {
            const std::vector<Value>& column = columns_[c];
            float* out = values.data() + out_col;
            for (std::size_t r = 0; r < num_rows; ++r) {
                out[r * width] =
                    static_cast<float>(ValueAsDouble(column[r]));
            }
            ++out_col;
        }
    }
    RowBlock::NoteCopy(static_cast<std::uint64_t>(values.size()) *
                       sizeof(float));
    return RowBlock(std::move(values), width);
}

storage::FeatureStream
Table::ScanFeatures(
    const std::optional<storage::ScanPredicate>& predicate) const
{
    if (paged()) {
        return store_->Scan(predicate);
    }
    // In-memory: one chunk over the cached block. The predicate is a
    // page-pruning hint; with a single "page" the full view is the
    // (legal) conservative superset.
    return storage::FeatureStream::FromView(MaterializeFeatures().View());
}

}  // namespace dbscore
