#include "dbscore/dbms/table.h"

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

Table::Table(std::string name, std::vector<ColumnDef> schema)
    : name_(std::move(name)), schema_(std::move(schema))
{
    if (schema_.empty()) {
        throw InvalidArgument("table: needs at least one column");
    }
    columns_.resize(schema_.size());
}

std::size_t
Table::ColumnIndex(const std::string& column_name) const
{
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        if (EqualsIgnoreCase(schema_[i].name, column_name)) {
            return i;
        }
    }
    throw NotFound("table " + name_ + ": no column '" + column_name + "'");
}

void
Table::AppendRow(std::vector<Value> row)
{
    if (row.size() != schema_.size()) {
        throw InvalidArgument("table " + name_ + ": row arity mismatch");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        ColumnType expected = schema_[i].type;
        ColumnType got = TypeOf(row[i]);
        if (got == expected) {
            continue;
        }
        // Integer literals coerce into FLOAT columns.
        if (expected == ColumnType::kDouble && got == ColumnType::kInt64) {
            row[i] = static_cast<double>(std::get<std::int64_t>(row[i]));
            continue;
        }
        throw InvalidArgument(
            StrFormat("table %s: column %s expects %s, got %s",
                      name_.c_str(), schema_[i].name.c_str(),
                      ColumnTypeName(expected), ColumnTypeName(got)));
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        columns_[i].push_back(std::move(row[i]));
    }
    ++num_rows_;
    // Drop (don't mutate) the cached materialization; live views keep
    // the old block's storage alive through their refcounts.
    features_ = RowBlock();
}

const Value&
Table::At(std::size_t row, std::size_t col) const
{
    DBS_ASSERT(row < num_rows_ && col < schema_.size());
    return columns_[col][row];
}

const std::vector<Value>&
Table::Column(std::size_t col) const
{
    DBS_ASSERT(col < schema_.size());
    return columns_[col];
}

std::uint64_t
Table::RowWireBytes(std::size_t row) const
{
    std::uint64_t bytes = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        bytes += ValueWireBytes(At(row, c));
    }
    return bytes;
}

std::size_t
Table::LabelColumnIndex() const
{
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (schema_[c].name == "label") {
            return c;
        }
    }
    return schema_.size();
}

std::size_t
Table::NumFeatureColumns() const
{
    return schema_.size() -
           (LabelColumnIndex() < schema_.size() ? 1 : 0);
}

const RowBlock&
Table::MaterializeFeatures() const
{
    const std::size_t num_features = NumFeatureColumns();
    if (!features_.empty() || num_rows_ == 0 || num_features == 0) {
        return features_;
    }
    const std::size_t label_col = LabelColumnIndex();
    std::vector<float> values(num_rows_ * num_features);
    std::size_t out_col = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (c == label_col) {
            continue;
        }
        const std::vector<Value>& column = columns_[c];
        float* out = values.data() + out_col;
        for (std::size_t r = 0; r < num_rows_; ++r) {
            out[r * num_features] =
                static_cast<float>(ValueAsDouble(column[r]));
        }
        ++out_col;
    }
    // The one counted copy: DBMS values -> float32 feature block.
    RowBlock::NoteCopy(static_cast<std::uint64_t>(values.size()) *
                       sizeof(float));
    features_ = RowBlock(std::move(values), num_features);
    return features_;
}

}  // namespace dbscore
