#include "dbscore/dbms/table.h"

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore {

Table::Table(std::string name, std::vector<ColumnDef> schema)
    : name_(std::move(name)), schema_(std::move(schema))
{
    if (schema_.empty()) {
        throw InvalidArgument("table: needs at least one column");
    }
    columns_.resize(schema_.size());
}

std::size_t
Table::ColumnIndex(const std::string& column_name) const
{
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        if (EqualsIgnoreCase(schema_[i].name, column_name)) {
            return i;
        }
    }
    throw NotFound("table " + name_ + ": no column '" + column_name + "'");
}

void
Table::AppendRow(std::vector<Value> row)
{
    if (row.size() != schema_.size()) {
        throw InvalidArgument("table " + name_ + ": row arity mismatch");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        ColumnType expected = schema_[i].type;
        ColumnType got = TypeOf(row[i]);
        if (got == expected) {
            continue;
        }
        // Integer literals coerce into FLOAT columns.
        if (expected == ColumnType::kDouble && got == ColumnType::kInt64) {
            row[i] = static_cast<double>(std::get<std::int64_t>(row[i]));
            continue;
        }
        throw InvalidArgument(
            StrFormat("table %s: column %s expects %s, got %s",
                      name_.c_str(), schema_[i].name.c_str(),
                      ColumnTypeName(expected), ColumnTypeName(got)));
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
        columns_[i].push_back(std::move(row[i]));
    }
    ++num_rows_;
}

const Value&
Table::At(std::size_t row, std::size_t col) const
{
    DBS_ASSERT(row < num_rows_ && col < schema_.size());
    return columns_[col][row];
}

const std::vector<Value>&
Table::Column(std::size_t col) const
{
    DBS_ASSERT(col < schema_.size());
    return columns_[col];
}

std::uint64_t
Table::RowWireBytes(std::size_t row) const
{
    std::uint64_t bytes = 0;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
        bytes += ValueWireBytes(At(row, c));
    }
    return bytes;
}

}  // namespace dbscore
