/**
 * @file
 * dbscore::fault — deterministic, seedable fault injection.
 *
 * The paper's offload pipeline is exactly where a production DBMS gets
 * hurt by hardware and process failures: PCIe DMA transfers, FPGA
 * setup/completion signalling, GPU kernel launches, and the external
 * satellite process SQL Server restarts when it crashes. This module
 * makes every one of those an *injection site*: a process-wide
 * FaultInjector holds an installed FaultPlan (per-site probability or
 * every-Nth-op triggers, transient vs. sticky, one fixed seed) and the
 * operational code paths gate on it. With no plan installed every
 * check is a relaxed atomic load — the pipeline pays nothing.
 *
 * Determinism: each site owns an independent RNG stream forked from
 * the plan seed and a per-site operation counter, so the fault
 * sequence at a site is a pure function of (plan, seed, op index) —
 * the same plan replayed yields the same faults, which is what lets
 * the chaos tests and bench/wallclock_faults assert exact outcomes.
 *
 * Transient vs. sticky: a transient fault fails one operation (a
 * flaky DMA, a crashed process — retry may succeed); a sticky fault
 * leaves the site failed for every subsequent operation until
 * Repair() or a new plan — the model for an FPGA that needs
 * reconfiguration. Sticky sites are what drive the serving layer's
 * circuit breaker into permanent CPU degradation.
 */
#ifndef DBSCORE_FAULT_FAULT_H
#define DBSCORE_FAULT_FAULT_H

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"

namespace dbscore::fault {

/** Every operation class a FaultPlan can target. */
enum class FaultSite : std::uint8_t {
    kPcieDma = 0,      ///< one DMA transfer over a PCIe link
    kFpgaSetup,        ///< programming/launching the FPGA engine (CSRs)
    kFpgaCompletion,   ///< the FPGA's completion interrupt
    kGpuKernelLaunch,  ///< launching a GPU kernel
    kExternalInvoke,   ///< the external script process (crash)
    kStorageRead,      ///< one physical page read in the storage layer
    kStorageWrite,     ///< one physical page write (crash point: tears)
    kStorageSync,      ///< one durability barrier (fsync) in the pager
    kMetaCommit,       ///< the commit-point meta-slot write (crash point)
};

inline constexpr int kNumFaultSites = 9;

/** Stable lowercase-dash name, e.g. "pcie-dma". */
const char* FaultSiteName(FaultSite site);

/** Inverse of FaultSiteName (case-insensitive); nullopt if unknown. */
std::optional<FaultSite> ParseFaultSite(const std::string& name);

/** When/how one site fails. Both triggers may be active at once. */
struct SiteTrigger {
    /** Per-operation Bernoulli failure probability in [0, 1]. */
    double probability = 0.0;
    /** Fail every Nth operation at the site (1-indexed); 0 disables. */
    std::uint64_t every_nth = 0;
    /**
     * Sticky faults leave the site failed for every later operation
     * until Repair()/a new plan; transient faults fail one op.
     */
    bool sticky = false;

    bool enabled() const { return probability > 0.0 || every_nth > 0; }
};

/** A complete injection campaign: one trigger per site, one seed. */
struct FaultPlan {
    std::uint64_t seed = 0x5eed;
    std::array<SiteTrigger, kNumFaultSites> sites;

    SiteTrigger&
    At(FaultSite site)
    {
        return sites[static_cast<int>(site)];
    }

    const SiteTrigger&
    At(FaultSite site) const
    {
        return sites[static_cast<int>(site)];
    }

    /** True when no site has an enabled trigger. */
    bool Empty() const;
};

/**
 * Thrown by an injection site when its operation fails. Derives from
 * Error so un-fault-aware callers surface it like any engine failure
 * instead of silently succeeding; fault-aware layers (TryScore, the
 * serving retry loop) catch it by type.
 */
class FaultInjected : public Error {
 public:
    FaultInjected(FaultSite site, bool sticky, std::uint64_t sequence);

    FaultSite site() const { return site_; }
    bool sticky() const { return sticky_; }
    /** 1-indexed op count at the site when the fault fired. */
    std::uint64_t sequence() const { return sequence_; }

 private:
    FaultSite site_;
    bool sticky_;
    std::uint64_t sequence_;
};

/** Per-site accounting since the plan was installed. */
struct SiteStats {
    std::uint64_t ops = 0;       ///< operations checked
    std::uint64_t injected = 0;  ///< operations failed
    bool stuck = false;          ///< a sticky trigger fired and holds
};

/**
 * Process-wide injector. Install()/Clear() swap the whole plan
 * atomically; ShouldFail()/Check() are the per-operation gates.
 * Thread-safe: per-site state is guarded by one mutex (injection
 * sites are per-dispatch operations, far off any per-row hot path),
 * and the no-plan fast path is a single relaxed atomic load.
 */
class FaultInjector {
 public:
    static FaultInjector& Get();

    /** Installs @p plan, resetting all site counters and RNG streams. */
    void Install(const FaultPlan& plan);

    /** Removes the plan; every later check is a no-op. */
    void Clear();

    /** True while a non-empty plan is installed. */
    bool
    active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** The installed plan, if any. */
    std::optional<FaultPlan> plan() const;

    /**
     * Counts one operation at @p site and decides its fate. Never
     * throws; deterministic given the installed plan and the site's
     * op index.
     */
    bool ShouldFail(FaultSite site);

    /** ShouldFail, surfaced as an exception. @throws FaultInjected */
    void Check(FaultSite site);

    /** Clears a sticky-stuck site (models FPGA reconfiguration). */
    void Repair(FaultSite site);

    /** Per-site counters since Install(). */
    std::array<SiteStats, kNumFaultSites> Stats() const;

    /** Faults injected across all sites since Install(). */
    std::uint64_t TotalInjected() const;

 private:
    FaultInjector() = default;

    struct SiteState {
        Rng rng{0};
        SiteStats stats;
    };

    std::atomic<bool> active_{false};
    mutable std::mutex mutex_;
    bool have_plan_ = false;
    FaultPlan plan_;
    std::array<SiteState, kNumFaultSites> sites_;
};

/** Gate one operation at @p site. @throws FaultInjected */
inline void
CheckSite(FaultSite site)
{
    FaultInjector& injector = FaultInjector::Get();
    if (injector.active()) {
        injector.Check(site);
    }
}

/**
 * RAII plan guard for tests and benches: installs on construction,
 * clears (restoring a pristine injector) on destruction.
 */
class ScopedFaultPlan {
 public:
    explicit ScopedFaultPlan(const FaultPlan& plan)
    {
        FaultInjector::Get().Install(plan);
    }

    ~ScopedFaultPlan() { FaultInjector::Get().Clear(); }

    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace dbscore::fault

#endif  // DBSCORE_FAULT_FAULT_H
