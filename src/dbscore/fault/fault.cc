#include "dbscore/fault/fault.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dbscore::fault {

const char*
FaultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::kPcieDma:
        return "pcie-dma";
      case FaultSite::kFpgaSetup:
        return "fpga-setup";
      case FaultSite::kFpgaCompletion:
        return "fpga-completion";
      case FaultSite::kGpuKernelLaunch:
        return "gpu-kernel-launch";
      case FaultSite::kExternalInvoke:
        return "external-invoke";
      case FaultSite::kStorageRead:
        return "storage-read";
      case FaultSite::kStorageWrite:
        return "storage-write";
      case FaultSite::kStorageSync:
        return "storage-sync";
      case FaultSite::kMetaCommit:
        return "meta-commit";
    }
    return "unknown";
}

std::optional<FaultSite>
ParseFaultSite(const std::string& name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    for (int i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        if (lower == FaultSiteName(site)) {
            return site;
        }
    }
    return std::nullopt;
}

bool
FaultPlan::Empty() const
{
    for (const SiteTrigger& trigger : sites) {
        if (trigger.enabled()) {
            return false;
        }
    }
    return true;
}

namespace {

std::string
FaultMessage(FaultSite site, bool sticky, std::uint64_t sequence)
{
    std::ostringstream oss;
    oss << "injected " << (sticky ? "sticky" : "transient")
        << " fault at " << FaultSiteName(site) << " (op #" << sequence << ")";
    return oss.str();
}

}  // namespace

FaultInjected::FaultInjected(FaultSite site, bool sticky,
                             std::uint64_t sequence)
    : Error(FaultMessage(site, sticky, sequence)),
      site_(site),
      sticky_(sticky),
      sequence_(sequence)
{
}

FaultInjector&
FaultInjector::Get()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::Install(const FaultPlan& plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    have_plan_ = true;
    // One SplitMix64-seeded stream per site so the fault sequence at a
    // site does not depend on the op interleaving across sites.
    Rng root(plan.seed);
    for (int i = 0; i < kNumFaultSites; ++i) {
        sites_[i].rng = root.Fork();
        sites_[i].stats = SiteStats{};
    }
    active_.store(!plan.Empty(), std::memory_order_relaxed);
}

void
FaultInjector::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    have_plan_ = false;
    plan_ = FaultPlan{};
    for (SiteState& site : sites_) {
        site.stats = SiteStats{};
    }
    active_.store(false, std::memory_order_relaxed);
}

std::optional<FaultPlan>
FaultInjector::plan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!have_plan_) {
        return std::nullopt;
    }
    return plan_;
}

bool
FaultInjector::ShouldFail(FaultSite site)
{
    if (!active()) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!have_plan_) {
        return false;
    }
    const SiteTrigger& trigger = plan_.At(site);
    SiteState& state = sites_[static_cast<int>(site)];
    state.stats.ops++;
    if (state.stats.stuck) {
        state.stats.injected++;
        return true;
    }
    if (!trigger.enabled()) {
        return false;
    }
    bool fire = false;
    if (trigger.every_nth > 0 && state.stats.ops % trigger.every_nth == 0) {
        fire = true;
    }
    // Always draw when a probability trigger is set so the stream
    // position — and hence determinism — is independent of whether the
    // every-nth trigger fired first.
    if (trigger.probability > 0.0) {
        bool hit = state.rng.NextDouble() < trigger.probability;
        fire = fire || hit;
    }
    if (fire) {
        state.stats.injected++;
        if (trigger.sticky) {
            state.stats.stuck = true;
        }
    }
    return fire;
}

void
FaultInjector::Check(FaultSite site)
{
    if (!ShouldFail(site)) {
        return;
    }
    bool sticky;
    std::uint64_t sequence;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sticky = plan_.At(site).sticky;
        sequence = sites_[static_cast<int>(site)].stats.ops;
    }
    throw FaultInjected(site, sticky, sequence);
}

void
FaultInjector::Repair(FaultSite site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_[static_cast<int>(site)].stats.stuck = false;
}

std::array<SiteStats, kNumFaultSites>
FaultInjector::Stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::array<SiteStats, kNumFaultSites> out;
    for (int i = 0; i < kNumFaultSites; ++i) {
        out[i] = sites_[i].stats;
    }
    return out;
}

std::uint64_t
FaultInjector::TotalInjected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const SiteState& site : sites_) {
        total += site.stats.injected;
    }
    return total;
}

}  // namespace dbscore::fault
