/**
 * @file
 * Tensor operations plus an op-level cost ledger.
 *
 * Every op optionally records (FLOPs, bytes read, bytes written) into a
 * CostLedger. The GPU device model turns the ledger into simulated kernel
 * time, which is how the Hummingbird engine's "more instructions and more
 * L2/DRAM traffic, but perfectly regular" behaviour (paper Section IV-C1)
 * emerges from first principles rather than hand-tuned constants.
 */
#ifndef DBSCORE_TENSOR_OPS_H
#define DBSCORE_TENSOR_OPS_H

#include <array>
#include <cstdint>
#include <string>

#include "dbscore/tensor/matrix.h"

namespace dbscore {

/** Kinds of tensor kernels the compiler can emit. */
enum class OpKind : int {
    kGemm = 0,
    kCompare,
    kGather,
    kReduce,
    kElementwise,
    kNumKinds,
};

/** Returns a short name like "gemm". */
const char* OpKindName(OpKind kind);

/** Resource cost of one kernel invocation. */
struct OpCost {
    std::uint64_t flops = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t invocations = 0;

    OpCost& operator+=(const OpCost& other);
};

/** Accumulates kernel costs per op kind over a compiled program run. */
class CostLedger {
 public:
    void Record(OpKind kind, const OpCost& cost);

    const OpCost& Cost(OpKind kind) const;
    OpCost Total() const;

    /** Total kernel invocations (one simulated launch each). */
    std::uint64_t TotalInvocations() const { return Total().invocations; }

    void Clear();

    std::string Summary() const;

 private:
    std::array<OpCost, static_cast<int>(OpKind::kNumKinds)> costs_{};
};

/**
 * C = A * B. Blocked and multithreaded on the host.
 * Records a kGemm entry when @p ledger is non-null.
 *
 * @throws InvalidArgument on shape mismatch.
 */
Matrix MatMul(const Matrix& a, const Matrix& b, CostLedger* ledger = nullptr);

/**
 * Row-broadcast comparison: out[r][c] = (x[r][c] <= thresholds[0][c]).
 * @p thresholds must be 1 x x.cols().
 */
Matrix LessEqualRow(const Matrix& x, const Matrix& thresholds,
                    CostLedger* ledger = nullptr);

/**
 * Row-broadcast equality: out[r][c] = (x[r][c] == expected[0][c]).
 */
Matrix EqualsRow(const Matrix& x, const Matrix& expected,
                 CostLedger* ledger = nullptr);

/**
 * Column gather: out[r][j] = x[r][index[j]] for each of the requested
 * columns. Used by tree compilers to pick the feature each node tests.
 */
Matrix GatherColumns(const Matrix& x, const std::vector<std::int32_t>& index,
                     CostLedger* ledger = nullptr);

/** out[r] = argmax over columns of x's row r; ties -> lowest index. */
std::vector<std::int32_t> ArgMaxRows(const Matrix& x,
                                     CostLedger* ledger = nullptr);

/** Elementwise sum of two equal-shape matrices. */
Matrix Add(const Matrix& a, const Matrix& b, CostLedger* ledger = nullptr);

/** Multiplies every element by a scalar. */
Matrix Scale(const Matrix& a, float k, CostLedger* ledger = nullptr);

}  // namespace dbscore

#endif  // DBSCORE_TENSOR_OPS_H
