#include "dbscore/tensor/matrix.h"

#include <utility>

#include "dbscore/common/error.h"

namespace dbscore {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    if (data_.size() != rows * cols) {
        throw InvalidArgument("matrix: storage size mismatch");
    }
}

Matrix
Matrix::Zeros(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::FromBuffer(const float* data, std::size_t rows, std::size_t cols)
{
    RowBlock::NoteCopy(static_cast<std::uint64_t>(rows) * cols *
                       sizeof(float));
    return Matrix(rows, cols,
                  std::vector<float>(data, data + rows * cols));
}

Matrix
Matrix::FromView(RowView view)
{
    if (!view.contiguous()) {
        throw InvalidArgument("matrix: FromView requires a contiguous view");
    }
    Matrix m;
    m.rows_ = view.rows();
    m.cols_ = view.cols();
    m.view_ = std::move(view);
    return m;
}

float&
Matrix::At(std::size_t r, std::size_t c)
{
    DBS_ASSERT(r < rows_ && c < cols_);
    return data()[r * cols_ + c];
}

float
Matrix::At(std::size_t r, std::size_t c) const
{
    DBS_ASSERT(r < rows_ && c < cols_);
    return raw()[r * cols_ + c];
}

const float*
Matrix::RowPtr(std::size_t r) const
{
    DBS_ASSERT(r < rows_);
    return raw() + r * cols_;
}

float*
Matrix::RowPtr(std::size_t r)
{
    DBS_ASSERT(r < rows_);
    return data().data() + r * cols_;
}

const float*
Matrix::raw() const
{
    return view_.empty() ? data_.data() : view_.data();
}

const std::vector<float>&
Matrix::data() const
{
    if (!view_.empty()) {
        throw InvalidArgument(
            "matrix: view-backed matrix has no owned storage; use raw()");
    }
    return data_;
}

std::vector<float>&
Matrix::data()
{
    if (!view_.empty()) {
        throw InvalidArgument("matrix: view-backed matrices are read-only");
    }
    return data_;
}

bool
Matrix::operator==(const Matrix& other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        return false;
    }
    const float* a = raw();
    const float* b = other.raw();
    for (std::size_t i = 0, n = size(); i < n; ++i) {
        if (a[i] != b[i]) {
            return false;
        }
    }
    return true;
}

}  // namespace dbscore
