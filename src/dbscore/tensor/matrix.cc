#include "dbscore/tensor/matrix.h"

#include "dbscore/common/error.h"

namespace dbscore {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    if (data_.size() != rows * cols) {
        throw InvalidArgument("matrix: storage size mismatch");
    }
}

Matrix
Matrix::Zeros(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::FromBuffer(const float* data, std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols,
                  std::vector<float>(data, data + rows * cols));
}

float&
Matrix::At(std::size_t r, std::size_t c)
{
    DBS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

float
Matrix::At(std::size_t r, std::size_t c) const
{
    DBS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

const float*
Matrix::RowPtr(std::size_t r) const
{
    DBS_ASSERT(r < rows_);
    return data_.data() + r * cols_;
}

float*
Matrix::RowPtr(std::size_t r)
{
    DBS_ASSERT(r < rows_);
    return data_.data() + r * cols_;
}

}  // namespace dbscore
