#include "dbscore/tensor/ops.h"

#include <algorithm>
#include <sstream>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"

namespace dbscore {

const char*
OpKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kGemm: return "gemm";
      case OpKind::kCompare: return "compare";
      case OpKind::kGather: return "gather";
      case OpKind::kReduce: return "reduce";
      case OpKind::kElementwise: return "elementwise";
      case OpKind::kNumKinds: break;
    }
    return "?";
}

OpCost&
OpCost::operator+=(const OpCost& other)
{
    flops += other.flops;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    invocations += other.invocations;
    return *this;
}

void
CostLedger::Record(OpKind kind, const OpCost& cost)
{
    DBS_ASSERT(kind != OpKind::kNumKinds);
    costs_[static_cast<int>(kind)] += cost;
}

const OpCost&
CostLedger::Cost(OpKind kind) const
{
    DBS_ASSERT(kind != OpKind::kNumKinds);
    return costs_[static_cast<int>(kind)];
}

OpCost
CostLedger::Total() const
{
    OpCost total;
    for (const auto& c : costs_) {
        total += c;
    }
    return total;
}

void
CostLedger::Clear()
{
    costs_.fill(OpCost{});
}

std::string
CostLedger::Summary() const
{
    std::ostringstream os;
    for (int k = 0; k < static_cast<int>(OpKind::kNumKinds); ++k) {
        const OpCost& c = costs_[k];
        if (c.invocations == 0) {
            continue;
        }
        os << OpKindName(static_cast<OpKind>(k)) << ": "
           << c.invocations << " calls, " << c.flops << " flops, "
           << c.bytes_read + c.bytes_written << " bytes\n";
    }
    return os.str();
}

namespace {

/** Records a cost entry when a ledger is present. */
void
Record(CostLedger* ledger, OpKind kind, std::uint64_t flops,
       std::uint64_t read, std::uint64_t written)
{
    if (ledger != nullptr) {
        ledger->Record(kind, OpCost{flops, read, written, 1});
    }
}

}  // namespace

Matrix
MatMul(const Matrix& a, const Matrix& b, CostLedger* ledger)
{
    if (a.cols() != b.rows()) {
        throw InvalidArgument("matmul: inner dimensions differ");
    }
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    Matrix c(m, n);

    // i-k-j loop order keeps both B and C accesses sequential; chunk rows
    // across the pool for large inputs.
    auto worker = [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
            const float* arow = a.RowPtr(i);
            float* crow = c.RowPtr(i);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                if (av == 0.0f) {
                    continue;  // tree matrices are sparse one-hots
                }
                const float* brow = b.RowPtr(kk);
                for (std::size_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    };
    if (m * k * n > (1u << 20)) {
        ThreadPool::Shared().ParallelForChunked(m, worker);
    } else {
        worker(0, m);
    }

    Record(ledger, OpKind::kGemm,
           static_cast<std::uint64_t>(2) * m * k * n,
           (static_cast<std::uint64_t>(m) * k + static_cast<std::uint64_t>(k) * n) * sizeof(float),
           static_cast<std::uint64_t>(m) * n * sizeof(float));
    return c;
}

Matrix
LessEqualRow(const Matrix& x, const Matrix& thresholds, CostLedger* ledger)
{
    if (thresholds.rows() != 1 || thresholds.cols() != x.cols()) {
        throw InvalidArgument("less_equal_row: threshold shape mismatch");
    }
    Matrix out(x.rows(), x.cols());
    const float* th = thresholds.RowPtr(0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float* row = x.RowPtr(r);
        float* orow = out.RowPtr(r);
        for (std::size_t c = 0; c < x.cols(); ++c) {
            orow[c] = row[c] <= th[c] ? 1.0f : 0.0f;
        }
    }
    Record(ledger, OpKind::kCompare, x.size(),
           x.ByteSize() + thresholds.ByteSize(), out.ByteSize());
    return out;
}

Matrix
EqualsRow(const Matrix& x, const Matrix& expected, CostLedger* ledger)
{
    if (expected.rows() != 1 || expected.cols() != x.cols()) {
        throw InvalidArgument("equals_row: expected shape mismatch");
    }
    Matrix out(x.rows(), x.cols());
    const float* ex = expected.RowPtr(0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float* row = x.RowPtr(r);
        float* orow = out.RowPtr(r);
        for (std::size_t c = 0; c < x.cols(); ++c) {
            orow[c] = row[c] == ex[c] ? 1.0f : 0.0f;
        }
    }
    Record(ledger, OpKind::kCompare, x.size(),
           x.ByteSize() + expected.ByteSize(), out.ByteSize());
    return out;
}

Matrix
GatherColumns(const Matrix& x, const std::vector<std::int32_t>& index,
              CostLedger* ledger)
{
    for (std::int32_t idx : index) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= x.cols()) {
            throw InvalidArgument("gather: column index out of range");
        }
    }
    Matrix out(x.rows(), index.size());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float* row = x.RowPtr(r);
        float* orow = out.RowPtr(r);
        for (std::size_t j = 0; j < index.size(); ++j) {
            orow[j] = row[index[j]];
        }
    }
    Record(ledger, OpKind::kGather, 0,
           out.ByteSize() + index.size() * sizeof(std::int32_t),
           out.ByteSize());
    return out;
}

std::vector<std::int32_t>
ArgMaxRows(const Matrix& x, CostLedger* ledger)
{
    if (x.cols() == 0) {
        throw InvalidArgument("argmax: empty rows");
    }
    std::vector<std::int32_t> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float* row = x.RowPtr(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < x.cols(); ++c) {
            if (row[c] > row[best]) {  // strict > keeps lowest index on tie
                best = c;
            }
        }
        out[r] = static_cast<std::int32_t>(best);
    }
    Record(ledger, OpKind::kReduce, x.size(), x.ByteSize(),
           out.size() * sizeof(std::int32_t));
    return out;
}

Matrix
Add(const Matrix& a, const Matrix& b, CostLedger* ledger)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw InvalidArgument("add: shape mismatch");
    }
    Matrix out(a.rows(), a.cols());
    const float* ap = a.raw();
    const float* bp = b.raw();
    float* op = out.data().data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        op[i] = ap[i] + bp[i];
    }
    Record(ledger, OpKind::kElementwise, a.size(),
           a.ByteSize() + b.ByteSize(), out.ByteSize());
    return out;
}

Matrix
Scale(const Matrix& a, float k, CostLedger* ledger)
{
    Matrix out(a.rows(), a.cols());
    const float* ap = a.raw();
    float* op = out.data().data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        op[i] = ap[i] * k;
    }
    Record(ledger, OpKind::kElementwise, a.size(), a.ByteSize(),
           out.ByteSize());
    return out;
}

}  // namespace dbscore
