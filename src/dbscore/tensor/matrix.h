/**
 * @file
 * Dense float32 row-major matrix.
 *
 * This is the tensor substrate that the Hummingbird-style compiler lowers
 * tree ensembles into. It runs on the host for functional results; the
 * GPU device model separately converts the op-level cost ledger into
 * simulated kernel times.
 */
#ifndef DBSCORE_TENSOR_MATRIX_H
#define DBSCORE_TENSOR_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbscore {

/** Dense row-major float matrix. */
class Matrix {
 public:
    Matrix() = default;

    /** Allocates rows x cols zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Wraps existing storage; @p data must have rows*cols entries. */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    static Matrix Zeros(std::size_t rows, std::size_t cols);

    /** Copies @p rows x @p cols floats from an external buffer. */
    static Matrix FromBuffer(const float* data, std::size_t rows,
                             std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    std::uint64_t ByteSize() const { return data_.size() * sizeof(float); }

    float& At(std::size_t r, std::size_t c);
    float At(std::size_t r, std::size_t c) const;

    const float* RowPtr(std::size_t r) const;
    float* RowPtr(std::size_t r);

    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    bool operator==(const Matrix& other) const = default;

 private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

}  // namespace dbscore

#endif  // DBSCORE_TENSOR_MATRIX_H
