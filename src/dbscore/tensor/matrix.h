/**
 * @file
 * Dense float32 row-major matrix.
 *
 * This is the tensor substrate that the Hummingbird-style compiler lowers
 * tree ensembles into. It runs on the host for functional results; the
 * GPU device model separately converts the op-level cost ledger into
 * simulated kernel times.
 *
 * A matrix either owns its storage (mutable, the default) or adopts a
 * contiguous RowView (FromView) and reads the viewed data in place —
 * the zero-copy entry point for feature matrices arriving from the data
 * plane. View-backed matrices are read-only: the mutating accessors
 * throw.
 */
#ifndef DBSCORE_TENSOR_MATRIX_H
#define DBSCORE_TENSOR_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbscore/data/row_block.h"

namespace dbscore {

/** Dense row-major float matrix. */
class Matrix {
 public:
    Matrix() = default;

    /** Allocates rows x cols zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Wraps existing storage; @p data must have rows*cols entries. */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    static Matrix Zeros(std::size_t rows, std::size_t cols);

    /**
     * Copies @p rows x @p cols floats from an external buffer. The copy
     * is counted against RowBlock::CopyStats; hot paths should adopt a
     * view via FromView instead.
     */
    static Matrix FromBuffer(const float* data, std::size_t rows,
                             std::size_t cols);

    /**
     * Adopts a contiguous view without copying. The result is
     * read-only; the view's keepalive (if any) pins the storage.
     * @throws InvalidArgument for strided (non-contiguous) views
     */
    static Matrix FromView(RowView view);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return rows_ * cols_; }
    std::uint64_t ByteSize() const
    {
        return static_cast<std::uint64_t>(rows_) * cols_ * sizeof(float);
    }

    /** True when backed by owned (mutable) storage. */
    bool owns_data() const { return view_.empty(); }

    float& At(std::size_t r, std::size_t c);
    float At(std::size_t r, std::size_t c) const;

    const float* RowPtr(std::size_t r) const;
    float* RowPtr(std::size_t r);

    /** Flat read pointer to rows*cols contiguous values. */
    const float* raw() const;

    /**
     * Owned storage. @throws InvalidArgument on a view-backed matrix
     * (use raw()/RowPtr()).
     */
    const std::vector<float>& data() const;
    std::vector<float>& data();

    bool operator==(const Matrix& other) const;

 private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
    /** Adopted storage; when non-empty the matrix is read-only. */
    RowView view_;
};

}  // namespace dbscore

#endif  // DBSCORE_TENSOR_MATRIX_H
