#include "dbscore/storage/pager.h"

#include <cstring>
#include <vector>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/fault/fault.h"
#include "dbscore/trace/trace.h"

namespace dbscore::storage {

namespace {

/** Superblock payload ("DBSB", version, page size). */
struct Superblock {
    std::uint32_t magic = 0x44425342u;
    std::uint32_t version = 1;
    std::uint32_t page_size = 0;
};

constexpr std::uint32_t kSuperblockMagic = 0x44425342u;

}  // namespace

Pager::Pager(std::string path, const Options& options)
    : path_(std::move(path)),
      page_size_(options.page_size),
      read_retries_(options.read_retries)
{
    if (options.create) {
        if (page_size_ < kMinPageSize) {
            throw InvalidArgument(
                StrFormat("pager %s: page size %zu below minimum %zu",
                          path_.c_str(), page_size_, kMinPageSize));
        }
        // Truncate, then reopen read/write.
        std::ofstream create(path_,
                             std::ios::binary | std::ios::trunc);
        if (!create) {
            throw IoError("pager: cannot create '" + path_ + "'");
        }
        create.close();
        file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
        if (!file_) {
            throw IoError("pager: cannot open '" + path_ + "'");
        }
        // Page 0: the superblock.
        std::vector<std::uint8_t> page(page_size_);
        InitPage(page.data(), page_size_, 0, PageType::kSuperblock);
        Superblock sb;
        sb.page_size = static_cast<std::uint32_t>(page_size_);
        HeaderOf(page.data())->payload_bytes = sizeof(Superblock);
        std::memcpy(PayloadOf(page.data()), &sb, sizeof(sb));
        num_pages_ = 1;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            WriteLocked(0, page.data());
        }
        stats_ = PagerStats{};  // creation I/O is not workload I/O
        return;
    }

    file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
    if (!file_) {
        throw IoError("pager: cannot open '" + path_ + "'");
    }
    file_.seekg(0, std::ios::end);
    const auto file_bytes = static_cast<std::uint64_t>(file_.tellg());
    if (file_bytes < kMinPageSize) {
        throw DataCorruption("pager: '" + path_ +
                             "' is too small to hold a superblock");
    }
    // Bootstrap: read the header + superblock at the minimum page size
    // to learn the file's real page size, then re-check.
    std::vector<std::uint8_t> boot(kMinPageSize);
    file_.seekg(0);
    file_.read(reinterpret_cast<char*>(boot.data()),
               static_cast<std::streamsize>(boot.size()));
    if (!file_) {
        throw IoError("pager: short read of superblock in '" + path_ + "'");
    }
    const PageHeader* header = HeaderOf(boot.data());
    Superblock sb;
    std::memcpy(&sb, PayloadOf(boot.data()), sizeof(sb));
    if (header->magic != kPageMagic || sb.magic != kSuperblockMagic) {
        throw DataCorruption("pager: '" + path_ +
                             "' is not a dbscore page file");
    }
    page_size_ = sb.page_size;
    if (page_size_ < kMinPageSize || file_bytes % page_size_ != 0) {
        throw DataCorruption(
            StrFormat("pager %s: file size %llu is not a multiple of "
                      "page size %zu",
                      path_.c_str(),
                      static_cast<unsigned long long>(file_bytes),
                      page_size_));
    }
    num_pages_ = static_cast<std::uint32_t>(file_bytes / page_size_);
    file_.clear();
    // Full integrity check of page 0 at the real page size.
    std::vector<std::uint8_t> page(page_size_);
    Read(0, page.data());
    stats_ = PagerStats{};
}

Pager::~Pager()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_.is_open()) {
        file_.flush();
    }
}

std::uint32_t
Pager::num_pages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return num_pages_;
}

std::uint32_t
Pager::Alloc(PageType type)
{
    std::vector<std::uint8_t> page(page_size_);
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t id = num_pages_;
    InitPage(page.data(), page_size_, id, type);
    WriteLocked(id, page.data());
    ++num_pages_;
    ++stats_.allocs;
    return id;
}

void
Pager::SeekTo(std::uint32_t page_id, bool for_write)
{
    const auto offset = static_cast<std::streamoff>(
        static_cast<std::uint64_t>(page_id) * page_size_);
    file_.clear();
    if (for_write) {
        file_.seekp(offset);
    } else {
        file_.seekg(offset);
    }
}

void
Pager::Read(std::uint32_t page_id, std::uint8_t* buf)
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();
    fault::FaultInjector& injector = fault::FaultInjector::Get();

    std::lock_guard<std::mutex> lock(mutex_);
    if (page_id >= num_pages_) {
        throw InvalidArgument(
            StrFormat("pager %s: read of page %u past end (%u pages)",
                      path_.c_str(), page_id, num_pages_));
    }
    // The physical read is a fault-injection site: transient injected
    // faults model a flaky I/O path and are retried; sticky faults
    // model a dead device and propagate.
    for (int attempt = 0;; ++attempt) {
        if (injector.active()) {
            try {
                injector.Check(fault::FaultSite::kStorageRead);
            } catch (const fault::FaultInjected& fault) {
                tracer.EmitWall(
                    trace::StageKind::kFault, "storage-read",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)}});
                if (fault.sticky() || attempt >= read_retries_) {
                    throw;
                }
                ++stats_.read_retries;
                continue;
            }
        }
        break;
    }
    SeekTo(page_id, /*for_write=*/false);
    file_.read(reinterpret_cast<char*>(buf),
               static_cast<std::streamsize>(page_size_));
    if (!file_) {
        throw IoError(StrFormat("pager %s: short read of page %u",
                                path_.c_str(), page_id));
    }
    const PageHeader* header = HeaderOf(buf);
    const std::uint64_t expected = ComputePageChecksum(buf, page_size_);
    if (header->magic != kPageMagic || header->page_id != page_id ||
        header->checksum != expected) {
        ++stats_.checksum_failures;
        throw DataCorruption(
            StrFormat("pager %s: page %u failed integrity check "
                      "(magic %#x, self-id %u, checksum %llx vs %llx) — "
                      "torn write or corruption",
                      path_.c_str(), page_id, header->magic,
                      header->page_id,
                      static_cast<unsigned long long>(header->checksum),
                      static_cast<unsigned long long>(expected)));
    }
    ++stats_.reads;
    tracer.EmitWall(trace::StageKind::kPageRead, "page-read",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)},
                     {"bytes", static_cast<double>(page_size_)}});
}

void
Pager::Write(std::uint32_t page_id, std::uint8_t* buf)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (page_id >= num_pages_) {
        throw InvalidArgument(
            StrFormat("pager %s: write of page %u past end (%u pages)",
                      path_.c_str(), page_id, num_pages_));
    }
    WriteLocked(page_id, buf);
}

void
Pager::WriteLocked(std::uint32_t page_id, std::uint8_t* buf)
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();
    PageHeader* header = HeaderOf(buf);
    if (header->page_id != page_id || header->magic != kPageMagic) {
        throw InvalidArgument(
            StrFormat("pager %s: buffer header (id %u) does not match "
                      "write target page %u",
                      path_.c_str(), header->page_id, page_id));
    }
    header->checksum = 0;
    header->checksum = ComputePageChecksum(buf, page_size_);
    SeekTo(page_id, /*for_write=*/true);
    file_.write(reinterpret_cast<const char*>(buf),
                static_cast<std::streamsize>(page_size_));
    if (!file_) {
        throw IoError(StrFormat("pager %s: short write of page %u",
                                path_.c_str(), page_id));
    }
    ++stats_.writes;
    tracer.EmitWall(trace::StageKind::kPageWrite, "page-write",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)},
                     {"bytes", static_cast<double>(page_size_)}});
}

void
Pager::Sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    file_.flush();
    if (!file_) {
        throw IoError("pager: flush failed for '" + path_ + "'");
    }
}

PagerStats
Pager::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
Pager::ResetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = PagerStats{};
}

}  // namespace dbscore::storage
