#include "dbscore/storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/trace/trace.h"

namespace dbscore::storage {

namespace {

/** Superblock payload ("DBSB", version, page size). */
struct Superblock {
    std::uint32_t magic = 0x44425342u;
    std::uint32_t version = 1;
    std::uint32_t page_size = 0;
};

constexpr std::uint32_t kSuperblockMagic = 0x44425342u;

}  // namespace

const char*
SyncModeName(SyncMode mode)
{
    switch (mode) {
    case SyncMode::kNone: return "none";
    case SyncMode::kFlush: return "flush";
    case SyncMode::kFsync: return "fsync";
    }
    return "?";
}

Pager::Pager(std::string path, const Options& options)
    : path_(std::move(path)),
      page_size_(options.page_size),
      read_retries_(options.read_retries),
      sync_mode_(options.sync_mode)
{
    if (options.create) {
        if (page_size_ < kMinPageSize) {
            throw InvalidArgument(
                StrFormat("pager %s: page size %zu below minimum %zu",
                          path_.c_str(), page_size_, kMinPageSize));
        }
        fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
        if (fd_ < 0) {
            throw IoError("pager: cannot create '" + path_ + "': " +
                          std::strerror(errno));
        }
        // Page 0: the superblock.
        std::vector<std::uint8_t> page(page_size_);
        InitPage(page.data(), page_size_, 0, PageType::kSuperblock);
        Superblock sb;
        sb.page_size = static_cast<std::uint32_t>(page_size_);
        HeaderOf(page.data())->payload_bytes = sizeof(Superblock);
        std::memcpy(PayloadOf(page.data()), &sb, sizeof(sb));
        num_pages_ = 1;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            WriteLocked(0, page.data(), fault::FaultSite::kStorageWrite);
        }
        stats_ = PagerStats{};  // creation I/O is not workload I/O
        return;
    }

    fd_ = ::open(path_.c_str(), O_RDWR);
    if (fd_ < 0) {
        throw IoError("pager: cannot open '" + path_ + "': " +
                      std::strerror(errno));
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
        throw IoError("pager: cannot size '" + path_ + "'");
    }
    const auto file_bytes = static_cast<std::uint64_t>(end);
    if (file_bytes < kMinPageSize) {
        throw DataCorruption("pager: '" + path_ +
                             "' is too small to hold a superblock");
    }
    // Bootstrap: read the header + superblock at the minimum page size
    // to learn the file's real page size, then re-check.
    std::vector<std::uint8_t> boot(kMinPageSize);
    if (::pread(fd_, boot.data(), boot.size(), 0) !=
        static_cast<ssize_t>(boot.size())) {
        throw IoError("pager: short read of superblock in '" + path_ + "'");
    }
    const PageHeader* header = HeaderOf(boot.data());
    Superblock sb;
    std::memcpy(&sb, PayloadOf(boot.data()), sizeof(sb));
    if (header->magic != kPageMagic || sb.magic != kSuperblockMagic) {
        throw DataCorruption("pager: '" + path_ +
                             "' is not a dbscore page file");
    }
    page_size_ = sb.page_size;
    if (page_size_ < kMinPageSize || file_bytes < page_size_) {
        throw DataCorruption(
            StrFormat("pager %s: superblock page size %zu is invalid "
                      "for a %llu-byte file",
                      path_.c_str(), page_size_,
                      static_cast<unsigned long long>(file_bytes)));
    }
    // A crash can tear the write that was *extending* the file,
    // leaving a partial page past the last full one. That page was
    // never reachable from a committed generation (data is barriered
    // before the commit point), so drop it rather than reject the
    // file: count it as a torn write and truncate to the last full
    // page boundary.
    num_pages_ = static_cast<std::uint32_t>(file_bytes / page_size_);
    const bool torn_tail = file_bytes % page_size_ != 0;
    if (torn_tail &&
        ::ftruncate(fd_, static_cast<off_t>(num_pages_) *
                             static_cast<off_t>(page_size_)) != 0) {
        throw IoError("pager: cannot truncate torn tail of '" + path_ +
                      "': " + std::strerror(errno));
    }
    // Full integrity check of page 0 at the real page size.
    std::vector<std::uint8_t> page(page_size_);
    Read(0, page.data());
    stats_ = PagerStats{};
    stats_.torn_writes = torn_tail ? 1 : 0;
}

Pager::~Pager()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        // Writes went straight to the fd; nothing buffered to flush.
        // After a simulated crash, close without any further I/O —
        // completing the interrupted commit here would undo the crash.
        ::close(fd_);
        fd_ = -1;
    }
}

void
Pager::ThrowIfCrashedLocked() const
{
    if (crashed_) {
        throw IoError("pager '" + path_ +
                      "': simulated crash — reopen the file to recover");
    }
}

bool
Pager::crashed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return crashed_;
}

std::uint32_t
Pager::num_pages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return num_pages_;
}

void
Pager::RawReadLocked(std::uint32_t page_id, std::uint8_t* buf)
{
    const auto offset = static_cast<off_t>(
        static_cast<std::uint64_t>(page_id) * page_size_);
    std::size_t done = 0;
    while (done < page_size_) {
        const ssize_t n = ::pread(fd_, buf + done, page_size_ - done,
                                  offset + static_cast<off_t>(done));
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            throw IoError(StrFormat("pager %s: short read of page %u",
                                    path_.c_str(), page_id));
        }
        done += static_cast<std::size_t>(n);
    }
}

void
Pager::RawWriteLocked(std::uint32_t page_id, const std::uint8_t* buf,
                      std::size_t len)
{
    const auto offset = static_cast<off_t>(
        static_cast<std::uint64_t>(page_id) * page_size_);
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::pwrite(fd_, buf + done, len - done,
                                   offset + static_cast<off_t>(done));
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            throw IoError(StrFormat("pager %s: short write of page %u: %s",
                                    path_.c_str(), page_id,
                                    std::strerror(errno)));
        }
        done += static_cast<std::size_t>(n);
    }
}

std::uint32_t
Pager::Alloc(PageType type)
{
    std::vector<std::uint8_t> page(page_size_);
    std::lock_guard<std::mutex> lock(mutex_);
    ThrowIfCrashedLocked();
    const std::uint32_t id = num_pages_;
    InitPage(page.data(), page_size_, id, type);
    WriteLocked(id, page.data(), fault::FaultSite::kStorageWrite);
    ++num_pages_;
    ++stats_.allocs;
    return id;
}

void
Pager::Reinit(std::uint32_t page_id, PageType type)
{
    std::vector<std::uint8_t> page(page_size_);
    std::lock_guard<std::mutex> lock(mutex_);
    ThrowIfCrashedLocked();
    if (page_id == 0 || page_id >= num_pages_) {
        throw InvalidArgument(
            StrFormat("pager %s: reinit of page %u out of range "
                      "(%u pages)",
                      path_.c_str(), page_id, num_pages_));
    }
    InitPage(page.data(), page_size_, page_id, type);
    WriteLocked(page_id, page.data(), fault::FaultSite::kStorageWrite);
}

void
Pager::Read(std::uint32_t page_id, std::uint8_t* buf)
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();
    fault::FaultInjector& injector = fault::FaultInjector::Get();

    std::lock_guard<std::mutex> lock(mutex_);
    ThrowIfCrashedLocked();
    if (page_id >= num_pages_) {
        throw InvalidArgument(
            StrFormat("pager %s: read of page %u past end (%u pages)",
                      path_.c_str(), page_id, num_pages_));
    }
    // The physical read is a fault-injection site: transient injected
    // faults model a flaky I/O path and are retried; sticky faults
    // model a dead device and propagate.
    for (int attempt = 0;; ++attempt) {
        if (injector.active()) {
            try {
                injector.Check(fault::FaultSite::kStorageRead);
            } catch (const fault::FaultInjected& fault) {
                tracer.EmitWall(
                    trace::StageKind::kFault, "storage-read",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)}});
                if (fault.sticky() || attempt >= read_retries_) {
                    throw;
                }
                ++stats_.read_retries;
                continue;
            }
        }
        break;
    }
    RawReadLocked(page_id, buf);
    const PageHeader* header = HeaderOf(buf);
    const std::uint64_t expected = ComputePageChecksum(buf, page_size_);
    if (header->magic != kPageMagic || header->page_id != page_id ||
        header->checksum != expected) {
        ++stats_.checksum_failures;
        throw DataCorruption(
            StrFormat("pager %s: page %u failed integrity check "
                      "(magic %#x, self-id %u, checksum %llx vs %llx) — "
                      "torn write or corruption",
                      path_.c_str(), page_id, header->magic,
                      header->page_id,
                      static_cast<unsigned long long>(header->checksum),
                      static_cast<unsigned long long>(expected)));
    }
    ++stats_.reads;
    tracer.EmitWall(trace::StageKind::kPageRead, "page-read",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)},
                     {"bytes", static_cast<double>(page_size_)}});
}

void
Pager::Write(std::uint32_t page_id, std::uint8_t* buf,
             fault::FaultSite site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThrowIfCrashedLocked();
    if (page_id >= num_pages_) {
        throw InvalidArgument(
            StrFormat("pager %s: write of page %u past end (%u pages)",
                      path_.c_str(), page_id, num_pages_));
    }
    WriteLocked(page_id, buf, site);
}

void
Pager::WriteLocked(std::uint32_t page_id, std::uint8_t* buf,
                   fault::FaultSite site)
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();
    PageHeader* header = HeaderOf(buf);
    if (header->page_id != page_id || header->magic != kPageMagic) {
        throw InvalidArgument(
            StrFormat("pager %s: buffer header (id %u) does not match "
                      "write target page %u",
                      path_.c_str(), header->page_id, page_id));
    }
    header->checksum = 0;
    header->checksum = ComputePageChecksum(buf, page_size_);
    // Crash point: a firing kStorageWrite/kMetaCommit trigger models
    // the process dying mid-write — only the first half of the page
    // reaches the file, and within that prefix the header's checksum
    // sector is garbled (sectors land in any order, so the checksum
    // need not be the part that survived). Garbling it keeps the tear
    // deterministic: without it, a page whose live payload fits the
    // written prefix — a meta slot, say — would checksum clean against
    // a stale-but-identical tail and silently complete the commit.
    // The pager is dead until the file is reopened.
    fault::FaultInjector& injector = fault::FaultInjector::Get();
    if (injector.active()) {
        try {
            injector.Check(site);
        } catch (const fault::FaultInjected&) {
            header->checksum ^= 0xDEADBEEFDEADBEEFull;
            RawWriteLocked(page_id, buf, page_size_ / 2);
            crashed_ = true;
            ++stats_.torn_writes;
            tracer.EmitWall(trace::StageKind::kFault,
                            fault::FaultSiteName(site),
                            trace::TraceCollector::Current(), wall_start,
                            tracer.NowWallMicros() - wall_start,
                            {{"page_id", static_cast<double>(page_id)}});
            throw;
        }
    }
    RawWriteLocked(page_id, buf, page_size_);
    ++stats_.writes;
    tracer.EmitWall(trace::StageKind::kPageWrite, "page-write",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)},
                     {"bytes", static_cast<double>(page_size_)}});
}

void
Pager::Sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThrowIfCrashedLocked();
    // Crash point: dying at the barrier. Every pwrite before it is
    // already in the kernel, so nothing tears — the commit simply
    // never reaches its meta write.
    fault::FaultInjector& injector = fault::FaultInjector::Get();
    if (injector.active()) {
        try {
            injector.Check(fault::FaultSite::kStorageSync);
        } catch (const fault::FaultInjected&) {
            crashed_ = true;
            throw;
        }
    }
    switch (sync_mode_) {
    case SyncMode::kNone:
    case SyncMode::kFlush:
        // fd writes are already with the kernel; no device barrier.
        break;
    case SyncMode::kFsync:
#if defined(__linux__)
        if (::fdatasync(fd_) != 0) {
#else
        if (::fsync(fd_) != 0) {
#endif
            throw IoError("pager: fsync failed for '" + path_ + "': " +
                          std::strerror(errno));
        }
        break;
    }
    ++stats_.syncs;
}

PagerStats
Pager::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
Pager::ResetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = PagerStats{};
}

}  // namespace dbscore::storage
