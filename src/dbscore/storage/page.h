/**
 * @file
 * On-disk page format for dbscore::storage.
 *
 * Every page in a page file is a fixed-size block that begins with a
 * PageHeader: magic, the page's own id, a type tag, the valid payload
 * length, and a 64-bit checksum over the entire page (header with the
 * checksum field zeroed, plus payload). The self-id catches reads
 * routed to the wrong offset; the checksum catches bit rot and torn
 * writes — a page half-written at crash time fails verification on
 * the next read instead of silently yielding garbage features.
 *
 * Layout (page size is configurable per file, default 4 KiB like the
 * Mini-DB exemplar):
 *
 *   +--------------------------+  offset 0
 *   | PageHeader (24 B)        |
 *   +--------------------------+  offset kPageHeaderSize
 *   | payload (page_size - 24) |
 *   +--------------------------+
 *
 * The header is 4-byte-aligned-friendly: payload starts at offset 24,
 * so float32 feature values stored in the payload can be viewed in
 * place by the zero-copy data plane (data/row_block.h).
 */
#ifndef DBSCORE_STORAGE_PAGE_H
#define DBSCORE_STORAGE_PAGE_H

#include <cstddef>
#include <cstdint>

namespace dbscore::storage {

/** First bytes of every page ("DBPG"). */
inline constexpr std::uint32_t kPageMagic = 0x44425047u;

/** Default page size; power of two, must exceed kPageHeaderSize. */
inline constexpr std::size_t kDefaultPageSize = 4096;

/** Smallest page size Pager accepts. */
inline constexpr std::size_t kMinPageSize = 256;

/** What a page holds. */
enum class PageType : std::uint16_t {
    kFree = 0,        ///< allocated but not yet assigned a role
    kSuperblock,      ///< page 0: file-wide metadata (pager-owned)
    kTableMeta,       ///< paged-table catalog (schema, counts, roots)
    kDirectory,       ///< chained list of page ids
    kFeatures,        ///< row-major float32 feature rows
    kLabels,          ///< float32 label column values
    kZoneMap,         ///< chained per-page min/max zone-map entries
    kFreeList,        ///< chained u32 ids of reclaimable pages
};

const char* PageTypeName(PageType type);

/**
 * Fixed header at the start of every page. Plain trivially-copyable
 * struct written byte-for-byte; files are host-endian (like the rest
 * of the repo's serialized artifacts).
 */
struct PageHeader {
    std::uint32_t magic = kPageMagic;
    std::uint32_t page_id = 0;
    std::uint16_t type = 0;
    std::uint16_t flags = 0;
    /** Valid payload bytes after the header. */
    std::uint32_t payload_bytes = 0;
    /** Checksum over the whole page with this field zeroed. */
    std::uint64_t checksum = 0;
};

inline constexpr std::size_t kPageHeaderSize = sizeof(PageHeader);
static_assert(kPageHeaderSize == 24, "header layout is part of the format");

/** Usable payload bytes for a given page size. */
inline constexpr std::size_t
PagePayloadBytes(std::size_t page_size)
{
    return page_size - kPageHeaderSize;
}

/**
 * FNV-1a 64-bit over the whole page, with the header's checksum field
 * treated as zero. Dependency-free and good enough to catch torn
 * writes and stray bit flips (this is an integrity check, not crypto).
 */
std::uint64_t ComputePageChecksum(const std::uint8_t* page,
                                  std::size_t page_size);

/** Header view of a raw page buffer. */
inline PageHeader*
HeaderOf(std::uint8_t* page)
{
    return reinterpret_cast<PageHeader*>(page);
}

inline const PageHeader*
HeaderOf(const std::uint8_t* page)
{
    return reinterpret_cast<const PageHeader*>(page);
}

/** Payload start of a raw page buffer. */
inline std::uint8_t*
PayloadOf(std::uint8_t* page)
{
    return page + kPageHeaderSize;
}

inline const std::uint8_t*
PayloadOf(const std::uint8_t* page)
{
    return page + kPageHeaderSize;
}

/** Stamps magic/id/type on @p page (checksum left for the writer). */
void InitPage(std::uint8_t* page, std::size_t page_size,
              std::uint32_t page_id, PageType type);

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_PAGE_H
