#include "dbscore/storage/page.h"

#include <cstring>

namespace dbscore::storage {

const char*
PageTypeName(PageType type)
{
    switch (type) {
    case PageType::kFree: return "free";
    case PageType::kSuperblock: return "superblock";
    case PageType::kTableMeta: return "table-meta";
    case PageType::kDirectory: return "directory";
    case PageType::kFeatures: return "features";
    case PageType::kLabels: return "labels";
    case PageType::kZoneMap: return "zone-map";
    case PageType::kFreeList: return "free-list";
    }
    return "?";
}

namespace {

inline std::uint64_t
Fnv1a(std::uint64_t hash, const std::uint8_t* data, std::size_t len)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= kPrime;
    }
    return hash;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/** Byte offset of PageHeader::checksum (it is the last header field). */
constexpr std::size_t kChecksumOffset = kPageHeaderSize - sizeof(std::uint64_t);

}  // namespace

std::uint64_t
ComputePageChecksum(const std::uint8_t* page, std::size_t page_size)
{
    const std::uint8_t zeros[sizeof(std::uint64_t)] = {};
    std::uint64_t hash = Fnv1a(kFnvOffset, page, kChecksumOffset);
    hash = Fnv1a(hash, zeros, sizeof(zeros));
    return Fnv1a(hash, page + kPageHeaderSize,
                 page_size - kPageHeaderSize);
}

void
InitPage(std::uint8_t* page, std::size_t page_size, std::uint32_t page_id,
         PageType type)
{
    std::memset(page, 0, page_size);
    PageHeader* header = HeaderOf(page);
    header->magic = kPageMagic;
    header->page_id = page_id;
    header->type = static_cast<std::uint16_t>(type);
    header->flags = 0;
    header->payload_bytes = 0;
    header->checksum = 0;
}

}  // namespace dbscore::storage
