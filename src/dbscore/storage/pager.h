/**
 * @file
 * Pager: fixed-size page I/O over one file, with integrity checks.
 *
 * The pager is the lowest layer of the out-of-core data plane (ISSUE /
 * ROADMAP item 3; the Mini-DB pager in SNIPPETS.md is the structural
 * exemplar): open/alloc/read/write/sync over a single page file whose
 * page 0 is a superblock recording the file's page size. Every write
 * stamps the page's checksum; every read verifies magic, self-id, and
 * checksum, so torn writes and bit rot surface as DataCorruption
 * instead of silent bad features.
 *
 * Resilience: each physical page read is a dbscore::fault injection
 * site (FaultSite::kStorageRead). Transient injected faults are
 * retried up to Options::read_retries times (counted in stats and
 * traced as kFault spans); sticky faults propagate to the caller like
 * a dead disk would.
 *
 * Observability: reads and writes emit wall-clock kPageRead /
 * kPageWrite trace spans, so file I/O shows up in the Fig-11-style
 * breakdown next to marshal and scoring time.
 *
 * Thread safety: all methods serialize on an internal mutex (one file
 * descriptor, seek+read I/O). Concurrency above this layer comes from
 * the BufferPool caching frames in memory.
 */
#ifndef DBSCORE_STORAGE_PAGER_H
#define DBSCORE_STORAGE_PAGER_H

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "dbscore/storage/page.h"

namespace dbscore::storage {

/** Counters since the pager was opened. */
struct PagerStats {
    std::uint64_t reads = 0;         ///< pages read (successful)
    std::uint64_t writes = 0;        ///< pages written
    std::uint64_t allocs = 0;        ///< pages allocated
    std::uint64_t read_retries = 0;  ///< injected-fault retries
    std::uint64_t checksum_failures = 0;
};

/** One open page file. */
class Pager {
 public:
    struct Options {
        std::size_t page_size = kDefaultPageSize;
        /** Create (truncate) the file instead of opening it. */
        bool create = false;
        /** Transient injected read faults retried this many times. */
        int read_retries = 2;
    };

    /**
     * Opens (or creates) the page file at @p path. Creation writes the
     * superblock; opening validates it and adopts its page size.
     * @throws IoError / DataCorruption
     */
    Pager(std::string path, const Options& options);
    ~Pager();

    Pager(const Pager&) = delete;
    Pager& operator=(const Pager&) = delete;

    const std::string& path() const { return path_; }
    std::size_t page_size() const { return page_size_; }

    /** Pages in the file, including the superblock (page 0). */
    std::uint32_t num_pages() const;

    /**
     * Appends a zeroed page of @p type and returns its id. The page is
     * immediately written (with a valid header/checksum) so the file
     * never contains unstamped regions.
     */
    std::uint32_t Alloc(PageType type);

    /**
     * Reads page @p page_id into @p buf (page_size() bytes) and
     * verifies magic, self-id, and checksum.
     * @throws InvalidArgument on an out-of-range id
     * @throws DataCorruption on integrity failure (torn write)
     * @throws fault::FaultInjected when an injected sticky fault holds
     *         or transient retries are exhausted
     */
    void Read(std::uint32_t page_id, std::uint8_t* buf);

    /**
     * Stamps the checksum on @p buf (whose header must already carry
     * the right magic/id/type/payload_bytes) and writes it to disk.
     * @throws InvalidArgument if the header id disagrees with @p page_id
     */
    void Write(std::uint32_t page_id, std::uint8_t* buf);

    /** Flushes the underlying stream. */
    void Sync();

    PagerStats stats() const;
    void ResetStats();

 private:
    void WriteLocked(std::uint32_t page_id, std::uint8_t* buf);
    void SeekTo(std::uint32_t page_id, bool for_write);

    std::string path_;
    std::size_t page_size_;
    int read_retries_;
    mutable std::mutex mutex_;
    std::fstream file_;
    std::uint32_t num_pages_ = 0;
    PagerStats stats_;
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_PAGER_H
