/**
 * @file
 * Pager: fixed-size page I/O over one file, with integrity checks.
 *
 * The pager is the lowest layer of the out-of-core data plane (ISSUE /
 * ROADMAP item 3; the Mini-DB pager in SNIPPETS.md is the structural
 * exemplar): open/alloc/read/write/sync over a single page file whose
 * page 0 is a superblock recording the file's page size. Every write
 * stamps the page's checksum; every read verifies magic, self-id, and
 * checksum, so torn writes and bit rot surface as DataCorruption
 * instead of silent bad features.
 *
 * Durability contract (the crash-consistency plane builds on this):
 * I/O is fd-based (pread/pwrite), so a completed Write() is in the OS
 * page cache the moment it returns — it survives a *process* crash in
 * every SyncMode. What survives a *system* crash (power loss, kernel
 * panic) depends on Options::sync_mode:
 *
 *  - SyncMode::kNone  — Sync() is a no-op. Fastest; data reaches the
 *    disk whenever the kernel feels like it. For benches and scratch
 *    files only.
 *  - SyncMode::kFlush — Sync() asserts the writes were handed to the
 *    kernel but issues no device barrier (the old fstream::flush()
 *    behaviour, kept as the default so bench workloads don't pay
 *    fsync latency).
 *  - SyncMode::kFsync — Sync() calls fdatasync(2): on return, every
 *    page written before the barrier is on stable storage. This is
 *    the mode the PagedTable commit protocol requires for real
 *    crash safety; the ordered commit (chains → barrier → meta →
 *    barrier) is only as strong as this barrier.
 *
 * Crash injection: physical reads gate on FaultSite::kStorageRead
 * (transient faults retried up to Options::read_retries, sticky ones
 * propagate). Writes gate on kStorageWrite (or kMetaCommit for
 * commit-point writes) and barriers on kStorageSync: when one of those
 * fires the pager *simulates process death at that instant* — the
 * in-flight write is torn (only the first half of the page hits the
 * file), the pager enters a crashed state where every later operation
 * throws IoError, and the destructor skips all flushing. Reopening the
 * file with a fresh Pager is the only way forward, which is exactly
 * the recovery path PagedTable::Open() exercises.
 *
 * Observability: reads and writes emit wall-clock kPageRead /
 * kPageWrite trace spans, so file I/O shows up in the Fig-11-style
 * breakdown next to marshal and scoring time.
 *
 * Thread safety: all methods serialize on an internal mutex (one file
 * descriptor; pread/pwrite are thread-safe but the page-count and
 * crash bookkeeping are not). Concurrency above this layer comes from
 * the BufferPool caching frames in memory.
 */
#ifndef DBSCORE_STORAGE_PAGER_H
#define DBSCORE_STORAGE_PAGER_H

#include <cstdint>
#include <mutex>
#include <string>

#include "dbscore/fault/fault.h"
#include "dbscore/storage/page.h"

namespace dbscore::storage {

/** How strong a barrier Sync() provides (see the file comment). */
enum class SyncMode : std::uint8_t {
    kNone = 0,  ///< Sync() is a no-op
    kFlush,     ///< writes reach the kernel; no device barrier
    kFsync,     ///< Sync() = fdatasync(2): real durability barrier
};

const char* SyncModeName(SyncMode mode);

/** Counters since the pager was opened. */
struct PagerStats {
    std::uint64_t reads = 0;         ///< pages read (successful)
    std::uint64_t writes = 0;        ///< pages written
    std::uint64_t allocs = 0;        ///< pages allocated (appended)
    std::uint64_t read_retries = 0;  ///< injected-fault retries
    std::uint64_t checksum_failures = 0;
    std::uint64_t syncs = 0;         ///< Sync() barriers completed
    std::uint64_t torn_writes = 0;   ///< injected crash-torn writes
};

/** One open page file. */
class Pager {
 public:
    struct Options {
        std::size_t page_size = kDefaultPageSize;
        /** Create (truncate) the file instead of opening it. */
        bool create = false;
        /** Transient injected read faults retried this many times. */
        int read_retries = 2;
        /** Durability barrier strength (see file comment). */
        SyncMode sync_mode = SyncMode::kFlush;
    };

    /**
     * Opens (or creates) the page file at @p path. Creation writes the
     * superblock; opening validates it and adopts its page size.
     * @throws IoError / DataCorruption
     */
    Pager(std::string path, const Options& options);
    ~Pager();

    Pager(const Pager&) = delete;
    Pager& operator=(const Pager&) = delete;

    const std::string& path() const { return path_; }
    std::size_t page_size() const { return page_size_; }
    SyncMode sync_mode() const { return sync_mode_; }

    /** Pages in the file, including the superblock (page 0). */
    std::uint32_t num_pages() const;

    /**
     * Appends a zeroed page of @p type and returns its id. The page is
     * immediately written (with a valid header/checksum) so the file
     * never contains unstamped regions.
     */
    std::uint32_t Alloc(PageType type);

    /**
     * Rewrites an *existing* page in place as a zeroed page of
     * @p type — the recycling path for reclaimed free-list pages,
     * whose on-disk bytes may be torn garbage from a crashed commit
     * and therefore must be re-stamped without ever being read.
     * @throws InvalidArgument on an out-of-range id
     */
    void Reinit(std::uint32_t page_id, PageType type);

    /**
     * Reads page @p page_id into @p buf (page_size() bytes) and
     * verifies magic, self-id, and checksum.
     * @throws InvalidArgument on an out-of-range id
     * @throws DataCorruption on integrity failure (torn write)
     * @throws fault::FaultInjected when an injected sticky fault holds
     *         or transient retries are exhausted
     * @throws IoError after an injected crash (reopen to recover)
     */
    void Read(std::uint32_t page_id, std::uint8_t* buf);

    /**
     * Stamps the checksum on @p buf (whose header must already carry
     * the right magic/id/type/payload_bytes) and writes it to disk.
     * @p site names the crash-injection gate: ordinary page writes use
     * kStorageWrite; the PagedTable commit point passes kMetaCommit so
     * a chaos plan can kill precisely the meta-slot write.
     * @throws InvalidArgument if the header id disagrees with @p page_id
     * @throws fault::FaultInjected when a crash plan fires (the write
     *         is torn and the pager is dead until reopened)
     */
    void Write(std::uint32_t page_id, std::uint8_t* buf,
               fault::FaultSite site = fault::FaultSite::kStorageWrite);

    /**
     * Durability barrier per Options::sync_mode (see file comment).
     * Always a kStorageSync crash-injection gate, whatever the mode.
     */
    void Sync();

    /** True after an injected crash killed this pager. */
    bool crashed() const;

    PagerStats stats() const;
    void ResetStats();

 private:
    void WriteLocked(std::uint32_t page_id, std::uint8_t* buf,
                     fault::FaultSite site);
    void ThrowIfCrashedLocked() const;
    /** pread/pwrite the full page at @p page_id (no integrity logic). */
    void RawReadLocked(std::uint32_t page_id, std::uint8_t* buf);
    void RawWriteLocked(std::uint32_t page_id, const std::uint8_t* buf,
                        std::size_t len);

    std::string path_;
    std::size_t page_size_;
    int read_retries_;
    SyncMode sync_mode_;
    mutable std::mutex mutex_;
    int fd_ = -1;
    bool crashed_ = false;
    std::uint32_t num_pages_ = 0;
    PagerStats stats_;
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_PAGER_H
