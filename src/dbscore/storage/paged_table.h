/**
 * @file
 * PagedTable: an out-of-core feature table over Pager + BufferPool.
 *
 * Layout (all pages checksummed by the pager):
 *  - page 0: pager superblock;
 *  - page 1: table meta (row/column counts, label column, column
 *    names, heads of the three chains below) — rewritten in place on
 *    Flush();
 *  - kFeatures pages: row-major float32 feature rows, a fixed
 *    rows_per_page per page (PAX-lite row groups: rows stay compact so
 *    a page maps 1:1 onto a contiguous RowView, while zone maps are
 *    kept per *column* within the page);
 *  - kLabels pages: the label column, packed floats;
 *  - kDirectory pages: chained u32 page-id lists for the feature and
 *    label chains;
 *  - kZoneMap pages: chained per-data-page {min,max} pairs per feature
 *    column.
 *
 * Directory and zone chains are rewritten (freshly allocated) on each
 * Flush(); superseded chain pages become dead space. That trades file
 * compactness for a dead-simple crash story — the meta page is the
 * single commit point — and scoring workloads flush once after bulk
 * load, so the waste is one chain generation.
 *
 * Zone maps are memory-resident once loaded; Scan() with a predicate
 * skips whole pages whose [min,max] for the predicate column cannot
 * intersect the wanted range. Pruning is conservative (page
 * granularity): surviving chunks may contain non-matching rows and the
 * consumer does exact row filtering.
 *
 * Streaming: Scan() returns a FeatureStream whose chunks are zero-copy
 * RowViews directly over pinned buffer-pool frames — an aliasing
 * shared_ptr keeps each pin alive exactly as long as its view, so the
 * PR 3 copy counters stay at zero across the paged path too.
 *
 * Thread safety: concurrent Scan()/Feature()/Label() calls are safe
 * (the pool serializes frame bookkeeping; streams snapshot the page
 * list up front). Appends and Flush() require external exclusion with
 * respect to each other (the DBMS layer's single-writer rule).
 */
#ifndef DBSCORE_STORAGE_PAGED_TABLE_H
#define DBSCORE_STORAGE_PAGED_TABLE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/data/row_block.h"
#include "dbscore/storage/buffer_pool.h"
#include "dbscore/storage/pager.h"

namespace dbscore::storage {

/** Knobs for the paged data plane (page file + pool sizing). */
struct StorageOptions {
    std::size_t page_size = kDefaultPageSize;
    /** Buffer pool capacity, in pages. */
    std::size_t pool_pages = 64;
    /** Transient injected read faults retried this many times. */
    int read_retries = 2;
};

/** Per-column [min,max] over one data page. */
struct ZoneRange {
    float min = 0.0F;
    float max = 0.0F;
};

/**
 * Page-pruning predicate: keep rows whose feature column @c column
 * falls in [min, max] (inclusive). Pages whose zone map cannot
 * intersect the range are skipped without being read.
 */
struct ScanPredicate {
    std::size_t column = 0;
    float min = 0.0F;
    float max = 0.0F;
};

/** One streamed chunk: a feature RowView plus its global placement. */
struct StreamChunk {
    /** rows() x feature-cols view; pinned (paged) or shared (memory). */
    RowView view;
    /** Global row index of view row 0. */
    std::size_t row_begin = 0;
    /** Backing data page, or 0 for in-memory chunks. */
    std::uint32_t page_id = 0;
};

class PagedTable;

/**
 * A pull iterator of StreamChunks. Also wraps a plain in-memory
 * RowView as a single chunk (FromView) so consumers can be written
 * once against the streaming shape.
 */
class FeatureStream {
 public:
    FeatureStream() = default;

    /** Single-chunk stream over in-memory storage. */
    static FeatureStream FromView(RowView view);

    /**
     * Yields the next chunk, pinning its page. Returns false at end.
     * The chunk's view keeps its page pinned until the view (and every
     * slice of it) is destroyed.
     */
    bool Next(StreamChunk& chunk);

    /** Rows this stream will yield in total (post-pruning). */
    std::size_t total_rows() const { return total_rows_; }

    /** Chunks yielded so far. */
    std::size_t chunks_emitted() const { return next_entry_; }

 private:
    friend class PagedTable;

    struct Entry {
        std::uint32_t page_id = 0;
        std::size_t row_begin = 0;
        std::size_t rows = 0;
    };

    /** Keeps the table (pool, pager) alive while chunks are pending. */
    std::shared_ptr<const PagedTable> table_;
    std::vector<Entry> entries_;
    std::size_t next_entry_ = 0;
    std::size_t total_rows_ = 0;
    /** FromView mode: the one chunk to emit. */
    std::optional<RowView> single_;
};

/** Aggregate counters for EXEC sp_storage_stats / benches. */
struct StorageStats {
    BufferPoolStats pool;
    PagerStats pager;
    std::uint64_t pages_scanned = 0;
    std::uint64_t pages_pruned = 0;
    std::uint64_t num_rows = 0;
    std::size_t data_pages = 0;
    std::size_t pool_pages = 0;
};

/** One on-disk feature table. Create via Create()/Open() only. */
class PagedTable : public std::enable_shared_from_this<PagedTable> {
 public:
    /**
     * Creates a fresh page file at @p path. @p label_col ==
     * columns.size() means the table has no label column.
     * @throws CapacityError when one feature row does not fit a page
     *         or the column names overflow the meta page
     */
    static std::shared_ptr<PagedTable> Create(
        const std::string& path, std::vector<std::string> columns,
        std::size_t label_col, const StorageOptions& options = {});

    /** Opens an existing page file and loads meta/directory/zones. */
    static std::shared_ptr<PagedTable> Open(
        const std::string& path, const StorageOptions& options = {});

    const std::string& path() const { return pager_.path(); }
    const std::vector<std::string>& columns() const { return columns_; }
    std::size_t label_col() const { return label_col_; }
    bool has_label() const { return label_col_ < columns_.size(); }
    std::size_t num_feature_cols() const { return feature_cols_; }
    std::uint64_t num_rows() const;
    std::size_t rows_per_page() const { return rows_per_page_; }
    std::size_t NumDataPages() const;

    /**
     * Appends one row (@p n == num_feature_cols() feature values;
     * @p label ignored when the table has no label column), updating
     * the page's zone map. Durable after the next Flush().
     */
    void AppendRow(const float* features, std::size_t n, float label);

    /** Writes meta + chains and flushes every dirty frame to disk. */
    void Flush();

    /** Feature value (pool read — may fault in a page). */
    float Feature(std::uint64_t row, std::size_t feature_col) const;

    /** Label value. @throws InvalidArgument when no label column */
    float Label(std::uint64_t row) const;

    /**
     * Streams the feature pages, skipping pages the zone maps prove
     * cannot satisfy @p predicate (pass std::nullopt for a full scan).
     */
    FeatureStream Scan(
        const std::optional<ScanPredicate>& predicate = std::nullopt) const;

    /** Zone map of data page @p index (for tests / stats). */
    std::vector<ZoneRange> ZoneMap(std::size_t index) const;

    StorageStats Stats() const;
    void ResetStats();

 private:
    friend class FeatureStream;

    PagedTable(const std::string& path, const StorageOptions& options,
               bool create);

    void WriteMetaLocked();
    void LoadMetaLocked();
    std::uint32_t WriteChainLocked(const std::vector<std::uint32_t>& ids);
    std::vector<std::uint32_t> ReadChainLocked(std::uint32_t head);
    std::uint32_t WriteZoneChainLocked();
    void ReadZoneChainLocked(std::uint32_t head);
    std::size_t RowsInPage(std::size_t page_index,
                           std::uint64_t num_rows) const;

    mutable Pager pager_;
    mutable BufferPool pool_;
    std::vector<std::string> columns_;
    std::size_t label_col_ = 0;
    std::size_t feature_cols_ = 0;
    std::size_t rows_per_page_ = 0;
    std::size_t labels_per_page_ = 0;

    mutable std::mutex mutex_;  ///< guards the mutable members below
    std::uint64_t num_rows_ = 0;
    std::vector<std::uint32_t> data_pages_;
    std::vector<std::uint32_t> label_pages_;
    std::vector<std::vector<ZoneRange>> zones_;

    mutable std::atomic<std::uint64_t> pages_scanned_{0};
    mutable std::atomic<std::uint64_t> pages_pruned_{0};
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_PAGED_TABLE_H
