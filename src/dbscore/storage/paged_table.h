/**
 * @file
 * PagedTable: an out-of-core feature table over Pager + BufferPool.
 *
 * Layout (all pages checksummed by the pager):
 *  - page 0: pager superblock;
 *  - pages 1 and 2: double-buffered table-meta slots (row/column
 *    counts, label column, column names, generation counter, heads of
 *    the four chains below). Generation g lives in slot 1 + (g % 2),
 *    so a commit never overwrites the newest committed meta;
 *  - kFeatures pages: row-major float32 feature rows, a fixed
 *    rows_per_page per page (PAX-lite row groups: rows stay compact so
 *    a page maps 1:1 onto a contiguous RowView, while zone maps are
 *    kept per *column* within the page);
 *  - kLabels pages: the label column, packed floats;
 *  - kDirectory pages: chained u32 page-id lists for the feature and
 *    label chains;
 *  - kZoneMap pages: chained per-data-page {min,max} pairs per feature
 *    column;
 *  - kFreeList pages: chained u32 ids of reclaimable pages.
 *
 * Commit protocol (DESIGN.md §16): Flush() writes data, directory,
 * zone, and free-list pages first, barriers them (Pager::Sync), then
 * writes generation g+1 into the *other* meta slot and barriers
 * again. The meta-slot write is the atomic commit point: a crash
 * anywhere before it leaves the slot for g intact, and the torn slot
 * (caught by its checksum) rolls the table back to g on the next
 * Open(). Chains are rewritten each commit; the pages the previous
 * generation used for chains — plus data pages shadow-copied out of
 * the committed generation before being appended to — go onto the
 * next commit's persistent free list, where recovery-reclaimed
 * orphans also land, so the file stops growing once a steady state
 * of appends/crashes is reached (the dead-chain compaction remnant
 * of ROADMAP item 3).
 *
 * Recovery: Open() always recovers — newest valid meta slot wins,
 * torn slots roll back, and an orphan sweep (pages unreachable from
 * the committed generation) refills the free list. Scrub() re-reads
 * every reachable page and quarantines checksum failures.
 *
 * Zone maps are memory-resident once loaded; Scan() with a predicate
 * skips whole pages whose [min,max] for the predicate column cannot
 * intersect the wanted range. Pruning is conservative (page
 * granularity): surviving chunks may contain non-matching rows and the
 * consumer does exact row filtering.
 *
 * Streaming: Scan() returns a FeatureStream whose chunks are zero-copy
 * RowViews directly over pinned buffer-pool frames — an aliasing
 * shared_ptr keeps each pin alive exactly as long as its view, so the
 * PR 3 copy counters stay at zero across the paged path too.
 *
 * Thread safety: concurrent Scan()/Feature()/Label() calls are safe
 * (the pool serializes frame bookkeeping; streams snapshot the page
 * list up front). Appends and Flush() require external exclusion with
 * respect to each other (the DBMS layer's single-writer rule).
 */
#ifndef DBSCORE_STORAGE_PAGED_TABLE_H
#define DBSCORE_STORAGE_PAGED_TABLE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "dbscore/data/row_block.h"
#include "dbscore/storage/buffer_pool.h"
#include "dbscore/storage/pager.h"
#include "dbscore/storage/recovery.h"

namespace dbscore::storage {

/** Knobs for the paged data plane (page file + pool sizing). */
struct StorageOptions {
    std::size_t page_size = kDefaultPageSize;
    /** Buffer pool capacity, in pages (appends to a committed table
     * shadow-copy the tail page and briefly pin two frames, so give
     * the pool at least 2). */
    std::size_t pool_pages = 64;
    /** Transient injected read faults retried this many times. */
    int read_retries = 2;
    /** Durability barrier strength for Flush() (see pager.h). kFlush
     * keeps the old bench-friendly no-barrier behaviour; kFsync makes
     * the commit protocol survive a system crash. */
    SyncMode sync_mode = SyncMode::kFlush;
    /** Run Scrub() during Open() and fail the attach (DataCorruption)
     * when any reachable page is corrupt. */
    bool scrub_on_attach = false;
};

/** Per-column [min,max] over one data page. */
struct ZoneRange {
    float min = 0.0F;
    float max = 0.0F;
};

/**
 * Page-pruning predicate: keep rows whose feature column @c column
 * falls in [min, max] (inclusive). Pages whose zone map cannot
 * intersect the range are skipped without being read.
 */
struct ScanPredicate {
    std::size_t column = 0;
    float min = 0.0F;
    float max = 0.0F;
};

/** One streamed chunk: a feature RowView plus its global placement. */
struct StreamChunk {
    /** rows() x feature-cols view; pinned (paged) or shared (memory). */
    RowView view;
    /** Global row index of view row 0. */
    std::size_t row_begin = 0;
    /** Backing data page, or 0 for in-memory chunks. */
    std::uint32_t page_id = 0;
};

class PagedTable;

/**
 * A pull iterator of StreamChunks. Also wraps a plain in-memory
 * RowView as a single chunk (FromView) so consumers can be written
 * once against the streaming shape.
 */
class FeatureStream {
 public:
    FeatureStream() = default;

    /** Single-chunk stream over in-memory storage. */
    static FeatureStream FromView(RowView view);

    /**
     * Yields the next chunk, pinning its page. Returns false at end.
     * The chunk's view keeps its page pinned until the view (and every
     * slice of it) is destroyed.
     */
    bool Next(StreamChunk& chunk);

    /** Rows this stream will yield in total (post-pruning). */
    std::size_t total_rows() const { return total_rows_; }

    /** Chunks yielded so far. */
    std::size_t chunks_emitted() const { return next_entry_; }

 private:
    friend class PagedTable;

    struct Entry {
        std::uint32_t page_id = 0;
        std::size_t row_begin = 0;
        std::size_t rows = 0;
    };

    /** Keeps the table (pool, pager) alive while chunks are pending. */
    std::shared_ptr<const PagedTable> table_;
    std::vector<Entry> entries_;
    std::size_t next_entry_ = 0;
    std::size_t total_rows_ = 0;
    /** FromView mode: the one chunk to emit. */
    std::optional<RowView> single_;
};

/** Aggregate counters for EXEC sp_storage_stats / benches. */
struct StorageStats {
    BufferPoolStats pool;
    PagerStats pager;
    RecoveryStats recovery;
    std::uint64_t pages_scanned = 0;
    std::uint64_t pages_pruned = 0;
    std::uint64_t num_rows = 0;
    std::size_t data_pages = 0;
    std::size_t pool_pages = 0;
    /** Committed generation the table serves. */
    std::uint64_t generation = 0;
    /** Reusable pages on the in-memory free list right now. */
    std::size_t free_pages = 0;
};

/** One on-disk feature table. Create via Create()/Open() only. */
class PagedTable : public std::enable_shared_from_this<PagedTable> {
 public:
    /**
     * Creates a fresh page file at @p path. @p label_col ==
     * columns.size() means the table has no label column.
     * @throws CapacityError when one feature row does not fit a page
     *         or the column names overflow the meta page
     */
    static std::shared_ptr<PagedTable> Create(
        const std::string& path, std::vector<std::string> columns,
        std::size_t label_col, const StorageOptions& options = {});

    /**
     * Opens an existing page file and loads meta/directory/zones.
     * Always runs recovery (RecoverOnOpen): adopt the newest valid
     * meta slot, roll back past torn commits, reclaim orphan pages
     * into the free list (persisting the reclaim when it found any).
     * last_recovery() reports what happened.
     * @throws DataCorruption when no committed generation survives
     */
    static std::shared_ptr<PagedTable> Open(
        const std::string& path, const StorageOptions& options = {});

    const std::string& path() const { return pager_.path(); }
    const std::vector<std::string>& columns() const { return columns_; }
    std::size_t label_col() const { return label_col_; }
    bool has_label() const { return label_col_ < columns_.size(); }
    std::size_t num_feature_cols() const { return feature_cols_; }
    std::uint64_t num_rows() const;
    std::size_t rows_per_page() const { return rows_per_page_; }
    std::size_t NumDataPages() const;

    /**
     * Appends one row (@p n == num_feature_cols() feature values;
     * @p label ignored when the table has no label column), updating
     * the page's zone map. Durable after the next Flush().
     */
    void AppendRow(const float* features, std::size_t n, float label);

    /**
     * Commits the in-memory state as generation g+1: data + chain +
     * free-list pages are written and barriered before the meta slot,
     * so a crash at any point leaves a committed generation behind.
     * A no-op when nothing changed since the last commit.
     */
    void Flush();

    /**
     * On-demand orphan sweep: commits pending appends, then reclaims
     * any page unreachable from the committed generation (debris of a
     * commit that died with an IoError) into the free list. Open()
     * already does this, so a healthy table reports nothing to do.
     */
    RecoveryReport Recover();

    /** What Open()'s recovery (or the last Recover()) found. */
    RecoveryReport last_recovery() const;

    /**
     * Online integrity pass: re-reads every page reachable from the
     * committed generation straight from the file (bypassing pool
     * frames) and verifies its checksum. Corrupt pages are reported
     * and quarantined (listed in the report + counted in stats);
     * reads of them keep failing loudly with DataCorruption.
     */
    ScrubReport Scrub() const;

    /** Committed generation currently served. */
    std::uint64_t generation() const;

    /** Feature value (pool read — may fault in a page). */
    float Feature(std::uint64_t row, std::size_t feature_col) const;

    /** Label value. @throws InvalidArgument when no label column */
    float Label(std::uint64_t row) const;

    /**
     * Streams the feature pages, skipping pages the zone maps prove
     * cannot satisfy @p predicate (pass std::nullopt for a full scan).
     */
    FeatureStream Scan(
        const std::optional<ScanPredicate>& predicate = std::nullopt) const;

    /** Zone map of data page @p index (for tests / stats). */
    std::vector<ZoneRange> ZoneMap(std::size_t index) const;

    StorageStats Stats() const;
    void ResetStats();

 private:
    friend class FeatureStream;

    /** Parsed contents of one meta slot. */
    struct MetaSnapshot {
        std::uint64_t generation = 0;
        std::uint64_t num_rows = 0;
        std::vector<std::string> columns;
        std::size_t label_col = 0;
        std::size_t rows_per_page = 0;
        std::uint32_t data_head = 0;
        std::uint32_t label_head = 0;
        std::uint32_t zone_head = 0;
        std::uint32_t free_head = 0;
    };

    /** What a meta slot held on disk. */
    enum class SlotState {
        kNeverWritten,  ///< valid page, zero payload (pre-first-commit)
        kValid,         ///< checksummed + parseable
        kCorrupt,       ///< torn write / checksum or parse failure
    };

    PagedTable(const std::string& path, const StorageOptions& options,
               bool create);

    /** The ordered commit: chains + free list, barrier, meta, barrier. */
    void CommitLocked();
    /** Meta-slot write for @p generation (the atomic commit point). */
    void WriteMetaSlotLocked(std::uint64_t generation,
                             std::uint32_t data_head,
                             std::uint32_t label_head,
                             std::uint32_t zone_head,
                             std::uint32_t free_head);
    SlotState ReadMetaSlotLocked(std::uint32_t slot, MetaSnapshot& snap);
    /** Loads chains/zones/free list of @p snap into memory. */
    void AdoptSnapshotLocked(const MetaSnapshot& snap);
    /** RecoverOnOpen: newest valid slot, rollback, orphan sweep. */
    void RecoverOnOpenLocked();
    /** Marks reachable pages, folds the rest into free_pages_. */
    std::uint32_t SweepOrphansLocked();
    /** Free-list-aware page allocation for appends/shadow copies. */
    std::uint32_t AllocAppendPageLocked(PageType type);
    /** Pops @p available (Reinit) or appends a fresh page. */
    std::uint32_t TakeCommitPageLocked(std::vector<std::uint32_t>& available,
                                       PageType type);
    /** Shadow-copies the committed tail page before mutating it. */
    std::uint32_t EnsureWritableTailLocked(
        std::vector<std::uint32_t>& pages, PageType type);
    std::uint32_t WriteChainLocked(const std::vector<std::uint32_t>& ids,
                                   std::vector<std::uint32_t>& available,
                                   std::vector<std::uint32_t>& chain_pages);
    std::vector<std::uint32_t> ReadChainLocked(
        std::uint32_t head, std::vector<std::uint32_t>* chain_pages);
    std::uint32_t WriteZoneChainLocked(
        std::vector<std::uint32_t>& available,
        std::vector<std::uint32_t>& chain_pages);
    void ReadZoneChainLocked(std::uint32_t head,
                             std::vector<std::uint32_t>* chain_pages);
    /** Records @p contents + leftover @p available; chain pages are
     * drawn from @p available only (rollback safety). */
    std::uint32_t WriteFreeListLocked(
        std::vector<std::uint32_t>& contents,
        std::vector<std::uint32_t>& available,
        std::vector<std::uint32_t>& chain_pages);
    std::size_t RowsInPage(std::size_t page_index,
                           std::uint64_t num_rows) const;

    mutable Pager pager_;
    mutable BufferPool pool_;
    std::vector<std::string> columns_;
    std::size_t label_col_ = 0;
    std::size_t feature_cols_ = 0;
    std::size_t rows_per_page_ = 0;
    std::size_t labels_per_page_ = 0;

    mutable std::mutex mutex_;  ///< guards the mutable members below
    std::uint64_t num_rows_ = 0;
    std::vector<std::uint32_t> data_pages_;
    std::vector<std::uint32_t> label_pages_;
    std::vector<std::vector<ZoneRange>> zones_;

    /** Committed generation on disk (0 = nothing committed yet). */
    std::uint64_t generation_ = 0;
    /** Pages free in the committed generation — safe to reuse now. */
    std::vector<std::uint32_t> free_pages_;
    /** Chain + free-list pages of the committed generation (they die,
     * and become reusable, when the next commit supersedes them). */
    std::vector<std::uint32_t> meta_chain_pages_;
    /** Pages freed by this in-memory generation (shadow-copied data
     * pages): free only once the next commit lands. */
    std::vector<std::uint32_t> pending_free_;
    /** Data/label pages the committed generation references; appending
     * into one requires a shadow copy first. */
    std::unordered_set<std::uint32_t> committed_pages_;
    /** Uncommitted appends since the last commit. */
    bool dirty_ = false;
    RecoveryReport last_recovery_;
    mutable RecoveryStats recovery_stats_;
    /** Pages a Scrub() found corrupt (reads still fail loudly). */
    mutable std::vector<std::uint32_t> quarantined_;

    mutable std::atomic<std::uint64_t> pages_scanned_{0};
    mutable std::atomic<std::uint64_t> pages_pruned_{0};
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_PAGED_TABLE_H
