#include "dbscore/storage/recovery.h"

#include "dbscore/common/string_util.h"

namespace dbscore::storage {

std::string
RecoveryReport::Describe() const
{
    if (!performed) {
        return StrFormat("generation %llu clean (%u free pages)",
                         static_cast<unsigned long long>(generation),
                         free_pages);
    }
    return StrFormat(
        "recovered to generation %llu%s: %u orphan page(s) reclaimed, "
        "%u torn meta slot(s), %u free pages",
        static_cast<unsigned long long>(generation),
        rolled_back ? " (rolled back)" : "", orphans_reclaimed,
        corrupt_meta_slots, free_pages);
}

std::string
ScrubReport::Describe() const
{
    if (clean()) {
        return StrFormat("%llu page(s) verified, 0 corrupt",
                         static_cast<unsigned long long>(pages_checked));
    }
    std::string ids;
    for (std::size_t i = 0; i < corrupt_pages.size(); ++i) {
        if (i > 0) {
            ids += ",";
        }
        if (i == 8) {
            ids += "...";
            break;
        }
        ids += StrFormat("%u", corrupt_pages[i]);
    }
    return StrFormat("%llu page(s) verified, %zu corrupt (quarantined: %s)",
                     static_cast<unsigned long long>(pages_checked),
                     corrupt_pages.size(), ids.c_str());
}

}  // namespace dbscore::storage
