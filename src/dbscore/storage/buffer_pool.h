/**
 * @file
 * BufferPool: a fixed-capacity LRU cache of page frames over a Pager.
 *
 * The pool is what turns the page file into a data plane the scoring
 * pipeline can stream from: Pin(page_id) returns a PageHandle whose
 * frame memory stays valid (and is never evicted or overwritten) for
 * the handle's lifetime, so the zero-copy RowBlock/RowView machinery
 * from PR 3 can point straight into pool frames. Unpinned frames form
 * an LRU; filling a frame for a miss evicts the least-recently-used
 * unpinned frame, writing it back first when dirty.
 *
 * Invariants (tested in tests/storage_test.cc):
 *  - a pinned frame is never evicted; pinning more distinct pages than
 *    the capacity throws CapacityError instead of corrupting a frame;
 *  - eviction order among unpinned frames is least-recently-pinned
 *    first;
 *  - dirty frames are written back (checksummed) before their frame is
 *    reused, so a read-after-evict round-trips through the file.
 *
 * Frame memory is allocated once at construction and never moves, so
 * pointers held by live PageHandles (and the RowViews aliasing them)
 * stay stable without per-pin allocation.
 *
 * Thread safety: all bookkeeping is under one mutex; frame *payload*
 * access happens outside the lock, which is safe because a frame's
 * bytes only change while its page is being (re)filled — and a frame
 * being filled is pinned by exactly the filling thread. Concurrent
 * readers of a shared pinned page are safe; concurrent writers must
 * coordinate externally (the paged-table writer is single-threaded).
 *
 * Observability: misses emit wall-clock kBufferPool trace spans (with
 * the evicted page when one was displaced); the underlying reads and
 * write-backs emit kPageRead/kPageWrite from the pager.
 */
#ifndef DBSCORE_STORAGE_BUFFER_POOL_H
#define DBSCORE_STORAGE_BUFFER_POOL_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dbscore/storage/pager.h"

namespace dbscore::storage {

class BufferPool;

/** Counters since construction (or the last ResetStats). */
struct BufferPoolStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t write_backs = 0;
    /** Dirty-frame flushes that failed (teardown included) — dirty
     * data that never reached the file. Nonzero after a crash. */
    std::uint64_t flush_failures = 0;

    double
    HitRatio() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * RAII pin on one pool frame. Movable, not copyable; unpins on
 * destruction. data()/payload() stay valid while the handle (or any
 * shared_ptr keepalive wrapping it) lives.
 */
class PageHandle {
 public:
    PageHandle() = default;
    PageHandle(PageHandle&& other) noexcept;
    PageHandle& operator=(PageHandle&& other) noexcept;
    ~PageHandle();

    PageHandle(const PageHandle&) = delete;
    PageHandle& operator=(const PageHandle&) = delete;

    bool valid() const { return pool_ != nullptr; }
    std::uint32_t page_id() const;

    /** Whole frame, header included. */
    const std::uint8_t* data() const;

    /** Payload bytes after the page header. */
    const std::uint8_t* payload() const;

    /**
     * Mutable access; marks the frame dirty so eviction (or FlushAll)
     * writes it back.
     */
    std::uint8_t* MutableData();
    std::uint8_t* MutablePayload();

    /** Explicitly releases the pin (idempotent). */
    void Release();

 private:
    friend class BufferPool;
    PageHandle(BufferPool* pool, std::size_t frame) :
        pool_(pool), frame_(frame)
    {
    }

    BufferPool* pool_ = nullptr;
    std::size_t frame_ = 0;
};

/** A fixed set of in-memory page frames over one Pager. */
class BufferPool {
 public:
    struct Options {
        /** Frames in the pool (the working-set budget, in pages). */
        std::size_t capacity_pages = 64;
    };

    BufferPool(Pager& pager, const Options& options);

    /** Flushes dirty frames (best effort) on teardown. */
    ~BufferPool();

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    Pager& pager() { return pager_; }
    std::size_t capacity() const { return frames_.size(); }

    /**
     * Pins page @p page_id, reading it into a frame on a miss.
     * @throws CapacityError when every frame is pinned
     * @throws DataCorruption / IoError / fault::FaultInjected from the
     *         underlying read
     */
    PageHandle Pin(std::uint32_t page_id);

    /** Writes every dirty frame back and syncs the pager. A failed
     * write-back counts in stats().flush_failures before rethrowing. */
    void FlushAll();

    /**
     * Drops page @p page_id from the pool without writing it back —
     * the page's identity on disk is about to change (a reclaimed
     * free page being re-stamped via Pager::Reinit), so any resident
     * frame is stale by definition. The page must not be pinned.
     */
    void Invalidate(std::uint32_t page_id);

    /** Pages currently resident (pinned or cached). */
    std::size_t Resident() const;

    /** Frames currently pinned (for tests / stats). */
    std::size_t PinnedFrames() const;

    BufferPoolStats stats() const;
    void ResetStats();

 private:
    friend class PageHandle;

    struct Frame {
        std::vector<std::uint8_t> data;
        std::uint32_t page_id = 0;
        std::uint64_t lru_tick = 0;
        int pins = 0;
        bool used = false;
        bool dirty = false;
    };

    void Unpin(std::size_t frame_index);
    void MarkDirty(std::size_t frame_index);
    /** Picks a frame for @p page_id, evicting if needed (locked). */
    std::size_t AcquireFrameLocked(std::uint32_t page_id);

    Pager& pager_;
    mutable std::mutex mutex_;
    std::vector<Frame> frames_;
    std::unordered_map<std::uint32_t, std::size_t> resident_;
    std::uint64_t lru_clock_ = 0;
    BufferPoolStats stats_;
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_BUFFER_POOL_H
