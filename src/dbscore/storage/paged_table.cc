#include "dbscore/storage/paged_table.h"

#include <algorithm>
#include <cstring>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/trace/trace.h"

namespace dbscore::storage {

namespace {

/** The two meta slots directly follow the superblock; generation g is
 * committed to slot 1 + (g % 2), so consecutive commits alternate and
 * never overwrite the newest committed meta. */
constexpr std::uint32_t kMetaSlotA = 1;
constexpr std::uint32_t kMetaSlotB = 2;

constexpr std::uint32_t
SlotForGeneration(std::uint64_t generation)
{
    return generation % 2 == 0 ? kMetaSlotA : kMetaSlotB;
}

/** Bounds-checked little serializer over one page payload. */
class PayloadWriter {
 public:
    PayloadWriter(std::uint8_t* data, std::size_t capacity) :
        data_(data), capacity_(capacity)
    {
    }

    template <typename T>
    void
    Put(const T& value)
    {
        PutBytes(&value, sizeof(T));
    }

    void
    PutBytes(const void* src, std::size_t len)
    {
        if (offset_ + len > capacity_) {
            throw CapacityError(
                StrFormat("paged table: serialized metadata (%zu bytes) "
                          "overflows a %zu-byte page payload",
                          offset_ + len, capacity_));
        }
        std::memcpy(data_ + offset_, src, len);
        offset_ += len;
    }

    std::size_t offset() const { return offset_; }

 private:
    std::uint8_t* data_;
    std::size_t capacity_;
    std::size_t offset_ = 0;
};

class PayloadReader {
 public:
    PayloadReader(const std::uint8_t* data, std::size_t capacity) :
        data_(data), capacity_(capacity)
    {
    }

    template <typename T>
    T
    Get()
    {
        T value;
        GetBytes(&value, sizeof(T));
        return value;
    }

    void
    GetBytes(void* dst, std::size_t len)
    {
        if (offset_ + len > capacity_) {
            throw DataCorruption(
                "paged table: metadata truncated mid-record");
        }
        std::memcpy(dst, data_ + offset_, len);
        offset_ += len;
    }

 private:
    const std::uint8_t* data_;
    std::size_t capacity_;
    std::size_t offset_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// FeatureStream

FeatureStream
FeatureStream::FromView(RowView view)
{
    FeatureStream stream;
    stream.total_rows_ = view.rows();
    stream.single_ = std::move(view);
    return stream;
}

bool
FeatureStream::Next(StreamChunk& chunk)
{
    if (single_.has_value()) {
        if (next_entry_ > 0) {
            return false;
        }
        next_entry_ = 1;
        chunk.view = *single_;
        chunk.row_begin = 0;
        chunk.page_id = 0;
        return !chunk.view.empty();
    }
    if (table_ == nullptr || next_entry_ >= entries_.size()) {
        return false;
    }
    const Entry& entry = entries_[next_entry_++];
    // Drop the previous chunk's pin before taking the next one so a
    // live stream holds at most one frame (caller-held slices keep
    // their own pins). Without this, every stream needs two frames at
    // the hand-off and concurrent scans exhaust small pools.
    chunk.view = RowView();
    // The aliasing shared_ptr ties the pin's lifetime to the view's:
    // the frame stays resident (and its bytes immutable) until the
    // last RowView slice over it is gone — zero-copy out of the pool.
    auto handle =
        std::make_shared<PageHandle>(table_->pool_.Pin(entry.page_id));
    const float* data =
        reinterpret_cast<const float*>(handle->payload());
    std::shared_ptr<const float[]> keepalive(std::move(handle), data);
    const std::size_t cols = table_->feature_cols_;
    chunk.view =
        RowView(std::move(keepalive), data, entry.rows, cols, cols);
    chunk.row_begin = entry.row_begin;
    chunk.page_id = entry.page_id;
    return true;
}

// ---------------------------------------------------------------------------
// PagedTable

PagedTable::PagedTable(const std::string& path,
                       const StorageOptions& options, bool create) :
    pager_(path,
           Pager::Options{.page_size = options.page_size,
                          .create = create,
                          .read_retries = options.read_retries,
                          .sync_mode = options.sync_mode}),
    pool_(pager_, BufferPool::Options{.capacity_pages = options.pool_pages})
{
}

std::shared_ptr<PagedTable>
PagedTable::Create(const std::string& path,
                   std::vector<std::string> columns, std::size_t label_col,
                   const StorageOptions& options)
{
    if (columns.empty()) {
        throw InvalidArgument("paged table: need at least one column");
    }
    if (label_col > columns.size()) {
        throw InvalidArgument(
            StrFormat("paged table: label column %zu out of range "
                      "(%zu columns)",
                      label_col, columns.size()));
    }
    std::shared_ptr<PagedTable> table(
        new PagedTable(path, options, /*create=*/true));
    table->columns_ = std::move(columns);
    table->label_col_ = label_col;
    const bool has_label = label_col < table->columns_.size();
    table->feature_cols_ =
        table->columns_.size() - (has_label ? 1 : 0);
    if (table->feature_cols_ == 0) {
        throw InvalidArgument(
            "paged table: need at least one feature column");
    }
    const std::size_t payload = PagePayloadBytes(options.page_size);
    table->rows_per_page_ =
        payload / (table->feature_cols_ * sizeof(float));
    if (table->rows_per_page_ == 0) {
        throw CapacityError(
            StrFormat("paged table: a %zu-feature row does not fit the "
                      "%zu-byte payload of a %zu-byte page",
                      table->feature_cols_, payload, options.page_size));
    }
    table->labels_per_page_ = payload / sizeof(float);
    const std::uint32_t slot_a = table->pager_.Alloc(PageType::kTableMeta);
    const std::uint32_t slot_b = table->pager_.Alloc(PageType::kTableMeta);
    DBS_ASSERT(slot_a == kMetaSlotA && slot_b == kMetaSlotB);
    {
        std::lock_guard<std::mutex> lock(table->mutex_);
        table->CommitLocked();  // generation 1: the empty table
    }
    return table;
}

std::shared_ptr<PagedTable>
PagedTable::Open(const std::string& path, const StorageOptions& options)
{
    std::shared_ptr<PagedTable> table(
        new PagedTable(path, options, /*create=*/false));
    {
        std::lock_guard<std::mutex> lock(table->mutex_);
        table->RecoverOnOpenLocked();
    }
    if (options.scrub_on_attach) {
        const ScrubReport scrub = table->Scrub();
        if (!scrub.clean()) {
            throw DataCorruption("paged table '" + path +
                                 "': scrub-on-attach failed: " +
                                 scrub.Describe());
        }
    }
    return table;
}

std::uint64_t
PagedTable::num_rows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return num_rows_;
}

std::uint64_t
PagedTable::generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

RecoveryReport
PagedTable::last_recovery() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return last_recovery_;
}

std::size_t
PagedTable::NumDataPages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return data_pages_.size();
}

std::size_t
PagedTable::RowsInPage(std::size_t page_index,
                       std::uint64_t num_rows) const
{
    const std::uint64_t begin =
        static_cast<std::uint64_t>(page_index) * rows_per_page_;
    const std::uint64_t remaining = num_rows - begin;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, rows_per_page_));
}

std::uint32_t
PagedTable::AllocAppendPageLocked(PageType type)
{
    if (!free_pages_.empty()) {
        const std::uint32_t id = free_pages_.back();
        free_pages_.pop_back();
        // The page's on-disk bytes may be torn garbage from a crashed
        // commit: drop any stale frame and re-stamp it without ever
        // reading it.
        pool_.Invalidate(id);
        pager_.Reinit(id, type);
        ++recovery_stats_.pages_reused;
        return id;
    }
    return pager_.Alloc(type);
}

std::uint32_t
PagedTable::EnsureWritableTailLocked(std::vector<std::uint32_t>& pages,
                                     PageType type)
{
    const std::uint32_t id = pages.back();
    if (committed_pages_.count(id) == 0) {
        return id;  // already private to the in-memory generation
    }
    // The committed generation references this page; writing into it
    // in place would tear the generation a mid-commit crash rolls
    // back to. Shadow-copy it to a private page first (the committed
    // one is freed when the next commit lands).
    const std::uint32_t fresh = AllocAppendPageLocked(type);
    {
        PageHandle src = pool_.Pin(id);
        PageHandle dst = pool_.Pin(fresh);
        const std::size_t payload = PagePayloadBytes(pager_.page_size());
        std::memcpy(dst.MutablePayload(), src.payload(), payload);
        HeaderOf(dst.MutableData())->payload_bytes =
            HeaderOf(src.data())->payload_bytes;
    }
    pages.back() = fresh;
    committed_pages_.erase(id);
    pending_free_.push_back(id);
    return fresh;
}

void
PagedTable::AppendRow(const float* features, std::size_t n, float label)
{
    if (n != feature_cols_) {
        throw InvalidArgument(
            StrFormat("paged table %s: appended row has %zu features, "
                      "schema has %zu",
                      path().c_str(), n, feature_cols_));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t slot =
        static_cast<std::size_t>(num_rows_ % rows_per_page_);
    if (slot == 0) {
        data_pages_.push_back(
            AllocAppendPageLocked(PageType::kFeatures));
        zones_.emplace_back(feature_cols_, ZoneRange{});
    }
    {
        const std::uint32_t target =
            EnsureWritableTailLocked(data_pages_, PageType::kFeatures);
        PageHandle handle = pool_.Pin(target);
        auto* dst = reinterpret_cast<float*>(handle.MutablePayload()) +
                    slot * feature_cols_;
        std::memcpy(dst, features, feature_cols_ * sizeof(float));
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>((slot + 1) * feature_cols_ *
                                       sizeof(float));
    }
    // Ingest is the paged path's one materialization point — count it
    // so the post-load zero-copy guarantee stays checkable.
    RowBlock::NoteCopy(feature_cols_ * sizeof(float));
    std::vector<ZoneRange>& zone = zones_.back();
    for (std::size_t c = 0; c < feature_cols_; ++c) {
        if (slot == 0) {
            zone[c] = ZoneRange{features[c], features[c]};
        } else {
            zone[c].min = std::min(zone[c].min, features[c]);
            zone[c].max = std::max(zone[c].max, features[c]);
        }
    }
    if (has_label()) {
        const std::size_t lslot =
            static_cast<std::size_t>(num_rows_ % labels_per_page_);
        if (lslot == 0) {
            label_pages_.push_back(
                AllocAppendPageLocked(PageType::kLabels));
        }
        const std::uint32_t target =
            EnsureWritableTailLocked(label_pages_, PageType::kLabels);
        PageHandle handle = pool_.Pin(target);
        reinterpret_cast<float*>(handle.MutablePayload())[lslot] = label;
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>((lslot + 1) * sizeof(float));
    }
    ++num_rows_;
    dirty_ = true;
}

std::uint32_t
PagedTable::TakeCommitPageLocked(std::vector<std::uint32_t>& available,
                                 PageType type)
{
    if (!available.empty()) {
        const std::uint32_t id = available.back();
        available.pop_back();
        pool_.Invalidate(id);
        pager_.Reinit(id, type);
        ++recovery_stats_.pages_reused;
        return id;
    }
    return pager_.Alloc(type);
}

std::uint32_t
PagedTable::WriteChainLocked(const std::vector<std::uint32_t>& ids,
                             std::vector<std::uint32_t>& available,
                             std::vector<std::uint32_t>& chain_pages)
{
    if (ids.empty()) {
        return 0;  // page 0 is the superblock: a safe null
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t per_page =
        (payload - 2 * sizeof(std::uint32_t)) / sizeof(std::uint32_t);
    DBS_ASSERT(per_page > 0);
    const std::size_t num_pages = (ids.size() + per_page - 1) / per_page;
    std::vector<std::uint32_t> chain(num_pages);
    for (std::uint32_t& id : chain) {
        id = TakeCommitPageLocked(available, PageType::kDirectory);
        chain_pages.push_back(id);
    }
    for (std::size_t p = 0; p < num_pages; ++p) {
        const std::size_t begin = p * per_page;
        const std::size_t count =
            std::min(per_page, ids.size() - begin);
        PageHandle handle = pool_.Pin(chain[p]);
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint32_t>(
            p + 1 < num_pages ? chain[p + 1] : 0);
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(count));
        writer.PutBytes(ids.data() + begin,
                        count * sizeof(std::uint32_t));
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    return chain[0];
}

std::vector<std::uint32_t>
PagedTable::ReadChainLocked(std::uint32_t head,
                            std::vector<std::uint32_t>* chain_pages)
{
    std::vector<std::uint32_t> ids;
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    std::uint32_t page = head;
    while (page != 0) {
        if (chain_pages != nullptr) {
            chain_pages->push_back(page);
        }
        PageHandle handle = pool_.Pin(page);
        PayloadReader reader(handle.payload(), payload);
        const auto next = reader.Get<std::uint32_t>();
        const auto count = reader.Get<std::uint32_t>();
        const std::size_t old = ids.size();
        ids.resize(old + count);
        reader.GetBytes(ids.data() + old, count * sizeof(std::uint32_t));
        page = next;
    }
    return ids;
}

std::uint32_t
PagedTable::WriteZoneChainLocked(std::vector<std::uint32_t>& available,
                                 std::vector<std::uint32_t>& chain_pages)
{
    if (zones_.empty()) {
        return 0;
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t entry_bytes = feature_cols_ * sizeof(ZoneRange);
    const std::size_t per_page =
        (payload - 2 * sizeof(std::uint32_t)) / entry_bytes;
    if (per_page == 0) {
        throw CapacityError(
            StrFormat("paged table %s: one zone-map entry (%zu bytes) "
                      "does not fit a page",
                      path().c_str(), entry_bytes));
    }
    const std::size_t num_pages =
        (zones_.size() + per_page - 1) / per_page;
    std::vector<std::uint32_t> chain(num_pages);
    for (std::uint32_t& id : chain) {
        id = TakeCommitPageLocked(available, PageType::kZoneMap);
        chain_pages.push_back(id);
    }
    for (std::size_t p = 0; p < num_pages; ++p) {
        const std::size_t begin = p * per_page;
        const std::size_t count =
            std::min(per_page, zones_.size() - begin);
        PageHandle handle = pool_.Pin(chain[p]);
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint32_t>(
            p + 1 < num_pages ? chain[p + 1] : 0);
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(count));
        for (std::size_t i = 0; i < count; ++i) {
            writer.PutBytes(zones_[begin + i].data(), entry_bytes);
        }
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    return chain[0];
}

void
PagedTable::ReadZoneChainLocked(std::uint32_t head,
                                std::vector<std::uint32_t>* chain_pages)
{
    zones_.clear();
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t entry_bytes = feature_cols_ * sizeof(ZoneRange);
    std::uint32_t page = head;
    while (page != 0) {
        if (chain_pages != nullptr) {
            chain_pages->push_back(page);
        }
        PageHandle handle = pool_.Pin(page);
        PayloadReader reader(handle.payload(), payload);
        const auto next = reader.Get<std::uint32_t>();
        const auto count = reader.Get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
            std::vector<ZoneRange> zone(feature_cols_);
            reader.GetBytes(zone.data(), entry_bytes);
            zones_.push_back(std::move(zone));
        }
        page = next;
    }
}

std::uint32_t
PagedTable::WriteFreeListLocked(std::vector<std::uint32_t>& contents,
                                std::vector<std::uint32_t>& available,
                                std::vector<std::uint32_t>& chain_pages)
{
    if (contents.empty() && available.empty()) {
        return 0;
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t per_page =
        (payload - 2 * sizeof(std::uint32_t)) / sizeof(std::uint32_t);
    // The chain pages for the free list are drawn from `available` —
    // pages already free in the *committed* generation, which a
    // rollback can never need — which is what stops the file from
    // growing on every commit just to record what is free. Pages in
    // `contents` (generation g's dead chains and the data pages this
    // generation shadow-copied out of g) are recorded but never
    // written: a crash before the commit point must leave them intact
    // so recovery can roll back to g. Whatever drawing leaves of
    // `available` joins the recorded contents. The page count is sized
    // against the pre-draw total, so drawing can only leave the tail
    // page short, never overflow it.
    const std::size_t total = contents.size() + available.size();
    const std::size_t num_pages = (total + per_page - 1) / per_page;
    std::vector<std::uint32_t> chain(num_pages);
    for (std::uint32_t& id : chain) {
        if (!available.empty()) {
            id = available.back();
            available.pop_back();
            pool_.Invalidate(id);
            pager_.Reinit(id, PageType::kFreeList);
            ++recovery_stats_.pages_reused;
        } else {
            id = pager_.Alloc(PageType::kFreeList);
        }
        chain_pages.push_back(id);
    }
    contents.insert(contents.end(), available.begin(), available.end());
    available.clear();
    if (contents.empty()) {
        // Drawing the chain pages drained the set: nothing to record.
        // The (already re-stamped) chain pages stay reusable in memory
        // but are simply dropped from the persistent list — they are
        // unreachable and the next recovery sweep re-collects them.
        for (const std::uint32_t id : chain) {
            contents.push_back(id);
        }
        return 0;
    }
    for (std::size_t p = 0; p < num_pages; ++p) {
        const std::size_t begin = p * per_page;
        const std::size_t count =
            begin >= contents.size()
                ? 0
                : std::min(per_page, contents.size() - begin);
        PageHandle handle = pool_.Pin(chain[p]);
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint32_t>(
            p + 1 < num_pages ? chain[p + 1] : 0);
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(count));
        writer.PutBytes(contents.data() + begin,
                        count * sizeof(std::uint32_t));
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    return chain[0];
}

void
PagedTable::WriteMetaSlotLocked(std::uint64_t generation,
                                std::uint32_t data_head,
                                std::uint32_t label_head,
                                std::uint32_t zone_head,
                                std::uint32_t free_head)
{
    const std::uint32_t slot = SlotForGeneration(generation);
    std::vector<std::uint8_t> page(pager_.page_size());
    InitPage(page.data(), pager_.page_size(), slot, PageType::kTableMeta);
    PayloadWriter writer(PayloadOf(page.data()),
                         PagePayloadBytes(pager_.page_size()));
    writer.Put<std::uint64_t>(generation);
    writer.Put<std::uint64_t>(num_rows_);
    writer.Put<std::uint32_t>(static_cast<std::uint32_t>(columns_.size()));
    writer.Put<std::uint32_t>(static_cast<std::uint32_t>(label_col_));
    writer.Put<std::uint32_t>(static_cast<std::uint32_t>(rows_per_page_));
    writer.Put<std::uint32_t>(data_head);
    writer.Put<std::uint32_t>(label_head);
    writer.Put<std::uint32_t>(zone_head);
    writer.Put<std::uint32_t>(free_head);
    for (const std::string& name : columns_) {
        writer.Put<std::uint16_t>(static_cast<std::uint16_t>(name.size()));
        writer.PutBytes(name.data(), name.size());
    }
    HeaderOf(page.data())->payload_bytes =
        static_cast<std::uint32_t>(writer.offset());
    // The atomic commit point: its own fault site so chaos plans can
    // kill exactly this write. Meta slots bypass the buffer pool — the
    // commit's ordering depends on this write landing *after* the
    // barrier below, which pool caching would obscure.
    pager_.Write(slot, page.data(), fault::FaultSite::kMetaCommit);
}

void
PagedTable::CommitLocked()
{
    // Ordered commit (DESIGN.md §16). Steps 1-3 write generation g+1's
    // pages without touching anything generation g references; step 4
    // barriers them; step 5 writes the g+1 meta slot (atomic commit
    // point); step 6 barriers that. A crash anywhere leaves g (before
    // step 5) or g+1 (after) fully intact on disk.
    const std::uint64_t next_gen = generation_ + 1;

    // 1. Chains, allocated from pages that are free in generation g.
    std::vector<std::uint32_t> available = free_pages_;
    std::vector<std::uint32_t> new_meta_pages;
    const std::uint32_t data_head =
        WriteChainLocked(data_pages_, available, new_meta_pages);
    const std::uint32_t label_head =
        WriteChainLocked(label_pages_, available, new_meta_pages);
    const std::uint32_t zone_head =
        WriteZoneChainLocked(available, new_meta_pages);

    // 2. The free set of g+1: pages this generation shadow-copied out
    // of g and g's own chain/free-list pages (dead once g+1 commits) —
    // the dead-chain compaction. These are only *recorded*: generation
    // g still references them, so nothing may overwrite them until the
    // commit point lands.
    std::vector<std::uint32_t> next_free = pending_free_;
    next_free.insert(next_free.end(), meta_chain_pages_.begin(),
                     meta_chain_pages_.end());

    // 3. Persist the free list. Its chain pages are drawn from what is
    // left of `available` (free in g, safe to overwrite); the
    // leftovers then join the recorded contents.
    std::vector<std::uint32_t> freelist_pages;
    const std::uint32_t free_head =
        WriteFreeListLocked(next_free, available, freelist_pages);

    // 4. Barrier: every g+1 page is durable before the commit point.
    pool_.FlushAll();

    // 5. The atomic commit point.
    WriteMetaSlotLocked(next_gen, data_head, label_head, zone_head,
                        free_head);

    // 6. Barrier the commit record itself.
    pager_.Sync();

    // Success: adopt g+1 in memory.
    generation_ = next_gen;
    free_pages_ = std::move(next_free);
    meta_chain_pages_ = std::move(new_meta_pages);
    meta_chain_pages_.insert(meta_chain_pages_.end(),
                             freelist_pages.begin(), freelist_pages.end());
    pending_free_.clear();
    committed_pages_.clear();
    committed_pages_.insert(data_pages_.begin(), data_pages_.end());
    committed_pages_.insert(label_pages_.begin(), label_pages_.end());
    dirty_ = false;
}

PagedTable::SlotState
PagedTable::ReadMetaSlotLocked(std::uint32_t slot, MetaSnapshot& snap)
{
    std::vector<std::uint8_t> page(pager_.page_size());
    try {
        pager_.Read(slot, page.data());
    } catch (const DataCorruption&) {
        return SlotState::kCorrupt;  // torn commit write
    }
    const PageHeader* header = HeaderOf(page.data());
    if (header->payload_bytes == 0) {
        return SlotState::kNeverWritten;  // pre-first-commit slot
    }
    if (header->type != static_cast<std::uint16_t>(PageType::kTableMeta)) {
        return SlotState::kCorrupt;
    }
    const std::size_t capacity =
        std::min<std::size_t>(header->payload_bytes,
                              PagePayloadBytes(pager_.page_size()));
    try {
        PayloadReader reader(PayloadOf(page.data()), capacity);
        snap.generation = reader.Get<std::uint64_t>();
        snap.num_rows = reader.Get<std::uint64_t>();
        const auto num_cols = reader.Get<std::uint32_t>();
        snap.label_col = reader.Get<std::uint32_t>();
        snap.rows_per_page = reader.Get<std::uint32_t>();
        snap.data_head = reader.Get<std::uint32_t>();
        snap.label_head = reader.Get<std::uint32_t>();
        snap.zone_head = reader.Get<std::uint32_t>();
        snap.free_head = reader.Get<std::uint32_t>();
        snap.columns.clear();
        for (std::uint32_t i = 0; i < num_cols; ++i) {
            const auto len = reader.Get<std::uint16_t>();
            std::string name(len, '\0');
            reader.GetBytes(name.data(), len);
            snap.columns.push_back(std::move(name));
        }
    } catch (const DataCorruption&) {
        return SlotState::kCorrupt;
    }
    if (snap.generation == 0 || SlotForGeneration(snap.generation) != slot) {
        return SlotState::kCorrupt;  // commit written to the wrong slot
    }
    return SlotState::kValid;
}

void
PagedTable::AdoptSnapshotLocked(const MetaSnapshot& snap)
{
    columns_ = snap.columns;
    label_col_ = snap.label_col;
    num_rows_ = snap.num_rows;
    rows_per_page_ = snap.rows_per_page;
    const bool labeled = label_col_ < columns_.size();
    feature_cols_ = columns_.size() - (labeled ? 1 : 0);
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    labels_per_page_ = payload / sizeof(float);
    const std::size_t expected_rpp =
        feature_cols_ == 0 ? 0 : payload / (feature_cols_ * sizeof(float));
    if (feature_cols_ == 0 || rows_per_page_ != expected_rpp) {
        throw DataCorruption(
            StrFormat("paged table %s: meta rows-per-page %zu does not "
                      "match geometry (%zu)",
                      path().c_str(), rows_per_page_, expected_rpp));
    }
    std::vector<std::uint32_t> chain_pages;
    data_pages_ = ReadChainLocked(snap.data_head, &chain_pages);
    label_pages_ = ReadChainLocked(snap.label_head, &chain_pages);
    ReadZoneChainLocked(snap.zone_head, &chain_pages);
    free_pages_ = ReadChainLocked(snap.free_head, &chain_pages);
    meta_chain_pages_ = std::move(chain_pages);
    const std::uint64_t expected_pages =
        (num_rows_ + rows_per_page_ - 1) / rows_per_page_;
    if (data_pages_.size() != expected_pages ||
        zones_.size() != expected_pages ||
        (labeled &&
         label_pages_.size() !=
             (num_rows_ + labels_per_page_ - 1) / labels_per_page_)) {
        throw DataCorruption(
            StrFormat("paged table %s: directory lists %zu data / %zu "
                      "zone pages for %llu rows",
                      path().c_str(), data_pages_.size(), zones_.size(),
                      static_cast<unsigned long long>(num_rows_)));
    }
    generation_ = snap.generation;
    pending_free_.clear();
    committed_pages_.clear();
    committed_pages_.insert(data_pages_.begin(), data_pages_.end());
    committed_pages_.insert(label_pages_.begin(), label_pages_.end());
    dirty_ = false;
}

std::uint32_t
PagedTable::SweepOrphansLocked()
{
    const std::uint32_t num_pages = pager_.num_pages();
    std::vector<char> reachable(num_pages, 0);
    auto mark = [&reachable, num_pages](std::uint32_t id) {
        if (id < num_pages) {
            reachable[id] = 1;
        }
    };
    mark(0);
    mark(kMetaSlotA);
    mark(kMetaSlotB);
    for (const std::uint32_t id : data_pages_) mark(id);
    for (const std::uint32_t id : label_pages_) mark(id);
    for (const std::uint32_t id : meta_chain_pages_) mark(id);
    for (const std::uint32_t id : free_pages_) mark(id);
    for (const std::uint32_t id : pending_free_) mark(id);
    std::uint32_t orphans = 0;
    for (std::uint32_t id = 0; id < num_pages; ++id) {
        if (reachable[id] == 0) {
            // Unreachable from the committed generation: debris of a
            // crashed or failed commit. Safe to reuse — reclaim it.
            free_pages_.push_back(id);
            ++orphans;
        }
    }
    return orphans;
}

void
PagedTable::RecoverOnOpenLocked()
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();

    if (pager_.num_pages() < kMetaSlotB + 1) {
        throw DataCorruption("paged table '" + path() +
                             "' is too small to hold its meta slots");
    }
    MetaSnapshot snaps[2];
    SlotState states[2];
    states[0] = ReadMetaSlotLocked(kMetaSlotA, snaps[0]);
    states[1] = ReadMetaSlotLocked(kMetaSlotB, snaps[1]);
    std::uint32_t corrupt_slots = 0;
    std::vector<int> candidates;
    for (int i = 0; i < 2; ++i) {
        if (states[i] == SlotState::kCorrupt) {
            ++corrupt_slots;
        } else if (states[i] == SlotState::kValid) {
            candidates.push_back(i);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&snaps](int a, int b) {
                  return snaps[a].generation > snaps[b].generation;
              });
    bool adopted = false;
    bool skipped_newer = false;
    for (const int slot : candidates) {
        try {
            AdoptSnapshotLocked(snaps[slot]);
            adopted = true;
            break;
        } catch (const Error&) {
            // This generation's chains are unreadable (its commit died
            // mid-flight, or a page rotted): roll back to the other.
            skipped_newer = true;
        }
    }
    if (!adopted) {
        throw DataCorruption(
            StrFormat("paged table %s: no committed generation survives "
                      "(%u torn meta slot(s))",
                      path().c_str(), corrupt_slots));
    }
    const bool rolled_back = corrupt_slots > 0 || skipped_newer;
    const std::uint32_t orphans = SweepOrphansLocked();
    if (orphans > 0) {
        // Persist the reclaim so repeated crash/recover cycles reuse
        // the same pages instead of growing the file without bound.
        CommitLocked();
    }
    ++recovery_stats_.recoveries;
    if (rolled_back) {
        ++recovery_stats_.rollbacks;
    }
    recovery_stats_.orphans_reclaimed += orphans;
    last_recovery_ = RecoveryReport{};
    last_recovery_.generation = generation_;
    last_recovery_.rolled_back = rolled_back;
    last_recovery_.corrupt_meta_slots = corrupt_slots;
    last_recovery_.orphans_reclaimed = orphans;
    last_recovery_.free_pages =
        static_cast<std::uint32_t>(free_pages_.size());
    last_recovery_.performed = rolled_back || orphans > 0;
    tracer.EmitWall(
        trace::StageKind::kRecovery, "recover-on-open",
        trace::TraceCollector::Current(), wall_start,
        tracer.NowWallMicros() - wall_start,
        {{"generation", static_cast<double>(generation_)},
         {"rolled_back", rolled_back ? 1.0 : 0.0},
         {"orphans_reclaimed", static_cast<double>(orphans)}});
}

RecoveryReport
PagedTable::Recover()
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();

    std::lock_guard<std::mutex> lock(mutex_);
    if (dirty_) {
        CommitLocked();  // make "reachable" mean "committed"
    }
    const std::uint32_t orphans = SweepOrphansLocked();
    if (orphans > 0) {
        CommitLocked();
    }
    ++recovery_stats_.recoveries;
    recovery_stats_.orphans_reclaimed += orphans;
    last_recovery_ = RecoveryReport{};
    last_recovery_.generation = generation_;
    last_recovery_.orphans_reclaimed = orphans;
    last_recovery_.free_pages =
        static_cast<std::uint32_t>(free_pages_.size());
    last_recovery_.performed = orphans > 0;
    tracer.EmitWall(
        trace::StageKind::kRecovery, "recover",
        trace::TraceCollector::Current(), wall_start,
        tracer.NowWallMicros() - wall_start,
        {{"generation", static_cast<double>(generation_)},
         {"orphans_reclaimed", static_cast<double>(orphans)}});
    return last_recovery_;
}

ScrubReport
PagedTable::Scrub() const
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();

    std::lock_guard<std::mutex> lock(mutex_);
    ScrubReport report;
    // Every page the committed generation can reach. The inactive
    // meta slot and free-listed pages are allowed to hold garbage
    // (that is the design), so they are not scrubbed.
    std::vector<std::uint32_t> targets;
    targets.push_back(0);
    if (generation_ > 0) {
        targets.push_back(SlotForGeneration(generation_));
    }
    targets.insert(targets.end(), meta_chain_pages_.begin(),
                   meta_chain_pages_.end());
    targets.insert(targets.end(), data_pages_.begin(), data_pages_.end());
    targets.insert(targets.end(), label_pages_.begin(),
                   label_pages_.end());
    std::vector<std::uint8_t> page(pager_.page_size());
    for (const std::uint32_t id : targets) {
        try {
            // Straight from the file, not the pool: a scrub must see
            // what is actually on disk, not a cached frame.
            pager_.Read(id, page.data());
            ++report.pages_checked;
        } catch (const DataCorruption&) {
            ++report.pages_checked;
            report.corrupt_pages.push_back(id);
        }
    }
    ++recovery_stats_.scrubs;
    recovery_stats_.scrub_corruptions += report.corrupt_pages.size();
    for (const std::uint32_t id : report.corrupt_pages) {
        if (std::find(quarantined_.begin(), quarantined_.end(), id) ==
            quarantined_.end()) {
            quarantined_.push_back(id);
        }
    }
    tracer.EmitWall(
        trace::StageKind::kScrub, "scrub",
        trace::TraceCollector::Current(), wall_start,
        tracer.NowWallMicros() - wall_start,
        {{"pages_checked", static_cast<double>(report.pages_checked)},
         {"corrupt", static_cast<double>(report.corrupt_pages.size())}});
    return report;
}

void
PagedTable::Flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dirty_) {
        return;  // nothing new: the committed generation stands
    }
    CommitLocked();
}

float
PagedTable::Feature(std::uint64_t row, std::size_t feature_col) const
{
    std::uint32_t page_id = 0;
    std::size_t slot = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (row >= num_rows_ || feature_col >= feature_cols_) {
            throw InvalidArgument(
                StrFormat("paged table %s: read of row %llu col %zu out "
                          "of range",
                          path().c_str(),
                          static_cast<unsigned long long>(row),
                          feature_col));
        }
        page_id = data_pages_[static_cast<std::size_t>(
            row / rows_per_page_)];
        slot = static_cast<std::size_t>(row % rows_per_page_);
    }
    PageHandle handle = pool_.Pin(page_id);
    return reinterpret_cast<const float*>(
        handle.payload())[slot * feature_cols_ + feature_col];
}

float
PagedTable::Label(std::uint64_t row) const
{
    std::uint32_t page_id = 0;
    std::size_t slot = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!has_label()) {
            throw InvalidArgument("paged table '" + path() +
                                  "' has no label column");
        }
        if (row >= num_rows_) {
            throw InvalidArgument(
                StrFormat("paged table %s: label read of row %llu out "
                          "of range",
                          path().c_str(),
                          static_cast<unsigned long long>(row)));
        }
        page_id = label_pages_[static_cast<std::size_t>(
            row / labels_per_page_)];
        slot = static_cast<std::size_t>(row % labels_per_page_);
    }
    PageHandle handle = pool_.Pin(page_id);
    return reinterpret_cast<const float*>(handle.payload())[slot];
}

FeatureStream
PagedTable::Scan(const std::optional<ScanPredicate>& predicate) const
{
    if (predicate.has_value() && predicate->column >= feature_cols_) {
        throw InvalidArgument(
            StrFormat("paged table %s: scan predicate column %zu out of "
                      "range (%zu feature columns)",
                      path().c_str(), predicate->column, feature_cols_));
    }
    FeatureStream stream;
    stream.table_ = shared_from_this();
    std::lock_guard<std::mutex> lock(mutex_);
    stream.entries_.reserve(data_pages_.size());
    for (std::size_t p = 0; p < data_pages_.size(); ++p) {
        if (predicate.has_value()) {
            const ZoneRange& zone = zones_[p][predicate->column];
            if (zone.max < predicate->min ||
                zone.min > predicate->max) {
                pages_pruned_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
        }
        pages_scanned_.fetch_add(1, std::memory_order_relaxed);
        FeatureStream::Entry entry;
        entry.page_id = data_pages_[p];
        entry.row_begin = p * rows_per_page_;
        entry.rows = RowsInPage(p, num_rows_);
        stream.total_rows_ += entry.rows;
        stream.entries_.push_back(entry);
    }
    return stream;
}

std::vector<ZoneRange>
PagedTable::ZoneMap(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index >= zones_.size()) {
        throw InvalidArgument(
            StrFormat("paged table %s: zone map %zu out of range (%zu "
                      "data pages)",
                      path().c_str(), index, zones_.size()));
    }
    return zones_[index];
}

StorageStats
PagedTable::Stats() const
{
    StorageStats stats;
    stats.pool = pool_.stats();
    stats.pager = pager_.stats();
    stats.pages_scanned = pages_scanned_.load(std::memory_order_relaxed);
    stats.pages_pruned = pages_pruned_.load(std::memory_order_relaxed);
    stats.pool_pages = pool_.capacity();
    std::lock_guard<std::mutex> lock(mutex_);
    stats.recovery = recovery_stats_;
    stats.num_rows = num_rows_;
    stats.data_pages = data_pages_.size();
    stats.generation = generation_;
    stats.free_pages = free_pages_.size();
    return stats;
}

void
PagedTable::ResetStats()
{
    pool_.ResetStats();
    pager_.ResetStats();
    pages_scanned_.store(0, std::memory_order_relaxed);
    pages_pruned_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    recovery_stats_ = RecoveryStats{};
}

}  // namespace dbscore::storage
