#include "dbscore/storage/paged_table.h"

#include <algorithm>
#include <cstring>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"

namespace dbscore::storage {

namespace {

/** The table meta page always directly follows the superblock. */
constexpr std::uint32_t kMetaPageId = 1;

/** Bounds-checked little serializer over one page payload. */
class PayloadWriter {
 public:
    PayloadWriter(std::uint8_t* data, std::size_t capacity) :
        data_(data), capacity_(capacity)
    {
    }

    template <typename T>
    void
    Put(const T& value)
    {
        PutBytes(&value, sizeof(T));
    }

    void
    PutBytes(const void* src, std::size_t len)
    {
        if (offset_ + len > capacity_) {
            throw CapacityError(
                StrFormat("paged table: serialized metadata (%zu bytes) "
                          "overflows a %zu-byte page payload",
                          offset_ + len, capacity_));
        }
        std::memcpy(data_ + offset_, src, len);
        offset_ += len;
    }

    std::size_t offset() const { return offset_; }

 private:
    std::uint8_t* data_;
    std::size_t capacity_;
    std::size_t offset_ = 0;
};

class PayloadReader {
 public:
    PayloadReader(const std::uint8_t* data, std::size_t capacity) :
        data_(data), capacity_(capacity)
    {
    }

    template <typename T>
    T
    Get()
    {
        T value;
        GetBytes(&value, sizeof(T));
        return value;
    }

    void
    GetBytes(void* dst, std::size_t len)
    {
        if (offset_ + len > capacity_) {
            throw DataCorruption(
                "paged table: metadata truncated mid-record");
        }
        std::memcpy(dst, data_ + offset_, len);
        offset_ += len;
    }

 private:
    const std::uint8_t* data_;
    std::size_t capacity_;
    std::size_t offset_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// FeatureStream

FeatureStream
FeatureStream::FromView(RowView view)
{
    FeatureStream stream;
    stream.total_rows_ = view.rows();
    stream.single_ = std::move(view);
    return stream;
}

bool
FeatureStream::Next(StreamChunk& chunk)
{
    if (single_.has_value()) {
        if (next_entry_ > 0) {
            return false;
        }
        next_entry_ = 1;
        chunk.view = *single_;
        chunk.row_begin = 0;
        chunk.page_id = 0;
        return !chunk.view.empty();
    }
    if (table_ == nullptr || next_entry_ >= entries_.size()) {
        return false;
    }
    const Entry& entry = entries_[next_entry_++];
    // Drop the previous chunk's pin before taking the next one so a
    // live stream holds at most one frame (caller-held slices keep
    // their own pins). Without this, every stream needs two frames at
    // the hand-off and concurrent scans exhaust small pools.
    chunk.view = RowView();
    // The aliasing shared_ptr ties the pin's lifetime to the view's:
    // the frame stays resident (and its bytes immutable) until the
    // last RowView slice over it is gone — zero-copy out of the pool.
    auto handle =
        std::make_shared<PageHandle>(table_->pool_.Pin(entry.page_id));
    const float* data =
        reinterpret_cast<const float*>(handle->payload());
    std::shared_ptr<const float[]> keepalive(std::move(handle), data);
    const std::size_t cols = table_->feature_cols_;
    chunk.view =
        RowView(std::move(keepalive), data, entry.rows, cols, cols);
    chunk.row_begin = entry.row_begin;
    chunk.page_id = entry.page_id;
    return true;
}

// ---------------------------------------------------------------------------
// PagedTable

PagedTable::PagedTable(const std::string& path,
                       const StorageOptions& options, bool create) :
    pager_(path,
           Pager::Options{.page_size = options.page_size,
                          .create = create,
                          .read_retries = options.read_retries}),
    pool_(pager_, BufferPool::Options{.capacity_pages = options.pool_pages})
{
}

std::shared_ptr<PagedTable>
PagedTable::Create(const std::string& path,
                   std::vector<std::string> columns, std::size_t label_col,
                   const StorageOptions& options)
{
    if (columns.empty()) {
        throw InvalidArgument("paged table: need at least one column");
    }
    if (label_col > columns.size()) {
        throw InvalidArgument(
            StrFormat("paged table: label column %zu out of range "
                      "(%zu columns)",
                      label_col, columns.size()));
    }
    std::shared_ptr<PagedTable> table(
        new PagedTable(path, options, /*create=*/true));
    table->columns_ = std::move(columns);
    table->label_col_ = label_col;
    const bool has_label = label_col < table->columns_.size();
    table->feature_cols_ =
        table->columns_.size() - (has_label ? 1 : 0);
    if (table->feature_cols_ == 0) {
        throw InvalidArgument(
            "paged table: need at least one feature column");
    }
    const std::size_t payload = PagePayloadBytes(options.page_size);
    table->rows_per_page_ =
        payload / (table->feature_cols_ * sizeof(float));
    if (table->rows_per_page_ == 0) {
        throw CapacityError(
            StrFormat("paged table: a %zu-feature row does not fit the "
                      "%zu-byte payload of a %zu-byte page",
                      table->feature_cols_, payload, options.page_size));
    }
    table->labels_per_page_ = payload / sizeof(float);
    const std::uint32_t meta = table->pager_.Alloc(PageType::kTableMeta);
    DBS_ASSERT(meta == kMetaPageId);
    {
        std::lock_guard<std::mutex> lock(table->mutex_);
        table->WriteMetaLocked();
    }
    return table;
}

std::shared_ptr<PagedTable>
PagedTable::Open(const std::string& path, const StorageOptions& options)
{
    std::shared_ptr<PagedTable> table(
        new PagedTable(path, options, /*create=*/false));
    std::lock_guard<std::mutex> lock(table->mutex_);
    table->LoadMetaLocked();
    return table;
}

std::uint64_t
PagedTable::num_rows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return num_rows_;
}

std::size_t
PagedTable::NumDataPages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return data_pages_.size();
}

std::size_t
PagedTable::RowsInPage(std::size_t page_index,
                       std::uint64_t num_rows) const
{
    const std::uint64_t begin =
        static_cast<std::uint64_t>(page_index) * rows_per_page_;
    const std::uint64_t remaining = num_rows - begin;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, rows_per_page_));
}

void
PagedTable::AppendRow(const float* features, std::size_t n, float label)
{
    if (n != feature_cols_) {
        throw InvalidArgument(
            StrFormat("paged table %s: appended row has %zu features, "
                      "schema has %zu",
                      path().c_str(), n, feature_cols_));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t slot =
        static_cast<std::size_t>(num_rows_ % rows_per_page_);
    if (slot == 0) {
        data_pages_.push_back(pager_.Alloc(PageType::kFeatures));
        zones_.emplace_back(feature_cols_, ZoneRange{});
    }
    {
        PageHandle handle = pool_.Pin(data_pages_.back());
        auto* dst = reinterpret_cast<float*>(handle.MutablePayload()) +
                    slot * feature_cols_;
        std::memcpy(dst, features, feature_cols_ * sizeof(float));
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>((slot + 1) * feature_cols_ *
                                       sizeof(float));
    }
    // Ingest is the paged path's one materialization point — count it
    // so the post-load zero-copy guarantee stays checkable.
    RowBlock::NoteCopy(feature_cols_ * sizeof(float));
    std::vector<ZoneRange>& zone = zones_.back();
    for (std::size_t c = 0; c < feature_cols_; ++c) {
        if (slot == 0) {
            zone[c] = ZoneRange{features[c], features[c]};
        } else {
            zone[c].min = std::min(zone[c].min, features[c]);
            zone[c].max = std::max(zone[c].max, features[c]);
        }
    }
    if (has_label()) {
        const std::size_t lslot =
            static_cast<std::size_t>(num_rows_ % labels_per_page_);
        if (lslot == 0) {
            label_pages_.push_back(pager_.Alloc(PageType::kLabels));
        }
        PageHandle handle = pool_.Pin(label_pages_.back());
        reinterpret_cast<float*>(handle.MutablePayload())[lslot] = label;
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>((lslot + 1) * sizeof(float));
    }
    ++num_rows_;
}

std::uint32_t
PagedTable::WriteChainLocked(const std::vector<std::uint32_t>& ids)
{
    if (ids.empty()) {
        return 0;  // page 0 is the superblock: a safe null
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t per_page =
        (payload - 2 * sizeof(std::uint32_t)) / sizeof(std::uint32_t);
    DBS_ASSERT(per_page > 0);
    const std::size_t num_pages = (ids.size() + per_page - 1) / per_page;
    std::vector<std::uint32_t> chain(num_pages);
    for (std::uint32_t& id : chain) {
        id = pager_.Alloc(PageType::kDirectory);
    }
    for (std::size_t p = 0; p < num_pages; ++p) {
        const std::size_t begin = p * per_page;
        const std::size_t count =
            std::min(per_page, ids.size() - begin);
        PageHandle handle = pool_.Pin(chain[p]);
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint32_t>(
            p + 1 < num_pages ? chain[p + 1] : 0);
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(count));
        writer.PutBytes(ids.data() + begin,
                        count * sizeof(std::uint32_t));
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    return chain[0];
}

std::vector<std::uint32_t>
PagedTable::ReadChainLocked(std::uint32_t head)
{
    std::vector<std::uint32_t> ids;
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    std::uint32_t page = head;
    while (page != 0) {
        PageHandle handle = pool_.Pin(page);
        PayloadReader reader(handle.payload(), payload);
        const auto next = reader.Get<std::uint32_t>();
        const auto count = reader.Get<std::uint32_t>();
        const std::size_t old = ids.size();
        ids.resize(old + count);
        reader.GetBytes(ids.data() + old, count * sizeof(std::uint32_t));
        page = next;
    }
    return ids;
}

std::uint32_t
PagedTable::WriteZoneChainLocked()
{
    if (zones_.empty()) {
        return 0;
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t entry_bytes = feature_cols_ * sizeof(ZoneRange);
    const std::size_t per_page =
        (payload - 2 * sizeof(std::uint32_t)) / entry_bytes;
    if (per_page == 0) {
        throw CapacityError(
            StrFormat("paged table %s: one zone-map entry (%zu bytes) "
                      "does not fit a page",
                      path().c_str(), entry_bytes));
    }
    const std::size_t num_pages =
        (zones_.size() + per_page - 1) / per_page;
    std::vector<std::uint32_t> chain(num_pages);
    for (std::uint32_t& id : chain) {
        id = pager_.Alloc(PageType::kZoneMap);
    }
    for (std::size_t p = 0; p < num_pages; ++p) {
        const std::size_t begin = p * per_page;
        const std::size_t count =
            std::min(per_page, zones_.size() - begin);
        PageHandle handle = pool_.Pin(chain[p]);
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint32_t>(
            p + 1 < num_pages ? chain[p + 1] : 0);
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(count));
        for (std::size_t i = 0; i < count; ++i) {
            writer.PutBytes(zones_[begin + i].data(), entry_bytes);
        }
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    return chain[0];
}

void
PagedTable::ReadZoneChainLocked(std::uint32_t head)
{
    zones_.clear();
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    const std::size_t entry_bytes = feature_cols_ * sizeof(ZoneRange);
    std::uint32_t page = head;
    while (page != 0) {
        PageHandle handle = pool_.Pin(page);
        PayloadReader reader(handle.payload(), payload);
        const auto next = reader.Get<std::uint32_t>();
        const auto count = reader.Get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
            std::vector<ZoneRange> zone(feature_cols_);
            reader.GetBytes(zone.data(), entry_bytes);
            zones_.push_back(std::move(zone));
        }
        page = next;
    }
}

void
PagedTable::WriteMetaLocked()
{
    // Chains first, meta last: the meta page is the commit point, so a
    // crash mid-flush leaves the previous generation intact.
    const std::uint32_t data_head = WriteChainLocked(data_pages_);
    const std::uint32_t label_head = WriteChainLocked(label_pages_);
    const std::uint32_t zone_head = WriteZoneChainLocked();
    {
        PageHandle handle = pool_.Pin(kMetaPageId);
        const std::size_t payload = PagePayloadBytes(pager_.page_size());
        PayloadWriter writer(handle.MutablePayload(), payload);
        writer.Put<std::uint64_t>(num_rows_);
        writer.Put<std::uint32_t>(
            static_cast<std::uint32_t>(columns_.size()));
        writer.Put<std::uint32_t>(static_cast<std::uint32_t>(label_col_));
        writer.Put<std::uint32_t>(
            static_cast<std::uint32_t>(rows_per_page_));
        writer.Put<std::uint32_t>(data_head);
        writer.Put<std::uint32_t>(label_head);
        writer.Put<std::uint32_t>(zone_head);
        for (const std::string& name : columns_) {
            writer.Put<std::uint16_t>(
                static_cast<std::uint16_t>(name.size()));
            writer.PutBytes(name.data(), name.size());
        }
        HeaderOf(handle.MutableData())->payload_bytes =
            static_cast<std::uint32_t>(writer.offset());
    }
    pool_.FlushAll();
}

void
PagedTable::LoadMetaLocked()
{
    PageHandle handle = pool_.Pin(kMetaPageId);
    if (HeaderOf(handle.data())->type !=
        static_cast<std::uint16_t>(PageType::kTableMeta)) {
        throw DataCorruption("paged table: page 1 of '" + path() +
                             "' is not a table-meta page");
    }
    const std::size_t payload = PagePayloadBytes(pager_.page_size());
    PayloadReader reader(handle.payload(), payload);
    num_rows_ = reader.Get<std::uint64_t>();
    const auto num_cols = reader.Get<std::uint32_t>();
    label_col_ = reader.Get<std::uint32_t>();
    rows_per_page_ = reader.Get<std::uint32_t>();
    const auto data_head = reader.Get<std::uint32_t>();
    const auto label_head = reader.Get<std::uint32_t>();
    const auto zone_head = reader.Get<std::uint32_t>();
    columns_.clear();
    for (std::uint32_t i = 0; i < num_cols; ++i) {
        const auto len = reader.Get<std::uint16_t>();
        std::string name(len, '\0');
        reader.GetBytes(name.data(), len);
        columns_.push_back(std::move(name));
    }
    const bool labeled = label_col_ < columns_.size();
    feature_cols_ = columns_.size() - (labeled ? 1 : 0);
    labels_per_page_ = payload / sizeof(float);
    const std::size_t expected_rpp =
        feature_cols_ == 0 ? 0 : payload / (feature_cols_ * sizeof(float));
    if (feature_cols_ == 0 || rows_per_page_ != expected_rpp) {
        throw DataCorruption(
            StrFormat("paged table %s: meta rows-per-page %zu does not "
                      "match geometry (%zu)",
                      path().c_str(), rows_per_page_, expected_rpp));
    }
    handle.Release();
    data_pages_ = ReadChainLocked(data_head);
    label_pages_ = ReadChainLocked(label_head);
    ReadZoneChainLocked(zone_head);
    const std::uint64_t expected_pages =
        (num_rows_ + rows_per_page_ - 1) / rows_per_page_;
    if (data_pages_.size() != expected_pages ||
        zones_.size() != expected_pages ||
        (labeled &&
         label_pages_.size() !=
             (num_rows_ + labels_per_page_ - 1) / labels_per_page_)) {
        throw DataCorruption(
            StrFormat("paged table %s: directory lists %zu data / %zu "
                      "zone pages for %llu rows",
                      path().c_str(), data_pages_.size(), zones_.size(),
                      static_cast<unsigned long long>(num_rows_)));
    }
}

void
PagedTable::Flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    WriteMetaLocked();
}

float
PagedTable::Feature(std::uint64_t row, std::size_t feature_col) const
{
    std::uint32_t page_id = 0;
    std::size_t slot = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (row >= num_rows_ || feature_col >= feature_cols_) {
            throw InvalidArgument(
                StrFormat("paged table %s: read of row %llu col %zu out "
                          "of range",
                          path().c_str(),
                          static_cast<unsigned long long>(row),
                          feature_col));
        }
        page_id = data_pages_[static_cast<std::size_t>(
            row / rows_per_page_)];
        slot = static_cast<std::size_t>(row % rows_per_page_);
    }
    PageHandle handle = pool_.Pin(page_id);
    return reinterpret_cast<const float*>(
        handle.payload())[slot * feature_cols_ + feature_col];
}

float
PagedTable::Label(std::uint64_t row) const
{
    std::uint32_t page_id = 0;
    std::size_t slot = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!has_label()) {
            throw InvalidArgument("paged table '" + path() +
                                  "' has no label column");
        }
        if (row >= num_rows_) {
            throw InvalidArgument(
                StrFormat("paged table %s: label read of row %llu out "
                          "of range",
                          path().c_str(),
                          static_cast<unsigned long long>(row)));
        }
        page_id = label_pages_[static_cast<std::size_t>(
            row / labels_per_page_)];
        slot = static_cast<std::size_t>(row % labels_per_page_);
    }
    PageHandle handle = pool_.Pin(page_id);
    return reinterpret_cast<const float*>(handle.payload())[slot];
}

FeatureStream
PagedTable::Scan(const std::optional<ScanPredicate>& predicate) const
{
    if (predicate.has_value() && predicate->column >= feature_cols_) {
        throw InvalidArgument(
            StrFormat("paged table %s: scan predicate column %zu out of "
                      "range (%zu feature columns)",
                      path().c_str(), predicate->column, feature_cols_));
    }
    FeatureStream stream;
    stream.table_ = shared_from_this();
    std::lock_guard<std::mutex> lock(mutex_);
    stream.entries_.reserve(data_pages_.size());
    for (std::size_t p = 0; p < data_pages_.size(); ++p) {
        if (predicate.has_value()) {
            const ZoneRange& zone = zones_[p][predicate->column];
            if (zone.max < predicate->min ||
                zone.min > predicate->max) {
                pages_pruned_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
        }
        pages_scanned_.fetch_add(1, std::memory_order_relaxed);
        FeatureStream::Entry entry;
        entry.page_id = data_pages_[p];
        entry.row_begin = p * rows_per_page_;
        entry.rows = RowsInPage(p, num_rows_);
        stream.total_rows_ += entry.rows;
        stream.entries_.push_back(entry);
    }
    return stream;
}

std::vector<ZoneRange>
PagedTable::ZoneMap(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index >= zones_.size()) {
        throw InvalidArgument(
            StrFormat("paged table %s: zone map %zu out of range (%zu "
                      "data pages)",
                      path().c_str(), index, zones_.size()));
    }
    return zones_[index];
}

StorageStats
PagedTable::Stats() const
{
    StorageStats stats;
    stats.pool = pool_.stats();
    stats.pager = pager_.stats();
    stats.pages_scanned = pages_scanned_.load(std::memory_order_relaxed);
    stats.pages_pruned = pages_pruned_.load(std::memory_order_relaxed);
    stats.pool_pages = pool_.capacity();
    std::lock_guard<std::mutex> lock(mutex_);
    stats.num_rows = num_rows_;
    stats.data_pages = data_pages_.size();
    return stats;
}

void
PagedTable::ResetStats()
{
    pool_.ResetStats();
    pager_.ResetStats();
    pages_scanned_.store(0, std::memory_order_relaxed);
    pages_pruned_.store(0, std::memory_order_relaxed);
}

}  // namespace dbscore::storage
