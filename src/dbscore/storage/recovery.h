/**
 * @file
 * dbscore::recovery — report types for the crash-consistency plane.
 *
 * PagedTable's ordered commit protocol (DESIGN.md §16) makes every
 * Flush() an atomic generation switch: chains and data pages are
 * written and barriered first, then one of two meta slots is stamped
 * with generation g+1 and barriered. A crash at any write leaves the
 * newest *valid* meta slot describing a fully-consistent generation,
 * and PagedTable::Open() runs recovery unconditionally: pick the
 * newest slot whose checksum and chain loads succeed, fall back to
 * the other on a torn write, then sweep the file for orphan pages
 * (allocated but unreachable from the committed generation — the
 * debris of the crashed commit *and* of superseded chain
 * generations) and fold them into the persistent free list for
 * reuse.
 *
 * These structs are what that machinery reports — to tests, to
 * `EXEC sp_storage_recover` / `sp_storage_scrub`, and to
 * bench/wallclock_recovery.
 */
#ifndef DBSCORE_STORAGE_RECOVERY_H
#define DBSCORE_STORAGE_RECOVERY_H

#include <cstdint>
#include <string>
#include <vector>

namespace dbscore::storage {

/** What PagedTable::Open()/Recover() found and did. */
struct RecoveryReport {
    /** The committed generation the table now serves. */
    std::uint64_t generation = 0;
    /** A newer meta slot existed but was torn/unloadable; the table
     * rolled back to the previous committed generation. */
    bool rolled_back = false;
    /** Meta slots that failed their page checksum (torn commit). */
    std::uint32_t corrupt_meta_slots = 0;
    /** Pages unreachable from the committed generation, reclaimed
     * into the free list by this recovery. */
    std::uint32_t orphans_reclaimed = 0;
    /** Free-list size after recovery. */
    std::uint32_t free_pages = 0;
    /** True when recovery changed anything (rollback or reclaim). */
    bool performed = false;

    /** One-line human summary (proc messages, logs). */
    std::string Describe() const;
};

/** What one Scrub() pass over the reachable pages found. */
struct ScrubReport {
    /** Reachable pages whose checksums were verified. */
    std::uint64_t pages_checked = 0;
    /** Pages that failed verification, now quarantined. */
    std::vector<std::uint32_t> corrupt_pages;

    bool clean() const { return corrupt_pages.empty(); }

    std::string Describe() const;
};

/** Lifetime recovery/scrub counters (part of StorageStats). */
struct RecoveryStats {
    std::uint64_t recoveries = 0;         ///< recovery passes run
    std::uint64_t rollbacks = 0;          ///< generations rolled back
    std::uint64_t orphans_reclaimed = 0;  ///< pages folded into free list
    std::uint64_t pages_reused = 0;       ///< allocs served from free list
    std::uint64_t scrubs = 0;             ///< scrub passes run
    std::uint64_t scrub_corruptions = 0;  ///< corrupt pages found by scrubs
};

}  // namespace dbscore::storage

#endif  // DBSCORE_STORAGE_RECOVERY_H
