#include "dbscore/storage/buffer_pool.h"

#include <limits>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/trace/trace.h"

namespace dbscore::storage {

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_)
{
    other.pool_ = nullptr;
}

PageHandle&
PageHandle::operator=(PageHandle&& other) noexcept
{
    if (this != &other) {
        Release();
        pool_ = other.pool_;
        frame_ = other.frame_;
        other.pool_ = nullptr;
    }
    return *this;
}

PageHandle::~PageHandle() { Release(); }

void
PageHandle::Release()
{
    if (pool_ != nullptr) {
        pool_->Unpin(frame_);
        pool_ = nullptr;
    }
}

std::uint32_t
PageHandle::page_id() const
{
    DBS_ASSERT(pool_ != nullptr);
    return pool_->frames_[frame_].page_id;
}

const std::uint8_t*
PageHandle::data() const
{
    DBS_ASSERT(pool_ != nullptr);
    return pool_->frames_[frame_].data.data();
}

const std::uint8_t*
PageHandle::payload() const
{
    return data() + kPageHeaderSize;
}

std::uint8_t*
PageHandle::MutableData()
{
    DBS_ASSERT(pool_ != nullptr);
    pool_->MarkDirty(frame_);
    return pool_->frames_[frame_].data.data();
}

std::uint8_t*
PageHandle::MutablePayload()
{
    return MutableData() + kPageHeaderSize;
}

BufferPool::BufferPool(Pager& pager, const Options& options) : pager_(pager)
{
    if (options.capacity_pages == 0) {
        throw InvalidArgument("buffer pool: capacity must be at least 1 page");
    }
    frames_.resize(options.capacity_pages);
    // Frame storage is allocated up front and never resized, so frame
    // addresses stay stable for the lifetime of the pool — live
    // PageHandles (and RowViews aliasing them) never see memory move.
    for (Frame& frame : frames_) {
        frame.data.assign(pager_.page_size(), 0);
    }
    resident_.reserve(options.capacity_pages);
}

BufferPool::~BufferPool()
{
    // Teardown flush is best effort — Flush()/Sync() on the owning
    // table is the durable path — but a failure here is dirty data
    // that never reached the file, so it is counted (and traced) per
    // frame instead of being swallowed whole: after a crashed pager
    // every write-back fails and flush_failures tells the operator
    // how many pages of work were lost.
    std::uint64_t failures = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Frame& frame : frames_) {
            if (frame.used && frame.dirty) {
                try {
                    pager_.Write(frame.page_id, frame.data.data());
                    frame.dirty = false;
                    ++stats_.write_backs;
                } catch (...) {
                    ++stats_.flush_failures;
                    ++failures;
                }
            }
        }
        if (failures == 0) {
            try {
                pager_.Sync();
            } catch (...) {
                ++stats_.flush_failures;
                ++failures;
            }
        }
    }
    if (failures > 0) {
        trace::TraceCollector& tracer = trace::TraceCollector::Get();
        const double now = tracer.NowWallMicros();
        tracer.EmitWall(trace::StageKind::kBufferPool, "flush-failure",
                        trace::TraceCollector::Current(), now, 0.0,
                        {{"frames_lost", static_cast<double>(failures)}});
    }
}

std::size_t
BufferPool::AcquireFrameLocked(std::uint32_t page_id)
{
    // Prefer a never-used frame, else evict the LRU unpinned one.
    std::size_t victim = frames_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        const Frame& frame = frames_[i];
        if (!frame.used) {
            victim = i;
            oldest = 0;
            break;
        }
        if (frame.pins == 0 && frame.lru_tick < oldest) {
            victim = i;
            oldest = frame.lru_tick;
        }
    }
    if (victim == frames_.size()) {
        throw CapacityError(
            StrFormat("buffer pool: all %zu frames pinned while pinning "
                      "page %u — pool too small for the working set",
                      frames_.size(), page_id));
    }
    Frame& frame = frames_[victim];
    if (frame.used) {
        if (frame.dirty) {
            pager_.Write(frame.page_id, frame.data.data());
            frame.dirty = false;
            ++stats_.write_backs;
        }
        resident_.erase(frame.page_id);
        ++stats_.evictions;
    }
    frame.used = true;
    frame.dirty = false;
    frame.page_id = page_id;
    resident_[page_id] = victim;
    return victim;
}

PageHandle
BufferPool::Pin(std::uint32_t page_id)
{
    trace::TraceCollector& tracer = trace::TraceCollector::Get();
    const double wall_start = tracer.NowWallMicros();

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = resident_.find(page_id);
    if (it != resident_.end()) {
        Frame& frame = frames_[it->second];
        ++frame.pins;
        frame.lru_tick = ++lru_clock_;
        ++stats_.hits;
        return PageHandle(this, it->second);
    }

    ++stats_.misses;
    const std::uint64_t evictions_before = stats_.evictions;
    const std::size_t frame_index = AcquireFrameLocked(page_id);
    Frame& frame = frames_[frame_index];
    // Pin before the read so a concurrent Pin() can neither evict this
    // frame nor alias it while the fill is in flight.
    ++frame.pins;
    frame.lru_tick = ++lru_clock_;
    try {
        pager_.Read(page_id, frame.data.data());
    } catch (...) {
        // Failed fill: the frame holds garbage; drop it from the pool
        // entirely so a retry re-reads instead of serving junk.
        --frame.pins;
        frame.used = false;
        resident_.erase(page_id);
        throw;
    }
    tracer.EmitWall(trace::StageKind::kBufferPool, "pool-miss",
                    trace::TraceCollector::Current(), wall_start,
                    tracer.NowWallMicros() - wall_start,
                    {{"page_id", static_cast<double>(page_id)},
                     {"evicted",
                      static_cast<double>(stats_.evictions -
                                          evictions_before)}});
    return PageHandle(this, frame_index);
}

void
BufferPool::Unpin(std::size_t frame_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Frame& frame = frames_[frame_index];
    DBS_ASSERT_MSG(frame.pins > 0, "unpin of an unpinned frame");
    --frame.pins;
}

void
BufferPool::MarkDirty(std::size_t frame_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Frame& frame = frames_[frame_index];
    DBS_ASSERT_MSG(frame.pins > 0, "dirtying an unpinned frame");
    frame.dirty = true;
}

void
BufferPool::FlushAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Frame& frame : frames_) {
        if (frame.used && frame.dirty) {
            try {
                pager_.Write(frame.page_id, frame.data.data());
            } catch (...) {
                ++stats_.flush_failures;
                throw;
            }
            frame.dirty = false;
            ++stats_.write_backs;
        }
    }
    pager_.Sync();
}

void
BufferPool::Invalidate(std::uint32_t page_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = resident_.find(page_id);
    if (it == resident_.end()) {
        return;
    }
    Frame& frame = frames_[it->second];
    DBS_ASSERT_MSG(frame.pins == 0, "invalidating a pinned page");
    frame.used = false;
    frame.dirty = false;
    resident_.erase(it);
}

std::size_t
BufferPool::Resident() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_.size();
}

std::size_t
BufferPool::PinnedFrames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t pinned = 0;
    for (const Frame& frame : frames_) {
        if (frame.used && frame.pins > 0) {
            ++pinned;
        }
    }
    return pinned;
}

BufferPoolStats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
BufferPool::ResetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = BufferPoolStats{};
}

}  // namespace dbscore::storage
