/**
 * @file
 * PCIe link, CSR, and interrupt cost models.
 *
 * These model the "intrinsic hardware limits" side of the paper's offload
 * overheads (Section IV-E): moving data over PCIe (the L component of
 * Figure 6), programming the accelerator through Control/Status Registers,
 * and signaling completion back with an interrupt. The paper observes that
 * CSR-based FPGA setup is cheaper than the interrupt-based completion
 * signal; the default constants preserve that ordering.
 */
#ifndef DBSCORE_PCIE_PCIE_H
#define DBSCORE_PCIE_PCIE_H

#include <cstdint>

#include "dbscore/common/sim_time.h"

namespace dbscore {

/** Static description of one PCIe link. */
struct PcieLinkSpec {
    /** PCIe generation, 1-5. Gen 3 x16 is the paper's configuration. */
    int generation = 3;
    int lanes = 16;
    /**
     * Fraction of raw line rate achieved by DMA payloads after protocol
     * framing/TLP overhead. ~0.76 yields ~12 GB/s on gen3 x16.
     */
    double efficiency = 0.76;
    /** Fixed cost to program and launch one DMA descriptor. */
    SimTime dma_setup = SimTime::Micros(4.0);
};

/** Models data movement over one PCIe link. */
class PcieLink {
 public:
    explicit PcieLink(const PcieLinkSpec& spec);

    const PcieLinkSpec& spec() const { return spec_; }

    /** Sustained payload bandwidth in bytes/second. */
    double BytesPerSecond() const { return bytes_per_second_; }

    /**
     * Latency of one DMA transfer of @p bytes: descriptor setup plus the
     * wire time. Zero-byte transfers still pay the setup cost.
     */
    SimTime TransferLatency(std::uint64_t bytes) const;

    /**
     * Latency when the transfer is split into @p chunks DMA descriptors
     * (each pays the setup floor; wire time unchanged).
     */
    SimTime ChunkedTransferLatency(std::uint64_t bytes,
                                   std::uint64_t chunks) const;

    /**
     * Gates one DMA operation on the process-wide fault injector. The
     * latency functions above stay pure — the scheduler prices
     * hypothetical transfers with them and planning must never fault —
     * so operational paths call this once per actual transfer.
     *
     * @throws fault::FaultInjected when the installed plan fires at
     *         fault::FaultSite::kPcieDma
     */
    void CheckDmaFault() const;

 private:
    PcieLinkSpec spec_;
    double bytes_per_second_;
};

/**
 * Per-lane raw bandwidth for a PCIe generation in bytes/second
 * (after line coding: 8b/10b for gen1-2, 128b/130b for gen3+).
 *
 * @throws InvalidArgument for generations outside 1-5.
 */
double PcieRawLaneBandwidth(int generation);

/** MMIO Control/Status Register access costs. */
struct CsrModel {
    /** Posted write latency as observed by the CPU. */
    SimTime write_latency = SimTime::Micros(0.3);
    /** Non-posted read round trip. */
    SimTime read_latency = SimTime::Micros(0.9);

    /** Cost of programming @p count registers. */
    SimTime
    WriteMany(std::uint64_t count) const
    {
        return write_latency * static_cast<double>(count);
    }
};

/**
 * Device-to-host completion interrupt (MSI-X): wire + kernel interrupt
 * handling + waking the user thread. More expensive than a CSR write,
 * matching the paper's observation.
 */
struct InterruptModel {
    SimTime latency = SimTime::Micros(12.0);
};

}  // namespace dbscore

#endif  // DBSCORE_PCIE_PCIE_H
