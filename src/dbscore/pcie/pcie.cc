#include "dbscore/pcie/pcie.h"

#include "dbscore/common/error.h"
#include "dbscore/fault/fault.h"

namespace dbscore {

double
PcieRawLaneBandwidth(int generation)
{
    // GT/s per lane scaled by the line-code efficiency.
    switch (generation) {
      case 1: return 2.5e9 / 10.0;          // 8b/10b -> 250 MB/s
      case 2: return 5.0e9 / 10.0;          // 500 MB/s
      case 3: return 8.0e9 * (128.0 / 130.0) / 8.0;   // ~984.6 MB/s
      case 4: return 16.0e9 * (128.0 / 130.0) / 8.0;  // ~1969 MB/s
      case 5: return 32.0e9 * (128.0 / 130.0) / 8.0;  // ~3938 MB/s
      default:
        throw InvalidArgument("pcie: unsupported generation");
    }
}

PcieLink::PcieLink(const PcieLinkSpec& spec) : spec_(spec)
{
    if (spec.lanes <= 0 || spec.lanes > 32) {
        throw InvalidArgument("pcie: bad lane count");
    }
    if (spec.efficiency <= 0.0 || spec.efficiency > 1.0) {
        throw InvalidArgument("pcie: efficiency must be in (0, 1]");
    }
    bytes_per_second_ = PcieRawLaneBandwidth(spec.generation) *
                        spec.lanes * spec.efficiency;
}

SimTime
PcieLink::TransferLatency(std::uint64_t bytes) const
{
    return spec_.dma_setup + TransferTime(bytes, bytes_per_second_);
}

SimTime
PcieLink::ChunkedTransferLatency(std::uint64_t bytes,
                                 std::uint64_t chunks) const
{
    DBS_ASSERT(chunks > 0);
    return spec_.dma_setup * static_cast<double>(chunks) +
           TransferTime(bytes, bytes_per_second_);
}

void
PcieLink::CheckDmaFault() const
{
    fault::CheckSite(fault::FaultSite::kPcieDma);
}

}  // namespace dbscore
