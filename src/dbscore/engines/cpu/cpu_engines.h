/**
 * @file
 * CPU scoring engines: Scikit-learn-style and ONNX-runtime-style.
 *
 * Both engines functionally score by real forest traversal (predictions are
 * identical to the reference model by construction) and report modeled
 * latency per the CpuSpec cost model. They differ exactly where the paper
 * says the real frameworks differ:
 *
 *  - SklearnCpuEngine: large fixed per-call overhead (Python layer), cheap
 *    well-threaded batch loop — wins at large batch sizes.
 *  - OnnxCpuEngine: tiny fixed overhead, expensive per-record operator
 *    dispatch ("ONNX is not currently optimized for batch scoring") —
 *    wins below the ~5K-record crossover; run with 1 thread (CPU_ONNX)
 *    or 52 threads (CPU_ONNX_52th).
 */
#ifndef DBSCORE_ENGINES_CPU_CPU_ENGINES_H
#define DBSCORE_ENGINES_CPU_CPU_ENGINES_H

#include "dbscore/engines/cpu/cpu_spec.h"
#include "dbscore/engines/scoring_engine.h"
#include "dbscore/forest/forest.h"

namespace dbscore {

/** Shared functional-scoring plumbing for CPU engines. */
class CpuEngineBase : public ScoringEngine {
 public:
    CpuEngineBase(const CpuSpec& spec, int threads);

    void LoadModel(const TreeEnsemble& model,
                   const ModelStats& stats) override;

    ScoreResult Score(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) override;

    int threads() const { return threads_; }
    const CpuSpec& spec() const { return spec_; }

 protected:
    const ModelStats& stats() const { return stats_; }

    /** Mean traversal edges per tree (from stats; >= 1 for timing). */
    double AvgPath() const;

    /**
     * Per-record cost of streaming the batch feature matrix once it
     * spills the LLC (grows with the record count).
     */
    double DataMissPerRecordNs(std::size_t num_rows) const;

 private:
    CpuSpec spec_;
    int threads_;
    RandomForest forest_;
    ModelStats stats_;
};

/** Scikit-learn-style batch engine (paper's CPU_SKLearn, 52 threads). */
class SklearnCpuEngine : public CpuEngineBase {
 public:
    explicit SklearnCpuEngine(const CpuSpec& spec, int threads = 0);

    BackendKind kind() const override { return BackendKind::kCpuSklearn; }

    OffloadBreakdown Estimate(std::size_t num_rows) const override;
};

/** ONNX-runtime-style engine (CPU_ONNX at 1 thread, CPU_ONNX_52th at 52). */
class OnnxCpuEngine : public CpuEngineBase {
 public:
    explicit OnnxCpuEngine(const CpuSpec& spec, int threads = 1);

    BackendKind
    kind() const override
    {
        return threads() == 1 ? BackendKind::kCpuOnnx
                              : BackendKind::kCpuOnnxMt;
    }

    OffloadBreakdown Estimate(std::size_t num_rows) const override;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_CPU_CPU_ENGINES_H
