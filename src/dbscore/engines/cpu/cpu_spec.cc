#include "dbscore/engines/cpu/cpu_spec.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"

namespace dbscore {

double
ThreadEfficiency(int threads, double exponent)
{
    if (threads < 1) {
        throw InvalidArgument("cpu: thread count must be >= 1");
    }
    return std::max(1.0, std::pow(static_cast<double>(threads), exponent));
}

double
LlcMissFraction(double working_set_bytes, double llc_bytes, double asymptote)
{
    DBS_ASSERT(llc_bytes > 0.0);
    if (working_set_bytes <= 0.0) {
        return 0.0;
    }
    double w = working_set_bytes / llc_bytes;
    return asymptote * w / (w + 1.0);
}

}  // namespace dbscore
