#include "dbscore/engines/cpu/cpu_engines.h"

#include <algorithm>

#include "dbscore/common/error.h"

namespace dbscore {

CpuEngineBase::CpuEngineBase(const CpuSpec& spec, int threads)
    : spec_(spec), threads_(threads == 0 ? spec.max_threads : threads)
{
    if (threads_ < 1 || threads_ > spec_.max_threads) {
        throw InvalidArgument("cpu engine: thread count out of range");
    }
}

void
CpuEngineBase::LoadModel(const TreeEnsemble& model, const ModelStats& stats)
{
    forest_ = model.ToForest();
    stats_ = stats;
    set_loaded(true);
}

double
CpuEngineBase::AvgPath() const
{
    return std::max(1.0, stats_.avg_path_length);
}

ScoreResult
CpuEngineBase::Score(const float* rows, std::size_t num_rows,
                     std::size_t num_cols)
{
    RequireLoaded();
    if (num_cols != stats_.num_features) {
        throw InvalidArgument(Name() + ": row arity mismatch");
    }
    ScoreResult result;
    result.predictions = forest_.PredictBatch(rows, num_rows, num_cols);
    result.breakdown = Estimate(num_rows);
    TraceOffloadStages(result.breakdown);
    return result;
}

SklearnCpuEngine::SklearnCpuEngine(const CpuSpec& spec, int threads)
    : CpuEngineBase(spec, threads)
{
}

double
CpuEngineBase::DataMissPerRecordNs(std::size_t num_rows) const
{
    // Batch feature matrix streamed during scoring: once it spills the
    // LLC, every feature read pays a DRAM-latency fraction.
    const CpuSpec& s = spec();
    const ModelStats& m = stats();
    const double batch_bytes = static_cast<double>(num_rows) *
                               static_cast<double>(m.num_features) *
                               sizeof(float);
    const double miss = LlcMissFraction(batch_bytes,
                                        static_cast<double>(s.llc_bytes),
                                        s.llc_miss_asymptote);
    return static_cast<double>(m.num_features) * miss *
           s.data_miss_penalty_ns;
}

OffloadBreakdown
SklearnCpuEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const CpuSpec& s = spec();
    const ModelStats& m = stats();

    const double model_bytes =
        static_cast<double>(m.total_nodes) * s.sklearn_node_bytes;
    const double miss = LlcMissFraction(
        model_bytes, static_cast<double>(s.llc_bytes),
        s.llc_miss_asymptote);
    const double per_node_ns =
        s.sklearn_per_node_ns + miss * s.llc_miss_penalty_ns;

    const double per_record_ns =
        s.sklearn_per_value_ns * static_cast<double>(m.num_features) +
        s.sklearn_per_record_ns + DataMissPerRecordNs(num_rows) +
        static_cast<double>(m.num_trees) * AvgPath() * per_node_ns;

    const double efficiency =
        ThreadEfficiency(threads(), s.sklearn_thread_exponent);

    OffloadBreakdown b;
    b.software_overhead = s.sklearn_fixed;
    b.compute = SimTime::Nanos(
        static_cast<double>(num_rows) * per_record_ns / efficiency);
    return b;
}

OnnxCpuEngine::OnnxCpuEngine(const CpuSpec& spec, int threads)
    : CpuEngineBase(spec, threads)
{
}

OffloadBreakdown
OnnxCpuEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const CpuSpec& s = spec();
    const ModelStats& m = stats();

    const double model_bytes =
        static_cast<double>(m.total_nodes) * s.onnx_node_bytes;
    const double miss = LlcMissFraction(
        model_bytes, static_cast<double>(s.llc_bytes),
        s.llc_miss_asymptote);
    const double per_node_ns =
        s.onnx_per_node_ns + miss * s.llc_miss_penalty_ns;

    const double per_record_ns =
        s.onnx_per_value_ns * static_cast<double>(m.num_features) +
        s.onnx_per_record_ns + DataMissPerRecordNs(num_rows) +
        static_cast<double>(m.num_trees) * AvgPath() * per_node_ns;

    const double efficiency =
        ThreadEfficiency(threads(), s.onnx_thread_exponent);

    OffloadBreakdown b;
    b.software_overhead =
        s.onnx_fixed + s.onnx_thread_spawn * static_cast<double>(
                                                 threads() - 1);
    b.compute = SimTime::Nanos(
        static_cast<double>(num_rows) * per_record_ns / efficiency);
    return b;
}

}  // namespace dbscore
