/**
 * @file
 * CPU hardware/framework timing parameters.
 *
 * The paper's CPU baselines run Scikit-learn and ONNX Runtime on a
 * dual-socket Xeon Platinum 8171M (2x26 cores, 2.6 GHz). We cannot measure
 * that machine, so CPU scoring latency is modeled:
 *
 *   T(n) = fixed + n * (per_value*F + per_record + trees*path*per_node) / E
 *
 * where E is sublinear thread scaling and per_node inflates with a
 * last-level-cache working-set model when the model spills the LLC.
 * per_value*F captures framework data handling (DataFrame -> array
 * extraction), which is what makes wide datasets (HIGGS, 28 features)
 * disproportionately expensive on the CPU baselines in the paper.
 *
 * Constants are calibrated against the paper's anchors (see
 * core/calibration.h and EXPERIMENTS.md).
 */
#ifndef DBSCORE_ENGINES_CPU_CPU_SPEC_H
#define DBSCORE_ENGINES_CPU_CPU_SPEC_H

#include <cstdint>
#include <string>

#include "dbscore/common/sim_time.h"

namespace dbscore {

/** Timing parameters for the modeled CPU and its two ML frameworks. */
struct CpuSpec {
    std::string name = "2x Intel Xeon Platinum 8171M";
    int max_threads = 52;
    double clock_hz = 2.6e9;
    /** Effective last-level cache available to the scoring process. */
    std::uint64_t llc_bytes = 36 * 1024 * 1024;

    // --- Scikit-learn-style engine -------------------------------------
    /** Python dispatch, input validation, result materialization. */
    SimTime sklearn_fixed = SimTime::Millis(2.8);
    /** Framework data handling per feature value. */
    double sklearn_per_value_ns = 45.0;
    /** Per-record vote aggregation and bookkeeping. */
    double sklearn_per_record_ns = 40.0;
    /** Per node visit during traversal (before cache inflation). */
    double sklearn_per_node_ns = 20.0;
    /** In-memory bytes per tree node (drives the LLC model). */
    double sklearn_node_bytes = 56.0;
    /** Thread scaling: E = threads^exponent. */
    double sklearn_thread_exponent = 0.78;

    // --- ONNX-runtime-style engine -------------------------------------
    /** Session dispatch cost: far below sklearn's Python overhead. */
    SimTime onnx_fixed = SimTime::Micros(150.0);
    /** Per-extra-thread session fan-out cost (intra-op thread wake-up). */
    SimTime onnx_thread_spawn = SimTime::Micros(50.0);
    double onnx_per_value_ns = 8.0;
    /**
     * Per-record operator-graph overhead. ONNX Runtime's tree op is not
     * batch-optimized (paper Section IV-C2), so this per-record cost is
     * large and dominates for small models.
     */
    double onnx_per_record_ns = 450.0;
    double onnx_per_node_ns = 10.0;
    double onnx_node_bytes = 64.0;
    double onnx_thread_exponent = 0.72;

    // --- Shared cache model ---------------------------------------------
    /** Extra latency per node visit on an LLC miss. */
    double llc_miss_penalty_ns = 60.0;
    /** Asymptotic miss fraction for working sets >> LLC. */
    double llc_miss_asymptote = 0.9;
    /**
     * Extra latency per feature value when the batch working set spills
     * the LLC (wide datasets at large record counts stream from DRAM —
     * why HIGGS is disproportionately expensive on the CPU baselines).
     */
    double data_miss_penalty_ns = 100.0;
};

/** Sublinear thread-scaling efficiency: threads^exponent, min 1. */
double ThreadEfficiency(int threads, double exponent);

/**
 * Expected LLC miss fraction for random accesses over @p working_set
 * bytes with @p llc_bytes of cache: asymptote * w/(w+1), w = set/cache.
 */
double LlcMissFraction(double working_set_bytes, double llc_bytes,
                       double asymptote);

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_CPU_CPU_SPEC_H
