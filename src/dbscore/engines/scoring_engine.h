/**
 * @file
 * The scoring-engine abstraction shared by every hardware backend.
 *
 * An engine (1) functionally scores batches of records — producing real
 * predictions that must match the reference RandomForest — and
 * (2) reports a simulated latency breakdown with the components the paper
 * names in Figure 6 and Section IV-B: offload overhead O (setup, completion
 * signal, software overhead), data transfer L (input/result transfer), and
 * compute C. CPU engines only populate the framework-overhead and compute
 * components.
 */
#ifndef DBSCORE_ENGINES_SCORING_ENGINE_H
#define DBSCORE_ENGINES_SCORING_ENGINE_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dbscore/common/sim_time.h"
#include "dbscore/fault/fault.h"
#include "dbscore/forest/model_stats.h"
#include "dbscore/forest/onnx_like.h"

namespace dbscore {

/** Every engine variant the paper evaluates. */
enum class BackendKind {
    kCpuSklearn,      ///< Scikit-learn-style engine, multithreaded
    kCpuOnnx,         ///< ONNX-runtime-style engine, 1 thread
    kCpuOnnxMt,       ///< ONNX-runtime-style engine, 52 threads
    kGpuHummingbird,  ///< tree ensemble compiled to tensor ops on GPU
    kGpuRapids,       ///< RAPIDS-FIL-style traversal kernel on GPU
    kFpga,            ///< the paper's 128-PE FPGA inference engine
    /**
     * The paper's proposed extension (Section III-B): the FPGA scores the
     * first 10 levels and the CPU finishes deeper trees. Not one of the
     * paper's measured series, so excluded from AllBackends().
     */
    kFpgaHybrid,
};

/** Coarse device class of a backend. */
enum class DeviceClass { kCpu, kGpu, kFpga };

/** Short display name, e.g. "CPU_SKLearn" (matches the paper's legends). */
const char* BackendName(BackendKind kind);

/** Device class of a backend kind. */
DeviceClass BackendDeviceClass(BackendKind kind);

/**
 * Simulated latency breakdown of one scoring call. Components follow the
 * paper's Figure 6/7 taxonomy; CPU engines use only framework_overhead
 * and compute.
 */
struct OffloadBreakdown {
    /** Engine-side data preparation (e.g. RAPIDS' cuDF conversion). */
    SimTime preprocessing;
    /** L: moving model (and unoverlapped data) to the device. */
    SimTime input_transfer;
    /** O: configuring the accelerator / launching work. */
    SimTime setup;
    /** C: the scoring computation itself. */
    SimTime compute;
    /** O: completion signaling back to the host. */
    SimTime completion_signal;
    /** L: moving results back to host memory. */
    SimTime result_transfer;
    /** O: host-side API/framework call overhead. */
    SimTime software_overhead;

    SimTime Total() const;

    /** Offload overhead O = setup + completion + software. */
    SimTime OverheadO() const;

    /** Data transfer L = input + result transfer. */
    SimTime TransferL() const;

    OffloadBreakdown& operator+=(const OffloadBreakdown& other);
};

/**
 * Emits one simulated trace span per non-zero breakdown component
 * (accel-preproc, transfer-in, accel-setup, scoring, completion-signal,
 * transfer-out, software-overhead), chained on the calling thread's
 * trace::SimClock. Every engine's Score path calls this so a traced
 * query attributes its offload microseconds exactly like Figures 6/7.
 * No-op unless a ScopedSpan (the pipeline's offload span) is live on
 * this thread — untraced unit-test Score calls emit nothing.
 */
void TraceOffloadStages(const OffloadBreakdown& breakdown);

/** Result of a functional scoring call. */
struct ScoreResult {
    /** One prediction per input row. */
    std::vector<float> predictions;
    /** Simulated cost of this call. */
    OffloadBreakdown breakdown;
};

/** Terminal state of a fault-aware scoring attempt. */
enum class ScoreStatus {
    kOk,     ///< predictions and breakdown are valid
    kFault,  ///< an injected fault aborted the attempt
};

/**
 * A scoring attempt that is allowed to fail. Score() throwing
 * FaultInjected is the mechanism; this is the value-typed surface the
 * serving layer retries on without exceptions crossing queue/worker
 * boundaries.
 */
struct ScoreOutcome {
    ScoreStatus status = ScoreStatus::kOk;
    /** Valid only when ok(). */
    ScoreResult result;
    /** Which site failed; valid only when !ok(). */
    fault::FaultSite fault_site = fault::FaultSite::kPcieDma;
    /** True when the failing site is stuck until repaired. */
    bool fault_sticky = false;
    /** Human-readable failure description; empty when ok(). */
    std::string error;

    bool ok() const { return status == ScoreStatus::kOk; }
};

/**
 * The fault-injection sites one offload through @p kind crosses, in
 * operation order (e.g. FPGA: DMA in, setup, completion, DMA out).
 * CPU backends cross none — scoring in-process touches no modeled
 * hardware, which is exactly why CPU is the degradation target.
 * Used by timing-only dispatch paths that must consume the same fault
 * stream as a functional Score would.
 */
std::vector<fault::FaultSite> OffloadFaultSites(BackendKind kind);

/** Abstract scoring engine. */
class ScoringEngine {
 public:
    virtual ~ScoringEngine() = default;

    virtual BackendKind kind() const = 0;

    std::string Name() const { return BackendName(kind()); }

    /**
     * Loads (and, where applicable, compiles) a model. Engines may reject
     * models that exceed modeled hardware limits.
     *
     * @param model   the ONNX-like exchange representation
     * @param stats   precomputed complexity statistics for the same model
     * @throws CapacityError when the model violates a device limit
     */
    virtual void LoadModel(const TreeEnsemble& model,
                           const ModelStats& stats) = 0;

    /** True once LoadModel succeeded. */
    bool loaded() const { return loaded_; }

    /**
     * Functionally scores @p num_rows rows of @p num_cols features and
     * returns predictions plus the simulated breakdown.
     *
     * @throws InvalidArgument if no model is loaded or arity mismatches
     */
    virtual ScoreResult Score(const float* rows, std::size_t num_rows,
                              std::size_t num_cols) = 0;

    /**
     * Scores through a zero-copy view. Contiguous views (the common
     * case: whole RowBlocks and row-range slices) reach the virtual
     * Score without any copy; a strided column-slice view is first
     * materialized (counted against RowBlock::CopyStats).
     */
    ScoreResult Score(const RowView& view);

    /**
     * Fault-aware Score: catches FaultInjected from this engine's
     * injection sites and returns it as a kFault outcome instead of
     * unwinding through the caller. Non-fault errors (arity mismatch,
     * no model) still throw — those are caller bugs, not conditions
     * to retry.
     */
    ScoreOutcome TryScore(const float* rows, std::size_t num_rows,
                          std::size_t num_cols);

    /** Fault-aware Score through a zero-copy view. */
    ScoreOutcome TryScore(const RowView& view);

    /**
     * Timing-only evaluation: the breakdown Score would report for
     * @p num_rows rows, without computing predictions. Lets the bench
     * sweeps cover 1M-row points cheaply. Tests pin Estimate == Score's
     * breakdown wherever both run.
     */
    virtual OffloadBreakdown Estimate(std::size_t num_rows) const = 0;

 protected:
    void RequireLoaded() const;
    void set_loaded(bool loaded) { loaded_ = loaded; }

 private:
    bool loaded_ = false;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_SCORING_ENGINE_H
