/**
 * @file
 * Hybrid FPGA+CPU scoring engine for deep trees — the extension the paper
 * sketches in Section III-B: "An extension to our current design can send
 * the results of processing 10 levels of trees back to the CPU's memory
 * so that the rest of the operation, evaluating levels from depth 10
 * onward, be done on the CPU."
 *
 * The FPGA holds each tree's top max_tree_depth levels (continuation
 * slots mark cut subtrees); per (record, tree) the device returns either
 * a final vote or the node id to resume from, and the CPU finishes the
 * deep traversals and the final vote. Unlike the plain FPGA engine, this
 * one accepts trees of any depth — at the cost of shipping per-tree
 * partial results over PCIe and burning CPU cycles on the tails.
 */
#ifndef DBSCORE_ENGINES_FPGA_HYBRID_ENGINE_H
#define DBSCORE_ENGINES_FPGA_HYBRID_ENGINE_H

#include <vector>

#include "dbscore/engines/cpu/cpu_spec.h"
#include "dbscore/engines/fpga/fpga_engine.h"
#include "dbscore/engines/scoring_engine.h"
#include "dbscore/forest/forest.h"
#include "dbscore/fpgasim/tree_layout.h"

namespace dbscore {

/** The hybrid deep-tree backend. */
class HybridFpgaCpuEngine : public ScoringEngine {
 public:
    HybridFpgaCpuEngine(const FpgaSpec& fpga_spec,
                        const PcieLinkSpec& link_spec,
                        const FpgaOffloadParams& params,
                        const CpuSpec& cpu_spec);

    BackendKind kind() const override { return BackendKind::kFpgaHybrid; }

    /** Accepts any tree depth (unlike the plain FPGA engine). */
    void LoadModel(const TreeEnsemble& model,
                   const ModelStats& stats) override;

    ScoreResult Score(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) override;

    OffloadBreakdown Estimate(std::size_t num_rows) const override;

    /**
     * Expected fraction of (record, tree) traversals that hit the depth
     * cut and continue on the CPU: continuation slots weighted by their
     * reach probability under uniform branching.
     */
    double ContinuationFraction() const;

    /** Mean tree depth beyond the FPGA cut over continued traversals. */
    double MeanTailDepth() const;

 private:
    FpgaSpec fpga_spec_;
    PcieLink link_;
    FpgaOffloadParams params_;
    CpuSpec cpu_spec_;
    RandomForest forest_;
    ModelStats stats_;
    std::vector<TreeMemoryImage> images_;
    double continuation_fraction_ = 0.0;
    double mean_tail_depth_ = 0.0;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_FPGA_HYBRID_ENGINE_H
