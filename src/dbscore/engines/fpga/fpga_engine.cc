#include "dbscore/engines/fpga/fpga_engine.h"

#include "dbscore/common/error.h"

namespace dbscore {

namespace {

/** Adjusts the device spec's node width for a quantized deployment. */
FpgaSpec
ApplyQuantization(FpgaSpec spec, const FpgaOffloadParams& params)
{
    if (params.quantization.has_value()) {
        spec.node_bytes = static_cast<int>(
            QuantizedNodeBytes(*params.quantization));
    }
    return spec;
}

}  // namespace

FpgaScoringEngine::FpgaScoringEngine(const FpgaSpec& fpga_spec,
                                     const PcieLinkSpec& link_spec,
                                     const FpgaOffloadParams& params)
    : engine_(ApplyQuantization(fpga_spec, params)),
      link_(link_spec),
      params_(params)
{
}

void
FpgaScoringEngine::LoadModel(const TreeEnsemble& model,
                             const ModelStats& stats)
{
    RandomForest forest = model.ToForest();
    if (params_.quantization.has_value()) {
        forest = QuantizeForest(forest, *params_.quantization);
    }
    engine_.LoadModel(forest);
    stats_ = stats;
    set_loaded(true);
}

ScoreResult
FpgaScoringEngine::Score(const float* rows, std::size_t num_rows,
                         std::size_t num_cols)
{
    RequireLoaded();
    ScoreResult result;
    FpgaRunReport report;
    // Operation order of an offload: model/record DMA in, then the
    // device run (setup + completion sites inside), then result DMA
    // out. Estimate() stays fault-free for the planner.
    link_.CheckDmaFault();
    result.predictions =
        engine_.Score(rows, num_rows, num_cols, &report);
    link_.CheckDmaFault();
    result.breakdown = Estimate(num_rows);
    TraceOffloadStages(result.breakdown);
    return result;
}

OffloadBreakdown
FpgaScoringEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const double passes = static_cast<double>(engine_.NumPasses());

    OffloadBreakdown b;
    // Model image into the PEs' tree memories; records themselves are
    // streamed during scoring (overlap), matching the paper — unless the
    // overlap ablation turns that off, in which case every pass pays an
    // up-front record transfer.
    b.input_transfer = link_.TransferLatency(engine_.ModelBytes());
    if (!params_.overlap_record_streaming) {
        const std::uint64_t record_bytes =
            static_cast<std::uint64_t>(num_rows) * stats_.num_features *
            sizeof(float);
        b.input_transfer +=
            link_.TransferLatency(record_bytes) * passes;
    }
    b.setup = params_.csr.WriteMany(
                  static_cast<std::uint64_t>(params_.setup_csr_writes)) *
              passes;
    b.compute = SimTime::Cycles(
        static_cast<double>(
            engine_.CyclesFor(num_rows, stats_.num_features)),
        engine_.spec().clock_hz);
    b.completion_signal = params_.interrupt.latency * passes;

    const std::uint64_t result_bytes =
        static_cast<std::uint64_t>(num_rows) * sizeof(float);
    const std::uint64_t chunks = std::max<std::uint64_t>(
        1, (result_bytes + engine_.spec().result_buffer_bytes - 1) /
               engine_.spec().result_buffer_bytes);
    b.result_transfer = link_.ChunkedTransferLatency(result_bytes, chunks);
    b.software_overhead = params_.software_overhead;
    return b;
}

}  // namespace dbscore
