/**
 * @file
 * FPGA scoring engine: the fpgasim inference engine wrapped with the
 * paper's full offload path (Section IV-B):
 *
 *   input transfer (model over PCIe) -> FPGA setup (CSR writes) ->
 *   scoring (pipelined PEs) -> completion signal (interrupt) ->
 *   result transfer (PCIe, chunked by the on-chip result buffer) ->
 *   plus host-side software overhead for the driver/API calls.
 *
 * Record transfer overlaps scoring (the paper's streaming design), so the
 * input-transfer component only covers the model, exactly as Figure 7
 * accounts it.
 */
#ifndef DBSCORE_ENGINES_FPGA_FPGA_ENGINE_H
#define DBSCORE_ENGINES_FPGA_FPGA_ENGINE_H

#include <optional>

#include "dbscore/engines/scoring_engine.h"
#include "dbscore/fpgasim/inference_engine.h"
#include "dbscore/fpgasim/quantize.h"
#include "dbscore/pcie/pcie.h"

namespace dbscore {

/** Host-side offload cost parameters for the FPGA path. */
struct FpgaOffloadParams {
    /** Driver/API call overhead per scoring invocation. */
    SimTime software_overhead = SimTime::Millis(2.6);
    /** CSRs programmed per engine pass. */
    int setup_csr_writes = 8;
    /**
     * When true (the paper's design), record streaming overlaps scoring
     * and input transfer covers only the model. When false, record bytes
     * are transferred up front each pass — the overlap ablation.
     */
    bool overlap_record_streaming = true;
    /**
     * Optional fixed-point tree memory. When set, the model's thresholds
     * (and regression leaves) are quantized at load time and BRAM /
     * transfer accounting uses the narrower node words — predictions
     * then match the *quantized* model. The paper's configuration uses
     * full 32-bit words (nullopt).
     */
    std::optional<QuantizationSpec> quantization;
    CsrModel csr;
    InterruptModel interrupt;
};

/** The paper's FPGA backend. */
class FpgaScoringEngine : public ScoringEngine {
 public:
    FpgaScoringEngine(const FpgaSpec& fpga_spec,
                      const PcieLinkSpec& link_spec,
                      const FpgaOffloadParams& params);

    BackendKind kind() const override { return BackendKind::kFpga; }

    /**
     * @throws CapacityError for trees deeper than 10 levels or models
     *         that do not fit in BRAM
     */
    void LoadModel(const TreeEnsemble& model,
                   const ModelStats& stats) override;

    ScoreResult Score(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) override;

    OffloadBreakdown Estimate(std::size_t num_rows) const override;

    /** Access to the underlying device simulator (for benches/tests). */
    const FpgaInferenceEngine& device() const { return engine_; }

 private:
    FpgaInferenceEngine engine_;
    PcieLink link_;
    FpgaOffloadParams params_;
    ModelStats stats_;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_FPGA_FPGA_ENGINE_H
