#include "dbscore/engines/fpga/hybrid_engine.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"
#include "dbscore/common/string_util.h"
#include "dbscore/common/thread_pool.h"

namespace dbscore {

namespace {

/** Continues a traversal from @p node down to a leaf. */
float
FinishTraversal(const DecisionTree& tree, std::int32_t node,
                const float* row)
{
    while (!tree.IsLeaf(node)) {
        node = row[tree.Feature(node)] <= tree.Threshold(node)
            ? tree.Left(node)
            : tree.Right(node);
    }
    return tree.LeafValue(node);
}

/** Accumulates continuation statistics of one tree at @p cut levels. */
void
CollectContinuations(const DecisionTree& tree, std::size_t cut,
                     double& prob_sum, double& weighted_tail)
{
    struct Frame {
        std::int32_t node;
        std::size_t depth;
    };
    std::vector<Frame> stack{{0, 0}};
    while (!stack.empty()) {
        auto [node, depth] = stack.back();
        stack.pop_back();
        if (tree.IsLeaf(node)) {
            continue;
        }
        if (depth == cut) {
            // A continued traversal reaches this subtree with
            // probability 2^-cut under uniform branching.
            double p = std::pow(0.5, static_cast<double>(cut));
            // Expected tail length ~ 0.9 x subtree depth (paths rarely
            // all reach the bottom), matching ModelStats' convention.
            std::size_t tail = 0;
            std::vector<Frame> sub{{node, 0}};
            while (!sub.empty()) {
                auto [n2, d2] = sub.back();
                sub.pop_back();
                tail = std::max(tail, d2);
                if (!tree.IsLeaf(n2)) {
                    sub.push_back({tree.Left(n2), d2 + 1});
                    sub.push_back({tree.Right(n2), d2 + 1});
                }
            }
            prob_sum += p;
            weighted_tail += p * 0.9 * static_cast<double>(tail);
            continue;
        }
        stack.push_back({tree.Left(node), depth + 1});
        stack.push_back({tree.Right(node), depth + 1});
    }
}

}  // namespace

HybridFpgaCpuEngine::HybridFpgaCpuEngine(const FpgaSpec& fpga_spec,
                                         const PcieLinkSpec& link_spec,
                                         const FpgaOffloadParams& params,
                                         const CpuSpec& cpu_spec)
    : fpga_spec_(fpga_spec),
      link_(link_spec),
      params_(params),
      cpu_spec_(cpu_spec)
{
}

void
HybridFpgaCpuEngine::LoadModel(const TreeEnsemble& model,
                               const ModelStats& stats)
{
    RandomForest forest = model.ToForest();
    const auto cut = static_cast<std::size_t>(fpga_spec_.max_tree_depth);

    std::vector<TreeMemoryImage> images;
    images.reserve(forest.NumTrees());
    double prob_sum = 0.0;
    double weighted_tail = 0.0;
    for (const auto& tree : forest.trees()) {
        images.push_back(LayoutTreeTop(tree, cut));
        CollectContinuations(tree, cut, prob_sum, weighted_tail);
    }

    const std::uint64_t per_tree =
        images.front().NumSlots() *
        static_cast<std::uint64_t>(fpga_spec_.node_bytes);
    const std::uint64_t widest_pass = std::min<std::uint64_t>(
        images.size(), static_cast<std::uint64_t>(fpga_spec_.num_pes));
    const std::uint64_t used =
        widest_pass * per_tree + fpga_spec_.result_buffer_bytes;
    if (used > fpga_spec_.bram_bytes) {
        throw CapacityError(StrFormat(
            "fpga hybrid: model needs %s of BRAM but only %s available",
            HumanBytes(used).c_str(),
            HumanBytes(fpga_spec_.bram_bytes).c_str()));
    }

    forest_ = std::move(forest);
    stats_ = stats;
    images_ = std::move(images);
    const double trees = static_cast<double>(forest_.NumTrees());
    continuation_fraction_ = prob_sum / trees;
    mean_tail_depth_ = prob_sum > 0.0 ? weighted_tail / prob_sum : 0.0;
    set_loaded(true);
}

double
HybridFpgaCpuEngine::ContinuationFraction() const
{
    RequireLoaded();
    return continuation_fraction_;
}

double
HybridFpgaCpuEngine::MeanTailDepth() const
{
    RequireLoaded();
    return mean_tail_depth_;
}

ScoreResult
HybridFpgaCpuEngine::Score(const float* rows, std::size_t num_rows,
                           std::size_t num_cols)
{
    RequireLoaded();
    if (num_cols != stats_.num_features) {
        throw InvalidArgument(Name() + ": row arity mismatch");
    }

    ScoreResult result;
    // Same offload shape as the pure FPGA engine: DMA in, device run
    // (setup before the walk, completion after), DMA out. The CPU tail
    // finish happens in-process and crosses no fault site.
    link_.CheckDmaFault();
    fault::CheckSite(fault::FaultSite::kFpgaSetup);
    result.predictions.resize(num_rows);
    const bool classify = forest_.task() == Task::kClassification;

    auto worker = [&](std::size_t begin, std::size_t end) {
        std::vector<int> votes;
        for (std::size_t r = begin; r < end; ++r) {
            const float* row = rows + r * num_cols;
            votes.clear();
            double sum = 0.0;
            for (std::size_t t = 0; t < images_.size(); ++t) {
                PartialWalkResult partial =
                    WalkTreeImagePartial(images_[t], row);
                float value = partial.continued
                    ? FinishTraversal(forest_.Tree(t),
                                      partial.resume_node, row)
                    : partial.value;
                if (classify) {
                    votes.push_back(static_cast<int>(std::lround(value)));
                } else {
                    sum += value;
                }
            }
            result.predictions[r] = classify
                ? static_cast<float>(
                      MajorityVote(votes, forest_.num_classes()))
                : static_cast<float>(
                      sum / static_cast<double>(images_.size()));
        }
    };
    if (num_rows >= 4096) {
        ThreadPool::Shared().ParallelForChunked(num_rows, worker);
    } else {
        worker(0, num_rows);
    }
    fault::CheckSite(fault::FaultSite::kFpgaCompletion);
    link_.CheckDmaFault();
    result.breakdown = Estimate(num_rows);
    TraceOffloadStages(result.breakdown);
    return result;
}

OffloadBreakdown
HybridFpgaCpuEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const double n = static_cast<double>(num_rows);
    const double trees = static_cast<double>(images_.size());
    const auto pes = static_cast<std::uint64_t>(fpga_spec_.num_pes);
    const std::uint64_t passes = (images_.size() + pes - 1) / pes;

    OffloadBreakdown b;

    std::uint64_t model_bytes = 0;
    for (const auto& image : images_) {
        model_bytes += image.NumSlots() *
                       static_cast<std::uint64_t>(fpga_spec_.node_bytes);
    }
    b.input_transfer = link_.TransferLatency(model_bytes);
    b.setup = params_.csr.WriteMany(
                  static_cast<std::uint64_t>(params_.setup_csr_writes)) *
              static_cast<double>(passes);

    // FPGA part: identical pipelining to the plain engine.
    const auto width =
        static_cast<std::uint64_t>(fpga_spec_.stream_floats_per_cycle);
    const std::uint64_t stream_cycles = std::max<std::uint64_t>(
        1, (stats_.num_features + width - 1) / width);
    const std::uint64_t cycles =
        passes *
        (static_cast<std::uint64_t>(fpga_spec_.pipeline_fill_cycles) +
         static_cast<std::uint64_t>(num_rows) * stream_cycles);
    SimTime fpga_compute =
        SimTime::Cycles(static_cast<double>(cycles), fpga_spec_.clock_hz);

    // CPU part: finish the cut traversals and run the final vote. Uses
    // the sklearn-engine cost model at full thread count.
    const double model_bytes_cpu = static_cast<double>(
        stats_.total_nodes) * cpu_spec_.sklearn_node_bytes;
    const double miss = LlcMissFraction(
        model_bytes_cpu, static_cast<double>(cpu_spec_.llc_bytes),
        cpu_spec_.llc_miss_asymptote);
    const double per_node_ns = cpu_spec_.sklearn_per_node_ns +
                               miss * cpu_spec_.llc_miss_penalty_ns;
    const double vote_ns = 2.0;
    const double per_record_ns =
        trees * continuation_fraction_ * mean_tail_depth_ * per_node_ns +
        trees * vote_ns;
    const double efficiency = ThreadEfficiency(
        cpu_spec_.max_threads, cpu_spec_.sklearn_thread_exponent);
    SimTime cpu_compute =
        SimTime::Nanos(n * per_record_ns / efficiency);

    b.compute = fpga_compute + cpu_compute;
    b.completion_signal =
        params_.interrupt.latency * static_cast<double>(passes);

    // Partial results: one 4-byte word per (record, tree) comes back.
    const std::uint64_t result_bytes =
        static_cast<std::uint64_t>(num_rows) * images_.size() *
        sizeof(float);
    const std::uint64_t chunks = std::max<std::uint64_t>(
        1, (result_bytes + fpga_spec_.result_buffer_bytes - 1) /
               fpga_spec_.result_buffer_bytes);
    b.result_transfer = link_.ChunkedTransferLatency(result_bytes, chunks);
    b.software_overhead = params_.software_overhead;
    return b;
}

}  // namespace dbscore
