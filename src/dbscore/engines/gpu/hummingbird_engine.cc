#include "dbscore/engines/gpu/hummingbird_engine.h"

#include <algorithm>
#include <cmath>

#include "dbscore/common/error.h"
#include "dbscore/common/thread_pool.h"
#include "dbscore/data/row_block.h"
#include "dbscore/forest/forest.h"

namespace dbscore {

namespace {

/** Per-record framework conversion cost (DataFrame -> device tensor). */
constexpr double kPreprocPerValueNs = 0.2;

/** DRAM line size used by the row-value gather coalescing model. */
constexpr double kLineBytes = 128.0;

}  // namespace

HummingbirdGpuEngine::HummingbirdGpuEngine(const GpuDeviceModel& device,
                                           const HummingbirdParams& params)
    : device_(device), params_(params)
{
}

HbStrategy
HummingbirdGpuEngine::ChosenStrategy() const
{
    RequireLoaded();
    return chosen_;
}

void
HummingbirdGpuEngine::LoadModel(const TreeEnsemble& model,
                                const ModelStats& stats)
{
    RandomForest forest = model.ToForest();
    stats_ = stats;
    num_outputs_ = forest.task() == Task::kClassification
        ? forest.num_classes()
        : 1;

    std::size_t max_internal = 0;
    for (const auto& tree : forest.trees()) {
        max_internal =
            std::max(max_internal, tree.NumNodes() - tree.NumLeaves());
    }

    chosen_ = params_.strategy;
    if (chosen_ == HbStrategy::kAuto) {
        chosen_ = max_internal <= params_.gemm_max_internal_nodes
            ? HbStrategy::kGemm
            : HbStrategy::kPerfectTreeTraversal;
    }

    gemm_trees_.clear();
    perfect_trees_.clear();
    if (chosen_ == HbStrategy::kGemm) {
        CompileGemm(forest);
    } else {
        CompilePerfect(forest);
    }
    set_loaded(true);
}

void
HummingbirdGpuEngine::CompileGemm(const RandomForest& forest)
{
    for (const auto& tree : forest.trees()) {
        GemmCompiledTree ct;

        // Assign dense indices to internal nodes and leaves (preorder).
        const std::size_t n = tree.NumNodes();
        std::vector<std::int32_t> internal_index(n, -1);
        std::vector<std::int32_t> leaf_index(n, -1);
        std::int32_t num_internal = 0;
        std::int32_t num_leaves = 0;
        for (std::size_t i = 0; i < n; ++i) {
            auto node = static_cast<std::int32_t>(i);
            if (tree.IsLeaf(node)) {
                leaf_index[i] = num_leaves++;
            } else {
                internal_index[i] = num_internal++;
            }
        }

        ct.features.resize(static_cast<std::size_t>(num_internal));
        ct.thresholds = Matrix(1, static_cast<std::size_t>(num_internal));
        for (std::size_t i = 0; i < n; ++i) {
            if (internal_index[i] >= 0) {
                auto idx = static_cast<std::size_t>(internal_index[i]);
                ct.features[idx] =
                    tree.Feature(static_cast<std::int32_t>(i));
                ct.thresholds.At(0, idx) =
                    tree.Threshold(static_cast<std::int32_t>(i));
            }
        }

        // Path matrix C and left-edge counts D via DFS carrying the
        // ancestor set with directions.
        ct.path_matrix = Matrix(static_cast<std::size_t>(num_internal),
                                static_cast<std::size_t>(num_leaves));
        ct.left_counts = Matrix(1, static_cast<std::size_t>(num_leaves));
        ct.leaf_map = Matrix(static_cast<std::size_t>(num_leaves),
                             static_cast<std::size_t>(num_outputs_));

        struct Frame {
            std::int32_t node;
            std::vector<std::pair<std::int32_t, bool>> ancestors;
        };
        std::vector<Frame> stack;
        stack.push_back({0, {}});
        while (!stack.empty()) {
            Frame frame = std::move(stack.back());
            stack.pop_back();
            if (tree.IsLeaf(frame.node)) {
                auto l = static_cast<std::size_t>(
                    leaf_index[static_cast<std::size_t>(frame.node)]);
                std::size_t lefts = 0;
                for (auto [anc, went_left] : frame.ancestors) {
                    ct.path_matrix.At(static_cast<std::size_t>(anc), l) =
                        went_left ? 1.0f : -1.0f;
                    if (went_left) {
                        ++lefts;
                    }
                }
                ct.left_counts.At(0, l) = static_cast<float>(lefts);
                float value = tree.LeafValue(frame.node);
                if (num_outputs_ > 1) {
                    auto cls = static_cast<std::size_t>(std::lround(value));
                    DBS_ASSERT(cls <
                               static_cast<std::size_t>(num_outputs_));
                    ct.leaf_map.At(l, cls) = 1.0f;
                } else {
                    ct.leaf_map.At(l, 0) = value;
                }
                continue;
            }
            auto i = internal_index[static_cast<std::size_t>(frame.node)];
            Frame left{tree.Left(frame.node), frame.ancestors};
            left.ancestors.emplace_back(i, true);
            Frame right{tree.Right(frame.node), std::move(frame.ancestors)};
            right.ancestors.emplace_back(i, false);
            stack.push_back(std::move(left));
            stack.push_back(std::move(right));
        }
        gemm_trees_.push_back(std::move(ct));
    }
}

namespace {

/** Recursively fills perfect-tree arrays; node < 0 means "carry a value". */
void
FillPerfectSlot(const DecisionTree& tree, std::int32_t node, float carried,
                std::size_t slot, std::size_t level, std::size_t depth,
                PerfectCompiledTree& out)
{
    const std::size_t first_leaf_slot = (std::size_t{1} << depth) - 1;
    if (level == depth) {
        float value = carried;
        if (node >= 0) {
            DBS_ASSERT_MSG(tree.IsLeaf(node),
                           "tree deeper than its padded depth");
            value = tree.LeafValue(node);
        }
        out.leaf_values[slot - first_leaf_slot] = value;
        return;
    }
    if (node >= 0 && !tree.IsLeaf(node)) {
        out.features[slot] = tree.Feature(node);
        out.thresholds[slot] = tree.Threshold(node);
        FillPerfectSlot(tree, tree.Left(node), 0.0f, 2 * slot + 1,
                        level + 1, depth, out);
        FillPerfectSlot(tree, tree.Right(node), 0.0f, 2 * slot + 2,
                        level + 1, depth, out);
        return;
    }
    // A leaf above the padded depth: pass-through slot (always goes
    // left); replicate the value down both sides so every leaf slot is
    // initialized.
    float value = node >= 0 ? tree.LeafValue(node) : carried;
    out.features[slot] = -1;
    out.thresholds[slot] = 0.0f;
    FillPerfectSlot(tree, -1, value, 2 * slot + 1, level + 1, depth, out);
    FillPerfectSlot(tree, -1, value, 2 * slot + 2, level + 1, depth, out);
}

}  // namespace

void
HummingbirdGpuEngine::CompilePerfect(const RandomForest& forest)
{
    for (const auto& tree : forest.trees()) {
        PerfectCompiledTree ct;
        ct.depth = tree.Depth();
        const std::size_t internal_slots =
            (std::size_t{1} << ct.depth) - 1;
        ct.features.assign(internal_slots, -1);
        ct.thresholds.assign(internal_slots, 0.0f);
        ct.leaf_values.assign(std::size_t{1} << ct.depth, 0.0f);
        FillPerfectSlot(tree, 0, 0.0f, 0, 0, ct.depth, ct);
        perfect_trees_.push_back(std::move(ct));
    }
}

std::vector<float>
HummingbirdGpuEngine::ScoreGemm(const float* rows, std::size_t num_rows,
                                CostLedger* ledger) const
{
    // Adopt the caller's buffer in place — the feature matrix enters
    // the tensor pipeline without a host copy.
    Matrix x = Matrix::FromView(
        RowView::Borrow(rows, num_rows, stats_.num_features));
    Matrix acc(num_rows, static_cast<std::size_t>(num_outputs_));

    for (const auto& ct : gemm_trees_) {
        if (ct.features.empty()) {
            // Degenerate single-leaf tree: constant contribution.
            for (std::size_t r = 0; r < num_rows; ++r) {
                for (int o = 0; o < num_outputs_; ++o) {
                    acc.At(r, static_cast<std::size_t>(o)) +=
                        ct.leaf_map.At(0, static_cast<std::size_t>(o));
                }
            }
            continue;
        }
        Matrix s = GatherColumns(x, ct.features, ledger);
        Matrix t = LessEqualRow(s, ct.thresholds, ledger);
        Matrix u = MatMul(t, ct.path_matrix, ledger);
        Matrix h = EqualsRow(u, ct.left_counts, ledger);
        Matrix r = MatMul(h, ct.leaf_map, ledger);
        acc = Add(acc, r, ledger);
    }

    std::vector<float> preds(num_rows);
    if (num_outputs_ > 1) {
        std::vector<std::int32_t> arg = ArgMaxRows(acc, ledger);
        for (std::size_t i = 0; i < num_rows; ++i) {
            preds[i] = static_cast<float>(arg[i]);
        }
    } else {
        Matrix scaled = Scale(
            acc, 1.0f / static_cast<float>(gemm_trees_.size()), ledger);
        for (std::size_t i = 0; i < num_rows; ++i) {
            preds[i] = scaled.At(i, 0);
        }
    }
    return preds;
}

std::vector<float>
HummingbirdGpuEngine::ScorePerfect(const float* rows,
                                   std::size_t num_rows) const
{
    std::vector<float> preds(num_rows);
    const std::size_t cols = stats_.num_features;
    const bool classify = num_outputs_ > 1;

    auto worker = [&](std::size_t begin, std::size_t end) {
        std::vector<int> votes;
        for (std::size_t r = begin; r < end; ++r) {
            const float* row = rows + r * cols;
            votes.clear();
            double sum = 0.0;
            for (const auto& ct : perfect_trees_) {
                std::size_t idx = 0;
                for (std::size_t level = 0; level < ct.depth; ++level) {
                    std::int32_t f = ct.features[idx];
                    bool left = f < 0 || row[f] <= ct.thresholds[idx];
                    idx = 2 * idx + (left ? 1 : 2);
                }
                const std::size_t first_leaf =
                    (std::size_t{1} << ct.depth) - 1;
                float value = ct.leaf_values[idx - first_leaf];
                if (classify) {
                    votes.push_back(static_cast<int>(std::lround(value)));
                } else {
                    sum += value;
                }
            }
            preds[r] = classify
                ? static_cast<float>(MajorityVote(votes, num_outputs_))
                : static_cast<float>(
                      sum / static_cast<double>(perfect_trees_.size()));
        }
    };
    if (num_rows >= kParallelRowCutoff) {
        ThreadPool::Shared().ParallelForChunked(num_rows, worker);
    } else {
        worker(0, num_rows);
    }
    return preds;
}

CostLedger
HummingbirdGpuEngine::LedgerFor(std::size_t num_rows) const
{
    RequireLoaded();
    CostLedger ledger;
    const double n = static_cast<double>(num_rows);
    const double trees = static_cast<double>(stats_.num_trees);
    const double row_bytes =
        static_cast<double>(stats_.num_features) * sizeof(float);

    if (chosen_ == HbStrategy::kGemm) {
        // Batched over all trees: 6 fused kernels regardless of tree
        // count; flops/bytes are the per-tree sums (they match what a
        // functional per-tree run records — tested).
        OpCost gather;
        OpCost compare;
        OpCost gemm;
        OpCost elementwise;
        for (const auto& ct : gemm_trees_) {
            if (ct.features.empty()) {
                continue;
            }
            const double i = static_cast<double>(ct.features.size());
            const double l =
                static_cast<double>(ct.left_counts.cols());
            const double o = static_cast<double>(num_outputs_);
            gather.bytes_read += static_cast<std::uint64_t>(
                n * i * 4 + i * 4);
            gather.bytes_written += static_cast<std::uint64_t>(n * i * 4);
            // LessEqualRow then EqualsRow.
            compare.flops += static_cast<std::uint64_t>(n * i + n * l);
            compare.bytes_read += static_cast<std::uint64_t>(
                (n * i * 4 + i * 4) + (n * l * 4 + l * 4));
            compare.bytes_written +=
                static_cast<std::uint64_t>(n * i * 4 + n * l * 4);
            // T x C and H x E.
            gemm.flops += static_cast<std::uint64_t>(
                2.0 * n * i * l + 2.0 * n * l * o);
            gemm.bytes_read += static_cast<std::uint64_t>(
                (n * i + i * l) * 4 + (n * l + l * o) * 4);
            gemm.bytes_written +=
                static_cast<std::uint64_t>(n * l * 4 + n * o * 4);
            // Accumulator add.
            elementwise.flops += static_cast<std::uint64_t>(
                n * o);
            elementwise.bytes_read +=
                static_cast<std::uint64_t>(2 * n * o * 4);
            elementwise.bytes_written +=
                static_cast<std::uint64_t>(n * o * 4);
        }
        gather.invocations = 1;
        compare.invocations = 2;
        gemm.invocations = 2;
        elementwise.invocations = 1;
        ledger.Record(OpKind::kGather, gather);
        ledger.Record(OpKind::kCompare, compare);
        ledger.Record(OpKind::kGemm, gemm);
        ledger.Record(OpKind::kElementwise, elementwise);

        const double o = static_cast<double>(num_outputs_);
        if (num_outputs_ > 1) {
            ledger.Record(OpKind::kReduce,
                          OpCost{static_cast<std::uint64_t>(n * o),
                                 static_cast<std::uint64_t>(n * o * 4),
                                 static_cast<std::uint64_t>(n * 4), 1});
        } else {
            ledger.Record(OpKind::kElementwise,
                          OpCost{static_cast<std::uint64_t>(n * o),
                                 static_cast<std::uint64_t>(n * o * 4),
                                 static_cast<std::uint64_t>(n * o * 4), 1});
        }
        return ledger;
    }

    // PerfectTreeTraversal: level-synchronous kernels over (rows x trees)
    // index tensors.
    std::size_t depth = 0;
    for (const auto& ct : perfect_trees_) {
        depth = std::max(depth, ct.depth);
    }
    const double steps = n * trees * static_cast<double>(depth);

    // Row-value gather: warp lanes cover min(32, trees) trees of one row.
    // With many trees a warp shares one row and the cache line amortizes
    // to ~4 useful bytes/lane; with one tree every lane touches a
    // different row and pulls a whole line.
    const double lanes_per_row =
        std::min<double>(32.0, std::max(1.0, trees));
    const double gather_bytes_per_step =
        std::max(4.0, std::min(kLineBytes, row_bytes * lanes_per_row) /
                          lanes_per_row);
    ledger.Record(
        OpKind::kGather,
        OpCost{0,
               static_cast<std::uint64_t>(steps * gather_bytes_per_step),
               static_cast<std::uint64_t>(steps * 4),
               static_cast<std::uint64_t>(depth)});
    // Threshold compare per step.
    ledger.Record(OpKind::kCompare,
                  OpCost{static_cast<std::uint64_t>(steps),
                         static_cast<std::uint64_t>(steps * 8),
                         static_cast<std::uint64_t>(steps * 4),
                         static_cast<std::uint64_t>(depth)});
    // Index arithmetic and intermediate tensors (2 ops per level).
    ledger.Record(OpKind::kElementwise,
                  OpCost{static_cast<std::uint64_t>(steps),
                         static_cast<std::uint64_t>(steps * 24),
                         static_cast<std::uint64_t>(steps * 12),
                         static_cast<std::uint64_t>(2 * depth)});
    // Leaf-value gather.
    ledger.Record(OpKind::kGather,
                  OpCost{0, static_cast<std::uint64_t>(n * trees * 8),
                         static_cast<std::uint64_t>(n * trees * 4), 1});
    // Vote/average reduction across trees.
    ledger.Record(OpKind::kReduce,
                  OpCost{static_cast<std::uint64_t>(n * trees),
                         static_cast<std::uint64_t>(n * trees * 4),
                         static_cast<std::uint64_t>(n * 4), 1});
    return ledger;
}

ScoreResult
HummingbirdGpuEngine::Score(const float* rows, std::size_t num_rows,
                            std::size_t num_cols)
{
    RequireLoaded();
    if (num_cols != stats_.num_features) {
        throw InvalidArgument(Name() + ": row arity mismatch");
    }
    ScoreResult result;
    // Tensor-data DMA in, compiled-program launch, result DMA out.
    device_.CheckDmaFault();
    device_.CheckKernelLaunchFault();
    if (chosen_ == HbStrategy::kGemm) {
        result.predictions = ScoreGemm(rows, num_rows, nullptr);
    } else {
        result.predictions = ScorePerfect(rows, num_rows);
    }
    device_.CheckDmaFault();
    result.breakdown = Estimate(num_rows);
    TraceOffloadStages(result.breakdown);
    return result;
}

OffloadBreakdown
HummingbirdGpuEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const double n = static_cast<double>(num_rows);
    const std::uint64_t data_bytes =
        static_cast<std::uint64_t>(num_rows) * stats_.num_features *
        sizeof(float);

    // Compiled model tensors shipped to the device.
    std::uint64_t model_bytes = 0;
    for (const auto& ct : gemm_trees_) {
        model_bytes += ct.features.size() * 4 + ct.thresholds.ByteSize() +
                       ct.path_matrix.ByteSize() +
                       ct.left_counts.ByteSize() + ct.leaf_map.ByteSize();
    }
    for (const auto& ct : perfect_trees_) {
        model_bytes += ct.features.size() * 4 + ct.thresholds.size() * 4 +
                       ct.leaf_values.size() * 4;
    }

    // Tensor minor width for gather coalescing.
    std::size_t width = stats_.num_trees;
    if (chosen_ == HbStrategy::kGemm) {
        std::size_t internal = 0;
        for (const auto& ct : gemm_trees_) {
            internal += ct.features.size();
        }
        width = std::max<std::size_t>(1, internal);
    }

    OffloadBreakdown b;
    b.preprocessing = SimTime::Nanos(
        kPreprocPerValueNs * n *
        static_cast<double>(stats_.num_features));
    b.input_transfer = device_.HostToDevice(data_bytes) +
                       device_.HostToDevice(model_bytes);
    b.setup = device_.spec().kernel_launch;
    b.compute = device_.LedgerTime(LedgerFor(num_rows), width);
    b.completion_signal = device_.spec().sync_latency;
    b.result_transfer = device_.DeviceToHost(
        static_cast<std::uint64_t>(num_rows) * sizeof(float));
    b.software_overhead = params_.software_overhead;
    return b;
}

}  // namespace dbscore
