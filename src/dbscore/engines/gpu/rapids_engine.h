/**
 * @file
 * RAPIDS-FIL-style GPU scoring engine.
 *
 * Mirrors the paper's GPU-RAPIDS configuration: each thread block scores
 * one sample, trees are cyclically distributed among threads, and control
 * divergence grows with tree depth. Two behaviours from the paper are
 * modeled explicitly:
 *  - a fixed-plus-linear NumPy -> cuDF DataFrame conversion step (~120 ms
 *    at 1M HIGGS rows) that only amortizes at large record counts;
 *  - the paper's RAPIDS path supports binary classifiers only, so the
 *    engine rejects multi-class models (which is why the paper's IRIS
 *    plots have no RAPIDS series).
 */
#ifndef DBSCORE_ENGINES_GPU_RAPIDS_ENGINE_H
#define DBSCORE_ENGINES_GPU_RAPIDS_ENGINE_H

#include "dbscore/engines/scoring_engine.h"
#include "dbscore/forest/forest.h"
#include "dbscore/gpusim/gpu_device.h"

namespace dbscore {

/** RAPIDS framework cost parameters. */
struct RapidsParams {
    /** Fixed NumPy -> cuDF conversion cost. */
    SimTime preproc_fixed = SimTime::Millis(95.0);
    /** Conversion throughput for the variable part (bytes/s). */
    double cudf_conversion_bw = 4e9;
    /** Python/framework dispatch per scoring call. */
    SimTime software_overhead = SimTime::Micros(200.0);
    /** Bytes per FIL tree node resident on the device. */
    double node_bytes = 16.0;
};

/** GPU-RAPIDS scoring engine. */
class RapidsFilEngine : public ScoringEngine {
 public:
    RapidsFilEngine(const GpuDeviceModel& device, const RapidsParams& params);

    BackendKind kind() const override { return BackendKind::kGpuRapids; }

    /**
     * @throws CapacityError for classification models with > 2 classes
     *         (the paper's RAPIDS path is binary-only)
     */
    void LoadModel(const TreeEnsemble& model,
                   const ModelStats& stats) override;

    ScoreResult Score(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) override;

    OffloadBreakdown Estimate(std::size_t num_rows) const override;

 private:
    GpuDeviceModel device_;
    RapidsParams params_;
    RandomForest forest_;
    ModelStats stats_;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_GPU_RAPIDS_ENGINE_H
