#include "dbscore/engines/gpu/rapids_engine.h"

#include <algorithm>

#include "dbscore/common/error.h"

namespace dbscore {

RapidsFilEngine::RapidsFilEngine(const GpuDeviceModel& device,
                                 const RapidsParams& params)
    : device_(device), params_(params)
{
}

void
RapidsFilEngine::LoadModel(const TreeEnsemble& model, const ModelStats& stats)
{
    if (model.task == Task::kClassification && model.num_classes > 2) {
        throw CapacityError(
            "GPU_RAPIDS: only binary classifiers are supported");
    }
    forest_ = model.ToForest();
    stats_ = stats;
    set_loaded(true);
}

ScoreResult
RapidsFilEngine::Score(const float* rows, std::size_t num_rows,
                       std::size_t num_cols)
{
    RequireLoaded();
    if (num_cols != stats_.num_features) {
        throw InvalidArgument(Name() + ": row arity mismatch");
    }
    ScoreResult result;
    // Data/model DMA in, kernel launch, result DMA out — the fault
    // sites one GPU offload crosses, in operation order.
    device_.CheckDmaFault();
    device_.CheckKernelLaunchFault();
    result.predictions = forest_.PredictBatch(rows, num_rows, num_cols);
    device_.CheckDmaFault();
    result.breakdown = Estimate(num_rows);
    TraceOffloadStages(result.breakdown);
    return result;
}

OffloadBreakdown
RapidsFilEngine::Estimate(std::size_t num_rows) const
{
    RequireLoaded();
    const double n = static_cast<double>(num_rows);
    const std::uint64_t data_bytes =
        static_cast<std::uint64_t>(num_rows) * stats_.num_features *
        sizeof(float);
    const double model_bytes =
        static_cast<double>(stats_.total_nodes) * params_.node_bytes;
    const double avg_path = std::max(1.0, stats_.avg_path_length);
    const double visits =
        n * static_cast<double>(stats_.num_trees) * avg_path;

    OffloadBreakdown b;
    b.preprocessing = params_.preproc_fixed +
        TransferTime(data_bytes, params_.cudf_conversion_bw);
    b.input_transfer =
        device_.HostToDevice(data_bytes) +
        device_.HostToDevice(static_cast<std::uint64_t>(model_bytes));
    b.setup = device_.spec().kernel_launch;
    b.compute = device_.TraversalKernelTime(visits, avg_path, model_bytes);
    b.completion_signal = device_.spec().sync_latency;
    b.result_transfer =
        device_.DeviceToHost(static_cast<std::uint64_t>(num_rows) *
                             sizeof(float));
    b.software_overhead = params_.software_overhead;
    return b;
}

}  // namespace dbscore
