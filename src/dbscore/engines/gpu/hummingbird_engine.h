/**
 * @file
 * Hummingbird-style GPU scoring engine: tree ensembles compiled to tensor
 * programs (Nakandala et al., OSDI 2020), executed on the tensor substrate
 * for functional results and priced on the GPU device model.
 *
 * Two of Hummingbird's compilation strategies are implemented:
 *
 *  - GEMM: each tree becomes five tensor ops
 *      S = gather(X, features);  T = (S <= B);
 *      U = T x C;  H = (U == D);  out = H x E
 *    where C encodes leaf/ancestor relations (+1 left subtree, -1 right)
 *    and D counts left-edges per root-to-leaf path. Exact for any tree but
 *    does O(n * internal * leaves) redundant work — the paper's "may do
 *    redundant computations" trade.
 *
 *  - PerfectTreeTraversal: trees padded to perfect depth-D trees; all
 *    trees advance level-by-level with gather/compare kernels over
 *    (rows x trees) index tensors.
 *
 * kAuto picks GEMM for small trees and PerfectTreeTraversal otherwise,
 * like Hummingbird's own heuristic.
 */
#ifndef DBSCORE_ENGINES_GPU_HUMMINGBIRD_ENGINE_H
#define DBSCORE_ENGINES_GPU_HUMMINGBIRD_ENGINE_H

#include <cstdint>
#include <vector>

#include "dbscore/engines/scoring_engine.h"
#include "dbscore/gpusim/gpu_device.h"
#include "dbscore/tensor/matrix.h"
#include "dbscore/tensor/ops.h"

namespace dbscore {

/** Compilation strategy selection. */
enum class HbStrategy {
    kAuto,
    kGemm,
    kPerfectTreeTraversal,
};

/** Hummingbird framework cost parameters. */
struct HummingbirdParams {
    HbStrategy strategy = HbStrategy::kAuto;
    /** kAuto uses GEMM when every tree has <= this many internal nodes. */
    std::size_t gemm_max_internal_nodes = 32;
    /** Framework (tensor-runtime) dispatch per scoring call. */
    SimTime software_overhead = SimTime::Millis(1.2);
};

/** One tree compiled to the GEMM strategy. */
struct GemmCompiledTree {
    std::vector<std::int32_t> features;  ///< per internal node
    Matrix thresholds;                   ///< B: 1 x internal
    Matrix path_matrix;                  ///< C: internal x leaves (+1/-1/0)
    Matrix left_counts;                  ///< D: 1 x leaves
    Matrix leaf_map;                     ///< E: leaves x outputs
};

/** One tree padded to a perfect tree for level-synchronous traversal. */
struct PerfectCompiledTree {
    std::size_t depth = 0;
    /** Heap-ordered internal slots; -1 marks a pass-through (leaf above). */
    std::vector<std::int32_t> features;
    std::vector<float> thresholds;
    /** Value per depth-D leaf slot. */
    std::vector<float> leaf_values;
};

/** GPU-HB scoring engine. */
class HummingbirdGpuEngine : public ScoringEngine {
 public:
    HummingbirdGpuEngine(const GpuDeviceModel& device,
                         const HummingbirdParams& params);

    BackendKind kind() const override { return BackendKind::kGpuHummingbird; }

    void LoadModel(const TreeEnsemble& model,
                   const ModelStats& stats) override;

    ScoreResult Score(const float* rows, std::size_t num_rows,
                      std::size_t num_cols) override;

    OffloadBreakdown Estimate(std::size_t num_rows) const override;

    /** Strategy chosen for the loaded model. */
    HbStrategy ChosenStrategy() const;

    /**
     * The analytic tensor-op cost ledger for scoring @p num_rows rows,
     * identical to what a functional GEMM run records (tested).
     */
    CostLedger LedgerFor(std::size_t num_rows) const;

 private:
    void CompileGemm(const RandomForest& forest);
    void CompilePerfect(const RandomForest& forest);

    std::vector<float> ScoreGemm(const float* rows, std::size_t num_rows,
                                 CostLedger* ledger) const;
    std::vector<float> ScorePerfect(const float* rows,
                                    std::size_t num_rows) const;

    GpuDeviceModel device_;
    HummingbirdParams params_;
    ModelStats stats_;
    HbStrategy chosen_ = HbStrategy::kGemm;
    int num_outputs_ = 1;  ///< classes, or 1 for regression
    std::vector<GemmCompiledTree> gemm_trees_;
    std::vector<PerfectCompiledTree> perfect_trees_;
};

}  // namespace dbscore

#endif  // DBSCORE_ENGINES_GPU_HUMMINGBIRD_ENGINE_H
