#include "dbscore/engines/scoring_engine.h"

#include "dbscore/common/error.h"
#include "dbscore/trace/trace.h"

namespace dbscore {

const char*
BackendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kCpuSklearn: return "CPU_SKLearn";
      case BackendKind::kCpuOnnx: return "CPU_ONNX";
      case BackendKind::kCpuOnnxMt: return "CPU_ONNX_52th";
      case BackendKind::kGpuHummingbird: return "GPU_HB";
      case BackendKind::kGpuRapids: return "GPU_RAPIDS";
      case BackendKind::kFpga: return "FPGA";
      case BackendKind::kFpgaHybrid: return "FPGA_HYBRID";
    }
    return "?";
}

DeviceClass
BackendDeviceClass(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kCpuSklearn:
      case BackendKind::kCpuOnnx:
      case BackendKind::kCpuOnnxMt:
        return DeviceClass::kCpu;
      case BackendKind::kGpuHummingbird:
      case BackendKind::kGpuRapids:
        return DeviceClass::kGpu;
      case BackendKind::kFpga:
      case BackendKind::kFpgaHybrid:
        return DeviceClass::kFpga;
    }
    return DeviceClass::kCpu;
}

SimTime
OffloadBreakdown::Total() const
{
    return preprocessing + input_transfer + setup + compute +
           completion_signal + result_transfer + software_overhead;
}

SimTime
OffloadBreakdown::OverheadO() const
{
    return setup + completion_signal + software_overhead;
}

SimTime
OffloadBreakdown::TransferL() const
{
    return input_transfer + result_transfer;
}

OffloadBreakdown&
OffloadBreakdown::operator+=(const OffloadBreakdown& other)
{
    preprocessing += other.preprocessing;
    input_transfer += other.input_transfer;
    setup += other.setup;
    compute += other.compute;
    completion_signal += other.completion_signal;
    result_transfer += other.result_transfer;
    software_overhead += other.software_overhead;
    return *this;
}

void
TraceOffloadStages(const OffloadBreakdown& breakdown)
{
    using trace::StageKind;
    trace::TraceCollector& collector = trace::TraceCollector::Get();
    if (!collector.enabled() || !trace::TraceCollector::Current().valid()) {
        return;
    }
    struct Component {
        StageKind stage;
        const char* name;
        SimTime dur;
    };
    const Component components[] = {
        {StageKind::kAccelPreproc, "engine-preprocessing",
         breakdown.preprocessing},
        {StageKind::kTransferIn, "input-transfer", breakdown.input_transfer},
        {StageKind::kAccelSetup, "setup", breakdown.setup},
        {StageKind::kScoring, "compute", breakdown.compute},
        {StageKind::kCompletionSignal, "completion-signal",
         breakdown.completion_signal},
        {StageKind::kTransferOut, "result-transfer",
         breakdown.result_transfer},
        {StageKind::kSoftwareOverhead, "software-overhead",
         breakdown.software_overhead},
    };
    for (const Component& c : components) {
        if (c.dur.is_zero()) continue;
        collector.EmitStage(c.stage, c.name, c.dur);
    }
}

void
ScoringEngine::RequireLoaded() const
{
    if (!loaded_) {
        throw InvalidArgument(Name() + ": no model loaded");
    }
}

ScoreResult
ScoringEngine::Score(const RowView& view)
{
    if (view.contiguous()) {
        return Score(view.data(), view.rows(), view.cols());
    }
    RowBlock compact = view.Materialize();
    return Score(compact.data(), compact.rows(), compact.cols());
}

namespace {

ScoreOutcome
FaultOutcome(const fault::FaultInjected& fault)
{
    ScoreOutcome outcome;
    outcome.status = ScoreStatus::kFault;
    outcome.fault_site = fault.site();
    outcome.fault_sticky = fault.sticky();
    outcome.error = fault.what();
    return outcome;
}

}  // namespace

ScoreOutcome
ScoringEngine::TryScore(const float* rows, std::size_t num_rows,
                        std::size_t num_cols)
{
    ScoreOutcome outcome;
    try {
        outcome.result = Score(rows, num_rows, num_cols);
    } catch (const fault::FaultInjected& fault) {
        return FaultOutcome(fault);
    }
    return outcome;
}

ScoreOutcome
ScoringEngine::TryScore(const RowView& view)
{
    ScoreOutcome outcome;
    try {
        outcome.result = Score(view);
    } catch (const fault::FaultInjected& fault) {
        return FaultOutcome(fault);
    }
    return outcome;
}

std::vector<fault::FaultSite>
OffloadFaultSites(BackendKind kind)
{
    using fault::FaultSite;
    switch (BackendDeviceClass(kind)) {
      case DeviceClass::kCpu:
        return {};
      case DeviceClass::kGpu:
        return {FaultSite::kPcieDma, FaultSite::kGpuKernelLaunch,
                FaultSite::kPcieDma};
      case DeviceClass::kFpga:
        return {FaultSite::kPcieDma, FaultSite::kFpgaSetup,
                FaultSite::kFpgaCompletion, FaultSite::kPcieDma};
    }
    return {};
}

}  // namespace dbscore
