#include "dbscore/serve/request.h"

namespace dbscore::serve {

const char*
RequestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::kCompleted: return "completed";
      case RequestStatus::kRejected: return "rejected";
      case RequestStatus::kExpired: return "expired";
      case RequestStatus::kFailed: return "failed";
    }
    return "?";
}

const ScoreReply&
PendingScore::Wait() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return ready_; });
    return reply_;
}

bool
PendingScore::ready() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ready_;
}

std::optional<ScoreReply>
PendingScore::TryGet() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ready_) {
        return std::nullopt;
    }
    return reply_;
}

void
PendingScore::Fulfill(ScoreReply reply)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        DBS_ASSERT_MSG(!ready_, "pending score fulfilled twice");
        reply_ = std::move(reply);
        ready_ = true;
    }
    cv_.notify_all();
}

std::vector<ScoreRequest>
RequestsFromWorkload(const std::vector<WorkloadQuery>& queries,
                     const std::string& model_id,
                     std::optional<SimTime> deadline)
{
    std::vector<ScoreRequest> requests;
    requests.reserve(queries.size());
    for (const WorkloadQuery& q : queries) {
        ScoreRequest r;
        r.model_id = model_id;
        r.num_rows = q.num_rows;
        r.arrival = q.arrival;
        r.deadline = deadline;
        requests.push_back(std::move(r));
    }
    return requests;
}

}  // namespace dbscore::serve
