/**
 * @file
 * The concurrent scoring service.
 *
 * ScoringService is the serving layer the ROADMAP's production north
 * star needs and the paper's conclusion argues for: a front door that
 * accepts scoring requests from many client threads, applies admission
 * control (bounded queue, reject-on-full backpressure, deadline expiry),
 * coalesces same-model requests into micro-batches to amortize the
 * paper's invocation/transfer/preprocessing overheads, and drives the
 * per-device worker loops under a queue-aware placement policy.
 *
 * Concurrency vs. time: the *machinery* is real — client threads block
 * on real condition variables, a dispatcher thread and one worker
 * thread per device class run on a dedicated ThreadPool — while all
 * *latencies* are modeled SimTime, exactly like the rest of dbscore.
 * Requests carry modeled arrival stamps (trace replay) or are stamped
 * with the service's modeled clock (live callers); each device advances
 * a modeled free-at horizon as batches dispatch. Results are therefore
 * machine-independent: wall-clock thread interleaving can change which
 * requests share a batch, but never how a given batch is costed.
 */
#ifndef DBSCORE_SERVE_SCORING_SERVICE_H
#define DBSCORE_SERVE_SCORING_SERVICE_H

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/common/thread_pool.h"
#include "dbscore/core/scheduler.h"
#include "dbscore/forest/forest.h"
#include "dbscore/core/workload_sim.h"
#include "dbscore/dbms/external_runtime.h"
#include "dbscore/serve/batch_coalescer.h"
#include "dbscore/serve/request.h"
#include "dbscore/serve/service_stats.h"
#include "dbscore/trace/trace.h"

namespace dbscore::serve {

/**
 * Per-batch retry policy for dispatch attempts lost to injected
 * faults: capped exponential backoff with deterministic jitter.
 * Deadline-aware — a member whose deadline precedes the retry's
 * dispatch time fails instead of riding a retry it could never use.
 */
struct RetryPolicy {
    /**
     * Dispatch attempts permitted per device, first try included.
     * A CPU fallback (see ServiceConfig::cpu_fallback) gets a fresh
     * budget on the CPU device.
     */
    std::size_t max_attempts = 4;
    /** Backoff before the first retry. */
    SimTime initial_backoff = SimTime::Millis(1.0);
    /** Growth factor per additional retry. */
    double backoff_multiplier = 2.0;
    /** Cap on any single backoff (before jitter). */
    SimTime max_backoff = SimTime::Millis(50.0);
    /** Uniform jitter in [0, frac) of the backoff, added to it. */
    double jitter_frac = 0.2;
    /**
     * Seed of the jitter stream. Jitter is a pure function of
     * (seed, device, per-device attempt counter), so a replayed run
     * re-draws identical jitter.
     */
    std::uint64_t jitter_seed = 0x7e57;
};

/** Per-device-queue circuit breaker policy. */
struct BreakerPolicy {
    /** Consecutive dispatch failures that open the breaker. */
    std::size_t failure_threshold = 5;
    /**
     * Modeled cooldown while open: batches becoming ready before
     * open-time + cooldown re-route to CPU; the first batch at or
     * after it runs as the half-open probe.
     */
    SimTime open_cooldown = SimTime::Millis(200.0);
};

/** Service configuration. */
struct ServiceConfig {
    /** Micro-batching policy; window zero = uncoalesced baseline. */
    CoalescerConfig coalescer;
    /**
     * Admission-queue capacity. Submissions beyond this many unserved
     * requests are rejected immediately (backpressure) rather than
     * queued without bound.
     */
    std::size_t admission_capacity = 1024;
    /** Placement policy across device classes (workload_sim semantics). */
    WorkloadPolicy policy = WorkloadPolicy::kQueueAware;
    /** Stage costs of each device worker's external runtime instance. */
    ExternalRuntimeParams runtime_params;
    /**
     * Wall-clock idle interval after which open batches are flushed, so
     * a lone synchronous caller is never stranded waiting for
     * batchmates that will not come. Liveness only — it never enters
     * the modeled times.
     */
    std::chrono::milliseconds flush_interval{2};
    /** Retry/backoff policy for faulted dispatch attempts. */
    RetryPolicy retry;
    /** Circuit breaker policy for each device queue. */
    BreakerPolicy breaker;
    /**
     * Degrade instead of fail: a batch that exhausts its accelerator
     * attempts (or whose accelerator's breaker is open) re-runs on the
     * CPU engine with the reply flagged degraded. When false, faulted
     * batches fail outright after their retries.
     */
    bool cpu_fallback = true;
};

/** Accepts, batches, places, and "executes" scoring requests. */
class ScoringService {
 public:
    ScoringService(const HardwareProfile& profile, ServiceConfig config);

    /** Stops the service (idempotent, joins all threads). */
    ~ScoringService();

    ScoringService(const ScoringService&) = delete;
    ScoringService& operator=(const ScoringService&) = delete;

    /**
     * Registers a model under @p id, loading it into every viable
     * backend. Must precede Start(); the registry is immutable while
     * the service runs so workers read it lock-free.
     * @throws InvalidArgument when running or @p id is taken
     */
    void RegisterModel(const std::string& id, const TreeEnsemble& model,
                       const ModelStats& stats);

    /** Backends available for a registered model. */
    std::vector<BackendKind> BackendsFor(const std::string& id) const;

    /** Launches the dispatcher and device worker threads. */
    void Start();

    /**
     * Drains in-flight requests, then stops every thread. Idempotent;
     * called by the destructor.
     */
    void Stop();

    /** Blocks until every submitted request reached a terminal state. */
    void Drain();

    bool running() const;

    /**
     * Submits one request. Never blocks on scoring: returns a handle
     * that is fulfilled later (or immediately, with kRejected, under
     * backpressure or when the service is not running / the model is
     * unknown). Thread-safe.
     */
    PendingScorePtr Submit(ScoreRequest request);

    /** Submit + Wait convenience for synchronous callers. */
    ScoreReply ScoreSync(ScoreRequest request);

    /**
     * Metrics snapshot; callable while running. Counters and latency
     * quantiles come from ServiceStats; stage_totals is derived from
     * the service's trace spans (which are drained at the end of each
     * dispatched batch, so a snapshot taken mid-batch may trail that
     * batch's stages by one dispatch).
     */
    ServiceSnapshot Stats() const;

    /**
     * Zeroes the counters and rebaselines the trace-derived stage
     * totals, so the next Stats() reports only what happened after
     * this call — clean per-phase snapshots (EXEC sp_serve_stats
     * @reset = 1). Breaker states survive. Callable while running;
     * in-flight requests settle into the new phase.
     */
    void ResetStats();

    /**
     * Writes every span this service emitted (its trace domain only)
     * as Chrome trace_event JSON — loadable in chrome://tracing or
     * Perfetto. Best taken after Drain()/Stop().
     */
    void ExportTrace(std::ostream& os) const;

    /** This service's span domain in the process-wide TraceCollector. */
    std::uint32_t trace_domain() const { return trace_domain_; }

    const ServiceConfig& config() const { return config_; }

 private:
    /** Everything the workers need to cost one model's dispatches. */
    struct ModelEntry {
        OffloadScheduler scheduler;
        /**
         * Functional model for requests that carry row payloads. Its
         * ForestKernel is compiled once here at registration — the
         * per-model kernel cache — so coalesced micro-batches score
         * through the same compiled plan and never recompile.
         */
        RandomForest forest;
        std::size_t num_cols = 0;
        std::uint64_t model_bytes = 0;

        ModelEntry(const HardwareProfile& profile,
                   const TreeEnsemble& model, const ModelStats& stats);
    };

    /** One device class's queue, worker state, and modeled horizon. */
    struct Device {
        std::deque<std::pair<Batch, BackendKind>> queue;
        std::mutex mutex;
        std::condition_variable cv;
        /** Modeled time at which the device next goes idle. */
        SimTime free_at;
        /** This worker's warm-process pool. */
        std::unique_ptr<ExternalScriptRuntime> runtime;
        /** Worker exits once set and the queue is drained. */
        bool stop = false;
        // Circuit-breaker state, guarded by mutex like free_at.
        BreakerState breaker = BreakerState::kClosed;
        /** Consecutive faulted dispatch attempts since the last success. */
        std::size_t consecutive_failures = 0;
        /** While open: modeled time the half-open probe becomes legal. */
        SimTime breaker_open_until;
        /** Position in this device's deterministic jitter stream. */
        std::uint64_t attempt_seq = 0;
    };

    void DispatcherLoop();
    void WorkerLoop(int device_index);
    void PlaceAndEnqueue(Batch batch);
    void ExecuteBatch(Device& device, DeviceClass device_class,
                      Batch& batch, BackendKind kind);
    /**
     * Capped exponential backoff + deterministic jitter before retry
     * number @p retry_index (1 = first retry) on @p device.
     */
    SimTime NextBackoff(Device& device, int device_index,
                        std::size_t retry_index);
    /** Breaker bookkeeping after one faulted dispatch attempt. */
    void BreakerOnFault(Device& device, DeviceClass device_class,
                        SimTime now, const trace::SpanContext& parent);
    /** Breaker bookkeeping after one successful dispatch. */
    void BreakerOnSuccess(Device& device, DeviceClass device_class,
                          SimTime now, const trace::SpanContext& parent);
    /** Emits a request's root span (dual clock: submit->now wall, arrival->finish sim). */
    void EmitRequestSpan(const PendingRequest& request, SimTime arrival,
                         SimTime finish, bool expired) const;
    /** Marks one admitted request terminal; advances the modeled clock. */
    void SettleOne(SimTime finish);
    SimTime StampArrival(const std::optional<SimTime>& arrival);

    HardwareProfile profile_;
    ServiceConfig config_;
    std::map<std::string, std::unique_ptr<ModelEntry>> models_;

    // Admission queue (bounded) feeding the dispatcher.
    mutable std::mutex admission_mutex_;
    std::condition_variable admission_cv_;
    std::deque<PendingRequest> admission_;
    /** Admitted but not yet settled (for capacity accounting). */
    std::size_t in_flight_ = 0;
    /** Monotonic modeled clock for unstamped (live) arrivals. */
    SimTime modeled_now_;
    bool stop_requested_ = false;
    bool running_ = false;
    bool dispatcher_done_ = false;

    Device devices_[3];

    // Drain/Stop coordination.
    mutable std::mutex settled_mutex_;
    std::condition_variable settled_cv_;

    ServiceStats stats_;
    /**
     * Trace stage totals at the last ResetStats(). StageSimTotals
     * accumulates for a domain's whole lifetime, so per-phase stage
     * totals are (current - baseline). Guarded by baseline_mutex_.
     */
    mutable std::mutex baseline_mutex_;
    std::array<SimTime, trace::kNumStageKinds> stage_baseline_{};
    std::unique_ptr<ThreadPool> threads_;
    /**
     * Each service instance traces into its own domain so two
     * concurrent services (e.g. coalesced vs baseline in the tests)
     * keep separate stage totals and exports.
     */
    std::uint32_t trace_domain_ = 0;
};

}  // namespace dbscore::serve

#endif  // DBSCORE_SERVE_SCORING_SERVICE_H
