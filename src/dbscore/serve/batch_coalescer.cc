#include "dbscore/serve/batch_coalescer.h"

#include <utility>

#include "dbscore/common/error.h"

namespace dbscore::serve {

BatchCoalescer::BatchCoalescer(const CoalescerConfig& config)
    : config_(config)
{
    if (config.max_batch_requests == 0 || config.max_batch_rows == 0) {
        throw InvalidArgument("coalescer: zero batch cap");
    }
    if (config.window < SimTime()) {
        throw InvalidArgument("coalescer: negative window");
    }
}

std::vector<Batch>
BatchCoalescer::Add(PendingRequest request)
{
    DBS_ASSERT_MSG(request.request.arrival.has_value(),
                   "coalescer: unstamped arrival");
    const SimTime arrival = *request.request.arrival;
    const std::size_t rows = request.request.num_rows;
    std::vector<Batch> closed;

    auto it = open_.find(request.request.model_id);
    if (it != open_.end()) {
        Batch& batch = it->second;
        const bool in_window =
            !config_.window.is_zero() &&
            arrival <= batch.open_arrival + config_.window;
        const bool fits =
            batch.members.size() < config_.max_batch_requests &&
            batch.total_rows + rows <= config_.max_batch_rows;
        if (in_window && fits) {
            batch.members.push_back(std::move(request));
            batch.total_rows += rows;
            batch.ready = Max(batch.ready, arrival);
            if (batch.members.size() >= config_.max_batch_requests ||
                batch.total_rows >= config_.max_batch_rows) {
                // Cap hit: close. The newcomer was never counted in
                // pending_, so only the prior members come off.
                pending_ -= batch.members.size() - 1;
                closed.push_back(std::move(batch));
                open_.erase(it);
            } else {
                ++pending_;
            }
            return closed;
        }
        // Missed the window (or would overflow): close the open batch
        // and let the newcomer start a fresh one.
        pending_ -= batch.members.size();
        closed.push_back(std::move(batch));
        open_.erase(it);
    }

    Batch fresh;
    fresh.model_id = request.request.model_id;
    fresh.open_arrival = arrival;
    fresh.ready = arrival;
    fresh.total_rows = rows;
    fresh.members.push_back(std::move(request));

    const bool solo =
        config_.window.is_zero() ||
        fresh.members.size() >= config_.max_batch_requests ||
        fresh.total_rows >= config_.max_batch_rows;
    if (solo) {
        closed.push_back(std::move(fresh));
    } else {
        ++pending_;
        std::string key = fresh.model_id;
        open_.emplace(std::move(key), std::move(fresh));
    }
    return closed;
}

std::vector<Batch>
BatchCoalescer::Flush()
{
    std::vector<Batch> closed;
    closed.reserve(open_.size());
    for (auto& [model, batch] : open_) {
        (void)model;
        pending_ -= batch.members.size();
        closed.push_back(std::move(batch));
    }
    open_.clear();
    return closed;
}

}  // namespace dbscore::serve
