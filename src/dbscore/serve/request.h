/**
 * @file
 * Request/reply types of the concurrent scoring service.
 *
 * A ScoreRequest is what a DBMS session hands the serving layer: which
 * model, how many records, when it arrived (modeled time), and how long
 * it is willing to wait. The service answers with a ScoreReply carrying
 * the modeled completion time and a per-request split of the batch's
 * stage breakdown, so the paper's overhead taxonomy survives coalescing:
 * a request that shared a dispatch with 31 others is charged 1/32nd of
 * the invocation cost and its row-proportional share of transfer,
 * preprocessing, and compute.
 */
#ifndef DBSCORE_SERVE_REQUEST_H
#define DBSCORE_SERVE_REQUEST_H

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dbscore/core/workload_sim.h"
#include "dbscore/engines/scoring_engine.h"

namespace dbscore::serve {

/** One scoring request submitted to the service. */
struct ScoreRequest {
    /** Model to score with; must be registered before Start(). */
    std::string model_id;
    /** Records to score. */
    std::size_t num_rows = 1;
    /**
     * Optional feature payload: a num_rows x model-feature view into
     * the data plane. When non-empty, the reply carries real
     * predictions computed through the model's cached ForestKernel
     * (compiled once at RegisterModel, so coalesced micro-batches
     * never recompile); when empty the request is modeled-time only,
     * like the trace replays. A shared view's keepalive refcount lets
     * the request outlive the producing Table/Dataset without any
     * copy; the rows traverse admission -> coalescing -> kernel
     * in place.
     */
    RowView rows;
    /**
     * Modeled arrival time. Trace replays stamp this from the workload
     * generator; live callers (sp_score_service) leave it empty and the
     * service stamps its current modeled clock.
     */
    std::optional<SimTime> arrival;
    /**
     * Deadline relative to arrival; a request whose modeled dispatch
     * would start after arrival + deadline expires instead of scoring.
     * Empty = wait forever.
     */
    std::optional<SimTime> deadline;
};

/** Terminal state of a request. */
enum class RequestStatus {
    kCompleted,  ///< scored; timing fields are valid
    kRejected,   ///< admission queue full (backpressure) or service down
    kExpired,    ///< deadline passed before the batch dispatched
    kFailed,     ///< injected faults exhausted every permitted retry
};

const char* RequestStatusName(RequestStatus status);

/** Per-request split of a batch's modeled stage costs. */
struct RequestTiming {
    /** Batch-ready -> own arrival gap paid to wait for batchmates. */
    SimTime coalesce_delay;
    /** Batch-ready -> dispatch gap paid queueing for the device. */
    SimTime queue_wait;
    /** Even share of the external-process invocation (cold or warm). */
    SimTime invocation_share;
    /** Even share of model deserialization (cold dispatches only). */
    SimTime model_preproc_share;
    /** Row-proportional share of DBMS<->process data marshaling. */
    SimTime transfer_share;
    /** Row-proportional share of scoring-matrix preparation. */
    SimTime data_preproc_share;
    /** Row-proportional share of the engine's offload breakdown. */
    OffloadBreakdown scoring_share;

    /** End-to-end modeled latency (finish - arrival). */
    SimTime latency;
};

/** The service's answer to one request. */
struct ScoreReply {
    RequestStatus status = RequestStatus::kRejected;
    /** Backend the batch ran on (completed requests only). */
    BackendKind backend = BackendKind::kCpuSklearn;
    /** Modeled completion (or expiry/rejection) time. */
    SimTime finish;
    RequestTiming timing;
    /** Size of the coalesced dispatch this request rode in. */
    std::size_t batch_requests = 0;
    std::size_t batch_rows = 0;
    /** True when this dispatch paid a cold process start. */
    bool cold_invocation = false;
    /**
     * Dispatch attempts this request's batch consumed (1 = clean first
     * try; each injected fault that triggered a retry adds one).
     */
    std::size_t attempts = 1;
    /**
     * True when the reply was produced by the CPU engine because the
     * originally chosen accelerator was faulted or its breaker open.
     * Degraded replies are still kCompleted and their predictions are
     * the CPU engine's — bit-identical to scoring on CPU directly.
     */
    bool degraded = false;
    /**
     * Real predictions, one per request row — populated only when the
     * request carried a feature payload. Functional output; the
     * modeled timing fields are unaffected by computing it.
     */
    std::vector<float> predictions;
    /** Human-readable detail for rejected requests. */
    std::string error;
};

/**
 * Completion handle returned by ScoringService::Submit. Thread-safe:
 * any thread may Wait()/TryGet() while the service fulfills it once.
 */
class PendingScore {
 public:
    /** Blocks until the reply is ready and returns it. */
    const ScoreReply& Wait() const;

    /** Non-blocking probe. */
    bool ready() const;

    /** The reply, if ready. */
    std::optional<ScoreReply> TryGet() const;

 private:
    friend class ScoringService;

    void Fulfill(ScoreReply reply);

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    bool ready_ = false;
    ScoreReply reply_;
};

using PendingScorePtr = std::shared_ptr<PendingScore>;

/**
 * Converts a generated workload trace (core/workload_sim arrival +
 * record-count stream) into service requests against one model — the
 * bridge the serve tests and benches use to replay identical traces
 * with and without coalescing.
 */
std::vector<ScoreRequest> RequestsFromWorkload(
    const std::vector<WorkloadQuery>& queries, const std::string& model_id,
    std::optional<SimTime> deadline = std::nullopt);

}  // namespace dbscore::serve

#endif  // DBSCORE_SERVE_REQUEST_H
