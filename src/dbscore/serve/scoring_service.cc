#include "dbscore/serve/scoring_service.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "dbscore/common/error.h"
#include "dbscore/common/rng.h"
#include "dbscore/engines/scoring_engine.h"
#include "dbscore/fault/fault.h"
#include "dbscore/forest/forest_kernel.h"
#include "dbscore/trace/exporters.h"
#include "dbscore/trace/trace.h"

namespace dbscore::serve {

using trace::StageKind;
using trace::TraceCollector;

ScoringService::ModelEntry::ModelEntry(const HardwareProfile& profile,
                                       const TreeEnsemble& model,
                                       const ModelStats& stats)
    : scheduler(profile, model, stats),
      forest(model.ToForest()),
      num_cols(stats.num_features),
      model_bytes(stats.serialized_bytes)
{
    // Prewarm the per-model kernel cache so the first coalesced batch
    // never pays (or races on) compilation.
    if (ForestKernel::Supports(forest)) {
        forest.Kernel();
    }
}

namespace {

/** Row-proportional share of an engine breakdown. */
OffloadBreakdown
ScaleBreakdown(const OffloadBreakdown& b, double k)
{
    OffloadBreakdown s;
    s.preprocessing = b.preprocessing * k;
    s.input_transfer = b.input_transfer * k;
    s.setup = b.setup * k;
    s.compute = b.compute * k;
    s.completion_signal = b.completion_signal * k;
    s.result_transfer = b.result_transfer * k;
    s.software_overhead = b.software_overhead * k;
    return s;
}

/**
 * Modeled engine time a faulted offload attempt consumed: every
 * breakdown component completed before the site that failed.
 * @p site_index is the position in OffloadFaultSites(kind) — FPGA
 * crosses {DMA-in, setup, completion, DMA-out}, GPU crosses
 * {DMA-in, launch, DMA-out}.
 */
SimTime
FaultedOffloadCost(const OffloadBreakdown& b, DeviceClass device_class,
                   std::size_t site_index)
{
    SimTime t = b.preprocessing + b.input_transfer;
    if (site_index == 0) {
        return t;  // the inbound DMA itself failed
    }
    t += b.setup;
    if (site_index == 1) {
        return t;  // setup / kernel launch failed
    }
    if (device_class == DeviceClass::kFpga) {
        t += b.compute + b.completion_signal;
        if (site_index == 2) {
            return t;  // completion interrupt lost after a full run
        }
    } else {
        t += b.compute + b.completion_signal;
    }
    return t + b.result_transfer;  // the outbound DMA failed
}

}  // namespace

ScoringService::ScoringService(const HardwareProfile& profile,
                               ServiceConfig config)
    : profile_(profile), config_(std::move(config)),
      trace_domain_(TraceCollector::Get().NewDomain())
{
    if (config_.admission_capacity == 0) {
        throw InvalidArgument("service: zero admission capacity");
    }
    // Validate the coalescer config eagerly (the dispatcher constructs
    // its own instance later).
    BatchCoalescer validate(config_.coalescer);
    for (Device& d : devices_) {
        d.runtime =
            std::make_unique<ExternalScriptRuntime>(config_.runtime_params);
    }
}

ScoringService::~ScoringService()
{
    Stop();
}

void
ScoringService::RegisterModel(const std::string& id,
                              const TreeEnsemble& model,
                              const ModelStats& stats)
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (running_) {
        throw InvalidArgument("service: RegisterModel while running");
    }
    if (models_.count(id) != 0) {
        throw InvalidArgument("service: duplicate model id: " + id);
    }
    models_.emplace(id,
                    std::make_unique<ModelEntry>(profile_, model, stats));
}

std::vector<BackendKind>
ScoringService::BackendsFor(const std::string& id) const
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    auto it = models_.find(id);
    if (it == models_.end()) {
        throw NotFound("service: unknown model: " + id);
    }
    return it->second->scheduler.Available();
}

void
ScoringService::Start()
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (running_) {
        return;
    }
    if (stop_requested_ || threads_ != nullptr) {
        throw InvalidArgument("service: cannot restart a stopped service");
    }
    if (models_.empty()) {
        throw InvalidArgument("service: Start with no registered models");
    }
    running_ = true;
    threads_ = std::make_unique<ThreadPool>(4);
    threads_->Submit([this] { DispatcherLoop(); });
    for (int d = 0; d < 3; ++d) {
        threads_->Submit([this, d] { WorkerLoop(d); });
    }
}

bool
ScoringService::running() const
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    return running_;
}

void
ScoringService::Stop()
{
    bool was_running = false;
    std::deque<PendingRequest> orphaned;
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        if (stop_requested_) {
            return;  // idempotent
        }
        stop_requested_ = true;
        was_running = running_;
        if (!was_running) {
            // Never started: nobody will ever serve the queue.
            orphaned.swap(admission_);
        }
    }
    admission_cv_.notify_all();

    if (was_running) {
        // 1. Dispatcher drains the admission queue, flushes open
        //    batches, and exits.
        {
            std::unique_lock<std::mutex> lock(admission_mutex_);
            settled_cv_.wait(lock, [this] { return dispatcher_done_; });
        }
        // 2. Workers drain their batch queues and exit.
        for (Device& d : devices_) {
            {
                std::lock_guard<std::mutex> lock(d.mutex);
                d.stop = true;
            }
            d.cv.notify_all();
        }
        threads_->Shutdown();
    }

    for (PendingRequest& r : orphaned) {
        ScoreReply reply;
        reply.status = RequestStatus::kRejected;
        reply.finish = r.request.arrival.value_or(SimTime());
        reply.error = "service stopped before Start";
        const SimTime finish = reply.finish;
        stats_.RecordRejected();
        r.handle->Fulfill(std::move(reply));
        SettleOne(finish);
    }

    std::lock_guard<std::mutex> lock(admission_mutex_);
    running_ = false;
}

void
ScoringService::Drain()
{
    std::unique_lock<std::mutex> lock(admission_mutex_);
    settled_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

SimTime
ScoringService::StampArrival(const std::optional<SimTime>& arrival)
{
    // Caller holds admission_mutex_.
    if (arrival.has_value()) {
        modeled_now_ = Max(modeled_now_, *arrival);
        return *arrival;
    }
    return modeled_now_;
}

PendingScorePtr
ScoringService::Submit(ScoreRequest request)
{
    auto handle = std::make_shared<PendingScore>();
    stats_.RecordSubmitted();
    TraceCollector& tracer = TraceCollector::Get();
    const double submit_us = tracer.NowWallMicros();
    const std::size_t num_rows = request.num_rows;
    trace::SpanContext root;

    std::string reject_reason;
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        auto model_it = models_.find(request.model_id);
        if (stop_requested_) {
            reject_reason = "service is stopped";
        } else if (model_it == models_.end()) {
            reject_reason = "unknown model: " + request.model_id;
        } else if (request.num_rows == 0) {
            reject_reason = "zero rows";
        } else if (!request.rows.empty() &&
                   (request.rows.rows() != request.num_rows ||
                    request.rows.cols() !=
                        model_it->second->num_cols)) {
            reject_reason = "row payload arity mismatch";
        } else if (in_flight_ >= config_.admission_capacity) {
            reject_reason = "admission queue full";
        } else {
            request.arrival = StampArrival(request.arrival);
            ++in_flight_;
            PendingRequest pending{std::move(request), handle};
            pending.trace = tracer.NewRootContext(trace_domain_);
            pending.submit_wall_us = submit_us;
            root = pending.trace;
            admission_.push_back(std::move(pending));
            stats_.RecordAdmitted();
        }
    }

    if (!reject_reason.empty()) {
        ScoreReply reply;
        reply.status = RequestStatus::kRejected;
        reply.error = std::move(reject_reason);
        stats_.RecordRejected();
        handle->Fulfill(std::move(reply));
    } else {
        // Wall span for the admission handoff, on the client's thread.
        tracer.EmitWall(StageKind::kAdmission, "admit", root, submit_us,
                        tracer.NowWallMicros() - submit_us,
                        {{"rows", static_cast<double>(num_rows)}});
        admission_cv_.notify_one();
    }
    return handle;
}

ScoreReply
ScoringService::ScoreSync(ScoreRequest request)
{
    return Submit(std::move(request))->Wait();
}

ServiceSnapshot
ScoringService::Stats() const
{
    ServiceSnapshot snap = stats_.Snapshot();
    // Stage attribution comes from the trace subsystem: sum the
    // simulated durations of this service's per-request stage spans.
    auto totals = TraceCollector::Get().StageSimTotals(trace_domain_);
    {
        // Per-phase view: the collector's totals span the domain's
        // whole lifetime; subtract what had accumulated at the last
        // ResetStats().
        std::lock_guard<std::mutex> lock(baseline_mutex_);
        for (std::size_t i = 0; i < totals.size(); ++i) {
            totals[i] = Max(SimTime(), totals[i] - stage_baseline_[i]);
        }
    }
    auto of = [&totals](StageKind stage) {
        return totals[static_cast<int>(stage)];
    };
    StageTotals& st = snap.stage_totals;
    st.coalesce_delay = of(StageKind::kCoalesce);
    st.queue_wait = of(StageKind::kQueueWait);
    st.invocation = of(StageKind::kInvocation);
    st.model_preprocessing = of(StageKind::kModelPreproc);
    st.transfer = of(StageKind::kMarshal);
    st.data_preprocessing = of(StageKind::kDataPreproc);
    st.scoring = of(StageKind::kScoring);
    return snap;
}

void
ScoringService::ResetStats()
{
    // Order matters: rebaseline the trace totals first, then zero the
    // counters, so a concurrent Stats() never pairs new counters with
    // pre-reset stage totals.
    {
        std::lock_guard<std::mutex> lock(baseline_mutex_);
        stage_baseline_ =
            TraceCollector::Get().StageSimTotals(trace_domain_);
    }
    stats_.Reset();
}

void
ScoringService::ExportTrace(std::ostream& os) const
{
    TraceCollector& tracer = TraceCollector::Get();
    trace::WriteChromeTrace(os, tracer.SpansForDomain(trace_domain_),
                            tracer.TotalDropped());
}

void
ScoringService::SettleOne(SimTime finish)
{
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        DBS_ASSERT(in_flight_ > 0);
        --in_flight_;
        modeled_now_ = Max(modeled_now_, finish);
    }
    settled_cv_.notify_all();
}

void
ScoringService::DispatcherLoop()
{
    BatchCoalescer coalescer(config_.coalescer);
    std::deque<PendingRequest> grabbed;
    for (;;) {
        bool stopping = false;
        grabbed.clear();
        {
            std::unique_lock<std::mutex> lock(admission_mutex_);
            auto ready = [this] {
                return stop_requested_ || !admission_.empty();
            };
            if (coalescer.open_batches() > 0) {
                // Open batches must not outlive an idle flush interval,
                // or a lone synchronous caller would hang.
                admission_cv_.wait_for(lock, config_.flush_interval,
                                       ready);
            } else {
                admission_cv_.wait(lock, ready);
            }
            grabbed.swap(admission_);
            stopping = stop_requested_;
        }
        if (grabbed.empty()) {
            // Idle tick (or stop): strand no open batch.
            for (Batch& batch : coalescer.Flush()) {
                PlaceAndEnqueue(std::move(batch));
            }
            if (stopping) {
                break;
            }
            continue;
        }
        for (PendingRequest& r : grabbed) {
            for (Batch& batch : coalescer.Add(std::move(r))) {
                PlaceAndEnqueue(std::move(batch));
            }
        }
    }
    // Structural shutdown-drain guarantee: the exit path above flushes
    // every open batch, so nothing should still be pending here. If a
    // future refactor breaks that, fail the stranded requests loudly
    // (kFailed replies, settled counters) — never drop their handles
    // silently, which would hang every waiter forever.
    for (Batch& batch : coalescer.Flush()) {
        for (PendingRequest& m : batch.members) {
            const SimTime arrival = m.request.arrival.value_or(SimTime());
            ScoreReply reply;
            reply.status = RequestStatus::kFailed;
            reply.finish = arrival;
            reply.error = "service stopped before dispatch";
            stats_.RecordFailed(arrival, arrival);
            EmitRequestSpan(m, arrival, arrival, /*expired=*/false);
            m.handle->Fulfill(std::move(reply));
            SettleOne(arrival);
        }
    }
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        dispatcher_done_ = true;
    }
    settled_cv_.notify_all();
}

void
ScoringService::PlaceAndEnqueue(Batch batch)
{
    TraceCollector& tracer = TraceCollector::Get();
    const double place_start_us = tracer.NowWallMicros();
    const ModelEntry& entry = *models_.at(batch.model_id);
    const std::size_t rows = batch.total_rows;
    std::optional<BackendEstimate> per_class[3] = {
        BestOfClass(entry.scheduler, DeviceClass::kCpu, rows),
        BestOfClass(entry.scheduler, DeviceClass::kGpu, rows),
        BestOfClass(entry.scheduler, DeviceClass::kFpga, rows),
    };

    int chosen = 0;
    switch (config_.policy) {
      case WorkloadPolicy::kAlwaysCpu:
        chosen = 0;
        break;
      case WorkloadPolicy::kAlwaysFpga:
        chosen = 2;
        break;
      case WorkloadPolicy::kServiceOptimal: {
        double best = 1e30;
        for (int d = 0; d < 3; ++d) {
            if (per_class[d] && per_class[d]->Total().seconds() < best) {
                best = per_class[d]->Total().seconds();
                chosen = d;
            }
        }
        break;
      }
      case WorkloadPolicy::kQueueAware: {
        double best = 1e30;
        for (int d = 0; d < 3; ++d) {
            if (!per_class[d]) {
                continue;
            }
            SimTime free_at;
            {
                std::lock_guard<std::mutex> lock(devices_[d].mutex);
                free_at = devices_[d].free_at;
            }
            double wait = std::max(
                0.0, (free_at - batch.ready).seconds());
            double finish = wait + per_class[d]->Total().seconds();
            if (finish < best) {
                best = finish;
                chosen = d;
            }
        }
        break;
      }
    }
    if (!per_class[chosen]) {
        chosen = 0;  // the CPU can always host the model
    }
    DBS_ASSERT(per_class[chosen].has_value());

    // Circuit breaker: an open accelerator queue re-routes its batches
    // to the CPU engine (flagged degraded) until the cooldown elapses;
    // the first batch ready at/after open_until instead transitions the
    // breaker to half-open and goes through as the probe. The CPU queue
    // has no reroute target, so its breaker never redirects placement.
    if (chosen != 0 && config_.cpu_fallback) {
        Device& accel = devices_[chosen];
        bool reroute = false;
        bool probe = false;
        {
            std::lock_guard<std::mutex> lock(accel.mutex);
            if (accel.breaker == BreakerState::kOpen) {
                if (batch.ready < accel.breaker_open_until) {
                    reroute = true;
                } else {
                    accel.breaker = BreakerState::kHalfOpen;
                    probe = true;
                }
            }
        }
        const auto accel_class = static_cast<DeviceClass>(chosen);
        if (probe) {
            stats_.SetBreakerState(accel_class, BreakerState::kHalfOpen);
            if (!batch.members.empty()) {
                tracer.EmitSim(
                    StageKind::kBreaker, "breaker-half-open",
                    batch.members.front().trace, batch.ready, SimTime(),
                    {{"device", static_cast<double>(chosen)},
                     {"state",
                      static_cast<double>(BreakerState::kHalfOpen)}});
            }
        }
        if (reroute) {
            batch.degraded = true;
            stats_.RecordFallback();
            if (!batch.members.empty()) {
                tracer.EmitSim(StageKind::kFallback, "breaker-reroute",
                               batch.members.front().trace, batch.ready,
                               SimTime(),
                               {{"from", static_cast<double>(chosen)}});
            }
            chosen = 0;
            DBS_ASSERT(per_class[chosen].has_value());
        }
    }

    // Wall span for the dispatcher hop, parented to the oldest
    // member's request: coalescing decisions are per-batch but the
    // trace keeps one tree per request.
    if (!batch.members.empty()) {
        tracer.EmitWall(StageKind::kCoalesce, "place",
                        batch.members.front().trace, place_start_us,
                        tracer.NowWallMicros() - place_start_us,
                        {{"requests",
                          static_cast<double>(batch.members.size())},
                         {"rows", static_cast<double>(rows)},
                         {"device", static_cast<double>(chosen)}});
    }

    Device& device = devices_[chosen];
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        device.queue.emplace_back(std::move(batch),
                                  per_class[chosen]->kind);
    }
    device.cv.notify_one();
}

void
ScoringService::WorkerLoop(int device_index)
{
    Device& device = devices_[device_index];
    const auto device_class = static_cast<DeviceClass>(device_index);
    for (;;) {
        std::pair<Batch, BackendKind> work;
        {
            std::unique_lock<std::mutex> lock(device.mutex);
            device.cv.wait(lock, [&device] {
                return device.stop || !device.queue.empty();
            });
            if (device.queue.empty()) {
                return;  // stop requested and fully drained
            }
            work = std::move(device.queue.front());
            device.queue.pop_front();
        }
        ExecuteBatch(device, device_class, work.first, work.second);
    }
}

void
ScoringService::EmitRequestSpan(const PendingRequest& request,
                                SimTime arrival, SimTime finish,
                                bool expired) const
{
    if (!request.trace.valid()) {
        return;
    }
    TraceCollector& tracer = TraceCollector::Get();
    trace::SpanRecord record;
    record.trace_id = request.trace.trace_id;
    record.span_id = request.trace.span_id;
    record.domain = request.trace.domain;
    record.stage = StageKind::kQuery;
    record.name = "request";
    record.wall_start_us = request.submit_wall_us;
    record.wall_dur_us = tracer.NowWallMicros() - request.submit_wall_us;
    record.sim_start_s = arrival.seconds();
    record.sim_dur_s = (finish - arrival).seconds();
    record.AddAttr("rows", static_cast<double>(request.request.num_rows));
    record.AddAttr("expired", expired ? 1.0 : 0.0);
    tracer.Emit(record);
}

SimTime
ScoringService::NextBackoff(Device& device, int device_index,
                            std::size_t retry_index)
{
    const RetryPolicy& policy = config_.retry;
    DBS_ASSERT(retry_index >= 1);
    double backoff_s =
        policy.initial_backoff.seconds() *
        std::pow(policy.backoff_multiplier,
                 static_cast<double>(retry_index - 1));
    backoff_s = std::min(backoff_s, policy.max_backoff.seconds());
    std::uint64_t seq;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        seq = device.attempt_seq++;
    }
    if (policy.jitter_frac > 0.0 && backoff_s > 0.0) {
        // One draw from a stream keyed by (seed, device, sequence):
        // a replayed run re-draws identical jitter. The SplitMix64
        // seeding inside Rng decorrelates the nearby keys.
        Rng jitter(policy.jitter_seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(device_index) + 1)) ^
                   (0xbf58476d1ce4e5b9ULL * (seq + 1)));
        backoff_s += backoff_s * policy.jitter_frac * jitter.NextDouble();
    }
    return SimTime::Seconds(backoff_s);
}

void
ScoringService::BreakerOnFault(Device& device, DeviceClass device_class,
                               SimTime now,
                               const trace::SpanContext& parent)
{
    BreakerState before;
    BreakerState after;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        before = device.breaker;
        ++device.consecutive_failures;
        if (device.breaker == BreakerState::kHalfOpen) {
            // Failed probe: straight back to open for another cooldown.
            device.breaker = BreakerState::kOpen;
            device.breaker_open_until = now + config_.breaker.open_cooldown;
        } else if (device.breaker == BreakerState::kClosed &&
                   device.consecutive_failures >=
                       config_.breaker.failure_threshold) {
            device.breaker = BreakerState::kOpen;
            device.breaker_open_until = now + config_.breaker.open_cooldown;
        }
        after = device.breaker;
    }
    if (after == before) {
        return;
    }
    stats_.SetBreakerState(device_class, after);
    stats_.RecordBreakerOpen();
    TraceCollector::Get().EmitSim(
        StageKind::kBreaker, "breaker-open", parent, now, SimTime(),
        {{"device", static_cast<double>(device_class)},
         {"state", static_cast<double>(after)}});
}

void
ScoringService::BreakerOnSuccess(Device& device, DeviceClass device_class,
                                 SimTime now,
                                 const trace::SpanContext& parent)
{
    BreakerState before;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        before = device.breaker;
        device.consecutive_failures = 0;
        device.breaker = BreakerState::kClosed;
    }
    if (before == BreakerState::kClosed) {
        return;
    }
    stats_.SetBreakerState(device_class, BreakerState::kClosed);
    TraceCollector::Get().EmitSim(
        StageKind::kBreaker, "breaker-close", parent, now, SimTime(),
        {{"device", static_cast<double>(device_class)},
         {"state", static_cast<double>(BreakerState::kClosed)}});
}

void
ScoringService::ExecuteBatch(Device& device, DeviceClass device_class,
                             Batch& batch, BackendKind kind)
{
    TraceCollector& tracer = TraceCollector::Get();
    const ModelEntry& entry = *models_.at(batch.model_id);
    SimTime start;
    {
        std::lock_guard<std::mutex> lock(device.mutex);
        start = Max(batch.ready, device.free_at);
    }

    // Deadline admission at dispatch: members whose modeled start
    // already overruns their deadline expire instead of scoring (and
    // shrink the dispatched batch).
    std::vector<PendingRequest> live;
    live.reserve(batch.members.size());
    std::size_t rows = 0;
    for (PendingRequest& m : batch.members) {
        const SimTime arrival = *m.request.arrival;
        if (m.request.deadline.has_value() &&
            start > arrival + *m.request.deadline) {
            ScoreReply reply;
            reply.status = RequestStatus::kExpired;
            reply.finish = start;
            reply.timing.latency = start - arrival;
            reply.error = "deadline expired before dispatch";
            stats_.RecordExpired(arrival, start);
            EmitRequestSpan(m, arrival, start, /*expired=*/true);
            m.handle->Fulfill(std::move(reply));
            SettleOne(start);
            continue;
        }
        rows += m.request.num_rows;
        live.push_back(std::move(m));
    }
    if (live.empty()) {
        return;  // nothing dispatched; the device stays free
    }

    // Batch cost: one external-process invocation + one DBMS<->process
    // round trip + one engine dispatch for the whole coalesced batch —
    // the amortization the paper's per-query pipeline forgoes. Under an
    // installed FaultPlan any attempt can fail (process crash, DMA,
    // setup/launch, completion); faulted attempts retry with capped
    // exponential backoff on the same device, then degrade to the CPU
    // engine, and only fail requests once every permitted attempt is
    // spent or a member's deadline forbids the next dispatch.
    fault::FaultInjector& injector = fault::FaultInjector::Get();
    const std::uint64_t bytes_in =
        static_cast<std::uint64_t>(rows) * entry.num_cols * sizeof(float);
    const std::uint64_t bytes_out =
        static_cast<std::uint64_t>(rows) * sizeof(float);

    // Attempt-loop cursor state. `now` is the modeled dispatch time of
    // the current attempt: faulted attempts advance it by the partial
    // stage costs they consumed, retries by their backoff, a CPU
    // fallback by the CPU queue's horizon.
    Device* exec_device = &device;
    DeviceClass exec_class = device_class;
    BackendKind exec_kind = kind;
    bool degraded = batch.degraded;
    SimTime now = start;
    std::size_t total_attempts = 0;
    std::size_t device_attempts = 0;
    bool success = false;

    InvocationCost invocation;
    SimTime model_pre;
    SimTime transfer_to;
    SimTime transfer_from;
    SimTime data_pre;
    OffloadBreakdown scoring;

    auto fail_member = [&](PendingRequest& m, SimTime at,
                           std::string why) {
        const SimTime arrival = *m.request.arrival;
        ScoreReply reply;
        reply.status = RequestStatus::kFailed;
        reply.finish = at;
        reply.timing.latency = at - arrival;
        reply.attempts = total_attempts;
        reply.degraded = degraded;
        reply.error = std::move(why);
        stats_.RecordFailed(arrival, at);
        EmitRequestSpan(m, arrival, at, /*expired=*/false);
        m.handle->Fulfill(std::move(reply));
        SettleOne(at);
    };

    while (!live.empty()) {
        ++total_attempts;
        ++device_attempts;
        ExternalScriptRuntime& runtime = *exec_device->runtime;
        invocation = runtime.Invoke();
        model_pre = invocation.cold
                        ? runtime.ModelPreprocessing(entry.model_bytes)
                        : SimTime();
        transfer_to = runtime.TransferToProcess(bytes_in);
        transfer_from = runtime.TransferFromProcess(bytes_out);
        data_pre = runtime.DataPreprocessing(rows, entry.num_cols);
        scoring = entry.scheduler.EstimateFor(exec_kind, rows);

        // This attempt's fate: the external process can crash during
        // invocation; otherwise the offload crosses its hardware fault
        // sites in operation order. Estimate/EstimateFor stay pure, so
        // the dispatch consumes the same per-site fault stream a
        // functional engine Score would.
        bool faulted = invocation.crashed;
        fault::FaultSite fault_site = fault::FaultSite::kExternalInvoke;
        SimTime wasted = invocation.cost;
        if (!faulted) {
            const auto sites = OffloadFaultSites(exec_kind);
            for (std::size_t i = 0; i < sites.size(); ++i) {
                if (injector.ShouldFail(sites[i])) {
                    faulted = true;
                    fault_site = sites[i];
                    wasted = invocation.cost + model_pre + transfer_to +
                             data_pre +
                             FaultedOffloadCost(scoring, exec_class, i);
                    break;
                }
            }
        }
        if (!faulted) {
            success = true;
            break;
        }

        tracer.EmitSim(
            StageKind::kFault, fault::FaultSiteName(fault_site),
            live.front().trace, now, wasted,
            {{"device", static_cast<double>(exec_class)},
             {"attempt", static_cast<double>(total_attempts)}});
        stats_.RecordFaultAttempt(exec_class, wasted);
        now += wasted;
        BreakerOnFault(*exec_device, exec_class, now, live.front().trace);

        if (device_attempts < config_.retry.max_attempts) {
            // Retry on the same device after backoff — but never
            // dispatch a member past its deadline: those members fail
            // now instead of riding a retry they could never use.
            const SimTime backoff = NextBackoff(
                *exec_device, static_cast<int>(exec_class),
                device_attempts);
            const SimTime redispatch = now + backoff;
            std::vector<PendingRequest> retryable;
            retryable.reserve(live.size());
            std::size_t new_rows = 0;
            for (PendingRequest& m : live) {
                if (m.request.deadline.has_value() &&
                    redispatch >
                        *m.request.arrival + *m.request.deadline) {
                    fail_member(m, now,
                                "fault: deadline precludes retry");
                    continue;
                }
                new_rows += m.request.num_rows;
                retryable.push_back(std::move(m));
            }
            live.swap(retryable);
            rows = new_rows;
            if (live.empty()) {
                break;
            }
            tracer.EmitSim(
                StageKind::kRetryBackoff, "retry-backoff",
                live.front().trace, now, backoff,
                {{"attempt", static_cast<double>(total_attempts)}});
            stats_.RecordRetry(backoff);
            now = redispatch;
            continue;
        }

        if (config_.cpu_fallback && exec_class != DeviceClass::kCpu) {
            // Graceful degradation: release the accelerator (it burned
            // start..now) and hand the batch to the CPU engine with a
            // fresh attempt budget.
            {
                std::lock_guard<std::mutex> lock(exec_device->mutex);
                exec_device->free_at = Max(exec_device->free_at, now);
            }
            auto cpu_best =
                BestOfClass(entry.scheduler, DeviceClass::kCpu, rows);
            DBS_ASSERT(cpu_best.has_value());
            const auto from_class = exec_class;
            exec_device = &devices_[0];
            exec_class = DeviceClass::kCpu;
            exec_kind = cpu_best->kind;
            degraded = true;
            device_attempts = 0;
            {
                std::lock_guard<std::mutex> lock(exec_device->mutex);
                now = Max(now, exec_device->free_at);
            }
            stats_.RecordFallback();
            tracer.EmitSim(
                StageKind::kFallback, "cpu-fallback", live.front().trace,
                now, SimTime(),
                {{"from", static_cast<double>(from_class)}});
            continue;
        }

        // No retries and no fallback left: the remaining members fail.
        break;
    }

    if (!success) {
        {
            std::lock_guard<std::mutex> lock(exec_device->mutex);
            exec_device->free_at = Max(exec_device->free_at, now);
        }
        for (PendingRequest& m : live) {
            fail_member(m, now, "injected faults exhausted every retry");
        }
        tracer.Drain();
        return;
    }

    const SimTime transfer = transfer_to + transfer_from;
    const SimTime service = invocation.cost + model_pre + transfer +
                            data_pre + scoring.Total();
    const SimTime finish = now + service;

    {
        std::lock_guard<std::mutex> lock(exec_device->mutex);
        exec_device->free_at = Max(exec_device->free_at, finish);
    }
    BreakerOnSuccess(*exec_device, exec_class, finish,
                     live.front().trace);
    stats_.RecordBatch(exec_class, live.size(), rows, service,
                       invocation.cold);

    // Wall span for the dispatch on this worker thread; kernel spans
    // emitted while computing predictions nest under it implicitly.
    // Its simulated extent spans first dispatch through completion, so
    // faulted attempts and backoffs sit inside it on the timeline.
    trace::ScopedSpan exec(StageKind::kBatch, "batch-execute",
                           live.front().trace);
    exec.SetSim(start, finish - start);
    exec.AddAttr("requests", static_cast<double>(live.size()));
    exec.AddAttr("rows", static_cast<double>(rows));
    exec.AddAttr("device", static_cast<double>(exec_class));

    const double n = static_cast<double>(live.size());
    for (PendingRequest& m : live) {
        const SimTime arrival = *m.request.arrival;
        const double share =
            static_cast<double>(m.request.num_rows) /
            static_cast<double>(rows);
        ScoreReply reply;
        reply.status = RequestStatus::kCompleted;
        reply.backend = exec_kind;
        reply.finish = finish;
        reply.batch_requests = live.size();
        reply.batch_rows = rows;
        reply.cold_invocation = invocation.cold;
        reply.attempts = total_attempts;
        reply.degraded = degraded;
        RequestTiming& t = reply.timing;
        t.coalesce_delay = Max(SimTime(), batch.ready - arrival);
        t.queue_wait = start - batch.ready;
        t.invocation_share = invocation.cost / n;
        t.model_preproc_share = model_pre / n;
        t.transfer_share = transfer * share;
        t.data_preproc_share = data_pre * share;
        t.scoring_share = ScaleBreakdown(scoring, share);
        t.latency = finish - arrival;

        // Simulated stage chain, one span per paper component,
        // parented to the member's own request root: waiting spans at
        // their true timeline positions, then the request's share of
        // the batch cost laid end to end from the *successful*
        // dispatch at `now` (faults and backoffs between start and now
        // have their own kFault/kRetryBackoff spans).
        tracer.EmitSim(StageKind::kCoalesce, "coalesce-delay", m.trace,
                       arrival, t.coalesce_delay);
        tracer.EmitSim(StageKind::kQueueWait, "queue-wait", m.trace,
                       batch.ready, t.queue_wait);
        SimTime cursor = now;
        const struct {
            StageKind stage;
            const char* name;
            SimTime dur;
        } shares[] = {
            {StageKind::kInvocation, "invocation-share",
             t.invocation_share},
            {StageKind::kModelPreproc, "model-preproc-share",
             t.model_preproc_share},
            {StageKind::kMarshal, "transfer-share", t.transfer_share},
            {StageKind::kDataPreproc, "data-preproc-share",
             t.data_preproc_share},
            {StageKind::kScoring, "scoring-share",
             t.scoring_share.Total()},
        };
        for (const auto& s : shares) {
            tracer.EmitSim(s.stage, s.name, m.trace, cursor, s.dur);
            cursor += s.dur;
        }

        if (!m.request.rows.empty()) {
            // Functional scoring through the model's cached kernel
            // (compiled once at registration), traversing the
            // request's view in place — the rows were never copied
            // between Submit and here. Wall-clock only; the modeled
            // timing above is already fixed.
            reply.predictions =
                entry.forest.PredictBatch(m.request.rows);
        }
        stats_.RecordCompleted(t, arrival, finish, m.request.num_rows,
                               degraded);
        EmitRequestSpan(m, arrival, finish, /*expired=*/false);
        {
            trace::ScopedSpan fulfill(StageKind::kReply, "fulfill",
                                      m.trace);
            m.handle->Fulfill(std::move(reply));
        }
        SettleOne(finish);
    }

    // Keep the per-thread rings far from overflow under sustained
    // load: a batch emits at most ~10 spans per member.
    tracer.Drain();
}

}  // namespace dbscore::serve
