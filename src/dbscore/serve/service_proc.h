/**
 * @file
 * DBMS entry point for the scoring service.
 *
 * Where sp_score_model runs the paper's per-query pipeline (cold
 * process, private data copy, solo dispatch), sp_score_service routes
 * the same ask through the shared ScoringService: the request may be
 * coalesced with concurrent sessions' requests, rides a warm per-device
 * process pool, and is answered with its share of the batch's modeled
 * stage breakdown — the difference between the two procedures *is* the
 * serving layer's amortization.
 */
#ifndef DBSCORE_SERVE_SERVICE_PROC_H
#define DBSCORE_SERVE_SERVICE_PROC_H

#include "dbscore/dbms/query_engine.h"
#include "dbscore/serve/scoring_service.h"

namespace dbscore::serve {

/**
 * Registers two stored procedures on @p engine against @p service
 * (which must outlive the engine and be Start()ed before use):
 *
 *   EXEC sp_score_service @model = '<id>', @rows = N
 *        [, @deadline_ms = D]
 *     Submits one request and blocks for its reply; returns one row of
 *     modeled timing (status, backend, batch size, latency, wait).
 *
 *   EXEC sp_serve_stats
 *     Returns the service's live counters as rows of (metric, value).
 */
void RegisterServeProcedures(QueryEngine& engine, ScoringService& service);

}  // namespace dbscore::serve

#endif  // DBSCORE_SERVE_SERVICE_PROC_H
