/**
 * @file
 * Thread-safe serving metrics.
 *
 * ServiceStats is the service's flight recorder: admission counters,
 * end-to-end latency quantiles, per-stage modeled-time totals (the
 * paper's Figure-11 taxonomy aggregated across the fleet), per-device
 * dispatch accounting, and the coalesced-batch size distribution. Any
 * thread may record; any thread may Snapshot() while the service runs —
 * snapshots are consistent copies taken under one lock.
 */
#ifndef DBSCORE_SERVE_SERVICE_STATS_H
#define DBSCORE_SERVE_SERVICE_STATS_H

#include <cstddef>
#include <mutex>
#include <string>

#include "dbscore/common/stats.h"
#include "dbscore/serve/request.h"

namespace dbscore::serve {

/** Count + moments + tail quantiles of one recorded distribution. */
struct DistSummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Per-device-class dispatch accounting. */
struct DeviceServeStats {
    std::size_t batches = 0;
    std::size_t requests = 0;
    std::size_t rows = 0;
    std::size_t cold_invocations = 0;
    /** Modeled busy time accumulated on this device. */
    SimTime busy;
};

/**
 * Fleet-wide modeled time spent in each pipeline stage. Derived from
 * the trace subsystem (the single source of truth for stage
 * attribution): ScoringService::Stats() sums the simulated durations
 * of the service's per-request stage spans. Only completed requests
 * contribute — expired members emit no share spans.
 */
struct StageTotals {
    SimTime coalesce_delay;
    SimTime queue_wait;
    SimTime invocation;
    SimTime model_preprocessing;
    SimTime transfer;
    SimTime data_preprocessing;
    SimTime scoring;
};

/** A consistent copy of every counter at one instant. */
struct ServiceSnapshot {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::size_t expired = 0;
    std::size_t completed = 0;
    std::size_t batches = 0;

    /** End-to-end modeled latency of completed requests, seconds. */
    DistSummary latency;
    /** Requests per dispatched batch. */
    DistSummary batch_requests;
    /** Rows per dispatched batch. */
    DistSummary batch_rows;

    StageTotals stage_totals;
    /** Indexed by DeviceClass (kCpu, kGpu, kFpga). */
    DeviceServeStats device[3];

    /** Earliest arrival and latest completion seen (modeled). */
    SimTime first_arrival;
    SimTime last_finish;

    /** last_finish - first_arrival; zero before the first completion. */
    SimTime Makespan() const;

    /** Completed requests per modeled second over the makespan. */
    double ThroughputRps() const;

    /** Scored rows per modeled second over the makespan. */
    double RowThroughput() const;

    /** Multi-line human-readable rendering. */
    std::string ToString() const;
};

/** Thread-safe accumulator behind ServiceSnapshot. */
class ServiceStats {
 public:
    void RecordSubmitted();
    void RecordAdmitted();
    void RecordRejected();
    void RecordExpired(SimTime arrival, SimTime finish);

    /** One coalesced dispatch on @p device. */
    void RecordBatch(DeviceClass device, std::size_t num_requests,
                     std::size_t num_rows, SimTime busy, bool cold);

    /** One completed member of a dispatched batch. */
    void RecordCompleted(const RequestTiming& timing, SimTime arrival,
                         SimTime finish, std::size_t rows);

    ServiceSnapshot Snapshot() const;

    /** Requests that reached a terminal state (done + rejected + expired). */
    std::size_t Settled() const;

 private:
    mutable std::mutex mutex_;
    ServiceSnapshot totals_;
    bool any_arrival_ = false;
    RunningStats latency_stats_;
    QuantileSketch latency_sketch_;
    RunningStats batch_request_stats_;
    QuantileSketch batch_request_sketch_;
    RunningStats batch_row_stats_;
    QuantileSketch batch_row_sketch_;
};

}  // namespace dbscore::serve

#endif  // DBSCORE_SERVE_SERVICE_STATS_H
