/**
 * @file
 * Thread-safe serving metrics.
 *
 * ServiceStats is the service's flight recorder: admission counters,
 * end-to-end latency quantiles, per-stage modeled-time totals (the
 * paper's Figure-11 taxonomy aggregated across the fleet), per-device
 * dispatch accounting, and the coalesced-batch size distribution. Any
 * thread may record; any thread may Snapshot() while the service runs —
 * snapshots are consistent copies taken under one lock.
 */
#ifndef DBSCORE_SERVE_SERVICE_STATS_H
#define DBSCORE_SERVE_SERVICE_STATS_H

#include <cstddef>
#include <mutex>
#include <string>

#include "dbscore/common/stats.h"
#include "dbscore/serve/request.h"

namespace dbscore::serve {

/** Count + moments + tail quantiles of one recorded distribution. */
struct DistSummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Circuit-breaker state of one device queue. Closed is healthy;
 * K consecutive dispatch failures open the breaker (new work re-routes
 * to CPU); after a cooldown the next batch runs as a half-open probe —
 * success closes the breaker, another fault re-opens it.
 */
enum class BreakerState {
    kClosed,
    kOpen,
    kHalfOpen,
};

const char* BreakerStateName(BreakerState state);

/** Per-device-class dispatch accounting. */
struct DeviceServeStats {
    std::size_t batches = 0;
    std::size_t requests = 0;
    std::size_t rows = 0;
    std::size_t cold_invocations = 0;
    /** Modeled busy time accumulated on this device. */
    SimTime busy;
    /** Dispatch attempts on this device lost to injected faults. */
    std::size_t faults = 0;
    /** Breaker state at snapshot time. */
    BreakerState breaker = BreakerState::kClosed;
};

/**
 * Fleet-wide modeled time spent in each pipeline stage. Derived from
 * the trace subsystem (the single source of truth for stage
 * attribution): ScoringService::Stats() sums the simulated durations
 * of the service's per-request stage spans. Only completed requests
 * contribute — expired members emit no share spans.
 */
struct StageTotals {
    SimTime coalesce_delay;
    SimTime queue_wait;
    SimTime invocation;
    SimTime model_preprocessing;
    SimTime transfer;
    SimTime data_preprocessing;
    SimTime scoring;
};

/** A consistent copy of every counter at one instant. */
struct ServiceSnapshot {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::size_t expired = 0;
    std::size_t completed = 0;
    std::size_t batches = 0;

    /** Requests that exhausted every permitted retry (kFailed). */
    std::size_t failed = 0;
    /** Completed requests answered by the CPU degradation path. */
    std::size_t degraded_completed = 0;
    /** Dispatch attempts aborted by an injected fault. */
    std::size_t fault_attempts = 0;
    /** Re-dispatches after a faulted attempt (excludes the first try). */
    std::size_t retries = 0;
    /** Batches re-routed to the CPU engine (fallback or open breaker). */
    std::size_t fallback_batches = 0;
    /** Closed -> open breaker transitions. */
    std::size_t breaker_opens = 0;
    /** Modeled time lost to faulted attempts (partial stage costs). */
    SimTime fault_wasted;
    /** Modeled backoff delay paid before retries. */
    SimTime retry_backoff;

    /** End-to-end modeled latency of completed requests, seconds. */
    DistSummary latency;
    /** Requests per dispatched batch. */
    DistSummary batch_requests;
    /** Rows per dispatched batch. */
    DistSummary batch_rows;

    StageTotals stage_totals;
    /** Indexed by DeviceClass (kCpu, kGpu, kFpga). */
    DeviceServeStats device[3];

    /** Earliest arrival and latest completion seen (modeled). */
    SimTime first_arrival;
    SimTime last_finish;

    /** last_finish - first_arrival; zero before the first completion. */
    SimTime Makespan() const;

    /** Completed requests per modeled second over the makespan. */
    double ThroughputRps() const;

    /** Scored rows per modeled second over the makespan. */
    double RowThroughput() const;

    /** Multi-line human-readable rendering. */
    std::string ToString() const;
};

/** Thread-safe accumulator behind ServiceSnapshot. */
class ServiceStats {
 public:
    void RecordSubmitted();
    void RecordAdmitted();
    void RecordRejected();
    void RecordExpired(SimTime arrival, SimTime finish);

    /** One coalesced dispatch on @p device. */
    void RecordBatch(DeviceClass device, std::size_t num_requests,
                     std::size_t num_rows, SimTime busy, bool cold);

    /** One completed member of a dispatched batch. */
    void RecordCompleted(const RequestTiming& timing, SimTime arrival,
                         SimTime finish, std::size_t rows, bool degraded);

    /** One member whose batch exhausted every permitted retry. */
    void RecordFailed(SimTime arrival, SimTime finish);

    /** One dispatch attempt lost to an injected fault on @p device. */
    void RecordFaultAttempt(DeviceClass device, SimTime wasted);

    /** One re-dispatch after a fault, delayed by @p backoff. */
    void RecordRetry(SimTime backoff);

    /** One batch re-routed to the CPU engine. */
    void RecordFallback();

    /** One closed -> open breaker transition. */
    void RecordBreakerOpen();

    /** Breaker state reported in the next Snapshot() (one per class). */
    void SetBreakerState(DeviceClass device, BreakerState state);

    ServiceSnapshot Snapshot() const;

    /**
     * Requests that reached a terminal state
     * (completed + rejected + expired + failed).
     */
    std::size_t Settled() const;

    /**
     * Zeroes every counter and distribution for a fresh measurement
     * phase. Breaker states (current device facts, not history)
     * survive. In-flight requests settle into the new phase's
     * counters, so a snapshot taken mid-flight can show completions
     * without admissions.
     */
    void Reset();

 private:
    mutable std::mutex mutex_;
    ServiceSnapshot totals_;
    bool any_arrival_ = false;
    RunningStats latency_stats_;
    QuantileSketch latency_sketch_;
    RunningStats batch_request_stats_;
    QuantileSketch batch_request_sketch_;
    RunningStats batch_row_stats_;
    QuantileSketch batch_row_sketch_;
};

}  // namespace dbscore::serve

#endif  // DBSCORE_SERVE_SERVICE_STATS_H
